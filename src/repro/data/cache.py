"""Disk caching of datasets and trained models.

Training the LeNet-5 takes a couple of minutes; the benchmark harnesses
would otherwise re-train it per table.  Artifacts are cached under
``$REPRO_CACHE_DIR`` (default ``~/.cache/repro-scdcnn``), keyed by their
generation parameters, and are plain ``.npz`` files.
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path

import numpy as np

from repro.data.synthetic_mnist import generate_dataset, to_bipolar
from repro.nn.trainer import Trainer, evaluate_error_rate
from repro.nn.zoo import build_zoo_model, get_spec

__all__ = ["cache_dir", "get_dataset", "get_trained_model",
           "get_trained_lenet", "TrainedModel"]

#: Defaults sized so training finishes in a couple of minutes on a laptop
#: while reaching a few-percent software error rate.
DEFAULT_TRAIN = 6000
DEFAULT_TEST = 1500
DEFAULT_EPOCHS = 6


def cache_dir() -> Path:
    """The artifact cache directory (created on demand)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    path = Path(root) if root else Path.home() / ".cache" / "repro-scdcnn"
    path.mkdir(parents=True, exist_ok=True)
    return path


def get_dataset(n_train: int = DEFAULT_TRAIN, n_test: int = DEFAULT_TEST,
                seed: int = 0):
    """Load (or generate and cache) a synthetic dataset split.

    Returns ``(x_train, y_train, x_test, y_test)`` with images in [0, 1].
    """
    path = cache_dir() / f"dataset_{n_train}_{n_test}_{seed}.npz"
    if path.exists():
        data = np.load(path)
        return (data["x_train"], data["y_train"],
                data["x_test"], data["y_test"])
    x_train, y_train, x_test, y_test = generate_dataset(n_train, n_test, seed)
    np.savez_compressed(path, x_train=x_train, y_train=y_train,
                        x_test=x_test, y_test=y_test)
    return x_train, y_train, x_test, y_test


@dataclasses.dataclass
class TrainedModel:
    """A trained model plus its dataset and software baseline error.

    Attributes
    ----------
    model:
        The trained :class:`repro.nn.module.Sequential`.
    pooling:
        ``"max"`` or ``"avg"``.
    x_test, y_test:
        Held-out test set (images in [0, 1]).
    software_error_pct:
        The float-software error rate in percent — the baseline the
        paper's 1.5% degradation threshold is measured against.
    model_name:
        The :mod:`repro.nn.zoo` architecture name.
    """

    model: object
    pooling: str
    x_test: np.ndarray
    y_test: np.ndarray
    software_error_pct: float
    model_name: str = "lenet5"

    def bipolar_test_images(self) -> np.ndarray:
        """Test images mapped to the SC input range [-1, 1]."""
        return to_bipolar(self.x_test)


def get_trained_model(model_name: str = "lenet5", pooling: str = "max",
                      seed: int = 0, n_train: int = DEFAULT_TRAIN,
                      n_test: int = DEFAULT_TEST,
                      epochs: int = DEFAULT_EPOCHS,
                      verbose: bool = False) -> TrainedModel:
    """Load (or train and cache) any :mod:`repro.nn.zoo` architecture.

    Models are trained on bipolar ([-1, 1]) inputs, matching what the SC
    hardware receives, and cached under a key that includes the zoo name
    (for ``"lenet5"`` the key is unchanged from the pre-zoo cache, so
    existing artifacts stay warm).
    """
    if pooling not in ("max", "avg"):
        raise ValueError(f"pooling must be 'max' or 'avg', got {pooling!r}")
    x_train, y_train, x_test, y_test = get_dataset(n_train, n_test, seed)
    model = build_zoo_model(model_name, pooling=pooling, seed=seed)
    key = f"{model_name}_{pooling}_{seed}_{n_train}_{n_test}_{epochs}"
    path = cache_dir() / f"{key}.npz"
    if path.exists():
        state = dict(np.load(path))
        model.load_state_dict(state)
    else:
        # This full-training path adds momentum + lr decay, which
        # tolerates less lr than the plain-SGD quick recipes, so the
        # zoo's per-architecture lr hint is capped at the historical
        # 0.05 (also what every cached lenet5 artifact was trained
        # with); the cap only ever lowers a spec's rate, e.g. mlp's
        # 0.02 passes through.
        lr = min(0.05, get_spec(model_name).lr)
        trainer = Trainer(model, lr=lr, momentum=0.9, lr_decay=0.85,
                          batch_size=64, seed=seed)
        trainer.fit(to_bipolar(x_train), y_train, epochs=epochs,
                    x_val=to_bipolar(x_test), y_val=y_test, verbose=verbose)
        np.savez_compressed(path, **model.state_dict())
    error = evaluate_error_rate(model, to_bipolar(x_test), y_test)
    return TrainedModel(model=model, pooling=pooling, x_test=x_test,
                        y_test=y_test, software_error_pct=error,
                        model_name=model_name)


def get_trained_lenet(pooling: str = "max", seed: int = 0,
                      n_train: int = DEFAULT_TRAIN, n_test: int = DEFAULT_TEST,
                      epochs: int = DEFAULT_EPOCHS,
                      verbose: bool = False) -> TrainedModel:
    """Load (or train and cache) the paper's LeNet-5 variant."""
    return get_trained_model("lenet5", pooling=pooling, seed=seed,
                             n_train=n_train, n_test=n_test, epochs=epochs,
                             verbose=verbose)
