"""Procedural handwritten-digit generation.

Each sample starts from a base glyph (:mod:`repro.data.glyphs`) and is
perturbed with:

* a random affine warp — rotation, anisotropic scale, shear, translation;
* elastic distortion (Simard et al.) — a Gaussian-smoothed random
  displacement field;
* stroke-width variation — grey-level dilation or erosion;
* Gaussian blur and additive sensor noise.

The perturbation magnitudes are chosen so a LeNet-5 reaches a few-percent
error rate, leaving headroom to observe SC-induced degradation — matching
the role MNIST plays in the paper.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.data.glyphs import DIGIT_GLYPHS, render_glyph
from repro.utils.seeding import spawn_rng
from repro.utils.validation import check_positive_int

__all__ = ["SyntheticMNIST", "generate_dataset", "to_bipolar"]

IMAGE_SIZE = 28
NUM_CLASSES = 10


def _random_affine(img: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Apply a random rotation/scale/shear/translation (inverse mapping)."""
    size = img.shape[0]
    angle = rng.uniform(-0.26, 0.26)  # ±15 degrees
    scale_r = rng.uniform(0.85, 1.15)
    scale_c = rng.uniform(0.85, 1.15)
    shear = rng.uniform(-0.15, 0.15)
    t_r = rng.uniform(-2.5, 2.5)
    t_c = rng.uniform(-2.5, 2.5)

    cos, sin = np.cos(angle), np.sin(angle)
    # forward = T(center) @ R @ Shear @ S @ T(-center) + t
    rot = np.array([[cos, -sin], [sin, cos]])
    shr = np.array([[1.0, shear], [0.0, 1.0]])
    scl = np.diag([scale_r, scale_c])
    fwd = rot @ shr @ scl
    inv = np.linalg.inv(fwd)
    center = (size - 1) / 2.0
    offset = np.array([center - t_r, center - t_c]) - inv @ np.array(
        [center, center]
    )
    return ndimage.affine_transform(img, inv, offset=offset, order=1,
                                    mode="constant", cval=0.0)


def _elastic(img: np.ndarray, rng: np.random.Generator,
             alpha: float = 4.0, sigma: float = 4.0) -> np.ndarray:
    """Elastic distortion with a smoothed random displacement field."""
    size = img.shape[0]
    dr = ndimage.gaussian_filter(rng.uniform(-1, 1, (size, size)), sigma) * alpha
    dc = ndimage.gaussian_filter(rng.uniform(-1, 1, (size, size)), sigma) * alpha
    rr, cc = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    coords = np.stack([rr + dr, cc + dc])
    return ndimage.map_coordinates(img, coords, order=1, mode="constant",
                                   cval=0.0)


def _stroke_width(img: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Randomly thicken or thin strokes with grey-level morphology."""
    roll = rng.random()
    if roll < 0.3:
        return ndimage.grey_dilation(img, size=(2, 2))
    if roll < 0.5:
        return ndimage.grey_erosion(img, size=(2, 2))
    return img


def _finish(img: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Blur + noise + clip to [0, 1]."""
    img = ndimage.gaussian_filter(img, rng.uniform(0.4, 0.9))
    img = img + rng.normal(0.0, 0.04, img.shape)
    return np.clip(img, 0.0, 1.0)


class SyntheticMNIST:
    """A deterministic synthetic digit generator.

    >>> gen = SyntheticMNIST(seed=0)
    >>> img = gen.sample(digit=3)
    >>> img.shape, float(img.min()) >= 0.0, float(img.max()) <= 1.0
    ((28, 28), True, True)
    """

    def __init__(self, seed: int = 0):
        self._rng = spawn_rng(seed, "synthetic-mnist")

    def sample(self, digit: int,
               rng: np.random.Generator = None) -> np.ndarray:
        """Generate one perturbed 28×28 image of ``digit``.

        ``rng`` makes the draw a pure function of that generator (the
        sampler's own stream is untouched); ``None`` keeps the shared
        per-instance stream.
        """
        rng = self._rng if rng is None else rng
        variant = int(rng.integers(len(DIGIT_GLYPHS[digit])))
        img = render_glyph(digit, variant, IMAGE_SIZE)
        img = _stroke_width(img, rng)
        img = _random_affine(img, rng)
        img = _elastic(img, rng)
        return _finish(img, rng)

    def batch(self, n: int, rng: np.random.Generator = None):
        """Generate ``n`` images with uniformly random labels.

        Returns ``(images (n, 1, 28, 28), labels (n,))``.  With an
        explicit ``rng``, labels *and* image perturbations all come from
        it, so the batch reproduces bit-for-bit no matter what other
        callers drew from this sampler in between (the scene generator
        relies on this; pre-fix, only the labels were threaded and the
        images still consumed shared state).
        """
        n = check_positive_int(n, "n")
        draw = self._rng if rng is None else rng
        labels = draw.integers(0, NUM_CLASSES, size=n)
        images = np.empty((n, 1, IMAGE_SIZE, IMAGE_SIZE), dtype=np.float64)
        for i, digit in enumerate(labels):
            images[i, 0] = self.sample(int(digit), rng=draw)
        return images, labels.astype(np.int64)


def generate_dataset(n_train: int, n_test: int, seed: int = 0):
    """Generate a train/test split.

    Returns ``(x_train, y_train, x_test, y_test)`` with images in [0, 1],
    NCHW layout.  Train and test use independent generator streams so the
    split is honest.
    """
    train_gen = SyntheticMNIST(seed=seed)
    test_gen = SyntheticMNIST(seed=seed + 104729)  # disjoint stream
    x_train, y_train = train_gen.batch(n_train)
    x_test, y_test = test_gen.batch(n_test)
    return x_train, y_train, x_test, y_test


def to_bipolar(images: np.ndarray) -> np.ndarray:
    """Map [0, 1] images to the bipolar SC input range [-1, 1]."""
    return images * 2.0 - 1.0
