"""Synthetic MNIST-like dataset substrate.

The evaluation environment has no network access, so the MNIST images the
paper evaluates on are substituted with a procedurally generated
handwritten-digit lookalike: hand-designed stroke glyphs per digit class,
randomly perturbed with affine warps, elastic distortion, stroke-width
changes, blur and sensor noise (see DESIGN.md for the substitution
rationale).  Shapes and label semantics match MNIST exactly
(28×28 grayscale, 10 classes), so the entire SC pipeline downstream is
identical to the paper's.
"""

from repro.data.glyphs import DIGIT_GLYPHS, render_glyph
from repro.data.scenes import SCENE_KINDS, Scene, SceneCell, SceneGenerator
from repro.data.synthetic_mnist import SyntheticMNIST, generate_dataset, to_bipolar
from repro.data.cache import (
    cache_dir,
    get_dataset,
    get_trained_lenet,
    get_trained_model,
    TrainedModel,
)

__all__ = [
    "DIGIT_GLYPHS",
    "render_glyph",
    "SyntheticMNIST",
    "generate_dataset",
    "to_bipolar",
    "SCENE_KINDS",
    "Scene",
    "SceneCell",
    "SceneGenerator",
    "cache_dir",
    "get_dataset",
    "get_trained_lenet",
    "get_trained_model",
    "TrainedModel",
]
