"""Composite-scene generation over the synthetic digit sampler.

A *scene* is a single-channel canvas larger than the 28×28 tile the zoo
models consume, holding one or more digits whose positions and labels
are known.  Scenes are the workload for the tiled-inference layer
(:mod:`repro.engine.tiled`) and the ``scene`` serving mode: a classifier
trained on single digits is slid across the canvas and its per-window
logits are reduced back to per-cell predictions.

Three scene kinds, in increasing difficulty:

``grid``
    An R×C lattice of digits, one per 28×28 cell.  Every cell is
    labelled; tiled inference with ``stride=28`` sees exactly one
    window per cell.
``translated``
    One digit at a uniform-random offset on a larger canvas.  Exercises
    window alignment: only windows near the true box see a centred
    digit.
``cluttered``
    ``translated`` plus distractor stroke fragments (crops of other
    digits) pasted outside the labelled box.  Exercises rejection of
    partial evidence.

Determinism: every scene is a pure function of ``(seed, kind, index)``
— generation order, interleaving and process boundaries cannot change a
scene (the per-scene stream comes from :func:`repro.utils.seeding.
spawn_rng` and is threaded explicitly through
:meth:`repro.data.synthetic_mnist.SyntheticMNIST.sample`).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.data.synthetic_mnist import IMAGE_SIZE, NUM_CLASSES, SyntheticMNIST
from repro.utils.seeding import spawn_rng
from repro.utils.validation import check_positive_int

__all__ = ["SceneCell", "Scene", "SceneGenerator", "SCENE_KINDS"]

SCENE_KINDS = ("grid", "translated", "cluttered")

TILE = IMAGE_SIZE
"""Digit tile side length — the geometry every scene cell is drawn at."""

_MAX_PLACEMENT_TRIES = 32


@dataclasses.dataclass(frozen=True)
class SceneCell:
    """One labelled digit in a scene.

    ``box`` is ``(top, left, height, width)`` in canvas pixels — the
    exact window a dedicated single-digit classifier should be shown.
    """

    label: int
    box: tuple

    def to_payload(self) -> dict:
        return {"label": int(self.label), "box": [int(v) for v in self.box]}


@dataclasses.dataclass(frozen=True, eq=False)
class Scene:
    """A generated composite scene.

    Attributes
    ----------
    kind:
        One of :data:`SCENE_KINDS`.
    canvas:
        Float64 ``(H, W)`` image in ``[0, 1]`` (same range as the
        single-digit dataset; bipolar conversion happens at inference).
    cells:
        Tuple of :class:`SceneCell`, row-major for ``grid`` scenes,
        a single cell for ``translated``/``cluttered``.
    """

    kind: str
    canvas: np.ndarray
    cells: tuple

    @property
    def shape(self) -> tuple:
        return self.canvas.shape

    @property
    def labels(self) -> np.ndarray:
        return np.array([c.label for c in self.cells], dtype=np.int64)

    def to_payload(self) -> dict:
        """JSON-serializable form (the ``scene`` HTTP request body)."""
        return {
            "kind": self.kind,
            "canvas": self.canvas.tolist(),
            "cells": [c.to_payload() for c in self.cells],
        }

    @classmethod
    def from_payload(cls, payload) -> "Scene":
        """Parse and validate a payload; raises ``ValueError`` on any
        malformed field (the serving layer's 400 class)."""
        if not isinstance(payload, dict):
            raise ValueError(
                f"scene payload must be an object, got {type(payload).__name__}")
        missing = {"kind", "canvas", "cells"} - set(payload)
        if missing:
            raise ValueError(f"scene payload missing {sorted(missing)}")
        kind = payload["kind"]
        if kind not in SCENE_KINDS:
            raise ValueError(
                f"unknown scene kind {kind!r}; expected one of {SCENE_KINDS}")
        try:
            canvas = np.asarray(payload["canvas"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"malformed scene canvas: {exc}") from exc
        if canvas.ndim != 2 or canvas.size == 0:
            raise ValueError(
                f"scene canvas must be a non-empty 2-D grid, got shape "
                f"{canvas.shape}")
        if canvas.min() < 0.0 or canvas.max() > 1.0:
            raise ValueError("scene canvas values must lie in [0, 1]")
        cells = []
        for i, cell in enumerate(payload["cells"]):
            if not isinstance(cell, dict) or {"label", "box"} - set(cell):
                raise ValueError(
                    f"scene cell {i} must be an object with 'label' and "
                    f"'box'")
            try:
                label = int(cell["label"])
                top, left, bh, bw = (int(v) for v in cell["box"])
            except (TypeError, ValueError) as exc:
                raise ValueError(f"malformed scene cell {i}: {exc}") from exc
            if not 0 <= label < NUM_CLASSES:
                raise ValueError(
                    f"scene cell {i} label must be 0-{NUM_CLASSES - 1}, "
                    f"got {label}")
            if (bh < 1 or bw < 1 or top < 0 or left < 0
                    or top + bh > canvas.shape[0]
                    or left + bw > canvas.shape[1]):
                raise ValueError(
                    f"scene cell {i} box {(top, left, bh, bw)} falls "
                    f"outside the {canvas.shape} canvas")
            cells.append(SceneCell(label, (top, left, bh, bw)))
        if not cells:
            raise ValueError("scene payload must hold at least one cell")
        return cls(kind=kind, canvas=canvas, cells=tuple(cells))


def _boxes_overlap(a: tuple, b: tuple) -> bool:
    at, al, ah, aw = a
    bt, bl, bh, bw = b
    return not (at + ah <= bt or bt + bh <= at
                or al + aw <= bl or bl + bw <= al)


class SceneGenerator:
    """Deterministic scene factory over :class:`SyntheticMNIST`.

    Every scene is reproducible from ``(seed, kind, index)`` alone::

        gen = SceneGenerator(seed=0)
        a = gen.generate("grid", index=3, rows=2, cols=3)
        b = SceneGenerator(seed=0).generate("grid", index=3, rows=2, cols=3)
        # a and b are bit-identical, regardless of any other calls
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        # The sampler's own stream is never consumed — every sample()
        # call below threads the per-scene rng explicitly.
        self._sampler = SyntheticMNIST(seed=self.seed)

    # ------------------------------------------------------------------
    def _rng(self, kind: str, index: int) -> np.random.Generator:
        return spawn_rng(self.seed, "scene", kind, int(index))

    def _digit(self, rng: np.random.Generator):
        label = int(rng.integers(0, NUM_CLASSES))
        return label, self._sampler.sample(label, rng=rng)

    # ------------------------------------------------------------------
    def grid(self, index: int = 0, rows: int = 2, cols: int = 2) -> Scene:
        """An ``rows×cols`` lattice of digits, one per 28×28 cell."""
        rows = check_positive_int(rows, "rows")
        cols = check_positive_int(cols, "cols")
        rng = self._rng("grid", index)
        canvas = np.zeros((rows * TILE, cols * TILE), dtype=np.float64)
        cells = []
        for r in range(rows):
            for c in range(cols):
                label, img = self._digit(rng)
                top, left = r * TILE, c * TILE
                canvas[top:top + TILE, left:left + TILE] = img
                cells.append(SceneCell(label, (top, left, TILE, TILE)))
        return Scene("grid", canvas, tuple(cells))

    def translated(self, index: int = 0,
                   canvas_hw: tuple = (56, 56)) -> Scene:
        """One digit at a uniform-random offset on a larger canvas."""
        rng = self._rng("translated", index)
        canvas, cell = self._place_digit(rng, canvas_hw)
        return Scene("translated", canvas, (cell,))

    def cluttered(self, index: int = 0, canvas_hw: tuple = (56, 56),
                  n_distractors: int = 4) -> Scene:
        """``translated`` plus stroke fragments outside the labelled box."""
        rng = self._rng("cluttered", index)
        canvas, cell = self._place_digit(rng, canvas_hw)
        H, W = canvas.shape
        for _ in range(int(n_distractors)):
            _, src = self._digit(rng)
            ph = int(rng.integers(8, 15))
            pw = int(rng.integers(8, 15))
            sr = int(rng.integers(0, TILE - ph + 1))
            sc = int(rng.integers(0, TILE - pw + 1))
            patch = src[sr:sr + ph, sc:sc + pw]
            for _try in range(_MAX_PLACEMENT_TRIES):
                dt = int(rng.integers(0, H - ph + 1))
                dl = int(rng.integers(0, W - pw + 1))
                if not _boxes_overlap((dt, dl, ph, pw), cell.box):
                    region = canvas[dt:dt + ph, dl:dl + pw]
                    np.maximum(region, patch, out=region)
                    break
        return Scene("cluttered", canvas, (cell,))

    def _canvas_hw(self, canvas_hw: tuple) -> tuple:
        try:
            H, W = (int(v) for v in canvas_hw)
        except (TypeError, ValueError):
            raise ValueError(
                f"canvas_hw must be a (height, width) pair, got "
                f"{canvas_hw!r}") from None
        if H < TILE or W < TILE:
            raise ValueError(
                f"canvas_hw must be at least {TILE}×{TILE}, got "
                f"{canvas_hw!r}")
        return H, W

    def _place_digit(self, rng: np.random.Generator, canvas_hw: tuple):
        H, W = self._canvas_hw(canvas_hw)
        label, img = self._digit(rng)
        top = int(rng.integers(0, H - TILE + 1))
        left = int(rng.integers(0, W - TILE + 1))
        canvas = np.zeros((H, W), dtype=np.float64)
        canvas[top:top + TILE, left:left + TILE] = img
        return canvas, SceneCell(label, (top, left, TILE, TILE))

    # ------------------------------------------------------------------
    def generate(self, kind: str, index: int = 0, **kwargs) -> Scene:
        """Dispatch to the named scene kind."""
        if kind not in SCENE_KINDS:
            raise ValueError(
                f"unknown scene kind {kind!r}; expected one of "
                f"{SCENE_KINDS}")
        return getattr(self, kind)(index=index, **kwargs)

    def scenes(self, kind: str, n: int, start: int = 0, **kwargs) -> list:
        """Generate ``n`` scenes ``start .. start+n-1`` of one kind."""
        n = check_positive_int(n, "n")
        return [self.generate(kind, index=start + i, **kwargs)
                for i in range(n)]
