"""Command-line entry point: ``python -m repro <experiment>``.

Regenerates individual paper experiments from the shell without writing
any Python — handy for quick paper-vs-measured checks:

    python -m repro table2          # MUX inner-product error grid
    python -m repro table7          # platform comparison
    python -m repro list            # everything available

runs batched inference through the unified engine:

    python -m repro infer --backend exact --batch 16
    python -m repro infer --backend surrogate --images 256 --length 512

starts the micro-batching HTTP inference service:

    python -m repro serve --port 8100 --backend exact --length 64

runs composite-scene workloads through tiled inference (``generate``
emits deterministic scene JSON, ``roundtrip`` holds the serve tier to
a dedicated local engine run, bit for bit):

    python -m repro scenes infer --kind grid --count 4
    python -m repro scenes roundtrip --kind translated --train 200

and runs the parallel, resumable design-space exploration (Section 6.3):

    python -m repro dse --model lenet5 --workers 4 --screen \
        --store search.jsonl --resume
"""

from __future__ import annotations

import argparse
import sys
import time


def _table1():
    from repro.analysis.block_error import or_inner_product_error
    from repro.analysis.tables import PAPER, format_table
    from repro.sc.encoding import Encoding
    rows = []
    for label, enc in (("Unipolar", Encoding.UNIPOLAR),
                       ("Bipolar", Encoding.BIPOLAR)):
        rows.append([label] + [
            f"{or_inner_product_error(n, 1024, enc, trials=48):.2f} "
            f"(paper {PAPER['table1'][(label.lower(), n)]})"
            for n in (16, 32, 64)
        ])
    print(format_table(["Format", "n=16", "n=32", "n=64"], rows,
                       title="Table 1 — OR-gate inner product error"))


def _table2():
    from repro.analysis.block_error import mux_inner_product_error
    from repro.analysis.tables import PAPER, format_table
    lengths = (512, 1024, 2048, 4096)
    rows = []
    for n in (16, 32, 64):
        rows.append([f"n={n}"] + [
            f"{mux_inner_product_error(n, L, trials=48):.2f} "
            f"(paper {PAPER['table2'][(n, L)]})"
            for L in lengths
        ])
    print(format_table(["Input size"] + [f"L={L}" for L in lengths], rows,
                       title="Table 2 — MUX inner product error"))


def _table5():
    from repro.analysis.block_error import stanh_inaccuracy
    from repro.analysis.tables import PAPER, format_table
    rows = [[f"K={k}", f"{100 * stanh_inaccuracy(k, trials=200):.2f}%",
             f"{PAPER['table5'][k]}%"]
            for k in (8, 10, 12, 14, 16, 18, 20)]
    print(format_table(["States", "Measured", "Paper"], rows,
                       title="Table 5 — Stanh relative inaccuracy"))


def _fig14():
    from repro.analysis.block_error import feb_inaccuracy
    from repro.analysis.tables import format_table
    sizes = (16, 64, 256)
    rows = []
    for kind in ("mux-avg", "mux-max", "apc-avg", "apc-max"):
        rows.append([kind] + [f"{feb_inaccuracy(kind, n, 1024, trials=24):.3f}"
                              for n in sizes])
    print(format_table(["FEB"] + [f"n={n}" for n in sizes], rows,
                       title="Figure 14 — FEB inaccuracy (L=1024)"))


def _fig15():
    from repro.analysis.tables import format_table
    from repro.hw.blocks_cost import feb_metrics
    sizes = (16, 64, 256)
    rows = []
    for kind in ("mux-avg", "mux-max", "apc-avg", "apc-max"):
        m = [feb_metrics(kind, n, 1024) for n in sizes]
        rows.append([kind] + [f"{x['area_um2']:.0f}µm²/{x['energy_pj']:.0f}pJ"
                              for x in m])
    print(format_table(["FEB"] + [f"n={n}" for n in sizes], rows,
                       title="Figure 15 — FEB area/energy (L=1024)"))


def _table6():
    from repro.analysis.tables import format_table
    from repro.core.config import TABLE6_CONFIGS
    from repro.hw.network_cost import lenet_network_cost
    rows = []
    for config, paper in TABLE6_CONFIGS:
        cost = lenet_network_cost(config)
        rows.append([config.name, config.describe().split(" ", 1)[1],
                     f"{cost.area_mm2:.1f} ({paper.area_mm2})",
                     f"{cost.power_w:.2f} ({paper.power_w})",
                     f"{cost.energy_uj:.2f} ({paper.energy_uj})"])
    print(format_table(
        ["No.", "Config", "Area mm²", "Power W", "Energy µJ"], rows,
        title="Table 6 — hardware costs (accuracy: run the benchmark)",
    ))


def _table7():
    from repro.analysis.tables import format_table
    from repro.core.config import TABLE6_CONFIGS
    from repro.hw.network_cost import lenet_network_cost
    from repro.hw.platforms import PLATFORMS
    rows = []
    for name, idx in (("SC-DCNN (No.6)", 5), ("SC-DCNN (No.11)", 10)):
        c = lenet_network_cost(TABLE6_CONFIGS[idx][0])
        rows.append([name, f"{c.area_mm2:.1f}", f"{c.power_w:.2f}",
                     f"{c.throughput_ips:.0f}", f"{c.area_efficiency:.0f}",
                     f"{c.energy_efficiency:.0f}"])
    for p in PLATFORMS:
        rows.append([p.name,
                     "N/A" if p.area_mm2 is None else f"{p.area_mm2:.0f}",
                     "N/A" if p.power_w is None else f"{p.power_w:.2f}",
                     f"{p.throughput_ips:.0f}",
                     "N/A" if p.area_efficiency is None
                     else f"{p.area_efficiency:.1f}",
                     "N/A" if p.energy_efficiency is None
                     else f"{p.energy_efficiency:.1f}"])
    print(format_table(
        ["Platform", "Area mm²", "Power W", "Images/s", "Img/s/mm²",
         "Images/J"], rows, title="Table 7 — platform comparison",
    ))


EXPERIMENTS = {
    "table1": _table1,
    "table2": _table2,
    "table5": _table5,
    "fig14": _fig14,
    "fig15": _fig15,
    "table6": _table6,
    "table7": _table7,
}


def _add_model_args(parser: argparse.ArgumentParser,
                    default_length: int) -> None:
    """Flags shared by ``infer`` and ``serve`` (design point + model)."""
    from repro.nn.zoo import zoo_names
    parser.add_argument("--model", default="lenet5", choices=zoo_names(),
                        help="zoo architecture to train and run "
                             "(default: lenet5)")
    parser.add_argument("--backend", default="exact",
                        help="engine backend (default: exact; see "
                             "'python -m repro list' for registered names)")
    parser.add_argument("--length", type=int, default=default_length,
                        help=f"bit-stream length L "
                             f"(default: {default_length})")
    parser.add_argument("--pooling", default="max", choices=("max", "avg"),
                        help="network-wide pooling (default: max)")
    parser.add_argument("--kinds", default=None,
                        help="layer FEB kinds, e.g. MUX,APC,APC (one per "
                             "hidden layer; default: all APC at the "
                             "model's depth)")
    parser.add_argument("--weight-bits", type=int, default=None,
                        help="weight storage precision (default: float)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--train", type=int, default=600,
                        help="training images for the quick model "
                             "(default: 600)")
    parser.add_argument("--epochs", type=int, default=2,
                        help="training epochs for the quick model "
                             "(default: 2)")


def _check_backend(parser: argparse.ArgumentParser, name: str) -> None:
    """Exit 2 with a clear message when ``name`` is not registered."""
    from repro.engine import list_backends
    if name not in list_backends():
        parser.error(f"unknown backend {name!r}; registered backends: "
                     f"{', '.join(list_backends())}")


def _quick_model(train: int, epochs: int, n_test: int,
                 pooling: str = "max", model_name: str = "lenet5"):
    """A briefly-trained zoo model + bipolar test split for CLI entry
    points."""
    from repro.data.synthetic_mnist import generate_dataset, to_bipolar
    from repro.nn.trainer import Trainer
    from repro.nn.zoo import build_zoo_model, get_spec

    print(f"training quick {model_name} ({train} images, "
          f"{epochs} epochs)...")
    x_train, y_train, x_test, y_test = generate_dataset(
        n_train=train, n_test=n_test, seed=123)
    model = build_zoo_model(model_name, pooling, seed=0)
    Trainer(model, lr=get_spec(model_name).lr, batch_size=64, seed=0).fit(
        to_bipolar(x_train), y_train, epochs=epochs)
    return model, to_bipolar(x_test), y_test


def _resolve_kinds_arg(parser: argparse.ArgumentParser, kinds: str,
                       model_name: str) -> tuple:
    """Parse and validate ``--kinds`` (``None`` = all-APC at the model's
    depth).  Bad values and depth mismatches exit cleanly *before* any
    training runs, through the same validator the serving layer uses."""
    from repro.core.config import resolve_kinds
    from repro.nn.zoo import default_kinds, get_spec
    if kinds is None:
        return default_kinds(model_name)
    try:
        return resolve_kinds(
            kinds, n_layers=get_spec(model_name).hidden_layers)
    except ValueError as exc:
        parser.error(f"--kinds for model {model_name!r}: {exc}")


def _infer_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro infer",
        description="Batched inference on synthetic MNIST through the "
                    "unified layer-graph engine.",
    )
    _add_model_args(parser, default_length=128)
    parser.add_argument("--batch", type=int, default=16,
                        help="images per engine call (default: 16)")
    parser.add_argument("--images", type=int, default=None,
                        help="test images to run (default: one batch)")
    return parser


def _infer(argv) -> int:
    """``python -m repro infer``: batched engine inference + throughput."""
    parser = _infer_parser()
    args = parser.parse_args(argv)
    import numpy as np

    from repro.core.config import NetworkConfig, resolve_pooling

    _check_backend(parser, args.backend)
    from repro.engine import Engine

    n_images = args.images if args.images is not None else args.batch
    kinds = _resolve_kinds_arg(parser, args.kinds, args.model)
    config = NetworkConfig.from_kinds(resolve_pooling(args.pooling),
                                      args.length, kinds, name="infer")

    model, x_test, y_test = _quick_model(args.train, args.epochs,
                                         n_test=max(n_images, 16),
                                         pooling=args.pooling,
                                         model_name=args.model)
    engine = Engine(model, config, backend=args.backend, seed=args.seed,
                    weight_bits=args.weight_bits)
    images = x_test[:n_images]
    labels = y_test[:n_images]
    print(f"model={args.model} backend={args.backend} "
          f"config={config.describe()} "
          f"batch={args.batch} images={n_images}")
    start = time.perf_counter()
    preds = engine.predict(images, batch_size=args.batch)
    elapsed = time.perf_counter() - start
    errors = int((preds != np.asarray(labels)).sum())
    print(f"throughput: {n_images / max(elapsed, 1e-9):.2f} images/s "
          f"({elapsed:.3f}s total)")
    print(f"error rate: {100.0 * errors / max(n_images, 1):.2f}% "
          f"({errors}/{n_images} wrong)")
    return 0


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Micro-batching HTTP inference service over the "
                    "unified engine (POST /predict, GET /healthz, "
                    "GET /stats).",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8100,
                        help="bind port; 0 picks an ephemeral port "
                             "(default: 8100)")
    _add_model_args(parser, default_length=64)
    parser.add_argument("--max-batch", type=int, default=16,
                        help="largest coalesced micro-batch (default: 16)")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="longest a queued request waits for "
                             "co-batchable traffic (default: 2.0)")
    parser.add_argument("--workers", type=int, default=1,
                        help="batcher worker threads (default: 1)")
    parser.add_argument("--max-queue", type=int, default=1024,
                        help="pending-request bound; beyond it requests "
                             "get 503 (default: 1024)")
    parser.add_argument("--max-engines", type=int, default=8,
                        help="engine-pool LRU capacity (default: 8)")
    parser.add_argument("--procs", type=int, default=1,
                        help="worker processes; >1 serves through the "
                             "multi-process tier with compiled plans in "
                             "shared memory (default: 1, in-process)")
    parser.add_argument("--no-warm", action="store_true",
                        help="skip preloading the default spec's engine")
    parser.add_argument("--drain-grace", type=float, default=10.0,
                        help="seconds SIGTERM-triggered drain waits for "
                             "in-flight requests before exiting "
                             "(default: 10)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request")
    return parser


def _serve(argv) -> int:
    """``python -m repro serve``: run the micro-batching HTTP service."""
    parser = _serve_parser()
    args = parser.parse_args(argv)
    _check_backend(parser, args.backend)
    if args.procs < 1:
        parser.error("--procs must be >= 1")
    from repro.serve import InferenceService, ProcServeFacade, run_server

    kinds = _resolve_kinds_arg(parser, args.kinds, args.model)
    model, _, _ = _quick_model(args.train, args.epochs, n_test=16,
                               pooling=args.pooling,
                               model_name=args.model)
    service_kwargs = dict(
        backend=args.backend, length=args.length, kinds=kinds,
        pooling=args.pooling, weight_bits=args.weight_bits, seed=args.seed,
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        workers=args.workers, max_queue=args.max_queue,
        max_engines=args.max_engines, warm=not args.no_warm)
    if args.procs > 1:
        service = ProcServeFacade({args.model: model}, procs=args.procs,
                                  **service_kwargs)
    else:
        service = InferenceService({args.model: model}, **service_kwargs)
    print(f"service ready: model={args.model} backend={args.backend} "
          f"L={args.length} kinds={','.join(kinds)} "
          f"max_batch={args.max_batch} "
          f"max_wait_ms={args.max_wait_ms} procs={args.procs}")
    run_server(service, host=args.host, port=args.port,
               verbose=args.verbose, drain_grace=args.drain_grace)
    return 0


def _dse_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro dse",
        description="Parallel, resumable design-space exploration "
                    "(Section 6.3): co-optimize layer FEB kinds, stream "
                    "length and weight precision under an accuracy "
                    "budget; report the passing points and their Pareto "
                    "frontier on (error, area, power, energy).",
    )
    from repro.nn.zoo import zoo_names
    parser.add_argument("--model", default="lenet5", choices=zoo_names(),
                        help="zoo architecture to search (default: lenet5)")
    parser.add_argument("--pooling", default="max", choices=("max", "avg"),
                        help="pooling the model trains with — the search "
                             "explores this pooling (default: max)")
    parser.add_argument("--workers", type=int, default=1,
                        help="evaluation worker processes (default: 1)")
    parser.add_argument("--evaluator", default="noise",
                        choices=("noise", "surrogate", "exact"),
                        help="full-fidelity evaluator (default: noise, "
                             "the paper's methodology; exact runs the "
                             "bit-level simulator)")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="accuracy budget: max error-rate degradation "
                             "in %% over the software baseline "
                             "(default: 1.5, the paper's)")
    parser.add_argument("--eval-images", type=int, default=400,
                        help="test images per full evaluation "
                             "(default: 400)")
    parser.add_argument("--max-length", type=int, default=1024,
                        help="halving schedule start (default: 1024)")
    parser.add_argument("--min-length", type=int, default=64,
                        help="halving schedule floor (default: 64)")
    parser.add_argument("--weight-bits", default="8",
                        help="weight precisions to search: comma list of "
                             "ints, e.g. '6,8' (default: 8)")
    parser.add_argument("--seed", type=int, default=0,
                        help="search seed (every point's evaluation seed "
                             "derives from it; default: 0)")
    parser.add_argument("--screen", action="store_true", default=False,
                        help="pre-screen candidates with the cheap "
                             "deterministic surrogate")
    parser.add_argument("--no-screen", dest="screen", action="store_false",
                        help="disable pre-screening (the default)")
    parser.add_argument("--margin", type=float, default=None,
                        help="screening promotion margin in %% over the "
                             "threshold (default: the policy's "
                             "conservative 20.0)")
    parser.add_argument("--screen-images", type=int, default=None,
                        help="images per screen evaluation (default: a "
                             "quarter of --eval-images, floored at 32)")
    parser.add_argument("--retries", type=int, default=2,
                        help="re-dispatch attempts per evaluation before "
                             "quarantining the point (default: 2)")
    parser.add_argument("--eval-timeout", type=float, default=None,
                        help="seconds one evaluation may run before it "
                             "counts as failed and is retried "
                             "(default: unbounded)")
    parser.add_argument("--store", default=None,
                        help="append-only JSONL result store; makes the "
                             "search resumable")
    parser.add_argument("--resume", action="store_true",
                        help="reuse results already in --store (skips "
                             "every recorded point)")
    parser.add_argument("--export", default=None,
                        help="write the frontier to this .csv or .json "
                             "path (JSON includes halving trajectories)")
    parser.add_argument("--cached-model", action="store_true",
                        help="use the fully-trained disk-cached model "
                             "(repro.data.cache) instead of the quick "
                             "--train/--epochs recipe")
    parser.add_argument("--train", type=int, default=600,
                        help="training images for the quick model "
                             "(default: 600)")
    parser.add_argument("--epochs", type=int, default=2,
                        help="training epochs for the quick model "
                             "(default: 2)")
    parser.add_argument("--verbose", action="store_true",
                        help="print every evaluated point")
    return parser


def _dse_trained(args):
    """The TrainedModel a ``dse`` invocation searches."""
    from repro.data.cache import TrainedModel, get_trained_model
    if args.cached_model:
        return get_trained_model(args.model, pooling=args.pooling)
    from repro.nn.trainer import evaluate_error_rate
    model, x_test, y_test = _quick_model(
        args.train, args.epochs, n_test=max(args.eval_images, 16),
        pooling=args.pooling, model_name=args.model)
    # x_test is already bipolar; TrainedModel stores the [0, 1] images.
    x_unit = (x_test + 1.0) / 2.0
    return TrainedModel(
        model=model, pooling=args.pooling, x_test=x_unit, y_test=y_test,
        software_error_pct=evaluate_error_rate(model, x_test, y_test),
        model_name=args.model)


def _dse(argv) -> int:
    """``python -m repro dse``: run the design-space exploration."""
    parser = _dse_parser()
    args = parser.parse_args(argv)
    if args.resume and not args.store:
        parser.error("--resume needs --store (there is nothing to "
                     "resume without a result store)")
    if args.store and not args.resume:
        from pathlib import Path
        existing = Path(args.store)
        if existing.exists() and existing.stat().st_size > 0:
            # Fail before any training runs — clobbering a finished
            # search silently would defeat the store's whole point.
            parser.error(f"result store {args.store} already exists; "
                         "pass --resume to continue it or remove the "
                         "file to start over")
    try:
        weight_bits = tuple(int(b) for b in
                            str(args.weight_bits).split(","))
    except ValueError:
        parser.error(f"--weight-bits must be a comma list of ints, got "
                     f"{args.weight_bits!r}")
    from repro.analysis.tables import format_table
    from repro.dse import (
        ParallelRunner,
        ResultStore,
        ScreenPolicy,
        SearchSpace,
        export_frontier,
    )
    from repro.nn.zoo import model_digest

    trained = _dse_trained(args)
    space = SearchSpace.from_trained(
        trained, weight_bits=weight_bits,
        max_length=args.max_length, min_length=args.min_length)
    screen = None
    if args.screen:
        overrides = {}
        if args.margin is not None:
            overrides["margin_pct"] = args.margin
        if args.screen_images is not None:
            overrides["images"] = args.screen_images
        screen = ScreenPolicy(**overrides)
    store = None
    if args.store:
        store = ResultStore(
            args.store, model=args.model,
            model_digest=model_digest(trained.model),
            evaluator=args.evaluator, eval_images=args.eval_images,
            seed=args.seed, threshold_pct=args.threshold,
            resume=args.resume)
    print(f"search space: model={args.model} {space.describe()}")
    runner = ParallelRunner(
        trained, space, threshold_pct=args.threshold,
        eval_images=args.eval_images, seed=args.seed,
        evaluator=args.evaluator, workers=args.workers, screen=screen,
        store=store, verbose=args.verbose, retries=args.retries,
        eval_timeout_s=args.eval_timeout)
    result = runner.run()
    stats = result.stats

    front = {id(p) for p in result.frontier}
    rows = [[("*" if id(p) in front else ""), p.config.describe(),
             f"{p.error_pct:.2f}%", f"{p.degradation_pct:+.2f}%",
             f"{p.cost.area_mm2:.1f}", f"{p.cost.power_w:.2f}",
             f"{p.cost.energy_uj:.2f}"] for p in result.passing]
    print(format_table(
        ["", "Design point", "Error", "Degradation", "Area mm²",
         "Power W", "Energy µJ"], rows,
        title=(f"Passing design points (threshold "
               f"{args.threshold}%, * = Pareto-optimal on "
               f"error/area/power/energy)"),
    ))
    print(f"evaluations: {stats['full_evals']} full + "
          f"{stats['screen_evals']} screen; "
          f"screened out {stats['screened_out']}; "
          f"reused from store {stats['reused']}; "
          f"wall {stats['wall_s']}s with {stats['workers']} worker(s)")
    if args.store:
        print(f"result store: {args.store} ({len(store)} records)")
    if args.export:
        path = export_frontier(result.passing, args.export,
                               trajectories=result.trajectories())
        print(f"frontier exported: {path}")
    return 0


def _scenes_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro scenes",
        description="Composite-scene workloads: generate deterministic "
                    "scenes, run tiled inference over them, or check the "
                    "serve tier end to end (HTTP scene replies must be "
                    "bit-identical to a dedicated local engine).",
    )
    parser.add_argument("action",
                        choices=("generate", "infer", "roundtrip"),
                        help="generate: print/write scene JSON; infer: "
                             "tiled inference through one engine; "
                             "roundtrip: serve scenes over HTTP and "
                             "verify bit-identity against a local run "
                             "(exit 1 on mismatch)")
    parser.add_argument("--kind", default="grid",
                        choices=("grid", "translated", "cluttered"),
                        help="scene kind (default: grid)")
    parser.add_argument("--count", type=int, default=2,
                        help="scenes to generate (default: 2)")
    parser.add_argument("--rows", type=int, default=2,
                        help="grid rows (default: 2)")
    parser.add_argument("--cols", type=int, default=2,
                        help="grid cols (default: 2)")
    parser.add_argument("--canvas", default="56x56",
                        help="translated/cluttered canvas HxW "
                             "(default: 56x56)")
    parser.add_argument("--stride", type=int, default=None,
                        help="window stride in pixels (default: the "
                             "model tile height — non-overlapping)")
    parser.add_argument("--scene-seed", type=int, default=0,
                        help="scene-stream seed (default: 0)")
    parser.add_argument("--out", default=None,
                        help="write generated scene JSON to this path "
                             "(default: stdout)")
    _add_model_args(parser, default_length=64)
    return parser


def _scene_batch(args):
    """The deterministic scene list an invocation works on."""
    from repro.data.scenes import SceneGenerator
    gen = SceneGenerator(seed=args.scene_seed)
    if args.kind == "grid":
        kwargs = {"rows": args.rows, "cols": args.cols}
    else:
        try:
            h, w = (int(v) for v in args.canvas.lower().split("x"))
        except ValueError:
            raise SystemExit(f"--canvas must be HxW, got {args.canvas!r}")
        kwargs = {"canvas_hw": (h, w)}
    return gen.scenes(args.kind, args.count, **kwargs)


def _scenes(argv) -> int:
    """``python -m repro scenes``: generate / infer / serve round-trip."""
    import json

    parser = _scenes_parser()
    args = parser.parse_args(argv)
    scenes = _scene_batch(args)

    if args.action == "generate":
        payloads = [s.to_payload() for s in scenes]
        body = json.dumps(payloads if len(payloads) > 1 else payloads[0])
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(body)
            print(f"wrote {len(scenes)} {args.kind} scene(s) to "
                  f"{args.out}")
        else:
            print(body)
        for i, scene in enumerate(scenes):
            print(f"scene {i}: {scene.shape[0]}x{scene.shape[1]} "
                  f"labels={[c.label for c in scene.cells]}",
                  file=sys.stderr)
        return 0

    import numpy as np

    from repro.core.config import NetworkConfig, resolve_pooling
    _check_backend(parser, args.backend)
    from repro.engine import Engine, TiledInference

    kinds = _resolve_kinds_arg(parser, args.kinds, args.model)
    config = NetworkConfig.from_kinds(resolve_pooling(args.pooling),
                                      args.length, kinds, name="scenes")
    model, _, _ = _quick_model(args.train, args.epochs, n_test=16,
                               pooling=args.pooling,
                               model_name=args.model)
    engine = Engine(model, config, backend=args.backend, seed=args.seed,
                    weight_bits=args.weight_bits)
    tiler = TiledInference(engine, stride=args.stride)

    if args.action == "infer":
        correct = cells = 0
        start = time.perf_counter()
        for i, scene in enumerate(scenes):
            result = tiler.infer(scene)
            hits = int((result.cell_preds == scene.labels).sum())
            correct += hits
            cells += len(scene.cells)
            print(f"scene {i}: {len(result.boxes)} windows, "
                  f"{hits}/{len(scene.cells)} cells correct, "
                  f"preds={[int(p) for p in result.cell_preds]}")
        elapsed = time.perf_counter() - start
        print(f"cell accuracy: {correct}/{cells} "
              f"({100.0 * correct / max(cells, 1):.1f}%); "
              f"{len(scenes) / max(elapsed, 1e-9):.2f} scenes/s")
        return 0

    # roundtrip: serve the scenes over HTTP and hold the serve tier to
    # the local tiled run, window for window
    import threading
    import urllib.request

    from repro.serve import InferenceService, create_server
    service = InferenceService(
        {args.model: model}, backend=args.backend, length=args.length,
        kinds=kinds, pooling=args.pooling, weight_bits=args.weight_bits,
        seed=args.seed, warm=False)
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    failures = 0
    try:
        for i, scene in enumerate(scenes):
            body = json.dumps({"scene": scene.to_payload(),
                               "stride": args.stride,
                               "model": args.model}
                              if args.stride is not None else
                              {"scene": scene.to_payload(),
                               "model": args.model}).encode("utf8")
            request = urllib.request.Request(
                base + "/predict", data=body, method="POST",
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=300) as reply:
                served = json.loads(reply.read())
            local = tiler.infer(scene)
            ok = (served["window_boxes"] == [list(b)
                                             for b in local.boxes]
                  and served["window_predictions"] == [
                      int(p) for p in local.window_preds]
                  and served["cell_predictions"] == [
                      int(p) for p in local.cell_preds])
            direct = service.predict_scene(scene, stride=args.stride,
                                           model=args.model)
            bitwise = bool(np.array_equal(direct.window_logits,
                                          local.window_logits))
            status = "OK" if ok and bitwise else "MISMATCH"
            failures += 0 if ok and bitwise else 1
            print(f"scene {i}: {status} "
                  f"(http preds match={ok}, logits bitwise={bitwise}, "
                  f"cells={[int(p) for p in local.cell_preds]})")
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    if failures:
        print(f"roundtrip FAILED for {failures}/{len(scenes)} scene(s)",
              file=sys.stderr)
        return 1
    print(f"roundtrip OK: {len(scenes)} scene(s) bit-identical through "
          "the serve tier")
    return 0


def _stats_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro stats",
        description="Scrape a running repro-serve instance and print "
                    "its telemetry (/stats JSON or /metrics text).")
    parser.add_argument("--url", default="http://127.0.0.1:8100",
                        help="server base URL (default %(default)s)")
    parser.add_argument("--json", action="store_true",
                        help="print the raw /stats JSON instead of the "
                             "summary table")
    parser.add_argument("--metrics", action="store_true",
                        help="print the Prometheus /metrics exposition "
                             "verbatim")
    parser.add_argument("--timeout", type=float, default=5.0,
                        help="HTTP timeout in seconds "
                             "(default %(default)s)")
    return parser


def _stats(argv) -> int:
    """Scrape /stats (or /metrics) from a running server and print it."""
    import json
    import urllib.error
    import urllib.request

    args = _stats_parser().parse_args(argv)
    base = args.url.rstrip("/")
    path = "/metrics" if args.metrics else "/stats"
    try:
        with urllib.request.urlopen(base + path,
                                    timeout=args.timeout) as resp:
            body = resp.read().decode("utf8")
    except (urllib.error.URLError, OSError) as exc:
        print(f"error: cannot reach {base + path}: {exc}",
              file=sys.stderr)
        return 1
    if args.metrics:
        print(body, end="")
        return 0
    stats = json.loads(body)
    if args.json:
        print(json.dumps(stats, indent=2))
        return 0
    service = stats.get("service", {})
    batcher = stats.get("batcher", {})
    pool = stats.get("pool", {})
    print(f"server:                {base}")
    print(f"draining:              {stats.get('draining')}")
    print(f"requests:              {service.get('requests')} "
          f"(errors={service.get('errors')}, "
          f"sheds={service.get('sheds')})")
    print(f"throughput (lifetime): {service.get('throughput_rps')} rps")
    print(f"throughput (window):   "
          f"{service.get('throughput_rps_window')} rps over "
          f"{service.get('throughput_window_s')}s")
    lat = service.get("latency_ms")
    if lat:
        print(f"latency ms:            p50={lat['p50']} p95={lat['p95']} "
              f"mean={lat['mean']} max={lat['max']}")
    print(f"queue depth:           {batcher.get('queued')} "
          f"(inflight batches={batcher.get('inflight_batches')})")
    print(f"batches:               {batcher.get('batches')} "
          f"(mean size={batcher.get('mean_batch_size')})")
    print(f"pool:                  engines={pool.get('engines')} "
          f"plans={pool.get('plans')} hit_rate={pool.get('hit_rate')}")
    return 0


def _kernel_tier_line(status: dict) -> str:
    """One-line native-tier summary for ``python -m repro list``."""
    if status["available"]:
        line = "native (compiled, bit-identical to the NumPy oracle)"
        if not status["enabled"]:
            line += " [dispatch off]"
    else:
        line = f"numpy fallback ({status['reason'] or 'not built'})"
    if status["override"] is not None:
        line += f" [REPRO_NATIVE={status['override']}]"
    return line


def _observability_line() -> str:
    """One-line tracing/profiling arming status for ``repro list``."""
    from repro import obs
    rec = obs.trace.recorder()
    trace = f"trace -> {rec.path}" if rec is not None else \
        "trace off (REPRO_TRACE=path to arm)"
    profile = "kernel profiling on" if obs.kernels.armed() else \
        "kernel profiling off (REPRO_PROFILE=1 to arm)"
    return f"{trace}; {profile}"


def _maybe_print_kernel_profile() -> None:
    """With REPRO_PROFILE=1, exercise each kernel once and print the
    per-kernel per-tier attribution table."""
    from repro import obs
    if not obs.kernels.armed():
        return
    import numpy as np

    from repro.sc import activation, ops
    rng = np.random.default_rng(0)
    bank = rng.integers(0, 256, size=(64, 128), dtype=np.uint8)
    bank[:, -1] &= ops.pad_mask(1024)[-1]
    ops.popcount(bank, 1024)
    xT = ops.transpose_pack(bank[None], 1024)
    ops.popcount_sum(xT)
    ops.mux_select(bank[None], rng.integers(0, 64, size=1024), 1024)
    activation.stanh_packed(bank, 1024, 16)
    rows = obs.kernels.summary()
    print("kernel profile (one exercise pass per kernel):")
    print(f"  {'kernel':16s} {'tier':12s} {'calls':>6s} {'ms':>10s}")
    for row in rows:
        print(f"  {row['kernel']:16s} {row['tier']:12s} "
              f"{row['calls']:6d} {1e3 * row['seconds']:10.3f}")


SUBCOMMANDS = {"infer": _infer, "serve": _serve, "dse": _dse,
               "scenes": _scenes, "stats": _stats}


def main(argv=None) -> int:
    if argv is None:  # pragma: no cover - console entry
        argv = sys.argv[1:]
    # Deterministic fault injection for chaos tests / CI smoke runs:
    # REPRO_FAULTS="seed=1;site=dse.evaluate,action=kill,hits=3" etc.
    from repro import faults, obs
    faults.maybe_install_from_env()
    # Observability arming: REPRO_TRACE=path writes a JSONL span trace,
    # REPRO_PROFILE=1 attributes kernel wall time per dispatch tier.
    obs.maybe_enable_from_env()
    if argv and argv[0] in SUBCOMMANDS:
        return SUBCOMMANDS[argv[0]](argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate SC-DCNN paper experiments, run 'infer' "
                    "for batched engine inference, or 'serve' for the "
                    "micro-batching HTTP service.",
    )
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["list"]
                        + sorted(SUBCOMMANDS),
                        help="experiment to run, 'infer', 'serve', or "
                             "'list'")
    args = parser.parse_args(argv)
    if args.experiment in SUBCOMMANDS:
        # reached via e.g. `python -m repro -- infer`, which bypasses the
        # argv[0] intercept above
        return SUBCOMMANDS[args.experiment](
            [a for a in argv if a not in ("--", args.experiment)])
    if args.experiment == "list":
        import repro.native as native
        from repro.engine import list_backends
        from repro.nn.zoo import ZOO, zoo_names
        print("available experiments:", ", ".join(sorted(EXPERIMENTS)))
        print("registered backends:  ", ", ".join(list_backends()))
        print("kernel tier:          ", _kernel_tier_line(native.status()))
        print("observability:        ", _observability_line())
        print("model zoo:")
        for name in zoo_names():
            print(f"  {name:10s} {ZOO[name].description}")
        _maybe_print_kernel_profile()
        print("engine inference:      python -m repro infer --help")
        print("inference service:     python -m repro serve --help")
        print("design-space search:   python -m repro dse --help")
        print("composite scenes:      python -m repro scenes --help")
        print("server telemetry:      python -m repro stats --help")
        print("full suite: pytest benchmarks/ --benchmark-only")
        return 0
    EXPERIMENTS[args.experiment]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
