"""Command-line entry point: ``python -m repro <experiment>``.

Regenerates individual paper experiments from the shell without writing
any Python — handy for quick paper-vs-measured checks:

    python -m repro table2          # MUX inner-product error grid
    python -m repro table7          # platform comparison
    python -m repro list            # everything available

and runs batched inference through the unified engine:

    python -m repro infer --backend exact --batch 16
    python -m repro infer --backend surrogate --images 256 --length 512
"""

from __future__ import annotations

import argparse
import sys
import time


def _table1():
    from repro.analysis.block_error import or_inner_product_error
    from repro.analysis.tables import PAPER, format_table
    from repro.sc.encoding import Encoding
    rows = []
    for label, enc in (("Unipolar", Encoding.UNIPOLAR),
                       ("Bipolar", Encoding.BIPOLAR)):
        rows.append([label] + [
            f"{or_inner_product_error(n, 1024, enc, trials=48):.2f} "
            f"(paper {PAPER['table1'][(label.lower(), n)]})"
            for n in (16, 32, 64)
        ])
    print(format_table(["Format", "n=16", "n=32", "n=64"], rows,
                       title="Table 1 — OR-gate inner product error"))


def _table2():
    from repro.analysis.block_error import mux_inner_product_error
    from repro.analysis.tables import PAPER, format_table
    lengths = (512, 1024, 2048, 4096)
    rows = []
    for n in (16, 32, 64):
        rows.append([f"n={n}"] + [
            f"{mux_inner_product_error(n, L, trials=48):.2f} "
            f"(paper {PAPER['table2'][(n, L)]})"
            for L in lengths
        ])
    print(format_table(["Input size"] + [f"L={L}" for L in lengths], rows,
                       title="Table 2 — MUX inner product error"))


def _table5():
    from repro.analysis.block_error import stanh_inaccuracy
    from repro.analysis.tables import PAPER, format_table
    rows = [[f"K={k}", f"{100 * stanh_inaccuracy(k, trials=200):.2f}%",
             f"{PAPER['table5'][k]}%"]
            for k in (8, 10, 12, 14, 16, 18, 20)]
    print(format_table(["States", "Measured", "Paper"], rows,
                       title="Table 5 — Stanh relative inaccuracy"))


def _fig14():
    from repro.analysis.block_error import feb_inaccuracy
    from repro.analysis.tables import format_table
    sizes = (16, 64, 256)
    rows = []
    for kind in ("mux-avg", "mux-max", "apc-avg", "apc-max"):
        rows.append([kind] + [f"{feb_inaccuracy(kind, n, 1024, trials=24):.3f}"
                              for n in sizes])
    print(format_table(["FEB"] + [f"n={n}" for n in sizes], rows,
                       title="Figure 14 — FEB inaccuracy (L=1024)"))


def _fig15():
    from repro.analysis.tables import format_table
    from repro.hw.blocks_cost import feb_metrics
    sizes = (16, 64, 256)
    rows = []
    for kind in ("mux-avg", "mux-max", "apc-avg", "apc-max"):
        m = [feb_metrics(kind, n, 1024) for n in sizes]
        rows.append([kind] + [f"{x['area_um2']:.0f}µm²/{x['energy_pj']:.0f}pJ"
                              for x in m])
    print(format_table(["FEB"] + [f"n={n}" for n in sizes], rows,
                       title="Figure 15 — FEB area/energy (L=1024)"))


def _table6():
    from repro.analysis.tables import format_table
    from repro.core.config import TABLE6_CONFIGS
    from repro.hw.network_cost import lenet_network_cost
    rows = []
    for config, paper in TABLE6_CONFIGS:
        cost = lenet_network_cost(config)
        rows.append([config.name, config.describe().split(" ", 1)[1],
                     f"{cost.area_mm2:.1f} ({paper.area_mm2})",
                     f"{cost.power_w:.2f} ({paper.power_w})",
                     f"{cost.energy_uj:.2f} ({paper.energy_uj})"])
    print(format_table(
        ["No.", "Config", "Area mm²", "Power W", "Energy µJ"], rows,
        title="Table 6 — hardware costs (accuracy: run the benchmark)",
    ))


def _table7():
    from repro.analysis.tables import format_table
    from repro.core.config import TABLE6_CONFIGS
    from repro.hw.network_cost import lenet_network_cost
    from repro.hw.platforms import PLATFORMS
    rows = []
    for name, idx in (("SC-DCNN (No.6)", 5), ("SC-DCNN (No.11)", 10)):
        c = lenet_network_cost(TABLE6_CONFIGS[idx][0])
        rows.append([name, f"{c.area_mm2:.1f}", f"{c.power_w:.2f}",
                     f"{c.throughput_ips:.0f}", f"{c.area_efficiency:.0f}",
                     f"{c.energy_efficiency:.0f}"])
    for p in PLATFORMS:
        rows.append([p.name,
                     "N/A" if p.area_mm2 is None else f"{p.area_mm2:.0f}",
                     "N/A" if p.power_w is None else f"{p.power_w:.2f}",
                     f"{p.throughput_ips:.0f}",
                     "N/A" if p.area_efficiency is None
                     else f"{p.area_efficiency:.1f}",
                     "N/A" if p.energy_efficiency is None
                     else f"{p.energy_efficiency:.1f}"])
    print(format_table(
        ["Platform", "Area mm²", "Power W", "Images/s", "Img/s/mm²",
         "Images/J"], rows, title="Table 7 — platform comparison",
    ))


EXPERIMENTS = {
    "table1": _table1,
    "table2": _table2,
    "table5": _table5,
    "fig14": _fig14,
    "fig15": _fig15,
    "table6": _table6,
    "table7": _table7,
}


def _infer_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro infer",
        description="Batched inference on synthetic MNIST through the "
                    "unified layer-graph engine.",
    )
    parser.add_argument("--backend", default="exact",
                        choices=("exact", "surrogate", "float", "noise"),
                        help="engine backend (default: exact)")
    parser.add_argument("--batch", type=int, default=16,
                        help="images per engine call (default: 16)")
    parser.add_argument("--images", type=int, default=None,
                        help="test images to run (default: one batch)")
    parser.add_argument("--length", type=int, default=128,
                        help="bit-stream length L (default: 128)")
    parser.add_argument("--pooling", default="max", choices=("max", "avg"),
                        help="network-wide pooling (default: max)")
    parser.add_argument("--kinds", default="APC,APC,APC",
                        help="layer FEB kinds, e.g. MUX,APC,APC")
    parser.add_argument("--weight-bits", type=int, default=None,
                        help="weight storage precision (default: float)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--train", type=int, default=600,
                        help="training images for the quick model "
                             "(default: 600)")
    parser.add_argument("--epochs", type=int, default=2,
                        help="training epochs for the quick model "
                             "(default: 2)")
    return parser


def _infer(argv) -> int:
    """``python -m repro infer``: batched engine inference + throughput."""
    args = _infer_parser().parse_args(argv)
    import numpy as np

    from repro.core.config import NetworkConfig, PoolKind
    from repro.data.synthetic_mnist import generate_dataset, to_bipolar
    from repro.engine import Engine
    from repro.nn.lenet import build_lenet5
    from repro.nn.trainer import Trainer

    n_images = args.images if args.images is not None else args.batch
    kinds = tuple(k.strip().upper() for k in args.kinds.split(","))
    pooling = PoolKind.MAX if args.pooling == "max" else PoolKind.AVG
    config = NetworkConfig.from_kinds(pooling, args.length, kinds,
                                      name="infer")

    print(f"training quick LeNet-5 ({args.train} images, "
          f"{args.epochs} epochs)...")
    x_train, y_train, x_test, y_test = generate_dataset(
        n_train=args.train, n_test=max(n_images, 16), seed=123)
    model = build_lenet5(args.pooling, seed=0)
    Trainer(model, lr=0.06, batch_size=64, seed=0).fit(
        to_bipolar(x_train), y_train, epochs=args.epochs)

    engine = Engine(model, config, backend=args.backend, seed=args.seed,
                    weight_bits=args.weight_bits)
    images = to_bipolar(x_test)[:n_images]
    labels = y_test[:n_images]
    print(f"backend={args.backend} config={config.describe()} "
          f"batch={args.batch} images={n_images}")
    start = time.perf_counter()
    preds = engine.predict(images, batch_size=args.batch)
    elapsed = time.perf_counter() - start
    errors = int((preds != np.asarray(labels)).sum())
    print(f"throughput: {n_images / max(elapsed, 1e-9):.2f} images/s "
          f"({elapsed:.3f}s total)")
    print(f"error rate: {100.0 * errors / max(n_images, 1):.2f}% "
          f"({errors}/{n_images} wrong)")
    return 0


def main(argv=None) -> int:
    if argv is None:  # pragma: no cover - console entry
        argv = sys.argv[1:]
    if argv and argv[0] == "infer":
        return _infer(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate SC-DCNN paper experiments, or run "
                    "'infer' for batched engine inference.",
    )
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["list", "infer"],
                        help="experiment to run, 'infer', or 'list'")
    args = parser.parse_args(argv)
    if args.experiment == "infer":
        # reached via e.g. `python -m repro -- infer`, which bypasses the
        # argv[0] intercept above
        return _infer([a for a in argv if a not in ("--", "infer")])
    if args.experiment == "list":
        print("available experiments:", ", ".join(sorted(EXPERIMENTS)))
        print("engine inference:      python -m repro infer --help")
        print("full suite: pytest benchmarks/ --benchmark-only")
        return 0
    EXPERIMENTS[args.experiment]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
