"""Compile and locate the native kernel shared library.

The kernels are plain C99 with no Python.h dependency, so the "build"
is a single compiler invocation producing a shared object that ctypes
loads.  Nothing here may hard-fail an import when no toolchain exists:
:func:`load_library` raises :class:`NativeBuildError` with the reason,
and the capability layer in :mod:`repro.native` turns that into a
recorded fallback (pure NumPy keeps working — see DESIGN.md, "Native
kernel tier").

Library discovery order (all keyed by a digest of ``kernels.c`` so a
source change can never load a stale binary):

1. a prebuilt ``_kernels_<digest>.so`` next to this file (what the
   optional ``setup.py`` build step produces);
2. the per-user cache directory (``REPRO_NATIVE_CACHE`` or
   ``~/.cache/repro-native``);
3. compile into the cache directory now (atomic rename, so concurrent
   first imports race benignly).

Environment knobs:

``REPRO_NATIVE_CC``
    Compiler to use (default: first of ``cc``/``gcc``/``clang`` on
    PATH).  Pointing it at a non-existent binary is how the test suite
    simulates a compiler-less box.
``REPRO_NATIVE_CACHE``
    Where compiled libraries live (default ``~/.cache/repro-native``,
    honouring ``XDG_CACHE_HOME``; falls back to a temp dir when the
    home directory is not writable).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

__all__ = ["NativeBuildError", "load_library", "build_into", "source_digest"]

SOURCE = Path(__file__).with_name("kernels.c")

#: Flag sets tried in order; ``-march=native`` unlocks hardware popcnt
#: but is not universally supported, so a plain ``-O3`` build is the
#: fallback (cache dirs are per-machine, so ``-march=native`` is safe).
_FLAG_SETS = (
    ["-O3", "-march=native", "-std=c99", "-fPIC", "-shared", "-fvisibility=hidden"],
    ["-O3", "-std=c99", "-fPIC", "-shared"],
)

_BUILD_TIMEOUT_S = 120


class NativeBuildError(RuntimeError):
    """The native library could not be built or loaded; carries the reason."""


def source_digest() -> str:
    """Short content digest of kernels.c — the staleness key."""
    return hashlib.sha1(SOURCE.read_bytes()).hexdigest()[:12]


def _lib_suffix() -> str:
    return ".dll" if sys.platform == "win32" else ".so"


def lib_name(digest: str | None = None) -> str:
    return f"_kernels_{digest or source_digest()}{_lib_suffix()}"


def cache_dir() -> Path:
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-native"


def _compiler() -> str:
    env = os.environ.get("REPRO_NATIVE_CC")
    if env:
        return env
    for cand in ("cc", "gcc", "clang"):
        found = shutil.which(cand)
        if found:
            return found
    raise NativeBuildError(
        "no C compiler found (looked for cc/gcc/clang; set REPRO_NATIVE_CC)")


def _compile(out_path: Path) -> None:
    """Compile kernels.c to ``out_path`` (atomic via temp + rename)."""
    cc = _compiler()
    out_path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=_lib_suffix(), dir=str(out_path.parent))
    os.close(fd)
    errors = []
    try:
        for flags in _FLAG_SETS:
            cmd = [cc, *flags, "-o", tmp, str(SOURCE)]
            try:
                proc = subprocess.run(
                    cmd, capture_output=True, text=True,
                    timeout=_BUILD_TIMEOUT_S)
            except (OSError, subprocess.TimeoutExpired) as exc:
                raise NativeBuildError(
                    f"compiler {cc!r} failed to run: {exc}") from exc
            if proc.returncode == 0:
                os.replace(tmp, out_path)
                return
            errors.append(proc.stderr.strip().splitlines()[-1]
                          if proc.stderr.strip() else f"exit {proc.returncode}")
        raise NativeBuildError(
            f"compilation failed with {cc!r}: {'; '.join(errors)}")
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def build_into(directory: Path) -> Path:
    """Compile the library into ``directory`` (used by setup.py); returns
    the built path.  Raises :class:`NativeBuildError` on failure."""
    target = Path(directory) / lib_name()
    _compile(target)
    return target


def _candidate_paths() -> list[Path]:
    name = lib_name()
    return [SOURCE.parent / name, cache_dir() / name]


def load_library() -> tuple[ctypes.CDLL, Path]:
    """Locate (or build) and load the native library.

    Returns ``(cdll, path)``; raises :class:`NativeBuildError` when no
    usable library can be produced.
    """
    candidates = _candidate_paths()
    for path in candidates:
        if path.is_file():
            try:
                return ctypes.CDLL(str(path)), path
            except OSError as exc:
                raise NativeBuildError(
                    f"failed to load {path}: {exc}") from exc
    target = candidates[-1]
    try:
        _compile(target)
    except NativeBuildError:
        raise
    except OSError as exc:
        # Cache dir not writable: last resort, a temp dir (lives for
        # the process; recompiled next run).
        target = Path(tempfile.mkdtemp(prefix="repro-native-")) / lib_name()
        _compile(target)
        return ctypes.CDLL(str(target)), target
    try:
        return ctypes.CDLL(str(target)), target
    except OSError as exc:
        raise NativeBuildError(f"failed to load {target}: {exc}") from exc
