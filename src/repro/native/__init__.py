"""Native fused-kernel tier: capability layer and ctypes bindings.

This package arms an optional compiled tier below the NumPy word engine
(DESIGN.md, "Native kernel tier").  The four loops it owns — the fused
transpose+popcount column counter, the exact-backend inner product, the
Stanh byte-LUT walk and the saturating-counter FSM scan — are
bit-identical re-implementations of their NumPy counterparts; the pure
NumPy paths remain the conformance oracle and the fallback.

Capability protocol
-------------------
``available()``
    True when the shared library is built and loaded.
``enabled()``
    True when calls should dispatch natively right now: available, not
    disabled by ``REPRO_NATIVE=0``, and not overridden by
    :func:`override` (the hook the test suite and benchmarks use to
    pin a pure-NumPy path).
``status()``
    A dict for humans: availability, the fallback reason when absent,
    and whether a ``REPRO_NATIVE`` override is in effect (surfaced by
    ``python -m repro list``).

``REPRO_NATIVE`` environment override (read at import):

* ``0`` — never build or load; the tier reports "disabled by override".
* ``1`` — require the tier: a build/load failure raises at import
  instead of falling back (catches silently-slow CI misconfiguration).
* unset — best effort: build/load if a toolchain exists, else record
  the reason and fall back to NumPy.

All wrappers take the same logical arguments as the NumPy kernels they
shadow and return freshly-allocated arrays; the dispatchers in
``repro.sc`` and ``repro.engine.exact`` call them only when
``enabled()`` is true.
"""

from __future__ import annotations

import contextlib
import ctypes
import os
from ctypes import POINTER, c_int, c_int64, c_uint8

import numpy as np

__all__ = [
    "available",
    "enabled",
    "status",
    "override",
    "transpose_pack",
    "popcount_rows",
    "column_counts",
    "apc_inner_counts",
    "stanh_lut",
    "saturating_counter",
]

_ENV = "REPRO_NATIVE"

_lib = None
_lib_path = None
_reason = None
_override = None
_env_setting = os.environ.get(_ENV)

_u8p = POINTER(c_uint8)
_i16p = POINTER(ctypes.c_int16)
_i32p = POINTER(ctypes.c_int32)
_i64p = POINTER(c_int64)


def _configure(lib) -> None:
    lib.repro_transpose_pack.argtypes = [
        _u8p, c_int64, c_int64, c_int64, c_int64, c_int64, _u8p]
    lib.repro_transpose_pack.restype = c_int
    lib.repro_popcount_rows.argtypes = [_u8p, c_int64, c_int64, _i64p]
    lib.repro_popcount_rows.restype = c_int
    lib.repro_column_counts.argtypes = [
        _u8p, c_int64, c_int64, c_int64, c_int64, c_int, _i16p]
    lib.repro_column_counts.restype = c_int
    lib.repro_apc_inner_counts.argtypes = [
        _u8p, _u8p, c_int64, c_int64, c_int64, c_int64, c_int64, c_int64,
        c_int, _i16p]
    lib.repro_apc_inner_counts.restype = c_int
    lib.repro_stanh_lut.argtypes = [
        _u8p, c_int64, c_int64, _u8p, _u8p, c_int64, c_uint8, _u8p]
    lib.repro_stanh_lut.restype = c_int
    lib.repro_saturating_counter_i64.argtypes = [
        _i64p, c_int64, c_int64, c_int64, c_int64, c_int64, _u8p]
    lib.repro_saturating_counter_i64.restype = c_int
    lib.repro_saturating_counter_i32.argtypes = [
        _i32p, c_int64, c_int64, c_int64, c_int64, c_int64, _u8p]
    lib.repro_saturating_counter_i32.restype = c_int


def _try_load() -> None:
    global _lib, _lib_path, _reason
    if _env_setting == "0":
        _reason = "disabled by REPRO_NATIVE=0"
        return
    try:
        from repro.native.build import load_library
        lib, path = load_library()
        _configure(lib)
        _lib, _lib_path = lib, path
    except Exception as exc:
        _reason = str(exc)
        _lib = None
        if _env_setting == "1":
            raise RuntimeError(
                f"REPRO_NATIVE=1 requires the native kernel tier, but it "
                f"is unavailable: {exc}") from exc


_try_load()


def available() -> bool:
    """True when the native library is loaded."""
    return _lib is not None


def enabled() -> bool:
    """True when kernel calls should dispatch to the native tier now."""
    if _override is not None:
        return _override
    return _lib is not None


def status() -> dict:
    """Human-facing capability report (``python -m repro list``)."""
    return {
        "available": _lib is not None,
        "enabled": enabled(),
        "reason": _reason,
        "override": _env_setting,
        "lib": str(_lib_path) if _lib_path else None,
    }


@contextlib.contextmanager
def override(enabled_: bool | None):
    """Force the dispatch decision within a block (tests/benchmarks).

    ``override(False)`` pins the pure-NumPy oracle paths even when the
    native tier is loaded; ``override(True)`` requires it to be
    available; ``override(None)`` restores automatic dispatch.
    """
    global _override
    if enabled_ and _lib is None:
        raise RuntimeError("cannot force the native tier on: library "
                           f"unavailable ({_reason})")
    previous = _override
    _override = enabled_
    try:
        yield
    finally:
        _override = previous


def _ptr(arr: np.ndarray, ctype):
    return arr.ctypes.data_as(ctype)


def _check(rc: int) -> None:
    if rc != 0:
        raise MemoryError("native kernel scratch allocation failed")


# ----------------------------------------------------------------------
# kernel wrappers
# ----------------------------------------------------------------------

def transpose_pack(data: np.ndarray, length: int, align: int = 4) -> np.ndarray:
    """Native ``ops.transpose_pack``: ``(..., n, nbytes)`` → ``(..., L, W)``."""
    data = np.ascontiguousarray(data, dtype=np.uint8)
    batch = data.shape[:-2]
    n, nbytes = data.shape[-2], data.shape[-1]
    width = (n + 7) // 8
    width += (-width) % align
    R = int(np.prod(batch, dtype=np.int64)) if batch else 1
    out = np.empty(batch + (length, width), dtype=np.uint8)
    _check(_lib.repro_transpose_pack(
        _ptr(data, _u8p), R, n, nbytes, length, width, _ptr(out, _u8p)))
    return out


def popcount_rows(data: np.ndarray) -> np.ndarray:
    """Native per-row popcount over the last axis: ``(..., nbytes)`` → int64."""
    data = np.ascontiguousarray(data, dtype=np.uint8)
    nbytes = data.shape[-1] if data.ndim else 1
    shape = data.shape[:-1]
    rows = int(np.prod(shape, dtype=np.int64)) if shape else 1
    out = np.empty(shape, dtype=np.int64)
    if data.size:
        _check(_lib.repro_popcount_rows(
            _ptr(data, _u8p), rows, nbytes, _ptr(out, _i64p)))
    else:
        out[...] = 0
    return out


def column_counts(streams: np.ndarray, length: int,
                  approximate: bool) -> np.ndarray:
    """Fused transpose+popcount column counts: ``(..., n, nbytes)`` →
    ``(..., length)`` int16 (the ``parallel_counter``/``apc_count``
    kernel)."""
    streams = np.ascontiguousarray(streams, dtype=np.uint8)
    batch = streams.shape[:-2]
    n, nbytes = streams.shape[-2], streams.shape[-1]
    R = int(np.prod(batch, dtype=np.int64)) if batch else 1
    out = np.empty(batch + (length,), dtype=np.int16)
    _check(_lib.repro_column_counts(
        _ptr(streams, _u8p), R, n, nbytes, length,
        1 if approximate else 0, _ptr(out, _i16p)))
    return out


def apc_inner_counts(x: np.ndarray, wT: np.ndarray, n: int, length: int,
                     approximate: bool = True) -> np.ndarray:
    """Fused exact-backend inner product: packed bank ``(R, n, nbytes)``
    against a transposed weight bank ``(C, L, W)`` → ``(C, R, L)`` int16
    counts, transposition and XOR-popcount fused in cache tiles."""
    x = np.ascontiguousarray(x, dtype=np.uint8)
    wT = np.ascontiguousarray(wT, dtype=np.uint8)
    if x.ndim != 3 or wT.ndim != 3:
        raise ValueError("expected x (R, n, nbytes) and wT (C, L, W)")
    R, nbytes = x.shape[0], x.shape[2]
    C, L, W = wT.shape
    if x.shape[1] != n or L != length or W * 8 < n:
        raise ValueError(
            f"bank mismatch: x {x.shape} wT {wT.shape} n={n} L={length}")
    out = np.empty((C, R, L), dtype=np.int16)
    _check(_lib.repro_apc_inner_counts(
        _ptr(x, _u8p), _ptr(wT, _u8p), R, C, n, nbytes, L, W,
        1 if approximate else 0, _ptr(out, _i16p)))
    return out


def stanh_lut(data: np.ndarray, length: int, nxt: np.ndarray,
              outb: np.ndarray, init: int) -> np.ndarray:
    """Stanh byte-LUT walk over packed streams ``(..., nbytes)`` using
    the cached transition tables of ``activation._stanh_tables``."""
    data = np.ascontiguousarray(data, dtype=np.uint8)
    if data.size == 0 or data.shape[-1] == 0:
        return np.empty_like(data)
    nbytes = data.shape[-1]
    rows = int(np.prod(data.shape[:-1], dtype=np.int64)) \
        if data.shape[:-1] else 1
    nxt = np.ascontiguousarray(nxt, dtype=np.uint8)
    outb = np.ascontiguousarray(outb, dtype=np.uint8)
    rem = length % 8
    last_mask = (0xFF << (8 - rem)) & 0xFF if rem else 0xFF
    out = np.empty_like(data)
    _check(_lib.repro_stanh_lut(
        _ptr(data, _u8p), rows, nbytes, _ptr(nxt, _u8p), _ptr(outb, _u8p),
        int(init), last_mask, _ptr(out, _u8p)))
    return out


def saturating_counter(increments: np.ndarray, n_states: int, init: int,
                       threshold: int) -> np.ndarray:
    """Saturating-counter FSM scan: ``(..., T)`` integer increments →
    boolean output bits, clamped into ``[0, n_states - 1]``."""
    inc = np.asarray(increments)
    if inc.dtype == np.int32:
        inc = np.ascontiguousarray(inc)
        fn = _lib.repro_saturating_counter_i32
        ptr_t = _i32p
    else:
        inc = np.ascontiguousarray(inc, dtype=np.int64)
        fn = _lib.repro_saturating_counter_i64
        ptr_t = _i64p
    T = inc.shape[-1]
    rows = int(np.prod(inc.shape[:-1], dtype=np.int64)) \
        if inc.shape[:-1] else 1
    out = np.empty(inc.shape, dtype=np.uint8)
    if inc.size:
        _check(fn(_ptr(inc, ptr_t), rows, T, n_states - 1, int(init),
                  int(threshold), _ptr(out, _u8p)))
    return out.view(bool)
