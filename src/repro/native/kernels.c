/* Native fused-kernel tier below the NumPy word engine.
 *
 * C99, no Python.h: the library is a plain shared object loaded via
 * ctypes (see repro/native/__init__.py), compiled at build or first
 * import by repro/native/build.py with whatever system toolchain is
 * present.  Every kernel here is a bit-identical re-implementation of a
 * NumPy word-engine loop (repro.sc.ops / adders / fsm / activation and
 * the exact backend's transposed counting) — arming the tier must
 * change zero output bits, which the conformance suite enforces.
 *
 * Two design rules (DESIGN.md, "Native kernel tier"):
 *
 *  1. *Fuse* the loops NumPy cannot: the transpose_pack + popcount_sum
 *     pair becomes one pass that never materializes the transposed
 *     bank (repro_column_counts), and the exact backend's inner
 *     product transposes a cache-resident tile and XOR-popcounts it in
 *     place (repro_apc_inner_counts).
 *  2. *Tile* to the cache: the inner-product kernel re-reads its
 *     transposed input tile once per output channel, so the tile is
 *     sized (TILE_BYTES) to stay resident across the channel loop.
 *
 * All kernels are pure functions of their arguments writing distinct
 * output buffers, so concurrent calls from serving threads are safe
 * (and ctypes drops the GIL for the duration of each call).
 *
 * Conventions shared with the NumPy engine: packed streams are uint8,
 * stream axis last, big-endian bit order (bit t of a stream lives at
 * byte[t/8] >> (7 - t%8)), padding bits of the final byte are zero.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#if defined(_WIN32)
#define API __declspec(dllexport)
#else
#define API __attribute__((visibility("default")))
#endif

/* ------------------------------------------------------------------ */
/* tables                                                             */
/* ------------------------------------------------------------------ */

/* spread_tab[b]: the 8 bits of b spread into the 8 byte lanes of a
 * uint64 — byte lane t holds bit (7 - t), i.e. *cycle* t of the packed
 * big-endian byte.  Adding spread words accumulates eight per-cycle
 * column counters in parallel; lanes saturate only after 255 adds, so
 * the column counter flushes into int32 totals every 255 streams. */
static uint64_t spread_tab[256];
static uint8_t pc8[256];

static void init_tables(void)
{
    for (int b = 0; b < 256; b++) {
        uint64_t v = 0;
        int ones = 0;
        for (int t = 0; t < 8; t++) {
            uint64_t bit = (uint64_t)((b >> (7 - t)) & 1);
            v |= bit << (8 * t);
            ones += (int)bit;
        }
        spread_tab[b] = v;
        pc8[b] = (uint8_t)ones;
    }
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((constructor)) static void ctor_tables(void) { init_tables(); }
#else
static int tables_ready = 0;
#define ENSURE_TABLES() do { if (!tables_ready) { init_tables(); tables_ready = 1; } } while (0)
#endif
#ifndef ENSURE_TABLES
#define ENSURE_TABLES() do { } while (0)
#endif

/* ------------------------------------------------------------------ */
/* helpers                                                            */
/* ------------------------------------------------------------------ */

static inline int64_t popcnt64(uint64_t x)
{
#if defined(__GNUC__) || defined(__clang__)
    return (int64_t)__builtin_popcountll(x);
#else
    int64_t c = 0;
    while (x) { x &= x - 1; c++; }
    return c;
#endif
}

/* 8x8 bit-matrix transpose (Hacker's Delight 7-3).  Viewing the word
 * as 8 rows of 8 bits with row 0 in the most significant byte and
 * column 0 at each byte's most significant bit, the result is the
 * transposed matrix in the same convention — which is exactly the
 * big-endian packed layout on both sides. */
static inline uint64_t transpose8(uint64_t x)
{
    uint64_t t;
    t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAULL;  x ^= t ^ (t << 7);
    t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCULL; x ^= t ^ (t << 14);
    t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ULL; x ^= t ^ (t << 28);
    return x;
}

/* Bit-transpose one packed bank row: n streams of nbytes bytes ->
 * L rows of W bytes (out pre-zeroed).  Streams are processed 8 at a
 * time; each (8 streams x 8 cycles) block is one transpose8. */
static void transpose_rows_one(const uint8_t *in, int64_t n, int64_t nbytes,
                               int64_t L, int64_t W, uint8_t *out)
{
    int64_t kmax = (L + 7) / 8;
    if (kmax > nbytes)
        kmax = nbytes;
    for (int64_t j0 = 0; j0 < n; j0 += 8) {
        int64_t jn = (n - j0 < 8) ? n - j0 : 8;
        int64_t col = j0 >> 3;
        for (int64_t k = 0; k < kmax; k++) {
            uint64_t x = 0;
            for (int64_t j = 0; j < jn; j++)
                x |= (uint64_t)in[(j0 + j) * nbytes + k] << (8 * (7 - j));
            if (!x)
                continue;               /* out is pre-zeroed */
            uint64_t y = transpose8(x);
            int64_t t1 = L - 8 * k;
            if (t1 > 8)
                t1 = 8;
            uint8_t *o = out + (8 * k) * W + col;
            for (int64_t t = 0; t < t1; t++)
                o[t * W] = (uint8_t)(y >> (8 * (7 - t)));
        }
    }
}

/* Popcount of (a XOR b) over w bytes; memcpy loads keep it alignment-
 * safe and compile to plain word loads. */
static inline int64_t popcount_xor(const uint8_t *a, const uint8_t *b,
                                   int64_t w)
{
    int64_t c = 0, i = 0;
    for (; i + 8 <= w; i += 8) {
        uint64_t ua, ub;
        memcpy(&ua, a + i, 8);
        memcpy(&ub, b + i, 8);
        c += popcnt64(ua ^ ub);
    }
    for (; i + 4 <= w; i += 4) {
        uint32_t ua, ub;
        memcpy(&ua, a + i, 4);
        memcpy(&ub, b + i, 4);
        c += popcnt64((uint64_t)(ua ^ ub));
    }
    for (; i < w; i++)
        c += pc8[a[i] ^ b[i]];
    return c;
}

/* ------------------------------------------------------------------ */
/* kernels                                                            */
/* ------------------------------------------------------------------ */

/* transpose_pack: packed bank (R, n, nbytes) -> (R, L, W), row t of
 * each output block holding the n streams' bits at cycle t (big-endian,
 * zero-padded to W bytes).  Drop-in for repro.sc.ops.transpose_pack. */
API int repro_transpose_pack(const uint8_t *in, int64_t R, int64_t n,
                             int64_t nbytes, int64_t L, int64_t W,
                             uint8_t *out)
{
    ENSURE_TABLES();
    memset(out, 0, (size_t)(R * L * W));
    for (int64_t r = 0; r < R; r++)
        transpose_rows_one(in + r * n * nbytes, n, nbytes, L, W,
                           out + r * L * W);
    return 0;
}

/* Per-row popcount: (rows, nbytes) -> int64 counts.  Backs both
 * ops.popcount and ops.popcount_sum (identical on zero-padded data). */
API int repro_popcount_rows(const uint8_t *in, int64_t rows, int64_t nbytes,
                            int64_t *out)
{
    ENSURE_TABLES();
    for (int64_t r = 0; r < rows; r++) {
        const uint8_t *a = in + r * nbytes;
        int64_t c = 0, i = 0;
        for (; i + 8 <= nbytes; i += 8) {
            uint64_t u;
            memcpy(&u, a + i, 8);
            c += popcnt64(u);
        }
        for (; i < nbytes; i++)
            c += pc8[a[i]];
        out[r] = c;
    }
    return 0;
}

/* Fused transpose_pack + popcount_sum: per-cycle column counts of a
 * packed bank (R, n, nbytes) -> (R, L) int16, without materializing
 * the transposed bank.  Eight cycle counters ride the byte lanes of
 * one uint64 accumulator per byte position (see spread_tab); lanes
 * flush into int32 totals every 255 streams.  `approximate` applies
 * the APC LSB patch: the output LSB is the exact LSB with the last
 * stream's contribution dropped (repro.sc.adders.apc_count).  */
API int repro_column_counts(const uint8_t *in, int64_t R, int64_t n,
                            int64_t nbytes, int64_t L, int approximate,
                            int16_t *out)
{
    ENSURE_TABLES();
    int64_t kmax = (L + 7) / 8;
    if (kmax > nbytes)
        kmax = nbytes;
    int use_tot = n > 255;      /* byte lanes saturate after 255 adds */
    for (int64_t r = 0; r < R; r++) {
        const uint8_t *base = in + r * n * nbytes;
        const uint8_t *last = base + (n - 1) * nbytes;
        /* 64 cycles (8 byte positions) per pass: the 8 lane
         * accumulators live in registers and each stream row
         * contributes one fully-unrolled 8-byte visit. */
        for (int64_t kb = 0; kb < kmax; kb += 8) {
            int64_t kw = (kmax - kb < 8) ? kmax - kb : 8;
            uint64_t a[8] = {0, 0, 0, 0, 0, 0, 0, 0};
            int32_t tot[64];
            if (use_tot)
                memset(tot, 0, sizeof(tot));
            int64_t pending = 0;
            const uint8_t *col = base + kb;
            if (kw == 8 && !use_tot) {
                for (int64_t j = 0; j < n; j++) {
                    const uint8_t *p = col + j * nbytes;
                    a[0] += spread_tab[p[0]];
                    a[1] += spread_tab[p[1]];
                    a[2] += spread_tab[p[2]];
                    a[3] += spread_tab[p[3]];
                    a[4] += spread_tab[p[4]];
                    a[5] += spread_tab[p[5]];
                    a[6] += spread_tab[p[6]];
                    a[7] += spread_tab[p[7]];
                }
            } else {
                for (int64_t j = 0; j < n; j++) {
                    const uint8_t *p = col + j * nbytes;
                    for (int64_t i = 0; i < kw; i++)
                        a[i] += spread_tab[p[i]];
                    if (use_tot && ++pending == 255) {
                        for (int i = 0; i < 8; i++) {
                            for (int t = 0; t < 8; t++)
                                tot[i * 8 + t] +=
                                    (int32_t)((a[i] >> (8 * t)) & 0xFF);
                            a[i] = 0;
                        }
                        pending = 0;
                    }
                }
                if (use_tot && pending)
                    for (int i = 0; i < 8; i++)
                        for (int t = 0; t < 8; t++)
                            tot[i * 8 + t] +=
                                (int32_t)((a[i] >> (8 * t)) & 0xFF);
            }
            for (int64_t i = 0; i < kw; i++) {
                int64_t k = kb + i;
                int64_t t1 = L - 8 * k;
                if (t1 > 8)
                    t1 = 8;
                for (int64_t t = 0; t < t1; t++) {
                    int32_t c = use_tot
                        ? tot[i * 8 + t]
                        : (int32_t)((a[i] >> (8 * t)) & 0xFF);
                    if (approximate) {
                        int32_t b = (last[k] >> (7 - t)) & 1;
                        c = (c & ~1) | ((c ^ b) & 1);
                    }
                    out[r * L + 8 * k + t] = (int16_t)c;
                }
            }
        }
    }
    return 0;
}

/* Bytes of transposed input tile kept cache-resident across the
 * channel loop of repro_apc_inner_counts. */
#define TILE_BYTES (1 << 19)

/* Fused exact-backend inner product (ExactBackend._apc_counts):
 *
 *   counts[c, r, t] = n - popcount(xT[r, t, :] ^ wT[c, t, :])
 *
 * with the APC LSB patch applied from the last input's product bit
 * (extracted in place from the transposed rows — no separate last-bit
 * planes).  x is the packed input bank (R, n, nbytes); wT is the
 * pre-transposed weight bank (C, L, W); out is (C, R, L) int16.
 *
 * The input is transposed tile-by-tile into a scratch buffer sized to
 * TILE_BYTES, then every output channel streams over the cached tile —
 * the transposition is fused into the counting pass and the working
 * set never leaves the cache. */
API int repro_apc_inner_counts(const uint8_t *x, const uint8_t *wT,
                               int64_t R, int64_t C, int64_t n,
                               int64_t nbytes, int64_t L, int64_t W,
                               int approximate, int16_t *out)
{
    ENSURE_TABLES();
    int64_t Rb = TILE_BYTES / (L * W > 0 ? L * W : 1);
    if (Rb < 1)
        Rb = 1;
    if (Rb > R)
        Rb = R;
    uint8_t *buf = (uint8_t *)malloc((size_t)(Rb * L * W));
    if (!buf)
        return -1;
    int64_t lastb = (n - 1) >> 3;
    int sh = 7 - (int)((n - 1) & 7);
    for (int64_t r0 = 0; r0 < R; r0 += Rb) {
        int64_t rn = (R - r0 < Rb) ? R - r0 : Rb;
        memset(buf, 0, (size_t)(rn * L * W));
        for (int64_t rr = 0; rr < rn; rr++)
            transpose_rows_one(x + (r0 + rr) * n * nbytes, n, nbytes, L, W,
                               buf + rr * L * W);
        for (int64_t c = 0; c < C; c++) {
            const uint8_t *wrow = wT + c * L * W;
            for (int64_t rr = 0; rr < rn; rr++) {
                const uint8_t *xrow = buf + rr * L * W;
                int16_t *o = out + (c * R + r0 + rr) * L;
                if (W == 4) {
                    /* conv layers: one word per cycle row */
                    for (int64_t t = 0; t < L; t++) {
                        uint32_t ua, ub;
                        memcpy(&ua, xrow + t * 4, 4);
                        memcpy(&ub, wrow + t * 4, 4);
                        int64_t cnt = n - popcnt64((uint64_t)(ua ^ ub));
                        if (approximate) {
                            int xb = (xrow[t * 4 + lastb] >> sh) & 1;
                            int wb = (wrow[t * 4 + lastb] >> sh) & 1;
                            int prod = 1 ^ xb ^ wb;
                            cnt = (cnt & ~(int64_t)1)
                                | ((cnt ^ prod) & 1);
                        }
                        o[t] = (int16_t)cnt;
                    }
                } else {
                    for (int64_t t = 0; t < L; t++) {
                        int64_t cnt = n - popcount_xor(xrow + t * W,
                                                       wrow + t * W, W);
                        if (approximate) {
                            int xb = (xrow[t * W + lastb] >> sh) & 1;
                            int wb = (wrow[t * W + lastb] >> sh) & 1;
                            int prod = 1 ^ xb ^ wb;
                            cnt = (cnt & ~(int64_t)1)
                                | ((cnt ^ prod) & 1);
                        }
                        o[t] = (int16_t)cnt;
                    }
                }
            }
        }
    }
    free(buf);
    return 0;
}

/* Stanh byte-LUT walk (repro.sc.activation.stanh_packed): steps the
 * K-state FSM one packed byte per lookup through the caller-supplied
 * transition tables nxt/outb, each (n_states, 256) row-major uint8 —
 * the exact tables activation._stanh_tables caches.  last_mask
 * re-zeroes the padding bits of the final byte. */
API int repro_stanh_lut(const uint8_t *in, int64_t rows, int64_t nbytes,
                        const uint8_t *nxt, const uint8_t *outb,
                        int64_t init, uint8_t last_mask, uint8_t *out)
{
    for (int64_t r = 0; r < rows; r++) {
        const uint8_t *a = in + r * nbytes;
        uint8_t *o = out + r * nbytes;
        unsigned s = (unsigned)init;
        for (int64_t k = 0; k < nbytes; k++) {
            unsigned idx = (s << 8) | a[k];
            o[k] = outb[idx];
            s = nxt[idx];
        }
        o[nbytes - 1] &= last_mask;
    }
    return 0;
}

/* Saturating up/down counter scan (repro.sc.fsm.saturating_counter):
 * per row, state += inc[t], clamped into [0, hi]; output bit t is
 * (updated state >= threshold).  int64 and int32 increment variants
 * avoid a cast of the (often large) count tensors. */
#define DEFINE_SATC(name, T)                                              \
API int name(const T *inc, int64_t rows, int64_t Tn, int64_t hi,          \
             int64_t init, int64_t threshold, uint8_t *out)               \
{                                                                         \
    for (int64_t r = 0; r < rows; r++) {                                  \
        const T *a = inc + r * Tn;                                        \
        uint8_t *o = out + r * Tn;                                        \
        int64_t s = init;                                                 \
        for (int64_t t = 0; t < Tn; t++) {                                \
            s += (int64_t)a[t];                                           \
            if (s < 0)                                                    \
                s = 0;                                                    \
            else if (s > hi)                                              \
                s = hi;                                                   \
            o[t] = (uint8_t)(s >= threshold);                             \
        }                                                                 \
    }                                                                     \
    return 0;                                                             \
}

DEFINE_SATC(repro_saturating_counter_i64, int64_t)
DEFINE_SATC(repro_saturating_counter_i32, int32_t)
