"""SC activation functions: Stanh and Btanh (Sections 3.2, 4.3).

**Stanh** — the K-state FSM of Brown & Card implementing
``Stanh(K, x) ≈ tanh(K/2 · x)`` on a bipolar input stream.  The FSM steps
+1 on an input 1, -1 on an input 0, saturates at the ends, and outputs 1
in the right half of the state diagram.

**Shifted Stanh** (Figure 11) — the re-design for MUX-Max feature
extraction blocks: the output threshold sits at ``K/5`` instead of ``K/2``
to compensate the systematic under-counting of the hardware-oriented max
pooling block and the down-scaled inner products.

**Btanh** — for APC-based blocks, a saturated up/down counter consumes
the APC's *binary* column counts directly: at each cycle the counter adds
``2·count - n`` (the signed sum of the n product bits).  The state number
is chosen by equations (3) / the original design of ref (21), implemented
in :mod:`repro.core.state_numbers`.

Engines: :func:`stanh_packed` steps the FSM a *byte at a time* directly on
packed streams — a cached ``(state, byte) → (state', output byte)``
transition table collapses 8 FSM cycles into one gather, with no
unpack/pack round-trip (see DESIGN.md, "word-level engine").  The
bit-level paths (:func:`stanh_bits`, :func:`btanh_counts`) run the blocked
clamp-composition scan of :mod:`repro.sc.fsm`.  All three are bit-exact
equivalents of the per-cycle FSM.
"""

from __future__ import annotations

import functools

import numpy as np

import repro.native as native
from repro.obs import kernels as _prof
from repro.sc import ops
from repro.sc.bitstream import Bitstream
from repro.sc.encoding import Encoding
from repro.sc.fsm import saturating_counter
from repro.utils.validation import check_positive_int, check_stream_length

__all__ = [
    "stanh_bits",
    "stanh",
    "stanh_packed",
    "btanh_counts",
    "btanh_stream",
    "stanh_expected",
]

#: Widest FSM the uint8 byte-transition tables can hold.
_MAX_LUT_STATES = 256


@functools.lru_cache(maxsize=128)
def _stanh_tables(n_states: int, threshold: int):
    """Byte-granular Stanh transition tables.

    Returns ``(next_state, out_byte)``, each ``(n_states, 256)`` uint8:
    running the ±1 saturating FSM through one input byte (big-endian bit
    order, threshold compared on each *updated* state — exactly
    :func:`repro.sc.fsm.saturating_counter` semantics).
    """
    states = np.arange(n_states, dtype=np.int16)[:, None]
    bytes_ = np.arange(256, dtype=np.uint16)[None, :]
    s = np.broadcast_to(states, (n_states, 256)).astype(np.int16).copy()
    out = np.zeros((n_states, 256), dtype=np.uint8)
    for bitpos in range(8):
        bit = ((bytes_ >> (7 - bitpos)) & 1).astype(np.int16)
        s += bit * 2 - 1
        np.clip(s, 0, n_states - 1, out=s)
        out |= ((s >= threshold).astype(np.uint8) << (7 - bitpos))
    return s.astype(np.uint8), out


def stanh_bits(bits: np.ndarray, n_states: int,
               threshold: int = None) -> np.ndarray:
    """Run Stanh over an unpacked bit array ``(..., T)``; returns bits."""
    inc = np.asarray(bits).astype(np.int8) * np.int8(2) - np.int8(1)
    return saturating_counter(inc, n_states, threshold=threshold)


def stanh_packed(data: np.ndarray, length: int, n_states: int,
                 threshold: int = None) -> np.ndarray:
    """Run Stanh over packed streams; returns packed streams.

    Steps the FSM one packed byte per gather through the cached
    :func:`_stanh_tables`; the output's padding bits are re-zeroed to
    keep the module invariant of :mod:`repro.sc.ops`.
    """
    length = check_stream_length(length)
    check_positive_int(n_states, "n_states")
    if threshold is None:
        threshold = n_states // 2
    data = np.asarray(data, dtype=np.uint8)
    if n_states > _MAX_LUT_STATES:   # pragma: no cover - huge-FSM fallback
        bits = ops.unpack_bits(data, length)
        return ops.pack_bits(stanh_bits(bits, n_states, threshold=threshold))
    nxt, outb = _stanh_tables(n_states, int(threshold))
    if native.enabled():
        # Native tier: the same byte-LUT walk, but the per-byte gather
        # loop runs compiled instead of one numpy dispatch per column.
        t0 = _prof.tick()
        out = native.stanh_lut(data, length, nxt, outb, n_states // 2)
        _prof.tock(t0, "stanh", "native")
        return out
    t0 = _prof.tick()
    state = np.full(data.shape[:-1], n_states // 2, dtype=np.uint8)
    out = np.empty_like(data)
    for j in range(data.shape[-1]):
        col = data[..., j]
        out[..., j] = outb[state, col]
        state = nxt[state, col]
    if length % 8:
        out[..., -1] &= ops.pad_mask(length)[-1]
    # The byte-LUT walk is the numpy tier's only strategy here (there
    # is no bitwise_count variant), so the label is just "numpy-lut".
    _prof.tock(t0, "stanh", "numpy-lut")
    return out


def stanh(stream: Bitstream, n_states: int,
          threshold: int = None) -> Bitstream:
    """Apply Stanh to a bipolar :class:`Bitstream`.

    ``Stanh(K, x) ≈ tanh(K/2 · x)`` for input value ``x`` in [-1, 1].

    Parameters
    ----------
    stream:
        Bipolar input stream(s).
    n_states:
        The FSM state count ``K`` (use the equations in
        :mod:`repro.core.state_numbers` to choose it).
    threshold:
        Output threshold state; ``None`` means the canonical ``K/2``
        (Figure 6), the MUX-Max re-design passes ``round(K/5)``
        (Figure 11).
    """
    if stream.encoding is not Encoding.BIPOLAR:
        raise ValueError("Stanh operates on bipolar streams")
    check_positive_int(n_states, "n_states")
    out = stanh_packed(stream.data, stream.length, n_states,
                       threshold=threshold)
    return Bitstream(out, stream.length, Encoding.BIPOLAR)


def btanh_counts(counts: np.ndarray, n_inputs: int, n_states: int,
                 threshold: int = None) -> np.ndarray:
    """Run Btanh over APC column counts.

    Parameters
    ----------
    counts:
        Integer array ``(..., T)`` with values in ``[0, n_inputs]`` — the
        APC output at each cycle (number of ones among the n product
        bits).
    n_inputs:
        APC input count ``n``; the counter increment is ``2·count - n``,
        i.e. the signed sum of the bipolar product bits.
    n_states:
        Counter state count ``K`` (equation (3) for APC-Avg blocks).
    threshold:
        Output threshold; defaults to ``K/2``.

    Returns
    -------
    Boolean bit array ``(..., T)`` — a bipolar stream approximating
    ``tanh`` of the (scaled) inner product.
    """
    check_positive_int(n_inputs, "n_inputs")
    counts = np.asarray(counts)
    if not np.issubdtype(counts.dtype, np.integer):
        raise ValueError(f"counts must be integers, got dtype {counts.dtype}")
    inc = 2 * counts.astype(np.int32) - np.int32(n_inputs)
    return saturating_counter(inc, n_states, threshold=threshold)


def btanh_stream(counts: np.ndarray, n_inputs: int, n_states: int,
                 threshold: int = None) -> Bitstream:
    """Btanh returning a packed bipolar :class:`Bitstream`."""
    bits = btanh_counts(counts, n_inputs, n_states, threshold=threshold)
    return Bitstream.from_bits(bits, Encoding.BIPOLAR)


def stanh_expected(x, n_states: int) -> np.ndarray:
    """The analytic Stanh transfer curve, ``tanh(K/2 · x)``.

    Used as the software reference when measuring the FSM's hardware
    inaccuracy (Table 5, Figure 9).
    """
    x = np.asarray(x, dtype=np.float64)
    return np.tanh(n_states / 2.0 * x)
