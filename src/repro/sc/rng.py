"""Stochastic number generators (SNGs).

An SNG converts a real value into a stochastic bit-stream by comparing a
(pseudo-)random sequence against the value's ones-probability each clock
cycle.  Two generators are provided:

:class:`IdealSNG`
    Uses numpy's PCG64 — the "sufficiently random" assumption the paper's
    accuracy analysis relies on.  This is the default everywhere.

:class:`LfsrSNG`
    Uses maximal-length LFSRs like the actual peripheral circuitry (ref
    (22)).  Streams produced from the *same* LFSR are strongly correlated
    (a known SC hazard); the generator therefore rotates over a pool of
    differently-seeded LFSRs, mirroring the paper's RNG-sharing design.
    The pool's state sequences are slices of the cached full-period orbit
    table of :mod:`repro.sc.lfsr`, so generation is array indexing rather
    than per-cycle register stepping.

:class:`StreamFactory` bundles an SNG with seed management and exposes the
high-level ``streams(values, length)`` API used by all function blocks.
"""

from __future__ import annotations

import numpy as np

from repro.sc import ops
from repro.sc.bitstream import Bitstream
from repro.sc.encoding import Encoding, to_probability
from repro.sc.lfsr import LFSR
from repro.utils.seeding import derive_seed, spawn_rng
from repro.utils.validation import check_positive_int, check_stream_length

__all__ = ["IdealSNG", "LfsrSNG", "StreamFactory"]


class IdealSNG:
    """Comparator SNG driven by an ideal PRNG (numpy PCG64).

    Each call to :meth:`generate` draws fresh, independent uniforms, so any
    two generated streams are statistically independent — the ideal case
    for AND/XNOR multipliers.
    """

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = spawn_rng(seed, "ideal-sng")

    def clone(self) -> "IdealSNG":
        """A new generator frozen at this one's current PRNG state.

        Draws from the clone replay exactly what this generator would
        produce next, without advancing it — the serving layer uses this
        to give every coalesced request its own deterministic stream
        state (see :meth:`StreamFactory.fork`).
        """
        twin = IdealSNG(seed=self._seed)
        twin._rng.bit_generator.state = self._rng.bit_generator.state
        return twin

    def generate(self, probs: np.ndarray, length: int) -> np.ndarray:
        """Generate packed streams with ones-probability ``probs``.

        Parameters
        ----------
        probs:
            Array of probabilities in [0, 1]; output batch shape matches.
        length:
            Stream length in bits.

        Returns
        -------
        Packed uint8 array of shape ``probs.shape + (ceil(length/8),)``.
        """
        length = check_stream_length(length)
        probs = np.asarray(probs, dtype=np.float64)
        uniforms = self._rng.random(probs.shape + (length,))
        return ops.pack_bits(uniforms < probs[..., None])

    def reseed(self, seed: int) -> None:
        """Reset the generator to a deterministic state."""
        self._seed = seed
        self._rng = spawn_rng(seed, "ideal-sng")


class LfsrSNG:
    """Comparator SNG driven by a pool of maximal-length LFSRs.

    Parameters
    ----------
    width:
        LFSR width; the comparison threshold is ``round(p * (2**width - 1))``.
    seed:
        Root seed; per-stream LFSR initial states are derived from it.
    pool:
        Number of distinct LFSRs rotated across streams.  Streams assigned
        the same pool entry share a random sequence and are *correlated*,
        reproducing the hardware's RNG-sharing trade-off.
    """

    def __init__(self, width: int = 16, seed: int = 0, pool: int = 64):
        self.width = check_positive_int(width, "width")
        self.pool = check_positive_int(pool, "pool")
        self._seed = seed
        self._counter = 0

    def clone(self) -> "LfsrSNG":
        """A new generator frozen at this one's current call counter."""
        twin = LfsrSNG(width=self.width, seed=self._seed, pool=self.pool)
        twin._counter = self._counter
        return twin

    def generate(self, probs: np.ndarray, length: int) -> np.ndarray:
        """Generate packed streams; see :meth:`IdealSNG.generate`."""
        length = check_stream_length(length)
        probs = np.asarray(probs, dtype=np.float64)
        flat = probs.reshape(-1)
        max_val = (1 << self.width) - 1
        thresholds = np.round(flat * max_val).astype(np.int64)

        # One LFSR sequence per pool slot, offset so repeated calls do not
        # replay the identical window.
        n_slots = min(self.pool, max(flat.size, 1))
        sequences = np.empty((n_slots, length), dtype=np.int64)
        for slot in range(n_slots):
            lfsr = LFSR(
                self.width,
                seed=derive_seed(self._seed, "lfsr-sng", slot, self._counter)
                % max_val
                + 1,
            )
            sequences[slot] = lfsr.sequence(length)
        self._counter += 1

        slots = np.arange(flat.size) % n_slots
        bits = sequences[slots] <= thresholds[:, None]
        packed = ops.pack_bits(bits)
        return packed.reshape(probs.shape + (packed.shape[-1],))

    def reseed(self, seed: int) -> None:
        """Reset the generator to a deterministic state."""
        self._seed = seed
        self._counter = 0


class StreamFactory:
    """High-level bit-stream factory used by all function blocks.

    Bundles an SNG with an encoding and provides value-level APIs:

    >>> fab = StreamFactory(seed=7)
    >>> s = fab.streams([0.5, -0.25], length=1024)
    >>> abs(s.value()[0] - 0.5) < 0.1
    True

    The ``select_signal`` method produces the uniformly-random MUX select
    sequences needed by MUX-based adders and average pooling.
    """

    def __init__(self, seed: int = 0, encoding: Encoding = Encoding.BIPOLAR,
                 sng: str = "ideal", lfsr_width: int = 16):
        if sng == "ideal":
            self.sng = IdealSNG(seed=seed)
        elif sng == "lfsr":
            self.sng = LfsrSNG(width=lfsr_width, seed=seed)
        else:
            raise ValueError(f"unknown sng kind {sng!r}; use 'ideal' or 'lfsr'")
        self.encoding = encoding
        self._select_rng = spawn_rng(seed, "mux-select")

    def fork(self) -> "StreamFactory":
        """A new factory frozen at this factory's current stream state.

        The fork replays exactly the draws this factory would make next
        (SNG uniforms *and* MUX select integers) without advancing it.
        Forking the same factory twice yields two identical, mutually
        independent replicas — the micro-batching service forks a
        post-construction snapshot once per request so every request in a
        coalesced batch sees the stream state a freshly-seeded factory
        would, bit for bit.
        """
        twin = object.__new__(StreamFactory)
        twin.sng = self.sng.clone()
        twin.encoding = self.encoding
        twin._select_rng = np.random.default_rng(0)
        twin._select_rng.bit_generator.state = \
            self._select_rng.bit_generator.state
        return twin

    def streams(self, values, length: int,
                encoding: Encoding = None) -> Bitstream:
        """Encode ``values`` into a batch of bit-streams."""
        enc = encoding or self.encoding
        probs = to_probability(values, enc)
        return Bitstream(self.sng.generate(probs, length), length, enc)

    def packed(self, values, length: int,
               encoding: Encoding = None) -> np.ndarray:
        """Encode values and return the raw packed array (hot paths)."""
        enc = encoding or self.encoding
        probs = to_probability(values, enc)
        return self.sng.generate(probs, length)

    def select_signal(self, n: int, length: int) -> np.ndarray:
        """Uniform random MUX select signal: ``length`` ints in ``[0, n)``."""
        n = check_positive_int(n, "n")
        length = check_stream_length(length)
        return self._select_rng.integers(0, n, size=length)
