"""Vectorized logic operations on packed bit-streams.

Bit-streams are stored packed, eight bits per byte (``numpy.uint8``), with
the stream axis last:  a batch of shape ``(..., L)`` bits is stored as
``(..., ceil(L/8))`` bytes.  Bit order within a byte is big-endian (numpy's
``packbits`` default), so bit ``t`` of a stream lives at
``byte[t // 8] >> (7 - t % 8)``.

All functions here operate on raw packed arrays; :class:`repro.sc.bitstream.
Bitstream` provides the user-facing wrapper.  Packing gives an 8x memory
reduction and lets AND/OR/XNOR run as single vectorized byte-wise ops,
which is what makes full bit-level simulation of LeNet-5 tractable (see
DESIGN.md, "bit-packing").
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_stream_length

__all__ = [
    "packed_nbytes",
    "pad_mask",
    "pack_bits",
    "unpack_bits",
    "popcount",
    "and_",
    "or_",
    "xor_",
    "xnor_",
    "not_",
    "mux_select",
    "segment_popcount",
]

# Number of set bits for every byte value; used for fast popcounts.
_POPCOUNT_TABLE = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint16
)


def packed_nbytes(length: int) -> int:
    """Bytes needed to store ``length`` bits."""
    length = check_stream_length(length)
    return (length + 7) // 8


def pad_mask(length: int) -> np.ndarray:
    """Per-byte mask that zeroes the padding bits of the final byte.

    Streams whose length is not a byte multiple carry unused trailing bits
    in their last byte; every operation that can set bits (NOT, XNOR)
    must re-apply this mask so popcounts stay correct.
    """
    nbytes = packed_nbytes(length)
    mask = np.full(nbytes, 0xFF, dtype=np.uint8)
    rem = length % 8
    if rem:
        mask[-1] = (0xFF << (8 - rem)) & 0xFF
    return mask


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean/int array of bits (stream axis last) into bytes."""
    bits = np.asarray(bits)
    if bits.dtype != np.uint8:
        bits = bits.astype(np.uint8)
    return np.packbits(bits, axis=-1)


def unpack_bits(data: np.ndarray, length: int) -> np.ndarray:
    """Unpack bytes back into a uint8 bit array of exactly ``length`` bits."""
    length = check_stream_length(length)
    bits = np.unpackbits(np.ascontiguousarray(data), axis=-1)
    return bits[..., :length]


def popcount(data: np.ndarray, length: int = None) -> np.ndarray:
    """Count set bits along the stream axis.

    ``length`` is accepted for interface symmetry; padding bits are assumed
    to be zero (all constructors and ops in this module maintain that
    invariant).
    """
    return _POPCOUNT_TABLE[data].sum(axis=-1, dtype=np.int64)


def and_(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise AND — the unipolar stochastic multiplier (Figure 4a)."""
    return np.bitwise_and(a, b)


def or_(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise OR — the cheapest (and least accurate) adder (Figure 5a)."""
    return np.bitwise_or(a, b)


def xor_(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise XOR."""
    return np.bitwise_xor(a, b)


def xnor_(a: np.ndarray, b: np.ndarray, length: int) -> np.ndarray:
    """Bitwise XNOR — the bipolar stochastic multiplier (Figure 4b).

    Padding bits are re-zeroed so downstream popcounts remain exact.
    """
    out = np.bitwise_not(np.bitwise_xor(a, b))
    return np.bitwise_and(out, pad_mask(length))


def not_(a: np.ndarray, length: int) -> np.ndarray:
    """Bitwise NOT with padding-bit correction."""
    return np.bitwise_and(np.bitwise_not(a), pad_mask(length))


def mux_select(streams: np.ndarray, select: np.ndarray, length: int) -> np.ndarray:
    """n-to-1 multiplexer: pick ``streams[..., select[t], t]`` at each cycle.

    Parameters
    ----------
    streams:
        Packed array of shape ``(..., n, nbytes)``.
    select:
        Integer array of shape ``(length,)`` with values in ``[0, n)`` —
        the MUX select signal (one input chosen per clock cycle).
    length:
        Bit-stream length.

    Returns
    -------
    Packed array of shape ``(..., nbytes)``.

    Notes
    -----
    This is the scaled adder of Figure 5(b): the output probability is the
    mean of the input probabilities, i.e. the sum scaled by ``1/n``.
    """
    length = check_stream_length(length)
    select = np.asarray(select)
    if select.shape != (length,):
        raise ValueError(
            f"select must have shape ({length},), got {select.shape}"
        )
    bits = unpack_bits(streams, length)  # (..., n, L)
    n = bits.shape[-2]
    if select.size and (select.min() < 0 or select.max() >= n):
        raise ValueError(f"select values must lie in [0, {n}), got "
                         f"[{select.min()}, {select.max()}]")
    taken = np.take_along_axis(
        bits, select.reshape((1,) * (bits.ndim - 2) + (1, length)), axis=-2
    )[..., 0, :]
    return pack_bits(taken)


def segment_popcount(data: np.ndarray, length: int, segment: int) -> np.ndarray:
    """Count set bits within consecutive ``segment``-bit slices.

    Used by the hardware-oriented max pooling block (Figure 8), whose
    counters tally ones per ``c``-bit segment.  ``segment`` must divide
    ``length``.

    Returns an int64 array of shape ``(..., length // segment)``.
    """
    length = check_stream_length(length)
    if segment <= 0 or length % segment:
        raise ValueError(
            f"segment length {segment} must divide stream length {length}"
        )
    bits = unpack_bits(data, length)
    nseg = length // segment
    return bits.reshape(bits.shape[:-1] + (nseg, segment)).sum(
        axis=-1, dtype=np.int64
    )
