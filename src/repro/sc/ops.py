"""Vectorized logic operations on packed bit-streams.

Bit-streams are stored packed, eight bits per byte (``numpy.uint8``), with
the stream axis last:  a batch of shape ``(..., L)`` bits is stored as
``(..., ceil(L/8))`` bytes.  Bit order within a byte is big-endian (numpy's
``packbits`` default), so bit ``t`` of a stream lives at
``byte[t // 8] >> (7 - t % 8)``.

All functions here operate on raw packed arrays; :class:`repro.sc.bitstream.
Bitstream` provides the user-facing wrapper.  Packing gives an 8x memory
reduction and lets AND/OR/XNOR run as single vectorized byte-wise ops,
which is what makes full bit-level simulation of LeNet-5 tractable (see
DESIGN.md, "bit-packing").

The hot reductions are *word-level*: packed bytes are re-viewed as
``uint64`` words (zero-padded to an 8-byte multiple when needed) and
counted with the hardware ``popcnt`` instruction via ``numpy.bitwise_count``
(a byte-LUT fallback covers NumPy < 2).  No function in this module
round-trips through :func:`unpack_bits` any more — see DESIGN.md,
"word-level engine".

Invariant: the padding bits of the final byte of every packed stream are
**zero**.  All constructors and every operation here maintain it (NOT and
XNOR re-apply :func:`pad_mask`), and the counting kernels rely on it.
:func:`padding_is_zero` checks it explicitly.
"""

from __future__ import annotations

import functools

import numpy as np

import repro.native as native
from repro.obs import kernels as _prof
from repro.utils.validation import check_stream_length

__all__ = [
    "packed_nbytes",
    "pad_mask",
    "padding_is_zero",
    "pack_bits",
    "unpack_bits",
    "popcount",
    "transpose_pack",
    "popcount_sum",
    "and_",
    "or_",
    "xor_",
    "xnor_",
    "not_",
    "mux_select",
    "segment_popcount",
]

#: True when numpy provides a native SIMD popcount (NumPy >= 2.0).
HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Profiling tier label for the NumPy fallback actually in effect
#: (``REPRO_PROFILE=1`` attributes kernel wall time per tier).
_NUMPY_TIER = "numpy-simd" if HAVE_BITWISE_COUNT else "numpy-lut"

# Number of set bits for every byte value; fallback popcount for NumPy < 2.
_POPCOUNT_TABLE = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)


def _byte_popcount(data: np.ndarray) -> np.ndarray:
    """Per-element set-bit counts (uint8) of an unsigned integer array."""
    if HAVE_BITWISE_COUNT:
        return np.bitwise_count(data)
    if data.dtype != np.uint8:
        data = np.ascontiguousarray(data).view(np.uint8)
    return _POPCOUNT_TABLE[data]


def _as_words(data: np.ndarray) -> np.ndarray:
    """View packed bytes as uint64 words, zero-padding to an 8-byte multiple.

    Only the *count* of set bits is meaningful in word view (byte order
    within a word follows the platform, not the stream), which is all the
    word-level kernels need.
    """
    data = np.ascontiguousarray(data)
    pad = (-data.shape[-1]) % 8
    if pad:
        data = np.concatenate(
            [data, np.zeros(data.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
        data = np.ascontiguousarray(data)
    return data.view(np.uint64)


def packed_nbytes(length: int) -> int:
    """Bytes needed to store ``length`` bits."""
    length = check_stream_length(length)
    return (length + 7) // 8


@functools.lru_cache(maxsize=256)
def pad_mask(length: int) -> np.ndarray:
    """Per-byte mask that zeroes the padding bits of the final byte.

    Streams whose length is not a byte multiple carry unused trailing bits
    in their last byte; every operation that can set bits (NOT, XNOR)
    must re-apply this mask so popcounts stay correct.

    The result is cached per length (XNOR sits on the innermost multiply
    path) and returned read-only; copy before mutating.
    """
    nbytes = packed_nbytes(length)
    mask = np.full(nbytes, 0xFF, dtype=np.uint8)
    rem = length % 8
    if rem:
        mask[-1] = (0xFF << (8 - rem)) & 0xFF
    mask.flags.writeable = False
    return mask


def padding_is_zero(data: np.ndarray, length: int) -> bool:
    """Check the zero-padding invariant the counting kernels rely on."""
    length = check_stream_length(length)
    rem = length % 8
    if not rem:
        return True
    data = np.asarray(data)
    spill = np.uint8(0xFF >> rem)
    return not np.any(np.bitwise_and(data[..., -1], spill))


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean/int array of bits (stream axis last) into bytes."""
    bits = np.asarray(bits)
    if bits.dtype != np.uint8:
        bits = bits.astype(np.uint8)
    return np.packbits(bits, axis=-1)


def unpack_bits(data: np.ndarray, length: int) -> np.ndarray:
    """Unpack bytes back into a uint8 bit array of exactly ``length`` bits."""
    length = check_stream_length(length)
    bits = np.unpackbits(np.ascontiguousarray(data), axis=-1)
    return bits[..., :length]


def popcount(data: np.ndarray, length: int | None = None) -> np.ndarray:
    """Count set bits along the stream axis.

    Relies on the module invariant that padding bits are zero (see the
    module docstring); under it the count over all stored bytes equals the
    count over the ``length`` valid bits.  When ``length`` is given the
    packed width is validated against it.

    Runs in the native kernel tier when armed (bit-identical; see
    :mod:`repro.native`), else on uint64 words through
    ``numpy.bitwise_count`` where available (NumPy >= 2), falling back
    to a byte LUT otherwise.
    """
    data = np.asarray(data)
    if length is not None:
        length = check_stream_length(length)
        nbytes = packed_nbytes(length)
        if data.shape[-1] != nbytes:
            raise ValueError(
                f"packed data last axis is {data.shape[-1]} bytes but "
                f"length {length} requires {nbytes}"
            )
    if data.dtype == np.uint8 and data.ndim and native.enabled():
        t0 = _prof.tick()
        out = native.popcount_rows(data)
        _prof.tock(t0, "popcount", "native")
        return out
    t0 = _prof.tick()
    if HAVE_BITWISE_COUNT:
        out = np.bitwise_count(_as_words(data)).sum(axis=-1, dtype=np.int64)
    else:
        out = _POPCOUNT_TABLE[data].sum(axis=-1, dtype=np.int64)
    _prof.tock(t0, "popcount", _NUMPY_TIER)
    return out


def transpose_pack(data: np.ndarray, length: int, align: int = 4,
                   chunk_budget: int | None = None) -> np.ndarray:
    """Re-pack cycle-major streams as cycle-indexed input-bit rows.

    ``data`` is a packed bank ``(..., n, nbytes)`` (n streams, stream
    axis last).  The result is ``(..., length, W)`` where row ``t`` holds
    the ``n`` streams' bits *at cycle t*, packed big-endian and
    zero-padded to a ``W`` that is a multiple of ``align`` bytes — so
    :func:`popcount_sum` can count whole rows in word view.

    This is the layout behind the engine's transposed counting strategy
    (DESIGN.md, "layer-graph engine"): a per-cycle sum across ``n``
    inputs becomes one row popcount of ``ceil(n/8)`` bytes instead of an
    8×-inflated unpack + reduce.  The transposition itself costs one
    unpack/pack round trip, amortized across every output channel that
    consumes the bank.

    ``chunk_budget`` bounds the transient *unpacked* bit array (8× the
    packed bank): batch entries are transposed in blocks so no more than
    roughly that many unpacked bytes exist at once.  The result is
    independent of the chunking.
    """
    length = check_stream_length(length)
    data = np.asarray(data, dtype=np.uint8)
    if data.ndim < 2:
        raise ValueError("expected shape (..., n, nbytes)")
    if data.shape[-1] * 8 >= length and native.enabled():
        # Native tier: one cache-tiled 8x8-block pass, no unpacked
        # transient at all (chunk_budget is moot — results identical).
        t0 = _prof.tick()
        out = native.transpose_pack(data, length, align)
        _prof.tock(t0, "transpose_pack", "native")
        return out
    t0 = _prof.tick()
    batch = data.shape[:-2]
    n = data.shape[-2]
    width = (n + 7) // 8
    width += (-width) % align
    flat = data.reshape((-1,) + data.shape[-2:])
    rows = flat.shape[0]
    if chunk_budget is None:
        step = rows
    else:
        step = max(1, min(rows, int(chunk_budget) // max(n * length, 1)))
    out = np.zeros((rows, length, width), dtype=np.uint8)
    for r0 in range(0, rows, step):
        r1 = min(r0 + step, rows)
        bits = unpack_bits(flat[r0:r1], length)            # (r, n, L)
        out[r0:r1, :, :(n + 7) // 8] = np.packbits(
            np.swapaxes(bits, -1, -2), axis=-1)
    out = out.reshape(batch + (length, width))
    _prof.tock(t0, "transpose_pack", _NUMPY_TIER)
    return out


def popcount_sum(data: np.ndarray, dtype=np.int64) -> np.ndarray:
    """Count set bits over *all* bytes of the last axis.

    Unlike :func:`popcount` this never re-pads: it picks the widest word
    view the last axis already aligns to (uint64/uint32/uint16, falling
    back to bytes), so callers that pre-align — e.g. via
    :func:`transpose_pack` — pay no copy.  ``dtype`` sets the output and
    accumulator type; the default ``int64`` is safe for any width, while
    callers counting short rows (the engine counts ≤ 1024 inputs) pass
    ``int16`` to keep the result tensors small.
    """
    data = np.ascontiguousarray(data)
    if data.dtype == np.uint8 and data.ndim and native.enabled():
        t0 = _prof.tick()
        out = native.popcount_rows(data).astype(dtype, copy=False)
        _prof.tock(t0, "popcount_sum", "native")
        return out
    t0 = _prof.tick()
    if not HAVE_BITWISE_COUNT:
        out = _POPCOUNT_TABLE[data].sum(axis=-1, dtype=dtype)
    else:
        out = None
        nbytes = data.shape[-1]
        for word, width in ((np.uint64, 8), (np.uint32, 4),
                            (np.uint16, 2)):
            if nbytes % width == 0:
                out = np.bitwise_count(data.view(word)).sum(axis=-1,
                                                            dtype=dtype)
                break
        if out is None:
            out = np.bitwise_count(data).sum(axis=-1, dtype=dtype)
    _prof.tock(t0, "popcount_sum", _NUMPY_TIER)
    return out


def and_(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise AND — the unipolar stochastic multiplier (Figure 4a)."""
    return np.bitwise_and(a, b)


def or_(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise OR — the cheapest (and least accurate) adder (Figure 5a)."""
    return np.bitwise_or(a, b)


def xor_(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise XOR."""
    return np.bitwise_xor(a, b)


def xnor_(a: np.ndarray, b: np.ndarray, length: int) -> np.ndarray:
    """Bitwise XNOR — the bipolar stochastic multiplier (Figure 4b).

    Padding bits are re-zeroed so downstream popcounts remain exact.
    """
    out = np.bitwise_not(np.bitwise_xor(a, b))
    return np.bitwise_and(out, pad_mask(length))


def not_(a: np.ndarray, length: int) -> np.ndarray:
    """Bitwise NOT with padding-bit correction."""
    return np.bitwise_and(np.bitwise_not(a), pad_mask(length))


def mux_select(streams: np.ndarray, select: np.ndarray, length: int) -> np.ndarray:
    """n-to-1 multiplexer: pick ``streams[..., select[t], t]`` at each cycle.

    Parameters
    ----------
    streams:
        Packed array of shape ``(..., n, nbytes)``.
    select:
        Integer array of shape ``(length,)`` with values in ``[0, n)`` —
        the MUX select signal (one input chosen per clock cycle).
    length:
        Bit-stream length.

    Returns
    -------
    Packed array of shape ``(..., nbytes)``.

    Notes
    -----
    This is the scaled adder of Figure 5(b): the output probability is the
    mean of the input probabilities, i.e. the sum scaled by ``1/n``.

    Implemented entirely in the packed domain: the select signal is turned
    into ``n`` per-cycle one-hot masks (one ``packbits`` call), and the
    output is ``OR_i(streams_i & mask_i)``.  The masks partition the
    cycles, so this is bit-identical to gather-by-select, and the packed
    masks zero the padding bits of the result.
    """
    length = check_stream_length(length)
    streams = np.asarray(streams)
    if streams.ndim < 2:
        raise ValueError("streams must have shape (..., n, nbytes)")
    select = np.asarray(select)
    if select.shape != (length,):
        raise ValueError(
            f"select must have shape ({length},), got {select.shape}"
        )
    n = streams.shape[-2]
    if select.size and (select.min() < 0 or select.max() >= n):
        raise ValueError(f"select values must lie in [0, {n}), got "
                         f"[{select.min()}, {select.max()}]")
    t0 = _prof.tick()
    masks = np.packbits(
        select[None, :] == np.arange(n)[:, None], axis=-1
    )  # (n, nbytes)
    out = np.bitwise_or.reduce(np.bitwise_and(streams, masks), axis=-2)
    # Always the packed-domain byte path, whatever the counting tier.
    _prof.tock(t0, "mux_select", "numpy")
    return out


def segment_popcount(data: np.ndarray, length: int, segment: int) -> np.ndarray:
    """Count set bits within consecutive ``segment``-bit slices.

    Used by the hardware-oriented max pooling block (Figure 8), whose
    counters tally ones per ``c``-bit segment.  ``segment`` must divide
    ``length``.

    Returns an int64 array of shape ``(..., length // segment)``.

    Byte-aligned segments (the hardware's ``c = 16``) reduce to per-byte
    word popcounts of a reshaped view.  Unaligned segments are handled by
    popcounting the prefix up to every segment boundary — cumulative
    per-byte counts plus a masked partial byte — and differencing, still
    with no ``unpack_bits``.
    """
    length = check_stream_length(length)
    if segment <= 0 or length % segment:
        raise ValueError(
            f"segment length {segment} must divide stream length {length}"
        )
    data = np.asarray(data)
    nseg = length // segment
    if segment % 8 == 0:
        # length is a byte multiple too, so the packed axis reshapes evenly;
        # a segment that spans one machine word popcounts in a single op.
        bps = segment // 8
        segs = np.ascontiguousarray(data).reshape(
            data.shape[:-1] + (nseg, bps))
        if bps == 1:
            return _byte_popcount(segs[..., 0]).astype(np.int64)
        if HAVE_BITWISE_COUNT and bps in (2, 4, 8):
            words = segs.view(np.dtype(f"uint{bps * 8}"))[..., 0]
            return np.bitwise_count(words).astype(np.int64)
        if HAVE_BITWISE_COUNT and bps % 8 == 0:
            words = segs.view(np.uint64)
            return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
        return _byte_popcount(segs).sum(axis=-1, dtype=np.int64)

    nbytes = data.shape[-1]
    counts = _byte_popcount(data)
    cum = np.zeros(data.shape[:-1] + (nbytes + 1,), dtype=np.int64)
    np.cumsum(counts, axis=-1, out=cum[..., 1:])
    # Prefix popcount at every segment boundary: whole bytes below the
    # boundary, plus the leading bits of the straddled byte (stream bits
    # are the byte's high bits).
    pos = np.arange(1, nseg + 1, dtype=np.int64) * segment
    full, rem = pos // 8, pos % 8
    bound = cum[..., full]
    partial = rem > 0
    if partial.any():
        idx = full[partial]
        masks = ((0xFF00 >> rem[partial]) & 0xFF).astype(np.uint8)
        bound[..., partial] += _byte_popcount(
            np.bitwise_and(data[..., idx], masks)
        )
    return np.diff(bound, axis=-1, prepend=0)
