"""Two-line representation of stochastic numbers (Toral et al., ref (43)).

A two-line stochastic number consists of a *magnitude* stream ``M(X)`` and
a *sign* stream ``S(X)`` (1 = negative).  Its value is

    x = (1/L) Σ_t (1 - 2·S(X_t)) · M(X_t)

so each cycle carries a ternary digit in {-1, 0, +1}.  The two-line adder
(Figure 5d) is *non-scaled*: it sums digits exactly, storing carry
over/under-flow in a three-state counter.  Because the per-cycle output is
bounded to {-1, 0, +1}, sums whose magnitude exceeds 1 overflow — the
reason Section 4.1 rejects this design for inner products with many
inputs.  The overflow is surfaced via :attr:`TwoLineStream.add`'s
``overflow`` counter so the limitation is measurable.
"""

from __future__ import annotations

import numpy as np

from repro.sc import ops
from repro.utils.validation import as_float_array, check_stream_length

__all__ = ["TwoLineStream", "two_line_multiply", "two_line_add",
           "two_line_sum"]


class TwoLineStream:
    """A (batch of) two-line stochastic number(s).

    Attributes
    ----------
    magnitude, sign:
        Packed uint8 arrays of shape ``(..., nbytes)``; a cycle carries
        digit ``(1 - 2·sign) · magnitude``.
    length:
        Stream length in bits.
    """

    __slots__ = ("magnitude", "sign", "length")

    def __init__(self, magnitude: np.ndarray, sign: np.ndarray, length: int):
        length = check_stream_length(length)
        magnitude = np.asarray(magnitude, dtype=np.uint8)
        sign = np.asarray(sign, dtype=np.uint8)
        if magnitude.shape != sign.shape:
            raise ValueError(
                f"magnitude/sign shape mismatch: {magnitude.shape} vs "
                f"{sign.shape}"
            )
        self.magnitude = magnitude
        self.sign = sign
        self.length = length

    @classmethod
    def encode(cls, values, length: int, rng: np.random.Generator
               ) -> "TwoLineStream":
        """Encode real values in [-1, 1] as two-line streams.

        The magnitude stream is Bernoulli(|x|); the sign stream is the
        constant sign of ``x`` (matching the paper's example, where -0.5
        has an all-ones sign stream).
        """
        arr = as_float_array(values, "values")
        if arr.size and np.max(np.abs(arr)) > 1.0:
            raise ValueError("two-line encoding requires values in [-1, 1]")
        mag_bits = rng.random(arr.shape + (length,)) < np.abs(arr)[..., None]
        sign_bits = np.broadcast_to((arr < 0)[..., None],
                                    arr.shape + (length,))
        return cls(ops.pack_bits(mag_bits), ops.pack_bits(sign_bits), length)

    def digits(self) -> np.ndarray:
        """Per-cycle ternary digits in {-1, 0, +1} as int8 ``(..., L)``."""
        mag = ops.unpack_bits(self.magnitude, self.length).astype(np.int8)
        sgn = ops.unpack_bits(self.sign, self.length).astype(np.int8)
        return (1 - 2 * sgn) * mag

    @classmethod
    def from_digits(cls, digits: np.ndarray) -> "TwoLineStream":
        """Build a stream from ternary digits (values in {-1, 0, +1})."""
        digits = np.asarray(digits)
        mag = (digits != 0)
        sgn = (digits < 0)
        return cls(ops.pack_bits(mag), ops.pack_bits(sgn), digits.shape[-1])

    def value(self) -> np.ndarray:
        """Decode: mean ternary digit."""
        return self.digits().mean(axis=-1)

    @property
    def shape(self) -> tuple:
        return self.magnitude.shape[:-1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TwoLineStream(shape={self.shape}, length={self.length})"


def two_line_multiply(a: TwoLineStream, b: TwoLineStream) -> TwoLineStream:
    """Multiply two-line numbers: AND magnitudes, XOR signs."""
    if a.length != b.length:
        raise ValueError(f"length mismatch: {a.length} vs {b.length}")
    mag = np.bitwise_and(a.magnitude, b.magnitude)
    sgn = np.bitwise_and(np.bitwise_xor(a.sign, b.sign), mag)
    return TwoLineStream(mag, sgn, a.length)


def two_line_add(a: TwoLineStream, b: TwoLineStream):
    """The two-line adder of Figure 5(d).

    Per cycle, the digit sum plus the stored carry is split into an output
    digit in {-1, 0, +1} and a new carry held in a three-state counter.
    When the combined value exceeds what digit+carry can hold (|s| = 3),
    the excess is *dropped* — that overflow count is returned so callers
    can observe the non-scaled adder's failure mode.

    Returns
    -------
    (TwoLineStream, int64 ndarray)
        The sum stream and the per-stream overflow counts.
    """
    if a.length != b.length:
        raise ValueError(f"length mismatch: {a.length} vs {b.length}")
    da = a.digits().astype(np.int64)
    db = b.digits().astype(np.int64)
    T = a.length
    carry = np.zeros(da.shape[:-1], dtype=np.int64)
    out = np.empty(da.shape, dtype=np.int8)
    overflow = np.zeros(da.shape[:-1], dtype=np.int64)
    for t in range(T):
        s = da[..., t] + db[..., t] + carry
        digit = np.clip(s, -1, 1)
        new_carry = s - digit
        lost = np.abs(new_carry) > 1
        overflow += lost
        carry = np.clip(new_carry, -1, 1)
        out[..., t] = digit
    return TwoLineStream.from_digits(out), overflow


def two_line_sum(streams):
    """Sum several two-line numbers with a cascade of two-line adders.

    Returns ``(sum_stream, total_overflow)``.  With more than two inputs
    the non-scaled representation saturates frequently — reproducing the
    limitation Section 4.1 cites for rejecting this design.
    """
    streams = list(streams)
    if not streams:
        raise ValueError("cannot sum zero streams")
    acc = streams[0]
    overflow = np.zeros(acc.shape, dtype=np.int64)
    for nxt in streams[1:]:
        acc, lost = two_line_add(acc, nxt)
        overflow += lost
    return acc, overflow
