"""Stochastic number encodings (Section 3.2).

A stochastic bit-stream of length ``L`` containing ``k`` ones carries the
probability ``p = k / L``.  Two encodings map a real value ``x`` onto that
probability:

* **unipolar**: ``x in [0, 1]`` with ``p = x``;
* **bipolar**:  ``x in [-1, 1]`` with ``p = (x + 1) / 2``.

Values outside those ranges must be *pre-scaled* first (the paper cites
Yuan et al. (45) for this); :func:`prescale` implements the standard
divide-by-constant scheme and returns the scaling factor so callers can
scale results back.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.utils.validation import (
    as_float_array,
    check_bipolar,
    check_probability,
)

__all__ = [
    "Encoding",
    "to_probability",
    "from_probability",
    "prescale",
    "encoding_range",
]


class Encoding(enum.Enum):
    """Bit-stream value encoding: unipolar [0, 1] or bipolar [-1, 1]."""

    UNIPOLAR = "unipolar"
    BIPOLAR = "bipolar"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def encoding_range(encoding: Encoding) -> tuple:
    """Return the representable (low, high) value range of ``encoding``."""
    if encoding is Encoding.UNIPOLAR:
        return (0.0, 1.0)
    if encoding is Encoding.BIPOLAR:
        return (-1.0, 1.0)
    raise ValueError(f"unknown encoding: {encoding!r}")


def to_probability(values, encoding: Encoding) -> np.ndarray:
    """Map real values to the ones-probability of their bit-streams.

    Raises ``ValueError`` if any value falls outside the representable
    range of ``encoding``.
    """
    if encoding is Encoding.UNIPOLAR:
        return check_probability(values)
    if encoding is Encoding.BIPOLAR:
        return (check_bipolar(values) + 1.0) / 2.0
    raise ValueError(f"unknown encoding: {encoding!r}")


def from_probability(probs, encoding: Encoding) -> np.ndarray:
    """Inverse of :func:`to_probability`: decode probabilities to values."""
    probs = as_float_array(probs, "probs")
    if encoding is Encoding.UNIPOLAR:
        return probs
    if encoding is Encoding.BIPOLAR:
        return probs * 2.0 - 1.0
    raise ValueError(f"unknown encoding: {encoding!r}")


def prescale(values, encoding: Encoding = Encoding.BIPOLAR):
    """Scale ``values`` into the representable range of ``encoding``.

    Returns ``(scaled_values, factor)`` where ``values = scaled * factor``
    and ``factor >= 1``.  The factor is chosen as the smallest power of two
    that brings every value into range, mirroring the hardware-friendly
    shift-based pre-scaling of (45).  If everything is already in range the
    factor is 1 and the input is returned unchanged (as a float array).
    """
    arr = as_float_array(values, "values")
    low, high = encoding_range(encoding)
    peak = float(np.max(np.abs(arr))) if arr.size else 0.0
    if encoding is Encoding.UNIPOLAR and arr.size and float(arr.min()) < low:
        raise ValueError("unipolar pre-scaling cannot fix negative values")
    if peak <= high:
        return arr, 1.0
    factor = float(2 ** int(np.ceil(np.log2(peak / high))))
    return arr / factor, factor
