"""Stream correlation analysis and decorrelation.

SC arithmetic is exact only for *independent* streams: an XNOR multiplier
fed two identical streams computes 1, not x².  The paper flags this —
"the randomness and length of the bit-streams can significantly affect
the calculation accuracy" — and shares RNGs aggressively for cost, so a
production SC library needs tools to measure and repair correlation:

* :func:`scc` — the standard *stochastic computing correlation* metric
  (Alaghi & Hayes): +1 for maximally overlapping streams, -1 for
  maximally anti-overlapping, 0 for independent.
* :func:`pearson` — plain bit-wise Pearson correlation.
* :func:`decorrelate` — an isolator: re-randomizes a stream's bit order
  with a private permutation, preserving its value exactly while
  destroying temporal alignment with other streams (the zero-cost model
  of a D-flip-flop isolator chain).
* :func:`multiply_error_vs_scc` — measurement harness showing how XNOR
  multiplication error grows with input correlation.
"""

from __future__ import annotations

import numpy as np

from repro.sc import ops
from repro.utils.seeding import spawn_rng
from repro.utils.validation import check_stream_length

__all__ = ["scc", "pearson", "decorrelate", "multiply_error_vs_scc"]


def _joint_counts(a: np.ndarray, b: np.ndarray, length: int):
    """Counts of (1,1), ones(a), ones(b) for packed streams.

    Three word-level popcounts — correlation scans over whole layers stay
    in the packed domain (no unpacking anywhere on this path).
    """
    both = ops.popcount(ops.and_(a, b), length)
    na = ops.popcount(a, length)
    nb = ops.popcount(b, length)
    return both.astype(np.float64), na.astype(np.float64), nb.astype(np.float64)


def scc(a: np.ndarray, b: np.ndarray, length: int) -> np.ndarray:
    """Stochastic computing correlation of two packed streams.

    ``SCC = (p11 - pa·pb) / (min(pa, pb) - pa·pb)`` when the overlap
    exceeds independence, else normalized by the maximum possible
    negative deviation.  Returns 0 where either stream is constant.
    """
    length = check_stream_length(length)
    both, na, nb = _joint_counts(np.asarray(a), np.asarray(b), length)
    pa, pb, p11 = na / length, nb / length, both / length
    delta = p11 - pa * pb
    pos_den = np.minimum(pa, pb) - pa * pb
    neg_den = pa * pb - np.maximum(pa + pb - 1.0, 0.0)
    den = np.where(delta >= 0, pos_den, neg_den)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(den > 1e-12, delta / np.where(den > 1e-12, den, 1.0),
                       0.0)
    return out


def pearson(a: np.ndarray, b: np.ndarray, length: int) -> np.ndarray:
    """Bit-wise Pearson correlation coefficient of two packed streams."""
    length = check_stream_length(length)
    both, na, nb = _joint_counts(np.asarray(a), np.asarray(b), length)
    pa, pb, p11 = na / length, nb / length, both / length
    var_a = pa * (1.0 - pa)
    var_b = pb * (1.0 - pb)
    den = np.sqrt(var_a * var_b)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(den > 1e-12,
                        (p11 - pa * pb) / np.where(den > 1e-12, den, 1.0),
                        0.0)


def decorrelate(stream: np.ndarray, length: int, seed: int = 0) -> np.ndarray:
    """Re-randomize a stream's bit order (an ideal isolator).

    The returned stream has exactly the same ones count (same value) but
    a private pseudo-random bit order, so its SCC against any other
    stream collapses toward 0.  Models a depermutation/isolator stage;
    real hardware approximates this with D-flip-flop delays or separate
    SNG re-generation.
    """
    length = check_stream_length(length)
    rng = spawn_rng(seed, "decorrelate")
    bits = ops.unpack_bits(np.asarray(stream), length)
    perm = rng.permutation(length)
    return ops.pack_bits(bits[..., perm])


def multiply_error_vs_scc(value_a: float = 0.5, value_b: float = 0.5,
                          length: int = 2048, seed: int = 0) -> dict:
    """Measure XNOR multiply error for independent vs shared-RNG streams.

    Returns ``{"independent": (scc, error), "shared": (scc, error)}``
    where error is the absolute deviation from the true product.  With a
    shared RNG the streams for equal values are bit-identical (SCC = 1)
    and the XNOR computes 1 instead of a·b — the classic SC hazard.
    """
    rng = spawn_rng(seed, "mul-vs-scc")
    pa = (value_a + 1.0) / 2.0
    pb = (value_b + 1.0) / 2.0
    u1 = rng.random(length)
    u2 = rng.random(length)
    results = {}
    for label, (ua, ub) in (("independent", (u1, u2)), ("shared", (u1, u1))):
        a = ops.pack_bits(ua < pa)
        b = ops.pack_bits(ub < pb)
        prod = ops.xnor_(a, b, length)
        decoded = 2.0 * ops.popcount(prod, length) / length - 1.0
        results[label] = (
            float(scc(a, b, length)),
            float(abs(decoded - value_a * value_b)),
        )
    return results
