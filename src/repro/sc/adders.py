"""The four stochastic addition designs of Figure 5.

All functions take a packed batch of input streams with the *summand* axis
second-to-last: shape ``(..., n, nbytes)`` for ``n`` inputs, and reduce it.

1. :func:`or_add` — OR gate (Figure 5a).  Cheapest, badly lossy unless the
   inputs are pre-scaled to contain very few ones.
2. :func:`mux_add` — n-to-1 multiplexer (Figure 5b).  Outputs the sum
   scaled by ``1/n`` — one input bit survives per cycle.
3. :func:`parallel_counter` / :func:`apc_count` — parallel counters
   (Figure 5c).  Output a *binary* count per cycle.  The exact
   accumulative parallel counter (Parhami & Yeh, ref (33)) is the
   baseline; the approximate parallel counter (Kim et al., ref (20))
   drops the least-significant-bit adder chain, which we model
   structurally (see Notes).
4. Two-line representation (Figure 5d) lives in :mod:`repro.sc.twoline`.

Notes
-----
The APC of ref (20) replaces part of the LSB full-adder chain with
pass-through logic (the bottom input pair of Figure 7 skips the adder
tree), so the 16-input counter emits 4 output bits whose least significant
weight is 2¹ instead of 2⁰ (Section 4.1 of the paper).  We reproduce the
*behaviour*: the last input's contribution is dropped from the count's
LSB parity.  The resulting per-column error is ±1 with zero mean on
random SC streams, and its magnitude matches Table 3 (<1% relative error,
shrinking with input size and stream length) — which is the only
characterization the paper gives.
"""

from __future__ import annotations

import numpy as np

from repro.sc import ops
from repro.utils.validation import check_stream_length

__all__ = [
    "or_add",
    "mux_add",
    "parallel_counter",
    "apc_count",
    "apc_gate_equivalents",
]


def or_add(streams: np.ndarray) -> np.ndarray:
    """OR-gate addition: reduce the summand axis with bitwise OR.

    The result's ones-probability is ``P(any input is 1)``, which
    approximates the sum only when ones are sparse — hence the pre-scaling
    discussion around Table 1.
    """
    streams = np.asarray(streams, dtype=np.uint8)
    if streams.ndim < 2:
        raise ValueError("expected shape (..., n, nbytes)")
    return np.bitwise_or.reduce(streams, axis=-2)


def mux_add(streams: np.ndarray, select: np.ndarray,
            length: int) -> np.ndarray:
    """MUX addition: pick one input bit per cycle (scaled adder).

    The output stream's value is ``(1/n) Σ inputs``; the scaling factor is
    ``1/n`` in both unipolar and bipolar formats (Section 3.2).

    Parameters
    ----------
    streams:
        Packed array ``(..., n, nbytes)``.
    select:
        Select signal of shape ``(length,)`` with values in ``[0, n)``
        (use :meth:`repro.sc.rng.StreamFactory.select_signal`).
    length:
        Stream length in bits.
    """
    return ops.mux_select(streams, select, length)


def parallel_counter(streams: np.ndarray, length: int) -> np.ndarray:
    """Exact accumulative parallel counter: per-cycle ones counts.

    Returns an int16 array ``(..., length)`` where entry ``t`` is the
    number of input streams whose bit ``t`` is one.  This is the
    conventional (non-approximate) counter used as Table 3's baseline.
    """
    length = check_stream_length(length)
    bits = ops.unpack_bits(streams, length)  # (..., n, L) uint8
    return bits.sum(axis=-2, dtype=np.int16)


def apc_count(streams: np.ndarray, length: int) -> np.ndarray:
    """Approximate parallel counter: per-cycle counts with LSB approximation.

    Behavioural model of the APC of ref (20) (see module Notes): the
    count's least-significant bit is computed without the last input's
    contribution (that pair bypasses the dropped adder chain), so each
    column deviates by ±1 from the exact count with zero mean on random
    streams.  Note the output range is consequently ``[0, n+1]``: an
    even exact count with a set approximate LSB overshoots by one, which
    the APC's binary output width accommodates.

    Returns an int16 array ``(..., length)``.
    """
    length = check_stream_length(length)
    bits = ops.unpack_bits(streams, length)
    exact = bits.sum(axis=-2, dtype=np.int16)
    approx_lsb = (exact - bits[..., -1, :]) & np.int16(1)
    return (exact & ~np.int16(1)) | approx_lsb


def apc_gate_equivalents(n_inputs: int) -> dict:
    """Gate inventories of the approximate vs conventional parallel counter.

    Ref (20) reports the APC saves about 40% of the gates of an exact
    accumulative parallel counter; the cost model
    (:mod:`repro.hw.components`) consumes these counts.
    """
    if n_inputs < 2:
        raise ValueError("a parallel counter needs at least 2 inputs")
    # An exact n-input counter is a tree of full adders: n - ceil(log2 n) - 1
    # FAs plus the output register; we charge n FAs as the conventional
    # inventory (upper bound used consistently on both sides).
    exact_fa = max(n_inputs - 1, 1)
    approx_fa = max(int(round(exact_fa * 0.6)), 1)  # ~40% reduction
    return {"exact_full_adders": exact_fa, "approx_full_adders": approx_fa}
