"""The four stochastic addition designs of Figure 5.

All functions take a packed batch of input streams with the *summand* axis
second-to-last: shape ``(..., n, nbytes)`` for ``n`` inputs, and reduce it.

1. :func:`or_add` — OR gate (Figure 5a).  Cheapest, badly lossy unless the
   inputs are pre-scaled to contain very few ones.
2. :func:`mux_add` — n-to-1 multiplexer (Figure 5b).  Outputs the sum
   scaled by ``1/n`` — one input bit survives per cycle.
3. :func:`parallel_counter` / :func:`apc_count` — parallel counters
   (Figure 5c).  Output a *binary* count per cycle.  The exact
   accumulative parallel counter (Parhami & Yeh, ref (33)) is the
   baseline; the approximate parallel counter (Kim et al., ref (20))
   drops the least-significant-bit adder chain, which we model
   structurally (see Notes).
4. Two-line representation (Figure 5d) lives in :mod:`repro.sc.twoline`.

Per-cycle counts are computed by moving the summand axis to the front
(so the reduction vectorizes over long contiguous cycle runs), unpacking
in stream-axis chunks bounded by ``chunk_budget`` bytes, and reducing in
uint8 — the full ``(..., n, L)`` bit tensor is never materialized when a
budget smaller than it is passed (see DESIGN.md, "word-level engine").

Notes
-----
The APC of ref (20) replaces part of the LSB full-adder chain with
pass-through logic (the bottom input pair of Figure 7 skips the adder
tree), so the 16-input counter emits 4 output bits whose least significant
weight is 2¹ instead of 2⁰ (Section 4.1 of the paper).  We reproduce the
*behaviour*: the last input's contribution is dropped from the count's
LSB parity.  The resulting per-column error is ±1 with zero mean on
random SC streams, and its magnitude matches Table 3 (<1% relative error,
shrinking with input size and stream length) — which is the only
characterization the paper gives.
"""

from __future__ import annotations

import numpy as np

import repro.native as native
from repro.sc import ops
from repro.utils.validation import check_stream_length

__all__ = [
    "or_add",
    "mux_add",
    "parallel_counter",
    "apc_count",
    "apc_gate_equivalents",
    "DEFAULT_CHUNK_BUDGET",
]

#: Default bound (bytes) on the unpacked bit tensor materialized at once
#: while counting columns; 64 MiB keeps the working set cache-friendly
#: without chunking the common microbench/layer shapes.
DEFAULT_CHUNK_BUDGET = 1 << 26


def or_add(streams: np.ndarray) -> np.ndarray:
    """OR-gate addition: reduce the summand axis with bitwise OR.

    The result's ones-probability is ``P(any input is 1)``, which
    approximates the sum only when ones are sparse — hence the pre-scaling
    discussion around Table 1.
    """
    streams = np.asarray(streams, dtype=np.uint8)
    if streams.ndim < 2:
        raise ValueError("expected shape (..., n, nbytes)")
    return np.bitwise_or.reduce(streams, axis=-2)


def mux_add(streams: np.ndarray, select: np.ndarray,
            length: int) -> np.ndarray:
    """MUX addition: pick one input bit per cycle (scaled adder).

    The output stream's value is ``(1/n) Σ inputs``; the scaling factor is
    ``1/n`` in both unipolar and bipolar formats (Section 3.2).

    Parameters
    ----------
    streams:
        Packed array ``(..., n, nbytes)``.
    select:
        Select signal of shape ``(length,)`` with values in ``[0, n)``
        (use :meth:`repro.sc.rng.StreamFactory.select_signal`).
    length:
        Stream length in bits.
    """
    return ops.mux_select(streams, select, length)


def _column_counts(streams: np.ndarray, length: int, chunk_budget,
                   approximate: bool) -> np.ndarray:
    """Per-cycle ones counts ``(..., length)``, optionally APC-approximate.

    The summand axis is moved to the front so ``np.add.reduce`` runs over
    axis 0 with contiguous cycle runs, and the stream axis is unpacked in
    byte-aligned chunks whose unpacked size stays within ``chunk_budget``
    bytes.  Counts accumulate in uint8 whenever ``n`` permits.
    """
    length = check_stream_length(length)
    streams = np.asarray(streams, dtype=np.uint8)
    if streams.ndim < 2:
        raise ValueError("expected shape (..., n, nbytes)")
    n = streams.shape[-2]
    nbytes = ops.packed_nbytes(length)
    if streams.shape[-1] < nbytes:
        raise ValueError(
            f"packed data last axis is {streams.shape[-1]} bytes but "
            f"length {length} requires {nbytes}"
        )
    if native.enabled():
        # Native tier: fused transpose+count, register-resident byte-lane
        # accumulators — never materializes the unpacked bit tensor.
        return native.column_counts(streams[..., :nbytes], length,
                                    approximate)
    front = np.ascontiguousarray(np.moveaxis(streams[..., :nbytes], -2, 0))
    batch = front.shape[1:-1]
    # The APC approximation can emit n + 1, so uint8 is safe up to n = 254.
    acc_dtype = np.uint8 if n <= 254 else np.int16
    if chunk_budget is None:
        chunk_budget = DEFAULT_CHUNK_BUDGET
    rows = int(np.prod(batch, dtype=np.int64)) if batch else 1
    chunk_bytes = max(int(chunk_budget) // max(n * rows * 8, 1), 1)
    out = np.empty(batch + (length,), dtype=np.int16)
    for start in range(0, nbytes, chunk_bytes):
        stop = min(start + chunk_bytes, nbytes)
        block = front[..., start:stop]
        if not block.flags.c_contiguous:
            block = np.ascontiguousarray(block)
        bits = np.unpackbits(block, axis=-1)          # (n, ..., 8*(stop-start))
        counts = np.add.reduce(bits, axis=0, dtype=acc_dtype)
        if approximate:
            one = acc_dtype(1)
            counts = (counts & ~one) | ((counts ^ bits[-1]) & one)
        hi = min(8 * stop, length)
        out[..., 8 * start:hi] = counts[..., :hi - 8 * start]
    return out


def parallel_counter(streams: np.ndarray, length: int,
                     chunk_budget: int | None = None) -> np.ndarray:
    """Exact accumulative parallel counter: per-cycle ones counts.

    Returns an int16 array ``(..., length)`` where entry ``t`` is the
    number of input streams whose bit ``t`` is one.  This is the
    conventional (non-approximate) counter used as Table 3's baseline.

    ``chunk_budget`` bounds the bytes of unpacked bits materialized at
    once (default :data:`DEFAULT_CHUNK_BUDGET`).
    """
    return _column_counts(streams, length, chunk_budget, approximate=False)


def apc_count(streams: np.ndarray, length: int,
              chunk_budget: int | None = None) -> np.ndarray:
    """Approximate parallel counter: per-cycle counts with LSB approximation.

    Behavioural model of the APC of ref (20) (see module Notes): the
    count's least-significant bit is computed without the last input's
    contribution (that pair bypasses the dropped adder chain), so each
    column deviates by ±1 from the exact count with zero mean on random
    streams.  Note the output range is consequently ``[0, n+1]``: an
    even exact count with a set approximate LSB overshoots by one, which
    the APC's binary output width accommodates.

    Returns an int16 array ``(..., length)``.  ``chunk_budget`` bounds the
    bytes of unpacked bits materialized at once.
    """
    return _column_counts(streams, length, chunk_budget, approximate=True)


def apc_gate_equivalents(n_inputs: int) -> dict:
    """Gate inventories of the approximate vs conventional parallel counter.

    Ref (20) reports the APC saves about 40% of the gates of an exact
    accumulative parallel counter; the cost model
    (:mod:`repro.hw.components`) consumes these counts.
    """
    if n_inputs < 2:
        raise ValueError("a parallel counter needs at least 2 inputs")
    # An exact n-input counter is a tree of full adders: n - ceil(log2 n) - 1
    # FAs plus the output register; we charge n FAs as the conventional
    # inventory (upper bound used consistently on both sides).
    exact_fa = max(n_inputs - 1, 1)
    approx_fa = max(int(round(exact_fa * 0.6)), 1)  # ~40% reduction
    return {"exact_full_adders": exact_fa, "approx_full_adders": approx_fa}
