"""Maximal-length linear-feedback shift registers.

The paper's peripheral circuitry generates stochastic bit-streams with
LFSR-based random number generators (Kim et al., ASP-DAC'16, ref (22)).
This module implements Fibonacci LFSRs with known maximal-length tap sets
for widths 3..24, giving a period of ``2**width - 1``.

The LFSR state sequence is used two ways:

* as the random source of a comparator-based SNG (:class:`~repro.sc.rng.LfsrSNG`),
* as the select-signal generator of MUX-based adders.

State generation is table-driven: for the known maximal tap sets the full
period orbit (period ≤ 2²⁴) is computed once per ``(width, taps)`` by
pointer doubling over the vectorized next-state map, together with a
state→phase index, and cached.  :meth:`LFSR.sequence` then reduces to an
array slice at the current seed phase — bit-exact with per-cycle stepping,
including wraparound past the period (see DESIGN.md, "word-level engine").
Custom tap sets fall back to the per-cycle loop.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["maximal_taps", "LFSR"]

# Taps (1-indexed from the output bit, XOR feedback) producing maximal-length
# sequences.  Source: standard m-sequence tap tables (Xilinx XAPP052).
_MAXIMAL_TAPS = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 6, 4, 1),
    13: (13, 4, 3, 1),
    14: (14, 5, 3, 1),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 6, 2, 1),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
}

# Cached (orbit, phase) tables keyed by (width, taps); the SNG pool shares
# one entry.  Eviction is byte-budgeted: one width-24 table is ~128 MB, so
# an entry-count cap alone would not bound memory.
_ORBIT_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_ORBIT_CACHE_MAX_BYTES = 192 << 20


def maximal_taps(width: int) -> tuple:
    """Return a maximal-length tap tuple for ``width``-bit LFSRs."""
    width = check_positive_int(width, "width")
    try:
        return _MAXIMAL_TAPS[width]
    except KeyError:
        raise ValueError(
            f"no maximal-length taps recorded for width {width}; "
            f"supported widths: {sorted(_MAXIMAL_TAPS)}"
        ) from None


def _mat_apply(rows: np.ndarray, states: np.ndarray) -> np.ndarray:
    """Apply a GF(2)-linear state map (basis images ``rows``) to states."""
    out = np.zeros_like(states)
    one = np.uint32(1)
    for j in range(rows.shape[0]):
        out ^= rows[j] * ((states >> np.uint32(j)) & one)
    return out


def _orbit_table(width: int, taps: tuple, tap_mask: int, mask: int):
    """Full-period orbit and state→phase index for a maximal-length LFSR.

    The one-step map is GF(2)-linear (shift is linear, the feedback bit is
    a parity), so its powers are matrices over GF(2) that square in O(w²)
    word ops.  A short scalar prefix of the orbit is then extended
    geometrically by applying the doubled map to the known prefix —
    sequential SIMD passes, no random gathers — O(2^w · w) work once,
    cached.
    """
    key = (width, taps)
    hit = _ORBIT_CACHE.get(key)
    if hit is not None:
        _ORBIT_CACHE.move_to_end(key)
        return hit
    n_states = 1 << width
    period = n_states - 1
    orbit = np.empty(period, dtype=np.uint32)
    # Scalar prefix from the canonical start state 1: orbit[i] = f^i(1).
    # 4096 is a power of two, so the matrix power below is pure squaring;
    # narrow registers (period < 4096) complete entirely in this loop.
    seed_len = min(4096, period)
    state = 1
    orbit[0] = 1
    for i in range(1, seed_len):
        feedback = bin(state & tap_mask).count("1") & 1
        state = ((state << 1) | feedback) & mask
        orbit[i] = state
    if seed_len < period:
        # Basis images of the one-step map, squared up to f^seed_len.
        jump = np.empty(width, dtype=np.uint32)
        for j in range(width):
            basis = 1 << j
            feedback = bin(basis & tap_mask).count("1") & 1
            jump[j] = ((basis << 1) | feedback) & mask
        hops = 1
        while hops < seed_len:
            jump = _mat_apply(jump, jump)
            hops *= 2
        # Geometric extension: orbit[have + i] = f^have(orbit[i]).
        have = seed_len
        while have < period:
            take = min(have, period - have)
            orbit[have:have + take] = _mat_apply(jump, orbit[:take])
            have += take
            if have < period:
                jump = _mat_apply(jump, jump)
    phase = np.full(n_states, -1, dtype=np.int32)
    phase[orbit] = np.arange(period, dtype=np.int32)
    entry = (orbit, phase)
    _ORBIT_CACHE[key] = entry
    total = sum(o.nbytes + p.nbytes for o, p in _ORBIT_CACHE.values())
    while len(_ORBIT_CACHE) > 1 and total > _ORBIT_CACHE_MAX_BYTES:
        old_orbit, old_phase = _ORBIT_CACHE.popitem(last=False)[1]
        total -= old_orbit.nbytes + old_phase.nbytes
    return entry


class LFSR:
    """A Fibonacci LFSR producing a maximal-length pseudo-random sequence.

    Parameters
    ----------
    width:
        Register width in bits; the period is ``2**width - 1``.
    seed:
        Initial state; any value whose low ``width`` bits are non-zero.
    taps:
        Optional explicit tap positions (1-indexed); defaults to a known
        maximal-length set.

    Examples
    --------
    >>> lfsr = LFSR(8, seed=1)
    >>> states = lfsr.sequence(10)
    >>> len(states), states.dtype
    (10, dtype('uint32'))
    """

    def __init__(self, width: int, seed: int = 1, taps=None):
        self.width = check_positive_int(width, "width")
        self.taps = tuple(taps) if taps is not None else maximal_taps(width)
        if any(t < 1 or t > width for t in self.taps):
            raise ValueError(f"taps {self.taps} out of range for width {width}")
        mask = (1 << width) - 1
        state = seed & mask
        if state == 0:
            # The all-zeros state is the LFSR's single fixed point; bump it.
            state = 1
        self._mask = mask
        self._state = state
        self._tap_mask = 0
        for t in self.taps:
            self._tap_mask |= 1 << (t - 1)
        # The orbit table is only valid when every non-zero state lies on
        # one cycle, which the recorded maximal tap sets guarantee.
        self._tabulated = self.taps == _MAXIMAL_TAPS.get(self.width)

    @property
    def period(self) -> int:
        """The sequence period, ``2**width - 1`` for maximal taps."""
        return (1 << self.width) - 1

    @property
    def state(self) -> int:
        """Current register contents."""
        return self._state

    def step(self) -> int:
        """Advance one cycle and return the new state."""
        feedback = bin(self._state & self._tap_mask).count("1") & 1
        self._state = ((self._state << 1) | feedback) & self._mask
        return self._state

    def _sequence_loop(self, n: int) -> np.ndarray:
        """Per-cycle stepping fallback for custom tap sets."""
        out = np.empty(n, dtype=np.uint32)
        state = self._state
        mask = self._mask
        tap_mask = self._tap_mask
        for i in range(n):
            feedback = bin(state & tap_mask).count("1") & 1
            state = ((state << 1) | feedback) & mask
            out[i] = state
        self._state = state
        return out

    def sequence(self, n: int) -> np.ndarray:
        """Return the next ``n`` states as a uint32 array.

        For the recorded maximal tap sets this is an array slice into the
        cached full-period orbit starting at the current state's phase
        (wrapping past the period), identical bit-for-bit to stepping the
        register ``n`` times.
        """
        n = check_positive_int(n, "n")
        if not self._tabulated:
            return self._sequence_loop(n)
        if (self.width, self.taps) not in _ORBIT_CACHE:
            # Amortization guard: building a wide register's table costs
            # O(2^w · w); only do it for cheap widths (the SNG pool's
            # 16-bit registers share one table) or period-scale requests.
            if self.width > 16 and n < (1 << self.width) >> 4:
                return self._sequence_loop(n)
        orbit, phase = _orbit_table(self.width, self.taps, self._tap_mask,
                                    self._mask)
        start = int(phase[self._state]) + 1
        idx = start + np.arange(n, dtype=np.int64)
        out = np.take(orbit, idx, mode="wrap")
        self._state = int(out[-1])
        return out

    def bits(self, n: int) -> np.ndarray:
        """Return ``n`` single-bit outputs (the register MSB) as bools."""
        states = self.sequence(n)
        return ((states >> (self.width - 1)) & 1).astype(bool)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LFSR(width={self.width}, taps={self.taps}, state={self._state})"
