"""Maximal-length linear-feedback shift registers.

The paper's peripheral circuitry generates stochastic bit-streams with
LFSR-based random number generators (Kim et al., ASP-DAC'16, ref (22)).
This module implements Fibonacci LFSRs with known maximal-length tap sets
for widths 3..24, giving a period of ``2**width - 1``.

The LFSR state sequence is used two ways:

* as the random source of a comparator-based SNG (:class:`~repro.sc.rng.LfsrSNG`),
* as the select-signal generator of MUX-based adders.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["maximal_taps", "LFSR"]

# Taps (1-indexed from the output bit, XOR feedback) producing maximal-length
# sequences.  Source: standard m-sequence tap tables (Xilinx XAPP052).
_MAXIMAL_TAPS = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 6, 4, 1),
    13: (13, 4, 3, 1),
    14: (14, 5, 3, 1),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 6, 2, 1),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
}


def maximal_taps(width: int) -> tuple:
    """Return a maximal-length tap tuple for ``width``-bit LFSRs."""
    width = check_positive_int(width, "width")
    try:
        return _MAXIMAL_TAPS[width]
    except KeyError:
        raise ValueError(
            f"no maximal-length taps recorded for width {width}; "
            f"supported widths: {sorted(_MAXIMAL_TAPS)}"
        ) from None


class LFSR:
    """A Fibonacci LFSR producing a maximal-length pseudo-random sequence.

    Parameters
    ----------
    width:
        Register width in bits; the period is ``2**width - 1``.
    seed:
        Initial state; any value whose low ``width`` bits are non-zero.
    taps:
        Optional explicit tap positions (1-indexed); defaults to a known
        maximal-length set.

    Examples
    --------
    >>> lfsr = LFSR(8, seed=1)
    >>> states = lfsr.sequence(10)
    >>> len(states), states.dtype
    (10, dtype('uint32'))
    """

    def __init__(self, width: int, seed: int = 1, taps=None):
        self.width = check_positive_int(width, "width")
        self.taps = tuple(taps) if taps is not None else maximal_taps(width)
        if any(t < 1 or t > width for t in self.taps):
            raise ValueError(f"taps {self.taps} out of range for width {width}")
        mask = (1 << width) - 1
        state = seed & mask
        if state == 0:
            # The all-zeros state is the LFSR's single fixed point; bump it.
            state = 1
        self._mask = mask
        self._state = state
        self._tap_mask = 0
        for t in self.taps:
            self._tap_mask |= 1 << (t - 1)

    @property
    def period(self) -> int:
        """The sequence period, ``2**width - 1`` for maximal taps."""
        return (1 << self.width) - 1

    @property
    def state(self) -> int:
        """Current register contents."""
        return self._state

    def step(self) -> int:
        """Advance one cycle and return the new state."""
        feedback = bin(self._state & self._tap_mask).count("1") & 1
        self._state = ((self._state << 1) | feedback) & self._mask
        return self._state

    def sequence(self, n: int) -> np.ndarray:
        """Return the next ``n`` states as a uint32 array.

        The Python loop is acceptable here: SNGs sample the LFSR once and
        reuse the sequence across all values (hardware shares RNGs the same
        way, see Section 5.1 of the paper).
        """
        n = check_positive_int(n, "n")
        out = np.empty(n, dtype=np.uint32)
        state = self._state
        mask = self._mask
        tap_mask = self._tap_mask
        width = self.width
        for i in range(n):
            feedback = bin(state & tap_mask).count("1") & 1
            state = ((state << 1) | feedback) & mask
            out[i] = state
        self._state = state
        return out

    def bits(self, n: int) -> np.ndarray:
        """Return ``n`` single-bit outputs (the register MSB) as bools."""
        states = self.sequence(n)
        return ((states >> (self.width - 1)) & 1).astype(bool)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LFSR(width={self.width}, taps={self.taps}, state={self._state})"
