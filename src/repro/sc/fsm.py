"""Saturating-counter finite-state-machine engine.

Both SC activation functions in the paper are saturating counters:

* **Stanh** (Figure 6) — a K-state FSM stepping ±1 per input bit;
* **Btanh** — a saturated up/down counter stepping by the (signed) binary
  output of the APC each cycle.

The engine runs a *blocked clamp-composition scan* instead of one Python
iteration per cycle.  The key fact is that saturating-add steps compose in
closed form: every composition of ``x -> clip(x + a, lo, hi)`` steps is a
function of the shape ``x -> min(max(x + S, U), V)``, and composing one
more step updates the triple by

    ``S += a``,  ``U = max(U + a, lo)``,  ``V = clip(V + a, lo, hi)``.

Within a block of ``B`` cycles, ``S`` is a cumulative sum, ``U`` unrolls to
``lo + S - running_min(S)`` (running extrema — no loop), and only ``V``
needs a scan of ``B`` vectorized steps.  Block entry states then propagate
across the ``T/B`` blocks through each block's final triple, and all
per-cycle states evaluate in one vectorized ``min(max(...))``.  Python-level
iterations drop from ``T`` to ``B + T/B ≈ 2√T`` (see DESIGN.md,
"word-level engine"); the per-cycle loop this replaces cost ``T``
iterations of O(batch) numpy work.
"""

from __future__ import annotations

import numpy as np

import repro.native as native
from repro.utils.validation import check_positive_int

__all__ = ["saturating_counter"]


def _block_size(n_cycles: int) -> int:
    """Default block length: ≈√T bounded to a dispatch-friendly range."""
    root = int(round(float(n_cycles) ** 0.5))
    return max(1, min(max(root, 8), 128, n_cycles))


def saturating_counter(
    increments: np.ndarray,
    n_states: int,
    init: int = None,
    threshold: int = None,
    block: int = None,
) -> np.ndarray:
    """Run a saturating up/down counter over per-cycle increments.

    Parameters
    ----------
    increments:
        Integer array of shape ``(..., T)``; the counter adds
        ``increments[..., t]`` at cycle ``t`` and saturates into
        ``[0, n_states - 1]``.
    n_states:
        Number of counter states (the paper's ``K``).
    init:
        Initial state; defaults to ``n_states // 2`` (the FSM's centre,
        so a zero-mean input yields a zero-mean bipolar output).
    threshold:
        Output is 1 whenever the *updated* state is ``>= threshold``.
        Defaults to ``n_states // 2`` — the right half of the Figure 6
        diagram.  The re-designed Stanh of Figure 11 passes
        ``round(n_states / 5)`` instead.
    block:
        Cycles per scan block; defaults to ≈``√T``.  Any value produces
        identical output (the composition is exact) — this only tunes how
        the ``B + T/B`` Python-level iterations split; the work arrays
        always span the full ``T`` cycles regardless.

    Returns
    -------
    Boolean array of shape ``(..., T)`` — the output bit-stream(s).
    """
    n_states = check_positive_int(n_states, "n_states")
    inc = np.asarray(increments)
    if not np.issubdtype(inc.dtype, np.integer):
        raise ValueError(f"increments must be integers, got dtype {inc.dtype}")
    if init is None:
        init = n_states // 2
    if threshold is None:
        threshold = n_states // 2
    if not 0 <= init <= n_states - 1:
        raise ValueError(f"init state {init} outside [0, {n_states - 1}]")

    T = inc.shape[-1]
    hi = n_states - 1
    if T == 0:
        return np.empty(inc.shape, dtype=bool)
    if native.enabled():
        # Native tier: a plain sequential scan beats the blocked
        # composition once the per-cycle step is one compiled clamp;
        # ``block`` only tunes the NumPy path and never changes output.
        return native.saturating_counter(inc, n_states, init, threshold)
    B = check_positive_int(block, "block") if block else _block_size(T)
    B = min(B, T)
    nblocks = -(-T // B)
    pad = nblocks * B - T
    if pad:
        # Zero increments are identity steps; the padded tail is discarded.
        inc = np.concatenate(
            [inc, np.zeros(inc.shape[:-1] + (pad,), dtype=inc.dtype)],
            axis=-1,
        )
    # int32 is ample unless a block's partial sums could overflow it; for
    # narrow increment dtypes the dtype bound settles it without a scan.
    if inc.dtype.itemsize <= 2:
        maxabs = 1 << (8 * inc.dtype.itemsize)
    else:
        maxabs = int(np.abs(inc).max()) if inc.size else 0
    work = np.int32 if (maxabs + 1) * (B + 1) + n_states < 2**31 else np.int64
    a = inc.reshape(inc.shape[:-1] + (nblocks, B)).astype(work)

    P = np.cumsum(a, axis=-1)                       # composed shifts S
    U = P - np.minimum.accumulate(P, axis=-1)       # lo = 0 closed form
    V = np.empty_like(P)
    V[..., 0] = hi
    v = np.full(a.shape[:-1], hi, dtype=work)
    for j in range(1, B):
        np.add(v, a[..., j], out=v)
        np.clip(v, 0, hi, out=v)
        V[..., j] = v

    entry = np.empty(a.shape[:-1], dtype=work)
    e = np.full(a.shape[:-2], init, dtype=work)
    Pe, Ue, Ve = P[..., -1], U[..., -1], V[..., -1]
    for b in range(nblocks):
        entry[..., b] = e
        e = np.minimum(np.maximum(e + Pe[..., b], Ue[..., b]), Ve[..., b])

    P += entry[..., None]
    np.maximum(P, U, out=P)
    np.minimum(P, V, out=P)
    out = P >= threshold
    return out.reshape(out.shape[:-2] + (nblocks * B,))[..., :T]
