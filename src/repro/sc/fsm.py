"""Saturating-counter finite-state-machine engine.

Both SC activation functions in the paper are saturating counters:

* **Stanh** (Figure 6) — a K-state FSM stepping ±1 per input bit;
* **Btanh** — a saturated up/down counter stepping by the (signed) binary
  output of the APC each cycle.

This module provides one vectorized engine for both.  The per-cycle loop
is unavoidable (each state depends on the previous one), but it is
vectorized across the batch: simulating every neuron of a LeNet-5 layer
costs ``length`` iterations of O(neurons) numpy work.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["saturating_counter"]


def saturating_counter(
    increments: np.ndarray,
    n_states: int,
    init: int = None,
    threshold: int = None,
) -> np.ndarray:
    """Run a saturating up/down counter over per-cycle increments.

    Parameters
    ----------
    increments:
        Integer array of shape ``(..., T)``; the counter adds
        ``increments[..., t]`` at cycle ``t`` and saturates into
        ``[0, n_states - 1]``.
    n_states:
        Number of counter states (the paper's ``K``).
    init:
        Initial state; defaults to ``n_states // 2`` (the FSM's centre,
        so a zero-mean input yields a zero-mean bipolar output).
    threshold:
        Output is 1 whenever the *updated* state is ``>= threshold``.
        Defaults to ``n_states // 2`` — the right half of the Figure 6
        diagram.  The re-designed Stanh of Figure 11 passes
        ``round(n_states / 5)`` instead.

    Returns
    -------
    Boolean array of shape ``(..., T)`` — the output bit-stream(s).
    """
    n_states = check_positive_int(n_states, "n_states")
    inc = np.asarray(increments)
    if not np.issubdtype(inc.dtype, np.integer):
        raise ValueError(f"increments must be integers, got dtype {inc.dtype}")
    if init is None:
        init = n_states // 2
    if threshold is None:
        threshold = n_states // 2
    if not 0 <= init <= n_states - 1:
        raise ValueError(f"init state {init} outside [0, {n_states - 1}]")

    T = inc.shape[-1]
    state = np.full(inc.shape[:-1], init, dtype=np.int64)
    out = np.empty(inc.shape, dtype=bool)
    hi = n_states - 1
    for t in range(T):
        state += inc[..., t]
        np.clip(state, 0, hi, out=state)
        out[..., t] = state >= threshold
    return out
