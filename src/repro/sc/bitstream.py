"""The :class:`Bitstream` container.

A ``Bitstream`` wraps a packed uint8 array holding one stream — or a whole
batch of streams (leading axes are batch axes, the stream axis is last) —
together with its length and encoding.  Logic operators are overloaded with
their stochastic-computing meanings where unambiguous:

* ``a & b`` — AND (unipolar multiply),
* ``a ^ b`` — XOR,
* ``~a``   — NOT (value ``1 - x`` unipolar, ``-x`` bipolar),
* ``a.xnor(b)`` — XNOR (bipolar multiply),
* ``a | b`` — OR (the approximate adder of Figure 5a).

Value decoding (:meth:`value`) inverts the encoding of
:mod:`repro.sc.encoding`.

All reductions (:meth:`popcount`, :meth:`segment_counts`) delegate to the
word-level kernels of :mod:`repro.sc.ops` and therefore never unpack; the
wrapper also maintains the zero-padding-bits invariant those kernels rely
on (see DESIGN.md, "word-level engine").
"""

from __future__ import annotations

import numpy as np

from repro.sc import ops
from repro.sc.encoding import Encoding, from_probability
from repro.utils.validation import check_stream_length

__all__ = ["Bitstream"]


class Bitstream:
    """A (batch of) packed stochastic bit-stream(s).

    Parameters
    ----------
    data:
        Packed uint8 array of shape ``(..., ceil(length / 8))``.
    length:
        Number of valid bits per stream.
    encoding:
        :class:`~repro.sc.encoding.Encoding` used by :meth:`value`.

    Most users construct streams through an SNG
    (:class:`repro.sc.rng.IdealSNG` / :class:`repro.sc.rng.LfsrSNG`) or via
    :meth:`from_bits`.
    """

    __slots__ = ("data", "length", "encoding")

    def __init__(self, data: np.ndarray, length: int, encoding: Encoding):
        length = check_stream_length(length)
        data = np.asarray(data, dtype=np.uint8)
        nbytes = ops.packed_nbytes(length)
        if data.shape[-1] != nbytes:
            raise ValueError(
                f"packed data last axis is {data.shape[-1]} bytes but "
                f"length {length} requires {nbytes}"
            )
        if not isinstance(encoding, Encoding):
            raise ValueError(f"encoding must be an Encoding, got {encoding!r}")
        self.data = data
        self.length = length
        self.encoding = encoding

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_bits(cls, bits, encoding: Encoding = Encoding.BIPOLAR) -> "Bitstream":
        """Build a stream from an explicit bit array (stream axis last)."""
        bits = np.asarray(bits)
        length = bits.shape[-1]
        return cls(ops.pack_bits(bits), length, encoding)

    @classmethod
    def zeros(cls, shape, length: int,
              encoding: Encoding = Encoding.BIPOLAR) -> "Bitstream":
        """All-zeros stream(s): value 0 (unipolar) or -1 (bipolar)."""
        if isinstance(shape, int):
            shape = (shape,)
        nbytes = ops.packed_nbytes(length)
        return cls(np.zeros(tuple(shape) + (nbytes,), dtype=np.uint8),
                   length, encoding)

    @classmethod
    def ones(cls, shape, length: int,
             encoding: Encoding = Encoding.BIPOLAR) -> "Bitstream":
        """All-ones stream(s): value 1 in either encoding."""
        if isinstance(shape, int):
            shape = (shape,)
        nbytes = ops.packed_nbytes(length)
        data = np.broadcast_to(
            ops.pad_mask(length), tuple(shape) + (nbytes,)
        ).copy()
        return cls(data, length, encoding)

    # ------------------------------------------------------------------
    # introspection / decoding
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        """Batch shape (excludes the packed byte axis)."""
        return self.data.shape[:-1]

    def popcount(self) -> np.ndarray:
        """Number of ones per stream."""
        return ops.popcount(self.data, self.length)

    def probability(self) -> np.ndarray:
        """Fraction of ones per stream, ``P(X = 1)``."""
        return self.popcount() / float(self.length)

    def value(self) -> np.ndarray:
        """Decode the stream(s) to real value(s) under ``self.encoding``."""
        return from_probability(self.probability(), self.encoding)

    def to_bits(self) -> np.ndarray:
        """Unpack to a uint8 bit array of shape ``shape + (length,)``."""
        return ops.unpack_bits(self.data, self.length)

    def segment_counts(self, segment: int) -> np.ndarray:
        """Per-segment ones counts (hardware max-pooling counters)."""
        return ops.segment_popcount(self.data, self.length, segment)

    # ------------------------------------------------------------------
    # logic operators (stochastic arithmetic)
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "Bitstream") -> None:
        if not isinstance(other, Bitstream):
            raise TypeError(f"expected Bitstream, got {type(other).__name__}")
        if other.length != self.length:
            raise ValueError(
                f"stream length mismatch: {self.length} vs {other.length}"
            )
        if other.encoding is not self.encoding:
            raise ValueError(
                f"encoding mismatch: {self.encoding} vs {other.encoding}"
            )

    def __and__(self, other: "Bitstream") -> "Bitstream":
        self._check_compatible(other)
        return Bitstream(ops.and_(self.data, other.data), self.length,
                         self.encoding)

    def __or__(self, other: "Bitstream") -> "Bitstream":
        self._check_compatible(other)
        return Bitstream(ops.or_(self.data, other.data), self.length,
                         self.encoding)

    def __xor__(self, other: "Bitstream") -> "Bitstream":
        self._check_compatible(other)
        return Bitstream(ops.xor_(self.data, other.data), self.length,
                         self.encoding)

    def __invert__(self) -> "Bitstream":
        return Bitstream(ops.not_(self.data, self.length), self.length,
                         self.encoding)

    def xnor(self, other: "Bitstream") -> "Bitstream":
        """XNOR — the bipolar stochastic multiplier (Figure 4b)."""
        self._check_compatible(other)
        return Bitstream(ops.xnor_(self.data, other.data, self.length),
                         self.length, self.encoding)

    def multiply(self, other: "Bitstream") -> "Bitstream":
        """Encoding-aware stochastic multiply: AND (unipolar), XNOR (bipolar)."""
        if self.encoding is Encoding.UNIPOLAR:
            return self & other
        return self.xnor(other)

    # ------------------------------------------------------------------
    # batching helpers
    # ------------------------------------------------------------------
    def __getitem__(self, idx) -> "Bitstream":
        """Index the batch axes (the packed byte axis is preserved)."""
        data = self.data[idx]
        if data.ndim == 0 or data.shape[-1] != self.data.shape[-1]:
            raise IndexError("cannot index into the packed byte axis")
        return Bitstream(data, self.length, self.encoding)

    @classmethod
    def stack(cls, streams, axis: int = 0) -> "Bitstream":
        """Stack compatible streams along a new batch axis."""
        streams = list(streams)
        if not streams:
            raise ValueError("cannot stack zero streams")
        first = streams[0]
        for s in streams[1:]:
            first._check_compatible(s)
        if axis < 0:
            raise ValueError("axis must be non-negative (byte axis is last)")
        data = np.stack([s.data for s in streams], axis=axis)
        return cls(data, first.length, first.encoding)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Bitstream(shape={self.shape}, length={self.length}, "
                f"encoding={self.encoding})")
