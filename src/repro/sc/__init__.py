"""Stochastic-computing substrate.

This subpackage implements everything Section 3.2 of the paper describes:

* unipolar / bipolar encodings and pre-scaling (``encoding``),
* stochastic number generators — maximal-length LFSRs and an ideal PRNG
  comparator SNG (``lfsr``, ``rng``),
* a packed, batch-aware bit-stream container (``bitstream``) with
  vectorized logic operations (``ops``),
* the four stochastic addition designs of Figure 5 — OR gate, multiplexer,
  approximate parallel counter and two-line representation (``adders``,
  ``twoline``),
* FSM / saturating-counter activation functions — Stanh, the re-designed
  Stanh of Figure 11 and Btanh (``fsm``, ``activation``).
"""

from repro.sc.encoding import Encoding, to_probability, from_probability, prescale
from repro.sc.bitstream import Bitstream
from repro.sc.lfsr import LFSR, maximal_taps
from repro.sc.rng import IdealSNG, LfsrSNG, StreamFactory
from repro.sc.correlation import scc, pearson, decorrelate
from repro.sc import ops, adders, activation, twoline, correlation

__all__ = [
    "Encoding",
    "to_probability",
    "from_probability",
    "prescale",
    "Bitstream",
    "LFSR",
    "maximal_taps",
    "IdealSNG",
    "LfsrSNG",
    "StreamFactory",
    "scc",
    "pearson",
    "decorrelate",
    "ops",
    "adders",
    "activation",
    "twoline",
    "correlation",
]
