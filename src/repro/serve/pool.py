"""Thread-safe engine pool: hot compiled plans shared across workers.

Serving traffic must not pay per-request compilation: quantizing the
stored-weight variants and drawing every layer's weight streams costs
orders of magnitude more than one micro-batched inference.  The pool
therefore caches two tiers behind one lock:

* **plans** — :class:`repro.engine.plan.CompiledPlan` keyed by
  ``(model digest, config digest, weight_bits)`` per stream length.  A
  request for a new length first tries :meth:`CompiledPlan.with_length`
  on a cached sibling, so length variants of one design point share
  quantized weights (all-APC configurations even share whole layer
  plans);
* **engines** — constructed :class:`repro.engine.engine.Engine`
  instances keyed by ``(backend, model digest, config digest, stream
  length, weight_bits, seed, opts)``, with LRU eviction bounded by
  ``max_engines`` (an exact engine's weight streams dominate the pool's
  memory; the plan tier underneath stays warm so a re-admitted engine
  only re-draws streams, never re-quantizes).

Every key includes the **model digest** (structure + trained parameter
fingerprint, :func:`repro.nn.zoo.model_digest`): a pool may hold several
zoo models, and two models with identical configs-ex-length must never
share quantized weights or weight streams.

The pool holds the lock across misses: constructing an engine twice
because two workers raced would cost more than briefly serializing them,
and the batcher in front of the pool keeps the hot path to lookups.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

from repro import obs
from repro.core.config import NetworkConfig
from repro.engine import Engine, build_graph, compile_plan
from repro.engine.plan import normalize_weight_bits
from repro.nn.zoo import model_digest, weight_layer_count

__all__ = ["EnginePool", "config_digest"]

DEFAULT_MODEL = "default"

_LOOKUPS_TOTAL = "repro_pool_lookups_total"
_LOOKUPS_HELP = "Engine-pool lookups, by outcome."
_PLANS_TOTAL = "repro_pool_plan_builds_total"
_PLANS_HELP = "Plan-tier builds, by how the plan was obtained."


def config_digest(config: NetworkConfig) -> str:
    """Stable digest of a design point, excluding stream length and name.

    Two configurations that differ only in ``length`` (or the cosmetic
    ``name`` label) share a digest — that is what lets the pool re-target
    a cached plan via ``with_length`` instead of recompiling.  The digest
    deliberately excludes the *model*: pair it with
    :func:`repro.nn.zoo.model_digest` wherever compiled artifacts are
    keyed.
    """
    spec = (config.pooling.value,
            tuple((layer.ip_kind.value, layer.n_states)
                  for layer in config.layers))
    return hashlib.sha1(repr(spec).encode("utf8")).hexdigest()[:16]


class EnginePool:
    """LRU cache of compiled plans and constructed engines over a model set.

    Parameters
    ----------
    model:
        A trained :class:`repro.nn.module.Sequential` (registered under
        the name ``"default"``) or a ``{name: model}`` mapping for
        multi-model serving.
    max_engines:
        Engine-tier capacity; least-recently-used engines are evicted
        beyond it.
    max_plans:
        Plan-tier capacity.  Plans are small next to engines (no weight
        streams), so the default keeps more of them.
    """

    def __init__(self, model, max_engines: int = 8, max_plans: int = 32):
        if max_engines < 1 or max_plans < 1:
            raise ValueError("max_engines and max_plans must be >= 1")
        if isinstance(model, dict):
            if not model:
                raise ValueError("the model mapping must not be empty")
            self.models = dict(model)
        else:
            self.models = {DEFAULT_MODEL: model}
        self.default_model = next(iter(self.models))
        self._digests = {name: model_digest(m)
                         for name, m in self.models.items()}
        self.max_engines = int(max_engines)
        self.max_plans = int(max_plans)
        self._lock = threading.RLock()
        self._plans = OrderedDict()    # (mdigest, cdigest, bits, length)
        self._engines = OrderedDict()  # engine key -> Engine
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._plans_compiled = 0
        self._plans_rederived = 0

    # ------------------------------------------------------------------
    @property
    def model(self):
        """The default model (single-model construction compatibility)."""
        return self.models[self.default_model]

    def _resolve_model(self, model):
        """Map a model spec (``None`` / registered name) to (name, model)."""
        if model is None:
            model = self.default_model
        if model not in self.models:
            raise ValueError(
                f"unknown model {model!r}; this pool serves: "
                f"{', '.join(sorted(self.models))}")
        return model, self.models[model]

    def _bits(self, model_obj, weight_bits):
        return normalize_weight_bits(
            weight_bits, n_layers=weight_layer_count(model_obj))

    def engine_key(self, config: NetworkConfig, backend: str = "exact",
                   weight_bits=None, seed: int = 0, model=None,
                   **backend_opts):
        """The pool key an engine for this request would live under."""
        name, model_obj = self._resolve_model(model)
        return (backend, self._digests[name], config_digest(config),
                config.length, self._bits(model_obj, weight_bits),
                int(seed), tuple(sorted(backend_opts.items())))

    def _plan_for(self, name: str, config: NetworkConfig, bits):
        """Cached plan for (model, digest, bits, length); compiles on miss.

        Misses prefer re-targeting a cached sibling length via
        ``with_length`` (shares raw-quantized weights, and whole layer
        plans when no state number changes) over compiling from scratch.
        """
        mdigest = self._digests[name]
        digest = config_digest(config)
        key = (mdigest, digest, bits, config.length)
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            return plan
        sibling_key, sibling = next(
            ((k, p) for k, p in reversed(self._plans.items())
             if k[:3] == (mdigest, digest, bits)), (None, None))
        if sibling is not None:
            # Using a sibling as the re-target source is a use: refresh
            # its LRU position so the family's canonical plan is not
            # evicted while it is still what new lengths derive from.
            self._plans.move_to_end(sibling_key)
            plan = sibling.with_length(config.length, name=config.name)
            self._plans_rederived += 1
            obs.counter(_PLANS_TOTAL, _PLANS_HELP, how="rederived").inc()
        else:
            plan = compile_plan(build_graph(self.models[name], config),
                                weight_bits=bits)
            self._plans_compiled += 1
            obs.counter(_PLANS_TOTAL, _PLANS_HELP, how="compiled").inc()
        self._plans[key] = plan
        while len(self._plans) > self.max_plans:
            self._plans.popitem(last=False)
        return plan

    def get(self, config: NetworkConfig, backend: str = "exact",
            weight_bits=None, seed: int = 0, model=None,
            **backend_opts) -> Engine:
        """The pooled engine for a request spec (constructed on miss).

        ``model`` selects a registered model by name (``None`` = the
        pool's default).
        """
        name, model_obj = self._resolve_model(model)
        bits = self._bits(model_obj, weight_bits)
        key = self.engine_key(config, backend, bits, seed, model=name,
                              **backend_opts)
        with self._lock:
            engine = self._engines.get(key)
            if engine is not None:
                self._engines.move_to_end(key)
                self._hits += 1
                obs.counter(_LOOKUPS_TOTAL, _LOOKUPS_HELP,
                            outcome="hit").inc()
                return engine
            self._misses += 1
            obs.counter(_LOOKUPS_TOTAL, _LOOKUPS_HELP,
                        outcome="miss").inc()
            plan = self._plan_for(name, config, bits)
            engine = Engine(backend=backend, seed=seed, plan=plan,
                            **backend_opts)
            self._engines[key] = engine
            while len(self._engines) > self.max_engines:
                self._engines.popitem(last=False)
                self._evictions += 1
                obs.counter("repro_pool_evictions_total",
                            "Engines evicted from the pool (LRU).").inc()
            return engine

    def warm_up(self, specs) -> int:
        """Preload engines for an iterable of request specs.

        Each spec is a ``(config, backend)`` pair or a dict of
        :meth:`get` keyword arguments; returns how many engines were
        newly constructed *by this call* (already-warm specs count zero,
        and concurrent traffic's own misses are not attributed here —
        the lock is reentrant, so the check and the build are atomic).
        """
        built = 0
        for spec in specs:
            kwargs = dict(spec) if isinstance(spec, dict) else \
                {"config": spec[0], "backend": spec[1]}
            with self._lock:
                if self.engine_key(**kwargs) not in self._engines:
                    built += 1
                self.get(**kwargs)
        return built

    def stats(self) -> dict:
        """Counters snapshot, including the ``/stats`` hit rate."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "models": sorted(self.models),
                "engines": len(self._engines),
                "plans": len(self._plans),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": round(self._hits / lookups, 4) if lookups else None,
                "plans_compiled": self._plans_compiled,
                "plans_rederived": self._plans_rederived,
            }
