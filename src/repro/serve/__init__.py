"""``repro.serve`` — dynamic micro-batching inference service.

The serving subsystem turns the unified layer-graph engine into a
servable system: concurrent single-image requests are coalesced into
micro-batches (where the batched exact backend is ~3x faster per image
than request-at-a-time execution), hot compiled plans and engines are
shared contention-free across worker threads, and a stdlib HTTP JSON
API exposes prediction, liveness and telemetry endpoints.

Layers, bottom-up:

* :mod:`repro.serve.pool` — :class:`EnginePool`, the thread-safe LRU
  cache of compiled plans and constructed engines;
* :mod:`repro.serve.batcher` — :class:`MicroBatcher`, the queue +
  worker-thread coalescer with a ``max_batch``/``max_wait_ms`` policy;
* :mod:`repro.serve.service` — :class:`InferenceService`, the
  embeddable in-process service tying pool, batcher and telemetry
  together (plus :class:`RequestResolver`, the engine-free request
  validation shared with the multi-process frontend);
* :mod:`repro.serve.procpool` — :class:`ProcServeFacade`, N worker
  processes behind a spec-affine routing frontend, with compiled plans
  shared zero-copy through a :class:`PlanArena` of
  ``multiprocessing.shared_memory`` segments (``--procs N``);
* :mod:`repro.serve.server` — the ``ThreadingHTTPServer`` JSON API
  (``POST /predict``, ``GET /healthz``, ``GET /stats``);
* :mod:`repro.serve.stats` — :class:`LatencyTracker` telemetry.

Exact-backend responses are *bit-identical* to dedicated single-request
``Engine.predict`` calls with the same per-request seed, no matter how
requests are coalesced — the guarantee rests on
:meth:`repro.engine.exact.ExactBackend.forward_independent` (see
DESIGN.md, "Serving layer").

Start a server from the shell::

    python -m repro serve --port 8100 --backend exact --length 64

or embed the service::

    from repro.serve import InferenceService
    service = InferenceService(trained_model, length=64)
    pred = service.predict_one(image)
"""

from repro.serve.batcher import (
    DeadlineExceeded,
    MicroBatcher,
    QueueFull,
    Ticket,
)
from repro.serve.pool import EnginePool
from repro.serve.procpool import PlanArena, ProcServeFacade
from repro.serve.server import ServeHTTPServer, create_server, run_server
from repro.serve.service import (
    InferenceService,
    RequestResolver,
    ServiceDraining,
    payload_fingerprint,
)
from repro.serve.stats import LatencyTracker

__all__ = [
    "DeadlineExceeded",
    "EnginePool",
    "MicroBatcher",
    "PlanArena",
    "ProcServeFacade",
    "QueueFull",
    "RequestResolver",
    "ServeHTTPServer",
    "ServiceDraining",
    "Ticket",
    "InferenceService",
    "LatencyTracker",
    "create_server",
    "payload_fingerprint",
    "run_server",
]
