"""In-process inference service: pool + micro-batcher + telemetry.

:class:`InferenceService` is the embeddable core the HTTP server wraps
(and the right entry point for Python callers — tests and the load
generator drive it directly).  A request is a single 28×28 bipolar image
plus an optional spec override (model, backend, stream length, FEB
kinds, pooling, weight bits, seed); the service:

1. resolves the spec against its defaults into a canonical
   :class:`repro.core.config.NetworkConfig` and a hashable *group key* —
   everything two requests must agree on to share one engine call;
2. enqueues the image on the :class:`repro.serve.batcher.MicroBatcher`,
   which coalesces concurrent same-group requests into one batched
   engine call bounded by ``max_batch``/``max_wait_ms``;
3. serves the batch from the :class:`repro.serve.pool.EnginePool`'s
   shared engine.  Exact-backend batches run through
   ``forward_independent``, so every response is bit-identical to a
   dedicated single-request ``Engine.predict`` with the same per-request
   seed regardless of what it was coalesced with.  Stateful float-domain
   backends (``surrogate``/``noise`` draw sampled noise) are serialized
   per engine instead — their responses are statistically, not bitwise,
   batch-invariant; ``float`` is deterministic either way.

Multi-image requests fan out into per-image queue entries, so they both
benefit from and contribute to coalescing.

Failure model: request ``timeout`` becomes a queue *deadline* — a
request still queued past it is shed before compute
(:class:`~repro.serve.batcher.DeadlineExceeded`, HTTP 504) rather than
burning engine time on an abandoned wait.  :meth:`InferenceService.
drain` flips the service into drain mode: new requests are refused with
:class:`ServiceDraining` (HTTP 503 + ``Retry-After``) while in-flight
work runs to completion (:meth:`InferenceService.await_idle`) — the
SIGTERM path of :func:`repro.serve.server.run_server`.
"""

from __future__ import annotations

import hashlib
import threading
import time

import numpy as np

from repro import faults, obs
from repro.core.config import (
    NetworkConfig,
    resolve_kinds,
    resolve_pooling,
)
from repro.data.scenes import Scene
from repro.data.synthetic_mnist import to_bipolar
from repro.engine import get_backend
from repro.engine.engine import as_image_batch
from repro.engine.plan import normalize_weight_bits
from repro.engine.tiled import SceneResult, extract_windows, reduce_scene
from repro.nn.zoo import hidden_layer_count, input_geometry
from repro.serve.batcher import DeadlineExceeded, MicroBatcher
from repro.serve.pool import EnginePool
from repro.serve.stats import LatencyTracker

# re-exported for serving callers; the parsers live with the config
# domain in repro.core.config
__all__ = ["InferenceService", "RequestResolver", "ServiceDraining",
           "payload_fingerprint", "resolve_pooling", "resolve_kinds"]


class ServiceDraining(RuntimeError):
    """The service is draining (shutdown in progress): new requests are
    refused; the HTTP layer maps this to 503 with a ``Retry-After``."""


def payload_fingerprint(image) -> str:
    """Stable 12-hex digest of one request payload.

    Fault-injection specs target a *specific* request with
    ``site="serve.request", match=payload_fingerprint(img)`` — stable
    under re-batching and bisection, unlike occurrence counting.
    """
    arr = np.ascontiguousarray(np.asarray(image, dtype=np.float64))
    return hashlib.sha1(arr.tobytes()).hexdigest()[:12]


class RequestResolver:
    """Request-spec resolution over a model set, engine-free.

    Everything the serving layer must decide about a request *before*
    touching an engine lives here: validating per-request overrides
    against the hosted models, resolving them into a canonical
    :class:`~repro.core.config.NetworkConfig`, and deriving the hashable
    *group key* — the fields two requests must agree on to share one
    batched engine call.  :class:`InferenceService` composes one, and the
    multi-process frontend (:mod:`repro.serve.procpool`) uses its own to
    reject malformed requests with a 400 and pick a worker **without**
    crossing a process boundary.

    All failures raise ``ValueError`` — the HTTP layer's 400 class.
    """

    def __init__(self, models: dict, *, default_model: str,
                 backend: str = "exact", length: int = 64, kinds=None,
                 pooling="max", weight_bits=None, seed: int = 0):
        #: per-model (hidden layer count, input shape) — the request
        #: facts validated before any engine work
        self._models_meta = {
            name: (hidden_layer_count(m), input_geometry(m))
            for name, m in models.items()}
        if default_model not in self._models_meta:
            raise ValueError(f"default model {default_model!r} is not "
                             "among the hosted models")
        self.defaults = {
            "model": default_model,
            "backend": backend,
            "length": int(length),
            "kinds": None if kinds is None else resolve_kinds(kinds),
            "pooling": resolve_pooling(pooling),
            "weight_bits": weight_bits,
            "seed": int(seed),
        }
        get_backend(backend)  # fail fast on an unknown default

    def resolve(self, overrides: dict):
        """Resolve per-request overrides into ``(group_key, config, spec)``.

        Raises ``ValueError`` on any malformed field — the HTTP layer
        maps that to a 400.
        """
        unknown = set(overrides) - set(self.defaults)
        if unknown:
            raise ValueError(
                f"unknown request fields: {sorted(unknown)}; "
                f"allowed: {sorted(self.defaults)}")
        spec = dict(self.defaults)
        spec.update(overrides)
        backend = str(spec["backend"])
        get_backend(backend)
        model = str(spec["model"])
        hidden, _ = self.model_meta(model)
        try:
            kinds = (("APC",) * hidden if spec["kinds"] is None
                     else resolve_kinds(spec["kinds"], n_layers=hidden))
            config = NetworkConfig.from_kinds(
                resolve_pooling(spec["pooling"]), int(spec["length"]),
                kinds)
            bits = normalize_weight_bits(spec["weight_bits"],
                                         n_layers=hidden + 1)
            seed = int(spec["seed"])
        except TypeError as exc:
            # e.g. length=None or weight_bits=1.5 — a caller error, not
            # an internal one; keep the ValueError contract of resolve
            raise ValueError(f"malformed request field: {exc}") from exc
        key = (model, backend, config, bits, seed)
        return key, config, spec

    def model_meta(self, model: str) -> tuple:
        """(hidden layer count, input shape) for a hosted model name.

        The single unknown-model check of the service layer; raises
        ``ValueError`` (→ HTTP 400) listing what is hosted.
        """
        try:
            return self._models_meta[model]
        except KeyError:
            raise ValueError(
                f"unknown model {model!r}; this service hosts: "
                f"{', '.join(sorted(self._models_meta))}") from None

    def input_shape(self, model=None) -> tuple:
        """A hosted model's ``(channels, height, width)`` input geometry."""
        model = self.defaults["model"] if model is None else str(model)
        return self.model_meta(model)[1]

    def as_images(self, images, model: str) -> np.ndarray:
        """Normalize request payload to the target model's pixel batch.

        Every malformed payload — wrong geometry, out-of-range values,
        or non-numeric content numpy raises ``TypeError`` for — surfaces
        as ``ValueError``, the HTTP layer's 400 class (pre-fix a
        non-numeric payload escaped as ``TypeError`` → 500).
        """
        try:
            return as_image_batch(images, bipolar=True,
                                  shape=self.model_meta(model)[1])
        except TypeError as exc:
            raise ValueError(
                f"malformed image payload: {exc}") from exc

    def resolve_scene(self, scene, model: str, stride=None):
        """Validate a scene request against a hosted model's geometry.

        Returns ``(scene, boxes, flat_windows)`` where ``flat_windows``
        is the bipolar ``(N, pixels)`` window batch ready for the
        engine.  Every malformed input — bad payload, multi-channel
        model, canvas smaller than the model tile, bad stride — raises
        ``ValueError`` (→ HTTP 400), *before* any engine work.
        """
        channels, h, w = self.model_meta(model)[1]
        if channels != 1:
            raise ValueError(
                f"scene requests need a single-channel model; "
                f"{model!r} consumes {channels}-channel input")
        if not isinstance(scene, Scene):
            scene = Scene.from_payload(scene)
        if stride is None:
            stride = h
        try:
            stride = int(stride)
        except (TypeError, ValueError):
            raise ValueError(
                f"stride must be an integer, got {stride!r}") from None
        windows, boxes = extract_windows(scene.canvas, (h, w), stride)
        flat = to_bipolar(windows.reshape(len(boxes), -1))
        return scene, boxes, flat

    def describe(self) -> dict:
        """JSON-ready rendering of the defaults (the ``/stats`` block)."""
        return {
            "model": self.defaults["model"],
            "backend": self.defaults["backend"],
            "length": self.defaults["length"],
            "kinds": (None if self.defaults["kinds"] is None
                      else ",".join(self.defaults["kinds"])),
            "pooling": self.defaults["pooling"].value.lower(),
            "weight_bits": self.defaults["weight_bits"],
            "seed": self.defaults["seed"],
        }


class InferenceService:
    """Micro-batched inference over pooled engines for a trained model set.

    Parameters
    ----------
    model:
        The trained model every request is served from — a single
        :class:`repro.nn.module.Sequential` (named ``"default"``) or a
        ``{name: model}`` mapping for multi-model serving; per-request
        ``model=<name>`` overrides pick among the registered entries.
    backend, length, kinds, pooling, weight_bits, seed:
        Default request spec; any field can be overridden per request.
        ``kinds=None`` means "all-APC at the target model's depth",
        resolved per request — the right default when models of
        different depths share the service.
    max_batch, max_wait_ms, workers, max_queue:
        Micro-batching policy (see :class:`MicroBatcher`); ``max_queue``
        is the backpressure bound (full queue → :class:`QueueFull`,
        surfaced as HTTP 503).
    max_engines:
        Engine-pool capacity (see :class:`EnginePool`).
    warm:
        Preload the default spec's engine at construction so the first
        request does not pay compilation + weight-stream drawing.
    """

    def __init__(self, model, *, backend: str = "exact", length: int = 64,
                 kinds=None, pooling="max",
                 weight_bits=None, seed: int = 0, max_batch: int = 16,
                 max_wait_ms: float = 2.0, workers: int = 1,
                 max_queue: int = 1024, max_engines: int = 8,
                 warm: bool = True):
        self.pool = EnginePool(model, max_engines=max_engines)
        self.resolver = RequestResolver(
            self.pool.models, default_model=self.pool.default_model,
            backend=backend, length=length, kinds=kinds, pooling=pooling,
            weight_bits=weight_bits, seed=seed)
        self.defaults = self.resolver.defaults
        self.batcher = MicroBatcher(self._run_batch, max_batch=max_batch,
                                    max_wait_ms=max_wait_ms,
                                    workers=workers, max_queue=max_queue)
        self.tracker = LatencyTracker()
        self._closed = False
        self._draining = False
        self._inflight = 0
        self._idle = threading.Condition()
        if warm:
            self.pool.get(self._resolve({})[1], backend=backend,
                          weight_bits=weight_bits, seed=self.defaults["seed"],
                          model=self.pool.default_model)

    # ------------------------------------------------------------------
    # request resolution (delegated to the shared resolver)
    # ------------------------------------------------------------------
    def _resolve(self, overrides: dict):
        return self.resolver.resolve(overrides)

    def _model_meta(self, model: str) -> tuple:
        return self.resolver.model_meta(model)

    def input_shape(self, model=None) -> tuple:
        """A hosted model's ``(channels, height, width)`` input geometry.

        Raises ``ValueError`` for unregistered names (the HTTP layer maps
        that to a 400, same as :meth:`predict` would).
        """
        return self.resolver.input_shape(model)

    def _as_images(self, images, model: str) -> np.ndarray:
        return self.resolver.as_images(images, model)

    # ------------------------------------------------------------------
    # batched execution (called by batcher workers)
    # ------------------------------------------------------------------
    def _run_batch(self, key, payloads):
        # A 6-tuple key is a scene-window group: same spec fields plus
        # the "logits" marker appended by predict_scene, so scene
        # windows coalesce among themselves and get raw logits back
        # (the reduction needs margins, not argmaxes) while plain
        # predict traffic keeps its 5-tuple key and argmax replies.
        want_logits = len(key) == 6
        model, backend_name, config, bits, seed = key[:5]
        if faults.active() is not None:
            # Per-payload site first: a spec matching one request's
            # fingerprint fails every batch containing it, so bisection
            # isolates exactly that request.  Then the whole-batch site.
            for payload in payloads:
                faults.fire("serve.request",
                            label=payload_fingerprint(payload))
            faults.fire("serve.compute",
                        label=f"{model}:{backend_name}:{len(payloads)}")
        engine = self.pool.get(config, backend=backend_name,
                               weight_bits=bits, seed=seed, model=model)
        batch = np.stack(payloads)
        backend = engine.backend
        if hasattr(backend, "forward_independent"):
            # Per-request stream-state forks: thread-safe on a shared
            # engine and bit-identical to single-request calls.
            logits = backend.forward_independent(batch)
        else:
            # Stateful float-domain backends mutate their noise RNG per
            # call; serialize per engine (the pool attaches the lock, so
            # its lifetime matches the engine's) so concurrent workers
            # never race it.
            with engine.serial_lock:
                logits = backend.forward(batch)
        if want_logits:
            return list(logits)
        return list(np.argmax(logits, axis=1))

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def predict(self, images, timeout: float = None, **overrides
                ) -> np.ndarray:
        """Class predictions for one or many images (blocking).

        Accepts a single image (``(784,)`` or ``(28, 28)``) or a batch;
        returns an ``(N,)`` int array.  Keyword overrides (``model``,
        ``backend``, ``length``, ``kinds``, ``pooling``, ``weight_bits``,
        ``seed``) replace the service defaults for this request only —
        ``model`` selects among the registered zoo entries.  Every image
        goes through the micro-batcher, so concurrent callers coalesce.
        ``timeout`` bounds the *whole* request, not each image — it also
        becomes the tickets' queue deadline, so a request that cannot be
        served in time is shed before compute
        (:class:`~repro.serve.batcher.DeadlineExceeded`) instead of
        evaluated for nobody.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        # The draining check and the inflight bump are atomic under
        # ``_idle``: a request must either be refused or be visible to
        # ``await_idle()`` from the instant it is accepted.  Checking
        # ``_draining`` outside the lock left a window where a request
        # racing ``drain()`` + ``await_idle()`` was accepted yet
        # invisible to the idle wait — its reply could be dropped on
        # SIGTERM.
        with self._idle:
            if self._draining:
                raise ServiceDraining(
                    "service is draining; not accepting new requests")
            self._inflight += 1
        start = time.monotonic()
        deadline = None if timeout is None else start + timeout
        tickets = []
        try:
            # Root span of the request lifecycle: tickets capture it at
            # submit time, so the batcher's queue/coalesce/compute spans
            # (recorded on worker threads) all parent back here.
            with obs.span("serve.predict",
                          model=str(overrides.get(
                              "model", self.defaults["model"])),
                          backend=str(overrides.get(
                              "backend", self.defaults["backend"]))):
                key, _, _ = self._resolve(overrides)
                batch = self._as_images(images, model=key[0])
                tickets = [self.batcher.submit(key, image,
                                               deadline=deadline)
                           for image in batch]
                preds = np.array(
                    [t.result(None if deadline is None
                              else max(deadline - time.monotonic(), 0.0))
                     for t in tickets],
                    dtype=np.int64)
        except (DeadlineExceeded, TimeoutError):
            # Abandon the whole request: sibling tickets still queued
            # would otherwise be computed for nobody.
            for ticket in tickets:
                ticket.cancel()
            self.tracker.record_shed()
            raise
        except Exception:
            self.tracker.record_error()
            raise
        finally:
            with self._idle:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()
        self.tracker.record(time.monotonic() - start)
        return preds

    def predict_one(self, image, timeout: float = None, **overrides) -> int:
        """Single-image convenience wrapper around :meth:`predict`."""
        return int(self.predict(image, timeout=timeout, **overrides)[0])

    def predict_scene(self, scene, stride: int = None,
                      timeout: float = None, **overrides) -> SceneResult:
        """Tiled inference over a composite scene (blocking).

        ``scene`` is a :class:`repro.data.scenes.Scene` or its JSON
        payload form.  One request fans out into a per-window ticket
        batch on the micro-batcher — all windows of a scene share one
        group key (the request spec plus a ``"logits"`` marker), so
        they coalesce into engine calls together (and with concurrent
        same-spec scene traffic).  With the exact backend every
        window's logits are bit-identical to a dedicated single-window
        run, so scene replies do not depend on batching or worker
        count.  ``stride`` defaults to the model tile height
        (non-overlapping windows); returns a
        :class:`repro.engine.tiled.SceneResult`.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        with self._idle:
            if self._draining:
                raise ServiceDraining(
                    "service is draining; not accepting new requests")
            self._inflight += 1
        start = time.monotonic()
        deadline = None if timeout is None else start + timeout
        tickets = []
        try:
            with obs.span("serve.scene",
                          model=str(overrides.get(
                              "model", self.defaults["model"])),
                          backend=str(overrides.get(
                              "backend", self.defaults["backend"]))):
                key, _, _ = self._resolve(overrides)
                scene, boxes, flat = self.resolver.resolve_scene(
                    scene, model=key[0], stride=stride)
                logits_key = key + ("logits",)
                tickets = [self.batcher.submit(logits_key, window,
                                               deadline=deadline)
                           for window in flat]
                logits = np.stack(
                    [np.asarray(
                        t.result(None if deadline is None
                                 else max(deadline - time.monotonic(),
                                          0.0)),
                        dtype=np.float64)
                     for t in tickets])
                cell_preds, cell_windows = reduce_scene(
                    scene.kind, [c.box for c in scene.cells], boxes,
                    logits)
                result = SceneResult(kind=scene.kind, boxes=boxes,
                                     window_logits=logits,
                                     cell_preds=cell_preds,
                                     cell_windows=cell_windows)
        except (DeadlineExceeded, TimeoutError):
            for ticket in tickets:
                ticket.cancel()
            self.tracker.record_shed()
            raise
        except Exception:
            self.tracker.record_error()
            raise
        finally:
            with self._idle:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()
        self.tracker.record(time.monotonic() - start)
        return result

    # ------------------------------------------------------------------
    # drain / shutdown
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self) -> None:
        """Stop accepting new requests; in-flight ones run to completion.

        Idempotent.  Pair with :meth:`await_idle` then :meth:`close` for
        a graceful shutdown that never drops an accepted request.
        """
        # Under ``_idle`` so it serializes against the accept path: once
        # drain() returns, every in-flight request is counted.
        with self._idle:
            self._draining = True

    def await_idle(self, timeout: float = None) -> bool:
        """Block until no request is in flight; False on timeout."""
        with self._idle:
            return self._idle.wait_for(lambda: self._inflight == 0,
                                       timeout)

    def stats(self) -> dict:
        """Aggregated service / batcher / pool telemetry for ``/stats``."""
        return {
            "draining": self._draining,
            "service": self.tracker.summary(),
            "batcher": self.batcher.stats(),
            "pool": self.pool.stats(),
            "defaults": self.resolver.describe(),
        }

    def export_gauges(self) -> None:
        """Publish point-in-time gauges into the current registry.

        Called by scrapers (the ``/metrics`` handler, tests) rather than
        continuously: gauges describe *now*, so setting them at scrape
        time keeps the hot path free of gauge churn and means a registry
        swapped in by a test sees values the moment it scrapes.
        """
        batcher = self.batcher.stats()
        obs.gauge("repro_serve_queue_depth",
                  "Requests waiting in the batcher queue.").set(
                      batcher["queued"])
        obs.gauge("repro_serve_inflight_batches",
                  "Batches currently being computed.").set(
                      batcher["inflight_batches"])
        obs.gauge("repro_serve_draining",
                  "1 while the service refuses new requests.").set(
                      1 if self._draining else 0)
        pool = self.pool.stats()
        obs.gauge("repro_pool_engines",
                  "Engines resident in the pool.").set(pool["engines"])
        obs.gauge("repro_pool_plans",
                  "Compiled plans resident in the pool.").set(
                      pool["plans"])

    def close(self) -> None:
        """Drain the queue and stop the batcher workers (idempotent)."""
        if not self._closed:
            self._closed = True
            self.batcher.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
