"""Stdlib HTTP JSON API over :class:`repro.serve.service.InferenceService`.

Endpoints:

``POST /predict``
    Body: ``{"image": [...784 floats...]}`` (or 28×28 nested) for one
    image, ``{"images": [[...], ...]}`` for many, or
    ``{"scene": {...}}`` for a composite scene
    (:meth:`repro.data.scenes.Scene.to_payload` form, with an optional
    ``stride``) — the scene fans out into a coalesced window batch and
    replies with per-cell predictions plus the per-window detail.
    Optional spec overrides ride alongside: ``model`` (a registered zoo entry),
    ``backend``, ``length``, ``kinds`` (``"APC,APC,APC"``), ``pooling``
    (``"max"``/``"avg"``),
    ``weight_bits`` (int or per-layer list), ``seed``, plus
    ``timeout_ms`` — a request deadline: a request still queued past it
    is shed before compute and answered 504.  Pixels are bipolar
    floats in [-1, 1].  Response: ``{"prediction": k}`` (single) or
    ``{"predictions": [...]}`` (batch), plus the resolved backend and
    the server-side latency.

``GET /healthz``
    Liveness: ``{"status": "ok", "requests": N}`` — or 503
    ``{"status": "draining"}`` once shutdown has begun, so a load
    balancer stops routing here while in-flight requests finish.

``GET /stats``
    Full telemetry: request latency p50/p95, throughput (lifetime and
    rolling-window), live queue depth and in-flight batch count, shed
    counts, the batcher's batch-size histogram and mean batch size, and
    the engine pool's hit rate — the observable effect of
    micro-batching under load.

``GET /metrics``
    Prometheus text exposition of the process-wide
    :mod:`repro.obs` registry: serve counters/histograms, live gauges
    (queue depth, in-flight batches, pool residency — published at
    scrape time by ``service.export_gauges()``), per-kernel per-tier
    wall time when ``REPRO_PROFILE=1``, and fault-injection trip
    counters.

The server is a threading HTTP server: each connection gets a thread,
so concurrent clients genuinely enqueue concurrently and the
micro-batcher has traffic to coalesce.  Malformed requests return 400
with ``{"error": ...}``; unknown paths 404.  Failure statuses:
backpressure and drain are 503 with a ``Retry-After`` header (the
client should come back), deadline/timeout is 504, internal bugs 500.
Only 5xx internal errors (or an unread request body) close a
keep-alive connection — a client being told "retry later" keeps its
connection.

:func:`run_server` installs a SIGTERM handler implementing graceful
drain: stop accepting work (503s + draining health), let every
accepted request complete, then exit — no in-flight reply is dropped.
"""

from __future__ import annotations

import contextlib
import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro import obs
from repro.serve.batcher import DeadlineExceeded, QueueFull
from repro.serve.service import ServiceDraining

__all__ = ["ServeHandler", "ServeHTTPServer", "create_server",
           "run_server"]

RETRY_AFTER_S = 1
"""``Retry-After`` hint on 503 replies (backpressure clears in ~one
batching quantum; drain means "find another replica")."""

MAX_BODY_BYTES = 64 << 20
"""Reject request bodies beyond this (a 784-float image is ~10 KB)."""


class ServeHandler(BaseHTTPRequestHandler):
    """JSON request handler bound to the server's ``service``."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict,
               retry_after: float = None) -> None:
        body = json.dumps(payload).encode("utf8")
        # Close a keep-alive connection only when it is genuinely
        # unusable: after an internal error, or when the request body
        # was never read (leftover bytes would be parsed as the next
        # request).  Recoverable client errors (400/404/503/504) keep
        # the connection — a client told "retry later" should not also
        # pay a reconnect.
        close = status >= 500 or (self.command == "POST"
                                  and not getattr(self, "_body_read",
                                                  False))
        if close:
            self.close_connection = True
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        if close:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, status: int, body: str,
                    content_type: str = "text/plain; version=0.0.4") \
            -> None:
        data = body.encode("utf8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    # ------------------------------------------------------------------
    def do_GET(self):  # noqa: N802 - stdlib naming
        with self.server.track():
            service = self.server.service
            if self.path == "/healthz":
                if getattr(service, "draining", False):
                    self._reply(503, {"status": "draining"},
                                retry_after=RETRY_AFTER_S)
                else:
                    self._reply(200, {
                        "status": "ok",
                        "requests":
                            service.tracker.summary()["requests"],
                    })
            elif self.path == "/stats":
                self._reply(200, service.stats())
            elif self.path == "/metrics":
                # Gauges describe *now*: publish them at scrape time so
                # the hot path never churns them.  A multi-process
                # facade supplies its own merged exposition (frontend +
                # every worker registry); the in-process service just
                # renders this process's registry.
                if hasattr(service, "metrics_text"):
                    self._reply_text(200, service.metrics_text())
                else:
                    service.export_gauges()
                    self._reply_text(200, obs.render(obs.get_registry()))
            else:
                self._reply(404, {
                    "error": f"unknown path {self.path!r}; "
                             "try /predict, /healthz, /stats, /metrics"})

    def do_POST(self):  # noqa: N802 - stdlib naming
        with self.server.track(), obs.span("serve.http", path=self.path):
            self._body_read = False
            if self.path != "/predict":
                self._reply(404, {"error": f"unknown path {self.path!r}; "
                                           "POST /predict"})
                return
            try:
                with obs.span("serve.parse"):
                    length = int(self.headers.get("Content-Length", 0))
                    if length <= 0 or length > MAX_BODY_BYTES:
                        raise ValueError("request body required (JSON)")
                    raw = self.rfile.read(length)
                    self._body_read = True
                    request = json.loads(raw)
                    if not isinstance(request, dict):
                        raise ValueError(
                            "request body must be a JSON object")
                reply = self._predict(request)
                with obs.span("serve.respond"):
                    self._reply(200, reply)
            except ServiceDraining as exc:
                self._reply(503, {"error": str(exc),
                                  "status": "draining"},
                            retry_after=RETRY_AFTER_S)
            except QueueFull as exc:
                self._reply(503, {"error": str(exc)},
                            retry_after=RETRY_AFTER_S)
            except (DeadlineExceeded, TimeoutError) as exc:
                self._reply(504, {"error": str(exc)})
            except ValueError as exc:
                # covers json.JSONDecodeError and every service-side
                # validation error; internal bugs (TypeError, KeyError,
                # ...) fall through to the 500 below instead of
                # masquerading as client errors
                self._reply(400, {"error": str(exc)})
            except Exception as exc:
                self._reply(500, {"error": f"internal error: {exc}"})

    def _predict(self, request: dict) -> dict:
        service = self.server.service
        modes = [k for k in ("image", "images", "scene") if k in request]
        if len(modes) != 1:
            raise ValueError(
                "provide exactly one of 'image' (single), 'images' "
                "(batch) or 'scene' (composite scene)")
        if modes == ["scene"]:
            return self._predict_scene(request)
        single = modes == ["image"]
        images = request.pop("image") if single else request.pop("images")
        if single:
            # Validate against the *target model's* geometry (the zoo
            # generalized it away from a hardcoded 28×28).
            channels, h, w = service.input_shape(request.get("model"))
            pixels = channels * h * w
            try:
                shape = np.asarray(images, dtype=np.float64).shape
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"malformed image payload: {exc}") from exc
            allowed = ((pixels,),) + (((h, w),) if channels == 1 else ())
            if shape not in allowed:
                raise ValueError(
                    f"'image' must be a single {h}×{w} image "
                    f"({pixels} pixels); use 'images' for batches")
        timeout, overrides = self._parse_spec(request)
        start = time.monotonic()
        preds = service.predict(images, timeout=timeout, **overrides)
        reply = {
            "backend": overrides.get("backend",
                                     service.defaults["backend"]),
            "latency_ms": round(1e3 * (time.monotonic() - start), 3),
        }
        if single:
            reply["prediction"] = int(preds[0])
        else:
            reply["predictions"] = [int(p) for p in preds]
        return reply

    def _predict_scene(self, request: dict) -> dict:
        """The ``scene`` request mode: one composite scene in, per-cell
        predictions out.  The scene fans out into a coalesced window
        batch service-side; with the exact backend each window's reply
        is bit-identical to a dedicated single-window run."""
        service = self.server.service
        scene = request.pop("scene")
        stride = request.pop("stride", None)
        timeout, overrides = self._parse_spec(request)
        start = time.monotonic()
        result = service.predict_scene(scene, stride=stride,
                                       timeout=timeout, **overrides)
        return {
            "backend": overrides.get("backend",
                                     service.defaults["backend"]),
            "latency_ms": round(1e3 * (time.monotonic() - start), 3),
            "kind": result.kind,
            "cell_predictions": [int(p) for p in result.cell_preds],
            "cell_windows": [int(i) for i in result.cell_windows],
            "window_boxes": [list(b) for b in result.boxes],
            "window_predictions": [int(p) for p in result.window_preds],
        }

    def _parse_spec(self, request: dict):
        """Shared tail of every predict mode: ``timeout_ms`` + spec
        overrides, with unknown fields rejected.  Returns
        ``(timeout_seconds, overrides)``."""
        timeout_ms = request.pop("timeout_ms", None)
        if timeout_ms is not None:
            try:
                timeout_ms = float(timeout_ms)
            except (TypeError, ValueError):
                raise ValueError(
                    f"timeout_ms must be a number, got {timeout_ms!r}"
                ) from None
            if timeout_ms <= 0:
                raise ValueError("timeout_ms must be > 0")
        overrides = {k: request[k] for k in
                     ("model", "backend", "length", "kinds", "pooling",
                      "weight_bits", "seed") if k in request}
        leftover = set(request) - set(overrides)
        if leftover:
            raise ValueError(
                f"unknown request fields: {sorted(leftover)}")
        return (None if timeout_ms is None else timeout_ms / 1e3,
                overrides)


class ServeHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server that counts in-flight requests.

    The drain path needs "every accepted request has been answered",
    which connection threads alone cannot tell (keep-alive threads
    outlive their last request).  Handlers wrap each request in
    :meth:`track`; :meth:`await_idle` blocks until the count hits zero.
    """

    daemon_threads = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._inflight = 0
        self._idle = threading.Condition()

    @contextlib.contextmanager
    def track(self):
        with self._idle:
            self._inflight += 1
        try:
            yield
        finally:
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()

    def await_idle(self, timeout: float = None) -> bool:
        """Block until no request is being handled; False on timeout."""
        with self._idle:
            return self._idle.wait_for(lambda: self._inflight == 0,
                                       timeout)


def create_server(service, host: str = "127.0.0.1", port: int = 8100,
                  verbose: bool = False) -> ServeHTTPServer:
    """A ready-to-run threading HTTP server bound to ``service``.

    ``port=0`` binds an ephemeral port (tests); the bound address is
    ``server.server_address``.  Callers own the lifecycle: run
    ``serve_forever()`` (blocking or in a thread), then ``shutdown()``
    and ``server_close()``, and close the service.
    """
    server = ServeHTTPServer((host, port), ServeHandler)
    server.service = service
    server.verbose = verbose
    return server


def run_server(service, host: str = "127.0.0.1", port: int = 8100,
               verbose: bool = False,
               drain_grace: float = 10.0) -> None:
    """Serve until interrupted; closes the service on the way out.

    SIGTERM triggers a graceful drain: the service refuses new work
    (503 + ``Retry-After``, ``/healthz`` flips to ``draining``),
    requests already accepted run to completion (bounded by
    ``drain_grace`` seconds), then the server exits — no in-flight
    reply is ever dropped.  SIGINT/KeyboardInterrupt keeps its
    immediate-exit behaviour for interactive use.
    """
    server = create_server(service, host, port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]

    def _drain():
        service.drain()
        server.await_idle(drain_grace)
        server.shutdown()

    def _on_sigterm(signum, frame):  # pragma: no cover - signal path
        # shutdown() must not run on the serve_forever thread (it would
        # deadlock waiting for the loop the handler interrupted), so
        # the drain runs on its own thread.
        threading.Thread(target=_drain, name="serve-drain",
                         daemon=True).start()

    try:
        previous = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # pragma: no cover - non-main thread
        previous = None
    print(f"repro-serve listening on http://{bound_host}:{bound_port}")
    print(f"  POST http://{bound_host}:{bound_port}/predict  "
          "{'image': [...784 bipolar floats...]}")
    print(f"  GET  http://{bound_host}:{bound_port}/stats")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        if previous is not None:  # pragma: no branch
            signal.signal(signal.SIGTERM, previous)
        server.shutdown()
        server.server_close()
        service.close()
