"""Stdlib HTTP JSON API over :class:`repro.serve.service.InferenceService`.

Endpoints:

``POST /predict``
    Body: ``{"image": [...784 floats...]}`` (or 28×28 nested) for one
    image, or ``{"images": [[...], ...]}`` for many.  Optional spec
    overrides ride alongside: ``model`` (a registered zoo entry),
    ``backend``, ``length``, ``kinds`` (``"APC,APC,APC"``), ``pooling``
    (``"max"``/``"avg"``),
    ``weight_bits`` (int or per-layer list), ``seed``.  Pixels are bipolar
    floats in [-1, 1].  Response: ``{"prediction": k}`` (single) or
    ``{"predictions": [...]}`` (batch), plus the resolved backend and
    the server-side latency.

``GET /healthz``
    Liveness: ``{"status": "ok", "requests": N}``.

``GET /stats``
    Full telemetry: request latency p50/p95, throughput, the batcher's
    batch-size histogram and mean batch size, and the engine pool's hit
    rate — the observable effect of micro-batching under load.

The server is a ``ThreadingHTTPServer``: each connection gets a thread,
so concurrent clients genuinely enqueue concurrently and the
micro-batcher has traffic to coalesce.  Malformed requests return 400
with ``{"error": ...}``; unknown paths 404.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.serve.batcher import QueueFull

__all__ = ["ServeHandler", "create_server", "run_server"]

MAX_BODY_BYTES = 64 << 20
"""Reject request bodies beyond this (a 784-float image is ~10 KB)."""


class ServeHandler(BaseHTTPRequestHandler):
    """JSON request handler bound to the server's ``service``."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf8")
        if status >= 400:
            # Error paths may leave an unread request body on the
            # socket; under HTTP/1.1 keep-alive the next request would
            # then be parsed out of those leftover bytes.  Close instead.
            self.close_connection = True
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status >= 400:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    # ------------------------------------------------------------------
    def do_GET(self):  # noqa: N802 - stdlib naming
        service = self.server.service
        if self.path == "/healthz":
            self._reply(200, {
                "status": "ok",
                "requests": service.tracker.summary()["requests"],
            })
        elif self.path == "/stats":
            self._reply(200, service.stats())
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}; "
                                       "try /predict, /healthz, /stats"})

    def do_POST(self):  # noqa: N802 - stdlib naming
        if self.path != "/predict":
            self._reply(404, {"error": f"unknown path {self.path!r}; "
                                       "POST /predict"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            if length <= 0 or length > MAX_BODY_BYTES:
                raise ValueError("request body required (JSON)")
            request = json.loads(self.rfile.read(length))
            if not isinstance(request, dict):
                raise ValueError("request body must be a JSON object")
            self._reply(200, self._predict(request))
        except QueueFull as exc:
            self._reply(503, {"error": str(exc)})
        except ValueError as exc:
            # covers json.JSONDecodeError and every service-side
            # validation error; internal bugs (TypeError, KeyError, ...)
            # fall through to the 500 below instead of masquerading as
            # client errors
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._reply(500, {"error": f"internal error: {exc}"})

    def _predict(self, request: dict) -> dict:
        service = self.server.service
        single = "image" in request
        if single == ("images" in request):
            raise ValueError(
                "provide exactly one of 'image' (single) or 'images' "
                "(batch)")
        images = request.pop("image") if single else request.pop("images")
        if single:
            # Validate against the *target model's* geometry (the zoo
            # generalized it away from a hardcoded 28×28).
            channels, h, w = service.input_shape(request.get("model"))
            pixels = channels * h * w
            shape = np.asarray(images, dtype=np.float64).shape
            allowed = ((pixels,),) + (((h, w),) if channels == 1 else ())
            if shape not in allowed:
                raise ValueError(
                    f"'image' must be a single {h}×{w} image "
                    f"({pixels} pixels); use 'images' for batches")
        overrides = {k: request[k] for k in
                     ("model", "backend", "length", "kinds", "pooling",
                      "weight_bits", "seed") if k in request}
        leftover = set(request) - set(overrides)
        if leftover:
            raise ValueError(
                f"unknown request fields: {sorted(leftover)}")
        start = time.monotonic()
        preds = service.predict(images, **overrides)
        reply = {
            "backend": overrides.get("backend",
                                     service.defaults["backend"]),
            "latency_ms": round(1e3 * (time.monotonic() - start), 3),
        }
        if single:
            reply["prediction"] = int(preds[0])
        else:
            reply["predictions"] = [int(p) for p in preds]
        return reply


def create_server(service, host: str = "127.0.0.1", port: int = 8100,
                  verbose: bool = False) -> ThreadingHTTPServer:
    """A ready-to-run threading HTTP server bound to ``service``.

    ``port=0`` binds an ephemeral port (tests); the bound address is
    ``server.server_address``.  Callers own the lifecycle: run
    ``serve_forever()`` (blocking or in a thread), then ``shutdown()``
    and ``server_close()``, and close the service.
    """
    server = ThreadingHTTPServer((host, port), ServeHandler)
    server.daemon_threads = True
    server.service = service
    server.verbose = verbose
    return server


def run_server(service, host: str = "127.0.0.1", port: int = 8100,
               verbose: bool = False) -> None:
    """Serve until interrupted; closes the service on the way out."""
    server = create_server(service, host, port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro-serve listening on http://{bound_host}:{bound_port}")
    print(f"  POST http://{bound_host}:{bound_port}/predict  "
          "{'image': [...784 bipolar floats...]}")
    print(f"  GET  http://{bound_host}:{bound_port}/stats")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
