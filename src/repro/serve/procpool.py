"""Multi-process serving: worker processes behind a routing frontend.

The in-process :class:`~repro.serve.service.InferenceService` coalesces
beautifully but computes under one GIL: NumPy kernels release it, yet
the per-layer Python orchestration serializes, so one process cannot
scale exact-backend throughput with cores.  This module runs **N worker
processes**, each hosting a full service (own pool, own micro-batcher,
own GIL), behind a thin frontend that validates, routes and relays:

* **Shared plans** — compiled plans are quantization products, large
  and immutable.  The frontend compiles each warm spec once, packs it
  (:func:`repro.engine.plan.pack_plan`) into a
  :class:`multiprocessing.shared_memory` segment keyed by the existing
  model/config digests, and every worker rehydrates **zero-copy views**
  (:func:`repro.engine.plan.unpack_plan`) into the same physical pages —
  one copy of the weights no matter how many processes serve them.
* **Spec-affine routing** — a request's group key (model, backend,
  config, bits, seed) hashes to a worker, so same-spec requests land in
  the same process and its micro-batcher keeps coalescing them; the
  batched exact backend's per-request stream-state forks keep every
  reply bit-identical to a dedicated single-request engine run.
* **Admission control** — the frontend bounds in-flight requests per
  model *before* crossing a process boundary
  (:class:`~repro.serve.batcher.QueueFull` → HTTP 503 +
  ``Retry-After``), on top of each worker's own queue bound.
* **Supervision** — a monitor thread watches worker sentinels; a dead
  worker (chaos kill, OOM) is respawned and its in-flight requests are
  resubmitted — safe because serving compute is deterministic and
  side-effect-free, so the worst case is a request computed twice with
  the first reply winning.  No accepted request's reply is dropped.
* **Drain** — :meth:`ProcServeFacade.drain` refuses new work at the
  frontend (503 + ``Retry-After``), tells every worker to drain, and
  :meth:`ProcServeFacade.await_idle` holds SIGTERM shutdown until every
  accepted reply has been delivered — the single-process guarantee,
  generalized.  Closing the facade unlinks every shared segment.

Workers are **fork**-context processes (same choice as the DSE runner):
the model set, the arena's shared segments and an armed ``REPRO_FAULTS``
injector are all inherited, and re-attachment races with the resource
tracker never arise — the parent creates every segment and is the only
process that ever unlinks them.

The frontend stays a *threading* HTTP server: connection threads block
in :meth:`ProcServeFacade.predict` waiting on a reply event, which
releases the GIL, so frontend I/O concurrency is cheap while all
compute runs in the workers.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import threading
import time
import multiprocessing
from multiprocessing import connection, shared_memory

import numpy as np

from repro import faults, obs
from repro.engine import build_graph, compile_plan
from repro.engine.plan import pack_plan, unpack_plan
from repro.nn.zoo import model_digest
from repro.serve.batcher import DeadlineExceeded, QueueFull
from repro.serve.pool import config_digest
from repro.serve.service import (
    InferenceService,
    RequestResolver,
    ServiceDraining,
)
from repro.serve.stats import LatencyTracker

__all__ = ["PlanArena", "ProcServeFacade"]

_RESTARTS_TOTAL = "repro_serve_worker_restarts_total"
_RESTARTS_HELP = "Serve worker processes respawned after dying."

#: extra seconds the frontend waits beyond a request's own timeout
#: before declaring the reply lost (covers queue + pickling transit)
REPLY_SLACK_S = 5.0

#: how long control messages (stats scrape, drain ack) may take
CONTROL_TIMEOUT_S = 10.0

_arena_ids = itertools.count()


class PlanArena:
    """Packed compiled plans in shared memory, keyed by digests.

    The parent compiles and packs; workers (forked afterwards) inherit
    the segments and seed their engine pools with zero-copy plans.  The
    parent is the sole owner of every segment's lifetime: workers never
    unlink, and :meth:`close` with ``unlink=True`` (the facade's
    shutdown path) removes them from the system.
    """

    def __init__(self):
        self.tag = f"{os.getpid()}-{next(_arena_ids)}"
        self._segments = []
        self._entries = []
        self._closed = False

    def add(self, name: str, model, config, bits) -> str:
        """Compile, pack and publish one plan; returns the segment name."""
        plan = compile_plan(build_graph(model, config), weight_bits=bits)
        payload = pack_plan(plan)
        segment = f"repro-plan-{self.tag}-{len(self._segments)}"
        shm = shared_memory.SharedMemory(name=segment, create=True,
                                         size=len(payload))
        shm.buf[:len(payload)] = payload
        self._segments.append(shm)
        self._entries.append({
            "model": name,
            "mdigest": model_digest(model),
            "cdigest": config_digest(config),
            "bits": bits,
            "length": config.length,
            "config": config,
            "segment": segment,
        })
        return segment

    def segment_names(self) -> list:
        return [entry["segment"] for entry in self._entries]

    def seed_pool(self, pool) -> int:
        """Hydrate every arena plan into an engine pool's plan tier.

        Called inside a forked worker: the inherited segments back every
        rehydrated array, so seeding costs page-table entries, not
        copies.  Returns how many plans were seeded.
        """
        seeded = 0
        for shm, entry in zip(self._segments, self._entries):
            model = pool.models.get(entry["model"])
            if model is None:  # pragma: no cover - defensive
                continue
            graph = build_graph(model, entry["config"])
            plan = unpack_plan(graph, shm.buf)
            key = (entry["mdigest"], entry["cdigest"], entry["bits"],
                   entry["length"])
            with pool._lock:
                pool._plans[key] = plan
            seeded += 1
        return seeded

    def close(self, unlink: bool = False) -> None:
        """Detach (and, for the owning parent, unlink) every segment."""
        if self._closed:
            return
        self._closed = True
        for shm in self._segments:
            # Unlink before close: removing the name from the system
            # must not be blocked by live zero-copy views (a rehydrated
            # plan still referencing the mapping raises BufferError on
            # close; the pages stay valid until those views die).
            if unlink:
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
            try:
                shm.close()
            except (BufferError, OSError):
                pass


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------

def _error_kind(exc: BaseException) -> str:
    """Collapse a worker-side exception to a transportable kind tag."""
    if isinstance(exc, ServiceDraining):
        return "draining"
    if isinstance(exc, QueueFull):
        return "queue_full"
    if isinstance(exc, DeadlineExceeded):
        return "deadline"
    if isinstance(exc, TimeoutError):
        return "timeout"
    if isinstance(exc, ValueError):
        return "bad_request"
    return "internal"


def _rebuild_error(kind: str, message: str) -> Exception:
    """Frontend-side inverse of :func:`_error_kind` (keeps HTTP mapping)."""
    return {
        "draining": ServiceDraining,
        "queue_full": QueueFull,
        "deadline": DeadlineExceeded,
        "timeout": TimeoutError,
        "bad_request": ValueError,
    }.get(kind, RuntimeError)(message)


def _worker_main(worker_id: int, models, service_kwargs: dict,
                 arena: PlanArena, req_conn, rep_conn,
                 threads: int) -> None:
    """A worker process: one full service fed from its request pipe.

    Requests are pulled by a small thread pool so concurrent same-spec
    traffic actually coalesces in this worker's micro-batcher (a single
    puller would serialize it away).  Both pipe ends are guarded by
    **worker-local** ``threading.Lock``s on purpose: a cross-process
    lock (what a shared ``mp.Queue`` uses) leaks in the acquired state
    when a chaos kill lands while a sibling thread holds it, deadlocking
    every later incarnation of the worker — process-local locks die
    with the process.  Shutdown is the frontend closing its send end:
    every puller sees EOF in turn.
    """
    faults.maybe_install_from_env()
    kwargs = dict(service_kwargs)
    warm = kwargs.pop("warm", True)
    service = InferenceService(models, warm=False, **kwargs)
    arena.seed_pool(service.pool)
    if warm:
        # Engines still need their weight streams drawn per process;
        # the plan underneath comes from the arena, so warming here
        # never re-quantizes.
        try:
            key, config, _ = service.resolver.resolve({})
            service.pool.get(config, backend=key[1], weight_bits=key[3],
                             seed=key[4], model=key[0])
        except Exception:  # pragma: no cover - warm is best-effort
            pass
    recv_lock = threading.Lock()
    send_lock = threading.Lock()

    def _reply(item) -> None:
        try:
            with send_lock:
                rep_conn.send(item)
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass  # frontend is gone; nothing left to answer to

    def _handle(msg) -> None:
        kind, req_id = msg[0], msg[1]
        try:
            if kind == "predict":
                _, _, images, deadline, overrides = msg
                timeout = None
                if deadline is not None:
                    # CLOCK_MONOTONIC is system-wide on Linux, so the
                    # frontend's absolute deadline is meaningful here —
                    # queue transit counts against the request budget.
                    timeout = max(deadline - time.monotonic(), 1e-3)
                preds = service.predict(images, timeout=timeout,
                                        **overrides)
                _reply((req_id, True, [int(p) for p in preds]))
            elif kind == "scene":
                _, _, scene, stride, deadline, overrides = msg
                timeout = None
                if deadline is not None:
                    timeout = max(deadline - time.monotonic(), 1e-3)
                result = service.predict_scene(scene, stride=stride,
                                               timeout=timeout,
                                               **overrides)
                # the SceneResult dataclass pickles over the pipe whole
                _reply((req_id, True, result))
            elif kind == "stats":
                service.export_gauges()
                _reply((req_id, True, {
                    "worker": worker_id,
                    "pid": os.getpid(),
                    "stats": service.stats(),
                    "metrics": obs.render(obs.get_registry()),
                }))
            elif kind == "drain":
                service.drain()
                _reply((req_id, True, None))
            else:  # pragma: no cover - protocol bug
                _reply((req_id, False,
                        ("internal", f"unknown message {kind!r}")))
        except BaseException as exc:  # noqa: BLE001 - relay, don't die
            _reply((req_id, False, (_error_kind(exc), str(exc))))

    def _pull() -> None:
        while True:
            try:
                with recv_lock:
                    msg = req_conn.recv()
            except (EOFError, OSError):
                return
            _handle(msg)

    pullers = [threading.Thread(target=_pull, name=f"pull-{i}",
                                daemon=True)
               for i in range(max(1, int(threads)))]
    for thread in pullers:
        thread.start()
    for thread in pullers:
        thread.join()
    service.close()
    try:
        rep_conn.close()
    except OSError:  # pragma: no cover
        pass


# ---------------------------------------------------------------------------
# frontend facade
# ---------------------------------------------------------------------------

class _Pending:
    """One relayed request awaiting its worker reply."""

    __slots__ = ("event", "result", "error", "worker", "msg", "model")

    def __init__(self, worker: int, msg, model: str):
        self.event = threading.Event()
        self.result = None
        self.error = None
        self.worker = worker
        self.msg = msg
        self.model = model


class _WorkerLink:
    """One worker incarnation: process + its pipe ends + reply pump."""

    __slots__ = ("proc", "req_send", "rep_recv", "send_lock", "reader")

    def __init__(self, proc, req_send, rep_recv):
        self.proc = proc
        self.req_send = req_send
        self.rep_recv = rep_recv
        self.send_lock = threading.Lock()
        self.reader = None

    def close(self) -> None:
        """Close the frontend-side pipe ends (reply pump exits on EOF)."""
        for conn in (self.req_send, self.rep_recv):
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass


class ProcServeFacade:
    """N worker processes behind the :class:`InferenceService` API.

    Drop-in for the HTTP layer: it exposes the same surface
    (``predict``/``predict_one``, ``defaults``, ``input_shape``,
    ``stats``, ``export_gauges``, ``tracker``, ``draining``/``drain``/
    ``await_idle``/``close``) plus :meth:`metrics_text`, which the
    ``/metrics`` handler prefers when present — a merged exposition of
    the frontend's and every worker's registry.

    Parameters mirror :class:`InferenceService`, plus:

    procs:
        Worker process count.
    worker_threads:
        Queue-puller threads per worker — the per-worker concurrency
        ceiling (and therefore the largest micro-batch a worker can
        actually gather from relayed traffic).
    max_inflight_per_model:
        Frontend admission bound: in-flight requests per model beyond
        it are refused with :class:`QueueFull` (HTTP 503).  Defaults to
        ``2 * max_queue``.
    """

    def __init__(self, model, *, procs: int = 2, backend: str = "exact",
                 length: int = 64, kinds=None, pooling="max",
                 weight_bits=None, seed: int = 0, max_batch: int = 16,
                 max_wait_ms: float = 2.0, workers: int = 1,
                 max_queue: int = 1024, max_engines: int = 8,
                 warm: bool = True, worker_threads: int = 16,
                 max_inflight_per_model: int = None):
        if procs < 1:
            raise ValueError("procs must be >= 1")
        if isinstance(model, dict):
            if not model:
                raise ValueError("the model mapping must not be empty")
            self.models = dict(model)
        else:
            self.models = {"default": model}
        default_model = next(iter(self.models))
        self.resolver = RequestResolver(
            self.models, default_model=default_model, backend=backend,
            length=length, kinds=kinds, pooling=pooling,
            weight_bits=weight_bits, seed=seed)
        self.defaults = self.resolver.defaults
        self.tracker = LatencyTracker()
        self.procs = int(procs)
        self.max_inflight_per_model = (2 * int(max_queue)
                                       if max_inflight_per_model is None
                                       else int(max_inflight_per_model))
        self._service_kwargs = {
            "backend": backend, "length": length, "kinds": kinds,
            "pooling": pooling, "weight_bits": weight_bits, "seed": seed,
            "max_batch": max_batch, "max_wait_ms": max_wait_ms,
            "workers": workers, "max_queue": max_queue,
            "max_engines": max_engines, "warm": warm,
        }
        self._worker_threads = int(worker_threads)

        # one copy of every warm plan, shared by all workers
        self.arena = PlanArena()
        if warm:
            for name in self.models:
                key, config, _ = self.resolver.resolve({"model": name})
                self.arena.add(name, self.models[name], config, key[3])

        self._ctx = multiprocessing.get_context("fork")
        self._links = [None] * self.procs
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._pending = {}          # req_id -> _Pending
        self._inflight_by_model = {}
        self._idle = threading.Condition(self._lock)
        self._draining = False
        self._closed = False
        self._closing = threading.Event()
        self._restarts = 0

        for i in range(self.procs):
            self._spawn(i)
        self._monitor = threading.Thread(target=self._watch_workers,
                                         name="serve-monitor", daemon=True)
        self._monitor.start()

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> None:
        """Start (or restart) worker ``index`` with fresh pipes.

        Each incarnation gets its own request/reply pipe pair: shared
        cross-process queue locks would be left permanently acquired by
        a worker killed at the wrong instant, wedging every later
        incarnation.  Pipes carry no shared lock, and the parent closes
        its copies of the worker-side ends immediately after the fork
        so a worker's death surfaces as EOF on the reply pipe.
        """
        req_recv, req_send = self._ctx.Pipe(duplex=False)
        rep_recv, rep_send = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(index, self.models, self._service_kwargs, self.arena,
                  req_recv, rep_send, self._worker_threads),
            name=f"serve-worker-{index}", daemon=True)
        proc.start()
        # The parent's copies of the worker-side ends must close right
        # away — before any later fork can inherit them — or reply-pipe
        # EOF would never fire when this worker dies.
        req_recv.close()
        rep_send.close()
        link = _WorkerLink(proc, req_send, rep_recv)
        link.reader = threading.Thread(
            target=self._read_replies, args=(rep_recv,),
            name=f"serve-replies-{index}", daemon=True)
        link.reader.start()
        self._links[index] = link

    def _send(self, index: int, msg) -> bool:
        """Send to one worker; False if its pipe is already broken."""
        link = self._links[index]
        if link is None:
            return False
        try:
            with link.send_lock:
                link.req_send.send(msg)
            return True
        except (BrokenPipeError, OSError):
            # Worker died before the monitor noticed; the respawn path
            # resubmits everything registered as pending on it.
            return False

    def _watch_workers(self) -> None:
        """Respawn dead workers; resubmit their in-flight requests."""
        while not self._closing.is_set():
            sentinels = {link.proc.sentinel: i
                         for i, link in enumerate(self._links)
                         if link is not None and link.proc.is_alive()}
            if not sentinels:
                if self._closing.wait(0.2):
                    return
                continue
            dead = connection.wait(list(sentinels), timeout=0.5)
            if self._closing.is_set():
                return
            for sentinel in dead:
                index = sentinels[sentinel]
                link = self._links[index]
                link.proc.join(timeout=1.0)
                link.close()
                self._restarts += 1
                obs.counter(_RESTARTS_TOTAL, _RESTARTS_HELP,
                            worker=str(index)).inc()
                # Back off on repeated instant deaths so a worker that
                # cannot even start does not become a respawn hot loop.
                if self._closing.wait(
                        min(0.1 * self._restarts, 2.0)):
                    return
                self._spawn(index)
                # Re-run everything the dead incarnation owed a reply
                # for — read or still in its pipe, we cannot tell, and
                # it does not matter: computing a request twice is safe
                # (deterministic, side-effect-free) and the first reply
                # wins; dropping one is not.
                with self._lock:
                    owed = [p.msg for p in self._pending.values()
                            if p.worker == index]
                for msg in owed:
                    self._send(index, msg)

    def _read_replies(self, rep_recv) -> None:
        """Per-incarnation reply pump; exits on the worker's EOF."""
        while True:
            try:
                item = rep_recv.recv()
            except (EOFError, OSError):
                return
            req_id, ok, payload = item
            with self._lock:
                pending = self._pending.pop(req_id, None)
            if pending is None:
                # duplicate reply after a respawn resubmission, or a
                # reply for a request the frontend already timed out
                continue
            if ok:
                pending.result = payload
            else:
                pending.error = _rebuild_error(*payload)
            pending.event.set()

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def _route(self, key) -> int:
        """Deterministic worker index for a request group key.

        Same spec → same worker, so the worker's micro-batcher sees all
        of a spec's concurrent traffic and coalescing survives the
        process split.
        """
        model, backend, config, bits, seed = key
        basis = repr((model, backend, config_digest(config),
                      config.length, bits, seed))
        digest = hashlib.sha1(basis.encode("utf8")).hexdigest()
        return int(digest[:8], 16) % self.procs

    def predict(self, images, timeout: float = None, **overrides
                ) -> np.ndarray:
        """Class predictions for one or many images (blocking).

        Same contract as :meth:`InferenceService.predict`; the work runs
        in whichever worker the request's spec routes to.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        with self._lock:
            if self._draining:
                raise ServiceDraining(
                    "service is draining; not accepting new requests")
        start = time.monotonic()
        model = None
        try:
            with obs.span("serve.predict",
                          model=str(overrides.get(
                              "model", self.defaults["model"])),
                          backend=str(overrides.get(
                              "backend", self.defaults["backend"]))):
                key, _, _ = self.resolver.resolve(overrides)
                batch = self.resolver.as_images(images, model=key[0])
                model = key[0]
                preds = np.asarray(
                    self._relay(key, model, batch, start, timeout,
                                overrides),
                    dtype=np.int64)
        except (DeadlineExceeded, TimeoutError):
            self.tracker.record_shed()
            raise
        except Exception:
            self.tracker.record_error()
            raise
        self.tracker.record(time.monotonic() - start)
        return preds

    def predict_scene(self, scene, stride: int = None,
                      timeout: float = None, **overrides):
        """Tiled scene inference, relayed to the spec-affine worker.

        The whole scene travels as one message, so all its windows land
        in one worker's micro-batcher and coalesce there; the reply is
        the worker's :class:`repro.engine.tiled.SceneResult`, which with
        the exact backend is bit-identical at any worker count (each
        window's streams fork from the per-request snapshot).  The
        scene payload is validated frontend-side first, so malformed
        requests 400 without crossing a process boundary.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        with self._lock:
            if self._draining:
                raise ServiceDraining(
                    "service is draining; not accepting new requests")
        start = time.monotonic()
        try:
            with obs.span("serve.scene",
                          model=str(overrides.get(
                              "model", self.defaults["model"])),
                          backend=str(overrides.get(
                              "backend", self.defaults["backend"]))):
                key, _, _ = self.resolver.resolve(overrides)
                scene, _, _ = self.resolver.resolve_scene(
                    scene, model=key[0], stride=stride)
                result = self._relay(key, key[0], scene, start, timeout,
                                     overrides, kind="scene",
                                     extra=(stride,))
        except (DeadlineExceeded, TimeoutError):
            self.tracker.record_shed()
            raise
        except Exception:
            self.tracker.record_error()
            raise
        self.tracker.record(time.monotonic() - start)
        return result

    def _relay(self, key, model: str, batch, start: float,
               timeout, overrides, kind: str = "predict", extra=()):
        with self._lock:
            inflight = self._inflight_by_model.get(model, 0)
            if inflight >= self.max_inflight_per_model:
                obs.counter("repro_serve_admission_rejects_total",
                            "Requests refused by frontend admission "
                            "control, by model.", model=model).inc()
                raise QueueFull(
                    f"model {model!r} has {inflight} requests in "
                    f"flight (admission limit "
                    f"{self.max_inflight_per_model}); retry shortly")
            self._inflight_by_model[model] = inflight + 1
        req_id = next(self._ids)
        deadline = None if timeout is None else start + timeout
        index = self._route(key)
        msg = (kind, req_id, batch, *extra, deadline, overrides)
        pending = _Pending(index, msg, model)
        try:
            with self._lock:
                self._pending[req_id] = pending
            # A failed send means the worker just died: leave the
            # request pending — the monitor's respawn resubmits it.
            self._send(index, msg)
            wait = None if timeout is None else timeout + REPLY_SLACK_S
            if not pending.event.wait(wait):
                raise TimeoutError(
                    f"no reply from worker {index} within {wait:.1f}s")
            if pending.error is not None:
                raise pending.error
            return pending.result
        finally:
            with self._lock:
                self._pending.pop(req_id, None)
                self._inflight_by_model[model] = \
                    self._inflight_by_model.get(model, 1) - 1
                if not self._pending:
                    self._idle.notify_all()

    def predict_one(self, image, timeout: float = None, **overrides) -> int:
        """Single-image convenience wrapper around :meth:`predict`."""
        return int(self.predict(image, timeout=timeout, **overrides)[0])

    def input_shape(self, model=None) -> tuple:
        return self.resolver.input_shape(model)

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def _control(self, index: int, kind: str,
                 timeout: float = CONTROL_TIMEOUT_S):
        """Send a control message to one worker and await its reply."""
        req_id = next(self._ids)
        pending = _Pending(index, (kind, req_id), model="")
        with self._lock:
            self._pending[req_id] = pending
        try:
            if not self._send(index, (kind, req_id)):
                return None
            if not pending.event.wait(timeout):
                return None
            if pending.error is not None:
                return None
            return pending.result
        finally:
            with self._lock:
                self._pending.pop(req_id, None)
                if not self._pending:
                    self._idle.notify_all()

    def _alive(self) -> int:
        return sum(1 for link in self._links
                   if link is not None and link.proc.is_alive())

    def _scrape_workers(self) -> list:
        replies = []
        for index, link in enumerate(self._links):
            if link is None or not link.proc.is_alive():
                continue
            reply = self._control(index, "stats")
            if reply is not None:
                replies.append(reply)
        return replies

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self) -> None:
        """Refuse new requests; in-flight ones still complete.

        Frontend-first: the accept path is shut before workers are
        told, so no request can slip in behind the drain.  Idempotent.
        """
        with self._lock:
            already = self._draining
            self._draining = True
        if already:
            return
        for index, link in enumerate(self._links):
            if link is not None and link.proc.is_alive():
                self._control(index, "drain", timeout=2.0)

    def await_idle(self, timeout: float = None) -> bool:
        """Block until no relayed request awaits a reply."""
        with self._idle:
            return self._idle.wait_for(lambda: not self._pending, timeout)

    def stats(self) -> dict:
        """Frontend telemetry plus every worker's own ``stats()``."""
        workers = self._scrape_workers()
        pool = {"engines": 0, "plans": 0, "hits": 0, "misses": 0,
                "plans_compiled": 0, "plans_rederived": 0}
        for reply in workers:
            for field in pool:
                pool[field] += reply["stats"]["pool"].get(field, 0)
        return {
            "draining": self._draining,
            "service": self.tracker.summary(),
            "procs": {
                "workers": self.procs,
                "alive": self._alive(),
                "restarts": self._restarts,
                "shared_plan_segments": len(self.arena.segment_names()),
                "admission_limit_per_model": self.max_inflight_per_model,
            },
            "pool": pool,
            "workers": [{"worker": r["worker"], "pid": r["pid"],
                         **r["stats"]} for r in workers],
            "defaults": self.resolver.describe(),
        }

    def export_gauges(self) -> None:
        """Frontend gauges (worker gauges publish worker-side)."""
        obs.gauge("repro_serve_procs",
                  "Serve worker processes configured.").set(self.procs)
        obs.gauge("repro_serve_procs_alive",
                  "Serve worker processes currently alive.").set(
                      self._alive())
        obs.gauge("repro_serve_frontend_pending",
                  "Relayed requests awaiting a worker reply.").set(
                      len(self._pending))
        obs.gauge("repro_serve_draining",
                  "1 while the service refuses new requests.").set(
                      1 if self._draining else 0)

    def metrics_text(self) -> str:
        """One exposition for the whole server: frontend + all workers.

        Counters and histograms sum across processes; summed gauges
        read as per-process totals (e.g. ``repro_pool_engines`` counts
        engines resident in *any* worker).
        """
        self.export_gauges()
        texts = [obs.render(obs.get_registry())]
        texts += [reply["metrics"] for reply in self._scrape_workers()]
        return obs.merge(texts)

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop workers, reclaim shared memory (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._closing.set()
        # Closing our send end delivers EOF to every worker puller
        # thread, which is the shutdown signal in the pipe protocol.
        for link in self._links:
            if link is None:
                continue
            try:
                link.req_send.close()
            except OSError:  # pragma: no cover
                pass
        for link in self._links:
            if link is None:
                continue
            link.proc.join(timeout=5.0)
            if link.proc.is_alive():  # pragma: no cover - hung worker
                link.proc.terminate()
                link.proc.join(timeout=1.0)
            link.close()
        self._monitor.join(timeout=2.0)
        for link in self._links:
            if link is not None and link.reader is not None:
                link.reader.join(timeout=2.0)
        self.arena.close(unlink=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
