"""Thread-safe service telemetry: latency quantiles, throughput, errors.

The serving layer records one sample per completed request.  Latencies
are kept in a bounded ring (the most recent ``window`` samples) so a
long-lived server's ``/stats`` endpoint reflects current behaviour
rather than its whole history, while the monotonically-growing counters
(requests, errors) and the start timestamp give lifetime throughput.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

__all__ = ["LatencyTracker"]


class LatencyTracker:
    """Rolling latency/throughput accounting for the serving layer.

    Parameters
    ----------
    window:
        How many of the most recent per-request latencies the quantile
        estimates are computed over.
    clock:
        Injectable monotonic clock (tests pin it to fake time).
    """

    def __init__(self, window: int = 4096, clock=time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._latencies = deque(maxlen=int(window))
        self._started = clock()
        self._requests = 0
        self._errors = 0
        self._sheds = 0

    def record(self, latency_s: float) -> None:
        """Record one successfully-served request."""
        with self._lock:
            self._requests += 1
            self._latencies.append(float(latency_s))

    def record_error(self) -> None:
        """Record one failed request."""
        with self._lock:
            self._requests += 1
            self._errors += 1

    def record_shed(self) -> None:
        """Record one request shed before compute (deadline/cancel).

        Sheds are load-management outcomes, not failures: they count
        toward ``requests`` and their own ``sheds`` counter but not
        ``errors``, so an operator can tell overload from breakage.
        """
        with self._lock:
            self._requests += 1
            self._sheds += 1

    def summary(self) -> dict:
        """Snapshot: counters, lifetime throughput and latency quantiles.

        Latency quantiles are ``None`` before the first served request.
        """
        with self._lock:
            latencies = np.asarray(self._latencies, dtype=np.float64)
            requests = self._requests
            errors = self._errors
            sheds = self._sheds
            uptime = max(self._clock() - self._started, 1e-9)
        summary = {
            "requests": requests,
            "errors": errors,
            "sheds": sheds,
            "uptime_s": round(uptime, 3),
            "throughput_rps": round(requests / uptime, 3),
            "latency_ms": None,
        }
        if latencies.size:
            p50, p95 = np.percentile(latencies, (50, 95))
            summary["latency_ms"] = {
                "p50": round(1e3 * float(p50), 3),
                "p95": round(1e3 * float(p95), 3),
                "mean": round(1e3 * float(latencies.mean()), 3),
                "max": round(1e3 * float(latencies.max()), 3),
            }
        return summary
