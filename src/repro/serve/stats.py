"""Thread-safe service telemetry: latency quantiles, throughput, errors.

The serving layer records one sample per completed request.  Latencies
are kept in a bounded ring (the most recent ``window`` samples) so a
long-lived server's ``/stats`` endpoint reflects current behaviour
rather than its whole history, while the monotonically-growing counters
(requests, errors) and the start timestamp give lifetime throughput.

Throughput is reported two ways: ``throughput_rps`` divides lifetime
requests by lifetime uptime (stable, but on a long-lived server it
never converges to current load), and ``throughput_rps_window`` counts
completions inside the trailing ``window_s`` seconds — the figure an
operator should watch during a load change.

Every record also mirrors into the current :mod:`repro.obs` registry
(``repro_serve_requests_total`` by outcome and the
``repro_serve_latency_seconds`` histogram), so ``/metrics`` and
``/stats`` can never disagree about what was counted.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from repro import obs

__all__ = ["LatencyTracker"]


class LatencyTracker:
    """Rolling latency/throughput accounting for the serving layer.

    Parameters
    ----------
    window:
        How many of the most recent per-request latencies the quantile
        estimates are computed over.
    window_s:
        Width (seconds) of the trailing window the rolling throughput
        is measured over.
    clock:
        Injectable monotonic clock (tests pin it to fake time).
    """

    def __init__(self, window: int = 4096, window_s: float = 30.0,
                 clock=time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._latencies = deque(maxlen=int(window))
        # Completion timestamps for the rolling-throughput estimate.
        # Bounded so a sustained burst can't grow it without limit:
        # if the deque saturates, the window shrinks to the span the
        # newest `maxlen` completions cover — still a valid rate.
        self._completions = deque(maxlen=max(int(window), 1024))
        self._window_s = float(window_s)
        self._started = clock()
        self._requests = 0
        self._errors = 0
        self._sheds = 0

    def _count(self, outcome: str, latency_s=None) -> None:
        now = self._clock()
        self._requests += 1
        self._completions.append(now)
        obs.counter("repro_serve_requests_total",
                    "Requests completed, by outcome.",
                    outcome=outcome).inc()
        if latency_s is not None:
            self._latencies.append(float(latency_s))
            obs.histogram("repro_serve_latency_seconds",
                          "End-to-end served request latency.").observe(
                              float(latency_s))

    def record(self, latency_s: float) -> None:
        """Record one successfully-served request."""
        with self._lock:
            self._count("ok", latency_s)

    def record_error(self) -> None:
        """Record one failed request."""
        with self._lock:
            self._errors += 1
            self._count("error")

    def record_shed(self) -> None:
        """Record one request shed before compute (deadline/cancel).

        Sheds are load-management outcomes, not failures: they count
        toward ``requests`` and their own ``sheds`` counter but not
        ``errors``, so an operator can tell overload from breakage.
        """
        with self._lock:
            self._sheds += 1
            self._count("shed")

    def _window_rate(self, now: float) -> float:
        """Completions per second over the trailing ``window_s``."""
        cutoff = now - self._window_s
        # A ring at maxlen has dropped completions at append time; if
        # none of the retained ones are older than the window, the
        # dropped ones may have been *inside* it too, so only the span
        # the retained completions cover was actually observed.
        saturated = len(self._completions) == self._completions.maxlen
        while self._completions and self._completions[0] < cutoff:
            self._completions.popleft()
            # Anything dropped at append time was older still — outside
            # the window — so the full window really was observed.
            saturated = False
        if not self._completions:
            return 0.0
        # Early in life (or right after a quiet spell) the oldest
        # retained completion bounds the effective window, so a server
        # 2 s old doesn't divide 100 requests by 30 s.
        span = min(self._window_s, max(now - self._started, 1e-9))
        if saturated:
            span = min(span, max(now - self._completions[0], 1e-9))
        return len(self._completions) / max(span, 1e-9)

    def summary(self) -> dict:
        """Snapshot: counters, throughput and latency quantiles.

        ``throughput_rps`` is lifetime requests / lifetime uptime;
        ``throughput_rps_window`` is the rate over the trailing
        ``window_s`` seconds.  Latency quantiles are ``None`` before
        the first served request.
        """
        with self._lock:
            now = self._clock()
            latencies = np.asarray(self._latencies, dtype=np.float64)
            requests = self._requests
            errors = self._errors
            sheds = self._sheds
            uptime = max(now - self._started, 1e-9)
            window_rate = self._window_rate(now)
        summary = {
            "requests": requests,
            "errors": errors,
            "sheds": sheds,
            "uptime_s": round(uptime, 3),
            "throughput_rps": round(requests / uptime, 3),
            "throughput_rps_window": round(window_rate, 3),
            "throughput_window_s": self._window_s,
            "latency_ms": None,
        }
        if latencies.size:
            p50, p95 = np.percentile(latencies, (50, 95))
            summary["latency_ms"] = {
                "p50": round(1e3 * float(p50), 3),
                "p95": round(1e3 * float(p95), 3),
                "mean": round(1e3 * float(latencies.mean()), 3),
                "max": round(1e3 * float(latencies.max()), 3),
            }
        return summary
