"""Dynamic micro-batching: coalesce concurrent requests into one call.

The exact bit-level backend is ~3x faster per image when it simulates a
batch than when it runs images one at a time (see
``benchmarks/BENCH_engine.json``), but service traffic arrives as
independent single-image requests.  The :class:`MicroBatcher` closes
that gap: requests enqueue with a *group key* (everything that must
match for two requests to share one engine call — backend, config,
seed), and worker threads drain the queue in group-keyed batches under a
``max_batch`` / ``max_wait_ms`` policy.  A batch launches when the
first of three conditions holds:

* **full** — ``max_batch`` same-group requests are queued (no pointless
  waiting once full);
* **deadline** — the oldest queued request has waited ``max_wait_ms``
  (the hard latency bound under sustained open-loop load);
* **quiescent** — no request joined the *oldest request's group* during
  the last wait quantum (``max_wait_ms / 8``).  This is what makes the
  batcher *dynamic*: a closed-loop client fleet smaller than
  ``max_batch`` flushes as soon as the in-flight wave has fully arrived
  instead of sleeping out the deadline, and a lone request pays roughly
  one quantum, not ``max_wait_ms``.  Quiescence is judged per group, so
  steady traffic on one group cannot starve another group's flush.

Batching is *transparent* by construction: the runner the service
installs uses :meth:`repro.engine.exact.ExactBackend.
forward_independent`, whose per-request stream-state forks make every
coalesced response bit-identical to a dedicated single-request engine
call.  The batcher itself never inspects payloads.

Failure semantics
-----------------
Every ticket resolves *exactly once* — completed, shed, or refused,
never hung (the quiescent-consistency bar the drain path is held to):

* a ticket with a **deadline** that expires while queued is shed
  *before* compute (resolved with :class:`DeadlineExceeded`; the HTTP
  layer maps it to 504) instead of burning engine time on an answer
  nobody is waiting for;
* a ticket whose waiter **times out** is marked cancelled — workers
  drop it from batches instead of still computing it (the pre-fix leak:
  a timed-out request stayed queued and was evaluated anyway);
* a **failing batch is bisected**: the runner call is retried on each
  half, recursively, so one malformed request errors alone and its
  co-batched neighbours succeed transparently (at most ``2n - 1``
  runner calls for a batch of ``n``, and only when something failed).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import Counter

from repro import obs

__all__ = ["MicroBatcher", "Ticket", "QueueFull", "DeadlineExceeded"]

#: Powers of two up to a generous ceiling — batch sizes are small ints,
#: so log-spaced time buckets would waste resolution where it matters.
_BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)
_SHED_TOTAL = "repro_serve_sheds_total"
_SHED_HELP = "Tickets shed before compute, by reason."


class QueueFull(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` when the queue is at its
    bound — the service's backpressure signal (HTTP maps it to 503)."""


class DeadlineExceeded(RuntimeError):
    """A ticket's deadline passed before compute: shed, not computed
    (the HTTP layer maps it to 504)."""


class Ticket:
    """A pending request: wait on it for the result.

    Returned by :meth:`MicroBatcher.submit`; :meth:`result` blocks until
    a worker has served the batch containing this request and either
    returns the per-request result or re-raises the batch's error.
    """

    __slots__ = ("key", "payload", "arrival", "deadline", "trace", "seq",
                 "_lock", "_done", "_result", "_error", "_cancelled")

    #: Process-wide monotonic ticket numbering.  The flush policy keys
    #: its gather state on this, never on ``id(ticket)``: CPython reuses
    #: a freed ticket's address, which would alias a brand-new head onto
    #: a stale gather timestamp and flush it before its quantum.
    _seq = itertools.count(1)

    def __init__(self, key, payload, arrival: float, deadline=None):
        self.key = key
        self.payload = payload
        self.arrival = arrival
        self.deadline = deadline  # monotonic instant, or None
        self.seq = next(Ticket._seq)
        # The submitting thread's open span (``serve.predict``): batcher
        # workers parent the queue/compute spans on it so the trace
        # stitches across the thread boundary.
        self.trace = obs.current()
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._result = None
        self._error = None
        self._cancelled = False

    def _resolve(self, result=None, error=None) -> bool:
        """Resolve exactly once; a cancelled/resolved ticket is a no-op."""
        with self._lock:
            if self._done.is_set() or self._cancelled:
                return False
            self._result = result
            self._error = error
            self._done.set()
            return True

    def cancel(self) -> bool:
        """Mark the ticket dead so workers skip it; False if already
        resolved (the result won the race and remains readable)."""
        with self._lock:
            if self._done.is_set():
                return False
            self._cancelled = True
            return True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def expired(self) -> bool:
        return self.deadline is not None and \
            time.monotonic() >= self.deadline

    def result(self, timeout: float = None):
        """Block until served; raises the batch's error if it failed.

        A timeout *cancels* the ticket: workers drop it from batches
        instead of computing a result nobody will read (the shed shows
        up in the batcher's ``shed_cancelled`` counter).
        """
        if not self._done.wait(timeout):
            if self.cancel():
                raise TimeoutError("request not served within timeout")
            # Resolved in the race window between wait and cancel —
            # fall through to the normal read path.
        if self._error is not None:
            raise self._error
        return self._result


class MicroBatcher:
    """Queue + worker threads coalescing requests into batched calls.

    Parameters
    ----------
    runner:
        ``runner(key, payloads) -> results`` — called with a list of
        payloads sharing one group key; must return one result per
        payload, in order.
    max_batch:
        Largest batch handed to ``runner``.
    max_wait_ms:
        Longest the oldest queued request may wait for co-batchable
        traffic before its batch is flushed anyway.
    workers:
        Worker-thread count.  One worker strictly serializes runner
        calls; more overlap distinct groups (numpy releases the GIL in
        the counting kernels, so overlap is real).
    max_queue:
        Backpressure bound: :meth:`submit` raises :class:`QueueFull`
        beyond this many pending requests instead of letting latency
        and memory grow without limit under overload.
    """

    def __init__(self, runner, max_batch: int = 16,
                 max_wait_ms: float = 2.0, workers: int = 1,
                 max_queue: int = 1024):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.max_queue = int(max_queue)
        self._runner = runner
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1e3
        #: re-check interval while gathering a batch; arrivals during a
        #: quantum keep the gather open, a quiet quantum flushes it.
        self.quantum = max(self.max_wait / 8.0, 5e-4)
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queue = []
        self._running = True
        self._batches = 0
        self._batch_sizes = Counter()
        self._shed_deadline = 0
        self._shed_cancelled = 0
        self._bisections = 0
        self._batch_failures = 0
        self._inflight = 0
        self._threads = [
            threading.Thread(target=self._worker, name=f"micro-batcher-{i}",
                             daemon=True)
            for i in range(int(workers))
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    def submit(self, key, payload, deadline: float = None) -> Ticket:
        """Enqueue one request; returns its :class:`Ticket`.

        ``deadline`` is an absolute ``time.monotonic()`` instant: a
        ticket still queued past it is shed with
        :class:`DeadlineExceeded` instead of being computed.
        """
        ticket = Ticket(key, payload, time.monotonic(), deadline=deadline)
        with self._work:
            if not self._running:
                raise RuntimeError("batcher is closed")
            if len(self._queue) >= self.max_queue:
                raise QueueFull(
                    f"batcher queue is full ({len(self._queue)} pending "
                    f"requests); retry later")
            self._queue.append(ticket)
            self._work.notify_all()
        return ticket

    def run(self, key, payload, timeout: float = None):
        """Submit and block for the result (the serving hot path)."""
        return self.submit(key, payload).result(timeout)

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting requests; drain the queue, join the workers."""
        with self._work:
            self._running = False
            self._work.notify_all()
        for thread in self._threads:
            thread.join(timeout)

    # ------------------------------------------------------------------
    def _take_batch(self):
        """Block until a batch is due; pop and return it (None = shut down).

        Runs under the queue lock.  The batch is the oldest request's
        group, capped at ``max_batch``; it launches when full, when the
        oldest request's ``max_wait`` expires, when a whole wait quantum
        passes with no new arrival (quiescence — see the module
        docstring), or immediately during drain.  Workers re-evaluate
        after every wakeup, so whichever worker observes a due batch
        first takes it and the rest keep waiting.
        """
        with self._work:
            gathering = None  # ((head.seq, len(same)), observed_at)
            while True:
                self._shed_dead_tickets()
                if not self._queue:
                    if not self._running:
                        return None
                    gathering = None
                    self._work.wait()
                    continue
                head = self._queue[0]
                same = [t for t in self._queue if t.key == head.key]
                deadline = head.arrival + self.max_wait
                now = time.monotonic()
                # Quiescent: the head group gained nothing for a full
                # quantum.  Judged per group (other groups' traffic must
                # not hold this one to its deadline) and against wall
                # time (Condition.wait wakes on *every* submit's notify,
                # so "woke with the group unchanged" alone is not a
                # quiet quantum).
                # Keyed on the ticket's monotonic sequence number, not
                # id(head): object ids are reused after a head is freed.
                state = (head.seq, len(same))
                if gathering is None or gathering[0] != state:
                    gathering = (state, now)
                quiet = now - gathering[1] >= self.quantum
                if (len(same) >= self.max_batch or now >= deadline
                        or quiet or not self._running):
                    batch = same[:self.max_batch]
                    taken = set(map(id, batch))
                    self._queue = [t for t in self._queue
                                   if id(t) not in taken]
                    self._batches += 1
                    self._batch_sizes[len(batch)] += 1
                    self._inflight += 1
                    obs.counter("repro_serve_batches_total",
                                "Batches dispatched to the runner.").inc()
                    obs.histogram(
                        "repro_serve_batch_size",
                        "Coalesced requests per dispatched batch.",
                        buckets=_BATCH_SIZE_BUCKETS).observe(len(batch))
                    return batch
                waits = [self.quantum - (now - gathering[1]),
                         deadline - now]
                # Wake in time to shed the earliest request deadline,
                # not just at the flush-policy instants.
                ticket_deadline = min(
                    (t.deadline for t in self._queue
                     if t.deadline is not None), default=None)
                if ticket_deadline is not None:
                    waits.append(max(ticket_deadline - now, 0.0))
                self._work.wait(min(waits))

    def _shed_dead_tickets(self) -> None:
        """Drop expired/cancelled tickets from the queue (lock held).

        Expired tickets resolve with :class:`DeadlineExceeded` — shed
        before compute; cancelled tickets were already abandoned by
        their waiter and resolve to nobody.
        """
        keep = []
        for ticket in self._queue:
            if ticket.cancelled:
                self._shed_cancelled += 1
                obs.counter(_SHED_TOTAL, _SHED_HELP,
                            reason="cancelled").inc()
            elif ticket.expired:
                self._shed_deadline += 1
                obs.counter(_SHED_TOTAL, _SHED_HELP,
                            reason="deadline").inc()
                ticket._resolve(error=DeadlineExceeded(
                    "deadline expired before compute; request shed"))
            else:
                keep.append(ticket)
        if len(keep) != len(self._queue):
            self._queue = keep

    def _run_group(self, key, group) -> None:
        """Run one taken batch, bisecting failures down to the culprit.

        Iterative halving: a failing runner call on ``n > 1`` requests
        is split and each half retried, so exactly the offending
        request(s) error and every healthy neighbour still gets its
        result — at most ``2n - 1`` runner calls, and only when
        something failed.  Tickets cancelled since the batch was taken
        are dropped just before compute.
        """
        stack = [group]
        while stack:
            sub = stack.pop()
            batch = [t for t in sub if not t.cancelled]
            if len(batch) != len(sub):
                dropped = len(sub) - len(batch)
                with self._lock:
                    self._shed_cancelled += dropped
                obs.counter(_SHED_TOTAL, _SHED_HELP,
                            reason="cancelled").inc(dropped)
            if not batch:
                continue
            try:
                with obs.span("serve.compute", parent=batch[0].trace,
                              batch=len(batch)):
                    results = self._runner(key, [t.payload for t in batch])
                if len(results) != len(batch):
                    raise RuntimeError(
                        f"runner returned {len(results)} results for a "
                        f"batch of {len(batch)}")
            except Exception as exc:
                with self._lock:
                    self._batch_failures += 1
                obs.counter("repro_serve_batch_failures_total",
                            "Runner calls that raised.").inc()
                if len(batch) == 1:
                    batch[0]._resolve(error=exc)
                    continue
                mid = len(batch) // 2
                with self._lock:
                    self._bisections += 1
                obs.counter("repro_serve_bisections_total",
                            "Failing batches split for retry.").inc()
                stack.append(batch[mid:])
                stack.append(batch[:mid])
                continue
            for ticket, result in zip(batch, results):
                ticket._resolve(result=result)

    def _worker(self):
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            if obs.trace.armed():
                # Retrospective spans for the gather the worker just
                # completed: each ticket's queue wait (arrival -> take)
                # plus one coalesce span describing the batch itself,
                # parented on the head request so a trace viewer sees
                # queue -> coalesce -> compute as one critical path.
                taken = time.monotonic()
                for ticket in batch:
                    obs.record_span("serve.queue", ticket.arrival, taken,
                                    parent=ticket.trace)
                obs.record_span("serve.coalesce", batch[0].arrival, taken,
                                parent=batch[0].trace, batch=len(batch))
            try:
                self._run_group(batch[0].key, batch)
            finally:
                with self._lock:
                    self._inflight -= 1

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Coalescing telemetry: batch count, size histogram, mean size."""
        with self._lock:
            sizes = dict(sorted(self._batch_sizes.items()))
            batches = self._batches
            queued = len(self._queue)
            shed_deadline = self._shed_deadline
            shed_cancelled = self._shed_cancelled
            bisections = self._bisections
            batch_failures = self._batch_failures
            inflight = self._inflight
        requests = sum(size * count for size, count in sizes.items())
        return {
            "batches": batches,
            "batched_requests": requests,
            "queued": queued,
            "inflight_batches": inflight,
            "batch_size_histogram": {str(k): v for k, v in sizes.items()},
            "mean_batch_size": round(requests / batches, 3) if batches
            else None,
            "max_batch": self.max_batch,
            "max_wait_ms": round(self.max_wait * 1e3, 3),
            "shed_deadline": shed_deadline,
            "shed_cancelled": shed_cancelled,
            "bisections": bisections,
            "batch_failures": batch_failures,
        }
