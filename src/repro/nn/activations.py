"""Activation layers.

``tanh`` is the activation the paper standardizes on (Section 3.2: it is
FSM-friendly in the SC domain and replacing ReLU/sigmoid with tanh costs
no DCNN accuracy).  ReLU and sigmoid are provided for the software-side
comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Layer

__all__ = ["Tanh", "ReLU", "Sigmoid"]


class Tanh(Layer):
    """Elementwise hyperbolic tangent."""

    def __init__(self):
        super().__init__()
        self._out = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.tanh(x)
        if training:
            self._out = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * (1.0 - self._out ** 2)


class ReLU(Layer):
    """Elementwise rectifier ``max(0, x)``."""

    def __init__(self):
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return x * mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class Sigmoid(Layer):
    """Elementwise logistic function."""

    def __init__(self):
        super().__init__()
        self._out = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        if training:
            self._out = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._out * (1.0 - self._out)
