"""Layer/parameter abstractions and the ``Sequential`` container."""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter", "Layer", "Sequential", "Flatten"]


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = ""):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter({self.name or 'unnamed'}, shape={self.value.shape})"


class Layer:
    """Base layer: ``forward`` caches what ``backward`` needs.

    Subclasses implement ``forward(x, training)`` and ``backward(grad)``
    (returning the gradient w.r.t. the input) and list their
    :class:`Parameter` objects in ``params``.
    """

    def __init__(self):
        self.params = []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - interface

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - interface

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


class Sequential(Layer):
    """A linear stack of layers."""

    def __init__(self, layers):
        super().__init__()
        self.layers = list(layers)
        for layer in self.layers:
            self.params.extend(layer.params)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class predictions for a batch of inputs (argmax of logits)."""
        outputs = []
        for start in range(0, len(x), batch_size):
            logits = self.forward(x[start:start + batch_size], training=False)
            outputs.append(np.argmax(logits, axis=1))
        return np.concatenate(outputs) if outputs else np.empty(0, dtype=int)

    def state_dict(self) -> dict:
        """Flat name → array mapping of all parameters (for caching)."""
        state = {}
        for i, p in enumerate(self.params):
            state[f"param_{i}_{p.name}"] = p.value
        return state

    def load_state_dict(self, state: dict) -> None:
        """Load parameters saved by :meth:`state_dict` (order-based)."""
        keys = sorted(state.keys(), key=lambda k: int(k.split("_")[1]))
        if len(keys) != len(self.params):
            raise ValueError(
                f"state has {len(keys)} parameters, model has "
                f"{len(self.params)}"
            )
        for key, p in zip(keys, self.params):
            value = np.asarray(state[key], dtype=np.float64)
            if value.shape != p.value.shape:
                raise ValueError(
                    f"shape mismatch for {key}: {value.shape} vs "
                    f"{p.value.shape}"
                )
            p.value = value.copy()


class Flatten(Layer):
    """Flatten all non-batch axes."""

    def __init__(self):
        super().__init__()
        self._shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)
