"""2×2 pooling layers (average and max), NCHW."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Layer

__all__ = ["AvgPool2D", "MaxPool2D"]


def _window_view(x: np.ndarray, size: int) -> np.ndarray:
    """Reshape (N, C, H, W) → (N, C, H/size, size, W/size, size)."""
    n, c, h, w = x.shape
    if h % size or w % size:
        raise ValueError(
            f"spatial dims ({h}, {w}) must be multiples of pool size {size}"
        )
    return x.reshape(n, c, h // size, size, w // size, size)


class AvgPool2D(Layer):
    """Non-overlapping average pooling."""

    def __init__(self, size: int = 2):
        super().__init__()
        self.size = size
        self._in_shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._in_shape = x.shape
        return _window_view(x, self.size).mean(axis=(3, 5))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        s = self.size
        g = grad[:, :, :, None, :, None] / (s * s)
        g = np.broadcast_to(g, g.shape[:3] + (s,) + g.shape[4:5] + (s,))
        return g.reshape(self._in_shape)


class MaxPool2D(Layer):
    """Non-overlapping max pooling."""

    def __init__(self, size: int = 2):
        super().__init__()
        self.size = size
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        view = _window_view(x, self.size)
        n, c, oh, s, ow, _ = view.shape
        flat = view.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, oh, ow, s * s)
        idx = np.argmax(flat, axis=-1)
        out = np.take_along_axis(flat, idx[..., None], axis=-1)[..., 0]
        if training:
            self._cache = (x.shape, idx)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_shape, idx = self._cache
        s = self.size
        n, c, oh, ow = grad.shape
        flat = np.zeros((n, c, oh, ow, s * s), dtype=grad.dtype)
        np.put_along_axis(flat, idx[..., None], grad[..., None], axis=-1)
        view = flat.reshape(n, c, oh, ow, s, s).transpose(0, 1, 2, 4, 3, 5)
        return view.reshape(x_shape)
