"""Minibatch training loop and evaluation helpers."""

from __future__ import annotations

import numpy as np

from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.optim import SGD
from repro.utils.seeding import spawn_rng

__all__ = ["Trainer", "evaluate_accuracy", "evaluate_error_rate"]


def evaluate_accuracy(model, x: np.ndarray, labels: np.ndarray,
                      batch_size: int = 256) -> float:
    """Fraction of correct argmax predictions."""
    preds = model.predict(x, batch_size=batch_size)
    return float((preds == labels).mean())


def evaluate_error_rate(model, x: np.ndarray, labels: np.ndarray,
                        batch_size: int = 256) -> float:
    """Error rate in percent — the unit Table 6 and Figure 13 report."""
    return 100.0 * (1.0 - evaluate_accuracy(model, x, labels, batch_size))


class Trainer:
    """Minibatch trainer with per-epoch LR decay.

    Parameters
    ----------
    model:
        A :class:`repro.nn.module.Sequential`.
    lr, momentum, lr_decay:
        SGD hyper-parameters; the learning rate is multiplied by
        ``lr_decay`` after every epoch.
    batch_size:
        Minibatch size.
    seed:
        Shuffle seed.
    """

    def __init__(self, model, lr: float = 0.05, momentum: float = 0.9,
                 lr_decay: float = 0.85, batch_size: int = 64, seed: int = 0):
        self.model = model
        self.optimizer = SGD(model.params, lr=lr, momentum=momentum)
        self.loss = SoftmaxCrossEntropy()
        self.lr_decay = lr_decay
        self.batch_size = batch_size
        self._rng = spawn_rng(seed, "trainer")
        self.history = []

    def train_epoch(self, x: np.ndarray, labels: np.ndarray) -> float:
        """One shuffled pass over the data; returns the mean loss."""
        order = self._rng.permutation(len(x))
        total, batches = 0.0, 0
        for start in range(0, len(x), self.batch_size):
            idx = order[start:start + self.batch_size]
            xb, yb = x[idx], labels[idx]
            logits = self.model.forward(xb, training=True)
            loss = self.loss.forward(logits, yb)
            self.model.zero_grad()
            self.model.backward(self.loss.backward())
            self.optimizer.step()
            total += loss
            batches += 1
        return total / max(batches, 1)

    def fit(self, x: np.ndarray, labels: np.ndarray, epochs: int,
            x_val: np.ndarray = None, y_val: np.ndarray = None,
            verbose: bool = False) -> list:
        """Train for ``epochs`` epochs; records (loss, val_accuracy) pairs."""
        for epoch in range(epochs):
            loss = self.train_epoch(x, labels)
            val_acc = (evaluate_accuracy(self.model, x_val, y_val)
                       if x_val is not None else float("nan"))
            self.history.append((loss, val_acc))
            if verbose:  # pragma: no cover - console output
                print(f"epoch {epoch + 1}/{epochs}: loss={loss:.4f} "
                      f"val_acc={val_acc:.4f}")
            self.optimizer.lr *= self.lr_decay
        return self.history
