"""The paper's LeNet-5 variant.

Section 6.3 uses LeNet-5 "with a configuration of
784-11520-2880-3200-800-500-10", i.e. the Caffe LeNet:

====== =============================== ===========================
Stage  Operation                        Neurons
====== =============================== ===========================
input  28×28 grayscale image            784
conv1  20 filters of 5×5 (valid)        24×24×20 = 11520
pool1  2×2 (max or average) + tanh      12×12×20 = 2880
conv2  50 filters of 5×5×20 (valid)     8×8×50  = 3200
pool2  2×2 + tanh                       4×4×50  = 800
fc1    dense 800 → 500 + tanh           500
fc2    dense 500 → 10 (logits)          10
====== =============================== ===========================

Pooling is applied to the convolution *pre-activations* and tanh after
pooling — exactly the inner-product → pooling → activation cascade of the
hardware feature extraction blocks (Figure 10), so the trained weights
map one-to-one onto the SC engine.
"""

from __future__ import annotations

from repro.nn.activations import Tanh
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense
from repro.nn.module import Flatten, Sequential
from repro.nn.pool import AvgPool2D, MaxPool2D

__all__ = ["build_lenet5", "LENET5_LAYER_SIZES"]

#: The paper's neuron counts per stage (input .. output).
LENET5_LAYER_SIZES = (784, 11520, 2880, 3200, 800, 500, 10)


def build_lenet5(pooling: str = "max", seed: int = 0) -> Sequential:
    """Build the paper's LeNet-5 variant.

    Parameters
    ----------
    pooling:
        ``"max"`` or ``"avg"`` — Table 6 evaluates both variants
        network-wide.
    seed:
        Weight initialization seed.

    Returns
    -------
    A :class:`repro.nn.module.Sequential` mapping ``(N, 1, 28, 28)``
    inputs in [-1, 1] to ``(N, 10)`` logits.
    """
    if pooling not in ("max", "avg"):
        raise ValueError(f"pooling must be 'max' or 'avg', got {pooling!r}")
    pool_cls = MaxPool2D if pooling == "max" else AvgPool2D
    return Sequential([
        Conv2D(1, 20, 5, seed=seed),
        pool_cls(2),
        Tanh(),
        Conv2D(20, 50, 5, seed=seed + 1),
        pool_cls(2),
        Tanh(),
        Flatten(),
        Dense(800, 500, seed=seed + 2),
        Tanh(),
        Dense(500, 10, seed=seed + 3),
    ])
