"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn.init import glorot_uniform, zeros
from repro.nn.module import Layer, Parameter
from repro.utils.seeding import spawn_rng

__all__ = ["Dense"]


class Dense(Layer):
    """Affine layer ``y = x W^T + b`` with Glorot initialization."""

    def __init__(self, in_features: int, out_features: int, seed: int = 0):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = spawn_rng(seed, "dense", in_features, out_features)
        self.weight = Parameter(
            glorot_uniform((out_features, in_features), in_features,
                           out_features, rng),
            name="dense_w",
        )
        self.bias = Parameter(zeros(out_features), name="dense_b")
        self.params = [self.weight, self.bias]
        self._x = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected {self.in_features} features, got {x.shape[-1]}"
            )
        if training:
            self._x = x
        return x @ self.weight.value.T + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self.weight.grad += grad.T @ self._x
        self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value
