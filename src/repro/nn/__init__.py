"""A from-scratch numpy deep-learning substrate.

The paper trains LeNet-5 in software, then maps its weights onto SC
hardware.  This subpackage provides that software side: layers with
forward/backward passes, losses, optimizers and a training loop — enough
to train the paper's LeNet-5 variant (784-11520-2880-3200-800-500-10) to
high accuracy on the synthetic MNIST substitute.

The LeNet-5 builder (:func:`repro.nn.lenet.build_lenet5`) follows the
paper's feature-extraction-block topology: convolution → pooling →
activation, with pooling applied to the *pre-activation* inner products,
exactly as the hardware FEBs compute it, and ``tanh`` activations
(Section 3.2 explains tanh replaces ReLU/sigmoid without accuracy loss
and is the SC-friendly choice).
"""

from repro.nn.module import Layer, Sequential, Parameter, Flatten
from repro.nn.conv import Conv2D
from repro.nn.pool import AvgPool2D, MaxPool2D
from repro.nn.dense import Dense
from repro.nn.activations import Tanh, ReLU, Sigmoid
from repro.nn.loss import SoftmaxCrossEntropy, MSELoss
from repro.nn.optim import SGD, Adam
from repro.nn.trainer import Trainer, evaluate_accuracy
from repro.nn.lenet import build_lenet5, LENET5_LAYER_SIZES
from repro.nn.zoo import (
    ZOO,
    ZooSpec,
    build_zoo_model,
    default_kinds,
    hidden_layer_count,
    model_digest,
    zoo_names,
)

__all__ = [
    "Layer",
    "Sequential",
    "Parameter",
    "Flatten",
    "Conv2D",
    "AvgPool2D",
    "MaxPool2D",
    "Dense",
    "Tanh",
    "ReLU",
    "Sigmoid",
    "SoftmaxCrossEntropy",
    "MSELoss",
    "SGD",
    "Adam",
    "Trainer",
    "evaluate_accuracy",
    "build_lenet5",
    "LENET5_LAYER_SIZES",
    "ZOO",
    "ZooSpec",
    "build_zoo_model",
    "default_kinds",
    "hidden_layer_count",
    "model_digest",
    "zoo_names",
]
