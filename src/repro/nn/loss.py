"""Loss functions."""

from __future__ import annotations

import numpy as np

__all__ = ["SoftmaxCrossEntropy", "MSELoss"]


class SoftmaxCrossEntropy:
    """Fused softmax + cross-entropy (the paper's "softmax loss")."""

    def __init__(self):
        self._probs = None
        self._labels = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        self._probs = probs
        self._labels = labels
        n = logits.shape[0]
        return float(-np.log(probs[np.arange(n), labels] + 1e-12).mean())

    def backward(self) -> np.ndarray:
        n = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._labels] -= 1.0
        return grad / n


class MSELoss:
    """Mean squared error (for regression-style tests)."""

    def __init__(self):
        self._diff = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        self._diff = pred - target
        return float((self._diff ** 2).mean())

    def backward(self) -> np.ndarray:
        return 2.0 * self._diff / self._diff.size
