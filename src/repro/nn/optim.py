"""Optimizers: SGD with momentum, and Adam."""

from __future__ import annotations

import numpy as np

__all__ = ["SGD", "Adam"]


class SGD:
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, params, lr: float = 0.05, momentum: float = 0.9,
                 weight_decay: float = 0.0):
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            v *= self.momentum
            v -= self.lr * grad
            p.value += v

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam optimizer (Kingma & Ba)."""

    def __init__(self, params, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8):
        self.params = list(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= b1
            m += (1.0 - b1) * p.grad
            v *= b2
            v += (1.0 - b2) * p.grad ** 2
            p.value -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
