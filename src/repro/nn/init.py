"""Weight initializers."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "zeros"]


def glorot_uniform(shape, fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform — the right choice for tanh networks."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He normal initialization (for ReLU variants)."""
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def zeros(shape) -> np.ndarray:
    """All-zeros (biases)."""
    return np.zeros(shape, dtype=np.float64)
