"""2-D convolution via im2col.

Tensors are NCHW.  ``im2col``/``col2im`` are exposed because the SC
network simulator (:mod:`repro.core.network`) reuses them to enumerate
receptive fields when wiring inner-product blocks.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import glorot_uniform, zeros
from repro.nn.module import Layer, Parameter
from repro.utils.seeding import spawn_rng

__all__ = ["Conv2D", "im2col_indices", "im2col", "col2im"]


def im2col_indices(height: int, width: int, kernel: int, stride: int = 1):
    """Row/col gather indices for im2col.

    Returns ``(rows, cols)`` arrays of shape
    ``(out_h * out_w, kernel * kernel)`` so that a channel ``img[c]``
    yields patches via ``img[c][rows, cols]``.
    """
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    r0 = np.repeat(np.arange(kernel), kernel)
    c0 = np.tile(np.arange(kernel), kernel)
    base_r = stride * np.repeat(np.arange(out_h), out_w)
    base_c = stride * np.tile(np.arange(out_w), out_h)
    rows = base_r[:, None] + r0[None, :]
    cols = base_c[:, None] + c0[None, :]
    return rows, cols


def im2col(x: np.ndarray, kernel: int, stride: int = 1) -> np.ndarray:
    """Extract patches: (N, C, H, W) → (N, out_h*out_w, C*kernel*kernel)."""
    n, c, h, w = x.shape
    rows, cols = im2col_indices(h, w, kernel, stride)
    patches = x[:, :, rows, cols]           # (N, C, P, K*K)
    return patches.transpose(0, 2, 1, 3).reshape(n, rows.shape[0], -1)


def col2im(cols: np.ndarray, x_shape, kernel: int, stride: int = 1
           ) -> np.ndarray:
    """Scatter-add patches back: inverse of :func:`im2col` for gradients."""
    n, c, h, w = x_shape
    rows, cols_idx = im2col_indices(h, w, kernel, stride)
    p = rows.shape[0]
    cols = cols.reshape(n, p, c, kernel * kernel).transpose(0, 2, 1, 3)
    out = np.zeros(x_shape, dtype=cols.dtype)
    np.add.at(out, (slice(None), slice(None), rows, cols_idx), cols)
    return out


class Conv2D(Layer):
    """Valid (unpadded) 2-D convolution, the LeNet-5 flavour.

    Parameters
    ----------
    in_channels, out_channels, kernel:
        Filter geometry; stride is fixed at 1 (LeNet-5).
    seed:
        Initialization seed.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel: int,
                 seed: int = 0):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        fan_in = in_channels * kernel * kernel
        fan_out = out_channels * kernel * kernel
        rng = spawn_rng(seed, "conv2d", in_channels, out_channels, kernel)
        self.weight = Parameter(
            glorot_uniform((out_channels, fan_in), fan_in, fan_out, rng),
            name="conv_w",
        )
        self.bias = Parameter(zeros(out_channels), name="conv_b")
        self.params = [self.weight, self.bias]
        self._cache = None

    @property
    def fan_in(self) -> int:
        """Receptive-field size: the SC inner-product input size ``n``."""
        return self.in_channels * self.kernel * self.kernel

    def output_hw(self, h: int, w: int):
        return h - self.kernel + 1, w - self.kernel + 1

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {c}"
            )
        cols = im2col(x, self.kernel)               # (N, P, fan_in)
        out = cols @ self.weight.value.T + self.bias.value  # (N, P, OC)
        oh, ow = self.output_hw(h, w)
        if training:
            self._cache = (x.shape, cols)
        return out.transpose(0, 2, 1).reshape(n, self.out_channels, oh, ow)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_shape, cols = self._cache
        n, oc, oh, ow = grad.shape
        g = grad.reshape(n, oc, oh * ow).transpose(0, 2, 1)  # (N, P, OC)
        self.weight.grad += np.einsum("npo,npk->ok", g, cols)
        self.bias.grad += g.sum(axis=(0, 1))
        dcols = g @ self.weight.value                        # (N, P, fan_in)
        return col2im(dcols, x_shape, self.kernel)
