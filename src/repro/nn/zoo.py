"""The model zoo: stock architectures the engine can lower and serve.

Every entry is a sequential conv/pool/dense stack over 28×28 bipolar
images that (a) the layer-graph engine lowers without special-casing
(see :func:`repro.engine.graph.build_graph`) and (b) trains to clearly
better-than-chance accuracy on the synthetic-MNIST data in seconds —
small enough for CI, structurally diverse enough to exercise every
lowering path:

======== ======================================== =====================
Name     Stack                                     Exercises
======== ======================================== =====================
lenet5   2×(conv5+pool) + 2 dense (the paper's)    the Table 6 baseline
lenet_s  narrow 2×(conv5+pool) + 2 dense           cheap conv topology
mlp      3 dense layers, conv-free                 pure-FC lowering
conv3    3 conv (last unpooled) + 2 dense          depth-5 stacks and
                                                   pool-free conv FEBs
======== ======================================== =====================

``model_digest`` fingerprints a model's *structure and trained
parameters*; the serving layer keys plans and engines on it so two
models never share quantized weights (see :mod:`repro.serve.pool`).
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.nn.activations import Tanh
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense
from repro.nn.lenet import build_lenet5
from repro.nn.module import Flatten, Sequential
from repro.nn.pool import AvgPool2D, MaxPool2D

__all__ = [
    "ZooSpec",
    "ZOO",
    "zoo_names",
    "get_spec",
    "build_zoo_model",
    "hidden_layer_count",
    "weight_layer_count",
    "input_geometry",
    "normalize_input_hw",
    "default_kinds",
    "model_digest",
]


@dataclasses.dataclass(frozen=True)
class ZooSpec:
    """One zoo architecture.

    Attributes
    ----------
    name:
        Registry key (also the CLI ``--model`` value).
    description:
        One-line summary for ``python -m repro list``.
    builder:
        ``(pooling: str, seed: int) -> Sequential``.
    hidden_layers:
        Number of configurable FEB layers — the length a
        :class:`repro.core.config.NetworkConfig` ``layers`` tuple must
        have for this model (the output layer is always APC on top).
    lr:
        Quick-training learning rate that converges for this
        architecture (the conv-free MLP diverges at the conv models'
        0.06).
    """

    name: str
    description: str
    builder: callable
    hidden_layers: int
    lr: float = 0.06


def _pool_cls(pooling: str):
    if pooling not in ("max", "avg"):
        raise ValueError(f"pooling must be 'max' or 'avg', got {pooling!r}")
    return MaxPool2D if pooling == "max" else AvgPool2D


def build_lenet_s(pooling: str = "max", seed: int = 0) -> Sequential:
    """A narrow LeNet: 8/16 conv channels, 64-unit hidden dense."""
    pool = _pool_cls(pooling)
    return Sequential([
        Conv2D(1, 8, 5, seed=seed),          # 28 → 24, pool → 12
        pool(2),
        Tanh(),
        Conv2D(8, 16, 5, seed=seed + 1),     # 12 → 8, pool → 4
        pool(2),
        Tanh(),
        Flatten(),                           # 16·4·4 = 256
        Dense(256, 64, seed=seed + 2),
        Tanh(),
        Dense(64, 10, seed=seed + 3),
    ])


def build_mlp(pooling: str = "max", seed: int = 0) -> Sequential:
    """A conv-free 784-128-32-10 multi-layer perceptron.

    ``pooling`` is accepted for interface uniformity (the SC design
    point still carries a network-wide pooling strategy, it just never
    fires — no layer of this model feeds a pooling block).
    """
    _pool_cls(pooling)  # validate for a consistent error surface
    return Sequential([
        Flatten(),
        Dense(784, 128, seed=seed),
        Tanh(),
        Dense(128, 32, seed=seed + 1),
        Tanh(),
        Dense(32, 10, seed=seed + 2),
    ])


def build_conv3(pooling: str = "max", seed: int = 0) -> Sequential:
    """A deeper 3-conv stack whose last conv stage has no pooling block."""
    pool = _pool_cls(pooling)
    return Sequential([
        Conv2D(1, 6, 5, seed=seed),          # 28 → 24, pool → 12
        pool(2),
        Tanh(),
        Conv2D(6, 12, 5, seed=seed + 1),     # 12 → 8, pool → 4
        pool(2),
        Tanh(),
        Conv2D(12, 24, 3, seed=seed + 2),    # 4 → 2, unpooled
        Tanh(),
        Flatten(),                           # 24·2·2 = 96
        Dense(96, 32, seed=seed + 3),
        Tanh(),
        Dense(32, 10, seed=seed + 4),
    ])


ZOO = {
    "lenet5": ZooSpec(
        "lenet5",
        "the paper's 784-11520-2880-3200-800-500-10 LeNet-5",
        build_lenet5, hidden_layers=3),
    "lenet_s": ZooSpec(
        "lenet_s",
        "narrow LeNet (8/16 conv channels, 64-unit dense)",
        build_lenet_s, hidden_layers=3),
    "mlp": ZooSpec(
        "mlp",
        "conv-free 784-128-32-10 perceptron",
        build_mlp, hidden_layers=2, lr=0.02),
    "conv3": ZooSpec(
        "conv3",
        "3-conv stack (last stage unpooled) + 2 dense",
        build_conv3, hidden_layers=4),
}


def zoo_names() -> list:
    """Sorted registry names."""
    return sorted(ZOO)


def get_spec(name: str) -> ZooSpec:
    """Look up a zoo entry; unknown names list what exists."""
    try:
        return ZOO[name]
    except KeyError:
        raise ValueError(
            f"unknown zoo model {name!r}; available: "
            f"{', '.join(zoo_names())}"
        ) from None


def build_zoo_model(name: str, pooling: str = "max",
                    seed: int = 0) -> Sequential:
    """Build (untrained) the named zoo architecture."""
    return get_spec(name).builder(pooling, seed)


def weight_layer_count(model) -> int:
    """Total weight layers (conv + dense, including the output layer)."""
    return sum(1 for l in model.layers if isinstance(l, (Conv2D, Dense)))


DEFAULT_INPUT_HW = (28, 28)
"""Default input grid (the synthetic-MNIST geometry); re-exported as
:data:`repro.engine.graph.INPUT_HW`."""


def normalize_input_hw(input_hw) -> tuple:
    """Validate an input grid spec into a ``(height, width)`` int pair.

    The single checkpoint where a spatial geometry enters the system
    (graph lowering, the serving resolver, the tiled-scene layer): a
    malformed grid fails here with the offending value, instead of as a
    raw ``IndexError`` or a misleading feature-count mismatch several
    layers downstream — and fractional sizes are rejected, not silently
    truncated.
    """
    try:
        h, w = input_hw
    except (TypeError, ValueError):
        raise ValueError(
            f"input_hw must be a (height, width) pair, got "
            f"{input_hw!r}") from None
    try:
        ih, iw = int(h), int(w)
        exact = (ih == h and iw == w)
    except (TypeError, ValueError):
        raise ValueError(
            f"input_hw must hold integers, got {input_hw!r}") from None
    if not exact:
        raise ValueError(
            f"input_hw must hold whole numbers, got {input_hw!r}")
    if ih < 1 or iw < 1:
        raise ValueError(
            f"input_hw dimensions must be >= 1, got {input_hw!r}")
    return (ih, iw)


def input_geometry(model, input_hw: tuple | None = None) -> tuple:
    """A model's input geometry ``(channels, height, width)``.

    The single derivation rule shared by the graph builder (which lowers
    onto this geometry) and the serving layer (which validates request
    payloads against it): the spatial grid comes from ``input_hw``,
    falling back to ``model.input_hw`` and finally the 28×28 default;
    the channel count from the first Conv2D (1 for conv-free stacks).
    """
    if input_hw is None:
        input_hw = getattr(model, "input_hw", DEFAULT_INPUT_HW)
    h, w = normalize_input_hw(input_hw)
    first_conv = next((l for l in model.layers if isinstance(l, Conv2D)),
                      None)
    channels = first_conv.in_channels if first_conv is not None else 1
    return (channels, h, w)


def hidden_layer_count(model) -> int:
    """Configurable FEB layers of a model (weight layers minus output)."""
    return weight_layer_count(model) - 1


def default_kinds(model_or_name) -> tuple:
    """The safe all-APC kind assignment for a model (or zoo name)."""
    hidden = (get_spec(model_or_name).hidden_layers
              if isinstance(model_or_name, str)
              else hidden_layer_count(model_or_name))
    return ("APC",) * hidden


def model_digest(model) -> str:
    """Stable fingerprint of a model's structure and trained parameters.

    Two models share a digest only if their layer stack, their input
    geometry *and* every parameter value agree — retraining, re-seeding,
    swapping architectures or re-targeting ``input_hw`` all change it.
    The serving layer keys compiled plans and pooled engines on this, so
    distinct models can never share quantized weights or weight streams
    (pre-fix the geometry was excluded, so two same-parameter models
    claiming different grids aliased in the pool).
    """
    h = hashlib.sha1()
    h.update(",".join(type(l).__name__ for l in model.layers).encode())
    h.update(repr(input_geometry(model)).encode())
    for p in model.params:
        h.update(str(p.value.shape).encode())
        h.update(p.value.tobytes())
    return h.hexdigest()[:16]
