"""Filter-aware SRAM sharing (Section 5.1).

All receptive fields of a feature map share one filter, so weights are
grouped into filter-sized SRAM blocks, each local to the group of inner
product blocks computing that feature map (Figure 12).  Versus one
central weight memory, the scheme trades a little per-block periphery for
drastically shorter weight-distribution wiring.

The routing proxy used here is wire length measured in block-pitch units:
a central SRAM must fan weights out across the whole accelerator (average
distance ~ sqrt(total units)), while a local block only spans its own
group.  The paper reports the scheme qualitatively ("significantly
reduces the routing overhead and wire delay"); the proxy makes that
claim checkable.
"""

from __future__ import annotations

import dataclasses
import math

from repro.hw.network_cost import LENET_GEOMETRY, LayerGeometry
from repro.hw.sram import SramBlockSpec, sram_cost

__all__ = ["FilterSharingPlan", "lenet_sharing_plan"]


@dataclasses.dataclass(frozen=True)
class FilterSharingPlan:
    """The SRAM placement plan of one layer.

    Attributes
    ----------
    layer:
        The layer geometry being served.
    word_bits:
        Weight precision.
    blocks:
        Number of local SRAM blocks (= number of filters).
    readers_per_block:
        Inner-product groups sharing one block.
    """

    layer: LayerGeometry
    word_bits: int
    blocks: int
    readers_per_block: int

    @property
    def block_spec(self) -> SramBlockSpec:
        return SramBlockSpec(words=self.layer.words_per_block,
                             word_bits=self.word_bits,
                             readers=self.readers_per_block)

    def total_area_um2(self) -> float:
        return sram_cost(self.block_spec).scale(self.blocks).area_um2

    def shared_wire_length(self) -> float:
        """Routing proxy with local, filter-aware blocks.

        Each block serves only its reader group; wire length per block
        grows with the group's footprint (~sqrt of readers).
        """
        return self.blocks * math.sqrt(max(self.readers_per_block, 1))

    def central_wire_length(self) -> float:
        """Routing proxy with one central SRAM serving every reader."""
        total_readers = self.blocks * self.readers_per_block
        return total_readers * math.sqrt(max(total_readers, 1))

    def routing_saving(self) -> float:
        """Central / shared wire-length ratio (> 1 means the scheme wins)."""
        return self.central_wire_length() / max(self.shared_wire_length(),
                                                1e-12)


def lenet_sharing_plan(word_bits: int = 7):
    """Build the filter-aware sharing plan for every LeNet-5 stage.

    Returns a list of :class:`FilterSharingPlan`, one per weight-bearing
    stage, with readers split evenly across filter groups.
    """
    plans = []
    for geometry in LENET_GEOMETRY:
        readers = max(geometry.units // geometry.sram_blocks, 1)
        plans.append(FilterSharingPlan(layer=geometry, word_bits=word_bits,
                                       blocks=geometry.sram_blocks,
                                       readers_per_block=readers))
    return plans
