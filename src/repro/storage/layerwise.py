"""Layer-wise weight precision optimization (Section 5.3, Figure 13).

Different layers tolerate different weight precisions: Figure 13 shows
truncation at Layer0 barely moves the network error while Layer2 (the
fully-connected layer, holding most weights) is the most sensitive — and
also where the savings are largest.  The paper's example scheme 7-7-6
achieves 12× SRAM area and 11.9× power savings versus 64-bit storage at
0.12% accuracy cost.

This module provides:

* :func:`precision_sweep` — network error vs precision, truncating one
  layer at a time or all layers (regenerates Figure 13);
* :func:`layerwise_precision_search` — the greedy layer-wise assignment;
* :func:`storage_savings` — SRAM area/power ratios vs the 64-bit
  high-precision baseline (CACTI stand-in).
"""

from __future__ import annotations

import copy

import numpy as np

from repro.hw.network_cost import LENET_GEOMETRY
from repro.hw.sram import SramBlockSpec, sram_cost
from repro.nn.trainer import evaluate_error_rate
from repro.storage.quantization import quantize_model

__all__ = ["precision_sweep", "layerwise_precision_search",
           "storage_savings", "BASELINE_BITS"]

BASELINE_BITS = 64
"""Section 5.2's high-precision baseline: 64-bit fixed-point weights."""

_NUM_WEIGHT_LAYERS = 3  # Layer0, Layer1, Layer2 (paper's naming)


def _quantized_error(model, x, y, bits_per_layer) -> float:
    """Error rate (%) of a copy of ``model`` quantized to the scheme."""
    clone = copy.deepcopy(model)
    quantize_model(clone, bits_per_layer)
    return evaluate_error_rate(clone, x, y)


def precision_sweep(model, x, y, precisions=range(2, 11)) -> dict:
    """Figure 13: error rate vs weight precision ``w``.

    For each ``w`` the sweep truncates (a) one layer at a time, leaving
    the others at full precision, and (b) all layers together.

    Returns ``{"Layer0": [...], "Layer1": [...], "Layer2": [...],
    "All layers": [...], "precisions": [...]}`` with error rates in
    percent.
    """
    precisions = list(precisions)
    results = {f"Layer{i}": [] for i in range(_NUM_WEIGHT_LAYERS)}
    results["All layers"] = []
    full = [BASELINE_BITS] * _NUM_WEIGHT_LAYERS
    for w in precisions:
        for i in range(_NUM_WEIGHT_LAYERS):
            scheme = list(full)
            scheme[i] = w
            results[f"Layer{i}"].append(
                _quantized_error(model, x, y, tuple(scheme))
            )
        results["All layers"].append(
            _quantized_error(model, x, y, (w,) * _NUM_WEIGHT_LAYERS)
        )
    results["precisions"] = precisions
    return results


def layerwise_precision_search(model, x, y, budget_pct: float = 0.15,
                               min_bits: int = 4, max_bits: int = 10) -> tuple:
    """Greedy layer-wise precision assignment.

    Starting from ``max_bits`` everywhere, repeatedly reduce the precision
    of the layer whose reduction costs the least accuracy, as long as the
    total error-rate increase stays within ``budget_pct`` percentage
    points of the full-precision error (the paper quotes 0.12% for
    7-7-6).

    Returns ``(bits_per_layer, error_pct)``.
    """
    base_error = _quantized_error(model, x, y,
                                  (BASELINE_BITS,) * _NUM_WEIGHT_LAYERS)
    bits = [max_bits] * _NUM_WEIGHT_LAYERS
    current_error = _quantized_error(model, x, y, tuple(bits))
    improved = True
    while improved:
        improved = False
        candidates = []
        for i in range(_NUM_WEIGHT_LAYERS):
            if bits[i] <= min_bits:
                continue
            trial = list(bits)
            trial[i] -= 1
            err = _quantized_error(model, x, y, tuple(trial))
            if err - base_error <= budget_pct:
                candidates.append((err, i))
        if candidates:
            candidates.sort()
            err, i = candidates[0]
            bits[i] -= 1
            current_error = err
            improved = True
    return tuple(bits), current_error


def storage_savings(bits_per_layer, baseline_bits: int = BASELINE_BITS
                    ) -> dict:
    """SRAM area/power savings of a precision scheme vs the baseline.

    Both sides use the filter-aware sharing geometry of
    :data:`repro.hw.network_cost.LENET_GEOMETRY` (weight-bearing stages),
    so the ratio isolates the precision effect — the quantity the paper
    reports as 10.3× (uniform 7-bit) and 12×/11.9× (7-7-6).
    """
    scheme = list(bits_per_layer)
    if len(scheme) == _NUM_WEIGHT_LAYERS:
        scheme = scheme + [scheme[-1]]  # output layer inherits Layer2
    if len(scheme) != len(LENET_GEOMETRY):
        raise ValueError(
            f"need {_NUM_WEIGHT_LAYERS} or {len(LENET_GEOMETRY)} precisions"
        )

    def totals(bits_list):
        area = power = 0.0
        for geometry, bits in zip(LENET_GEOMETRY, bits_list):
            spec = SramBlockSpec(words=geometry.words_per_block,
                                 word_bits=int(bits),
                                 readers=geometry.units)
            cost = sram_cost(spec).scale(geometry.sram_blocks)
            area += cost.area_um2
            power += cost.power_uw()
        return area, power

    base_area, base_power = totals([baseline_bits] * len(LENET_GEOMETRY))
    area, power = totals(scheme)
    return {
        "area_um2": area,
        "power_uw": power,
        "area_saving": base_area / area,
        "power_saving": base_power / power,
    }
