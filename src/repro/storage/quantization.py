"""Low-precision weight storage (Section 5.2).

The paper stores a weight ``x ∈ [-1, 1]`` as the ``w``-bit binary code

    y = Int((x + 1)/2 · 2^w) / 2^w

i.e. the truncated fixed-point representation of the shifted value.  At
inference the hardware reconstructs ``x̂ = 2·y - 1``.  The experiments in
Figure 13 reduce ``w`` for single layers or all layers and measure the
network error rate; ``w >= 7`` is reported to be indistinguishable from
full precision.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import as_float_array, check_positive_int

__all__ = ["quantize_weights", "dequantize_codes", "quantization_error",
           "quantize_model"]


def quantize_weights(weights, bits: int) -> np.ndarray:
    """Return the integer SRAM codes for ``weights`` (paper's ``Int`` map).

    Values are clipped to [-1, 1] first (trained LeNet-5 weights stay
    well inside that range); the code range is ``[0, 2^w]`` where the top
    code only occurs for ``x = 1`` exactly.

    Precisions beyond float64's 52-bit mantissa are capped at 52: the
    mapping is already lossless there (the Section 5.2 baseline stores
    64-bit words, whose extra bits carry no information the float
    weights ever had).
    """
    bits = min(check_positive_int(bits, "bits"), 52)
    w = as_float_array(weights, "weights")
    clipped = np.clip(w, -1.0, 1.0)
    scale = float(1 << bits)
    return np.floor((clipped + 1.0) / 2.0 * scale).astype(np.int64)


def dequantize_codes(codes, bits: int) -> np.ndarray:
    """Reconstruct weight values from SRAM codes: ``x̂ = 2·(y/2^w) - 1``.

    Precisions beyond 52 bits are capped to match
    :func:`quantize_weights`.
    """
    bits = min(check_positive_int(bits, "bits"), 52)
    scale = float(1 << bits)
    return np.asarray(codes, dtype=np.float64) / scale * 2.0 - 1.0


def quantization_error(weights, bits: int) -> dict:
    """Weight-domain error statistics of the storage mapping.

    Returns ``max_abs``, ``mean_abs`` and ``rmse``.  The truncation step
    is ``2 / 2^w``, so ``max_abs`` is bounded by it.
    """
    w = as_float_array(weights, "weights")
    restored = dequantize_codes(quantize_weights(w, bits), bits)
    err = np.abs(np.clip(w, -1.0, 1.0) - restored)
    return {
        "max_abs": float(err.max()) if err.size else 0.0,
        "mean_abs": float(err.mean()) if err.size else 0.0,
        "rmse": float(np.sqrt((err ** 2).mean())) if err.size else 0.0,
    }


def quantize_model(model, bits_per_layer) -> None:
    """Quantize a LeNet-5's weight parameters in place.

    Parameters
    ----------
    model:
        A :class:`repro.nn.module.Sequential` whose weight-bearing layers
        appear in network order (conv1, conv2, fc1, fc2 for LeNet-5).
    bits_per_layer:
        Either an int (uniform precision), or a sequence with one entry
        per weight-bearing layer.  LeNet-5 convenience: a 3-tuple is
        interpreted as the Section 5.3 (Layer0, Layer1, Layer2) scheme
        with the output layer inheriting Layer2's precision.

    Biases are left untouched (the hardware keeps them in the activation
    FSM's binary domain).
    """
    weight_params = [p for p in model.params if p.name.endswith("_w")]
    if isinstance(bits_per_layer, int):
        bits_list = [bits_per_layer] * len(weight_params)
    else:
        bits_list = [int(b) for b in bits_per_layer]
        if len(bits_list) == 3 and len(weight_params) == 4:
            bits_list = bits_list + [bits_list[-1]]
    if len(bits_list) != len(weight_params):
        raise ValueError(
            f"need {len(weight_params)} precisions, got {len(bits_list)}"
        )
    for param, bits in zip(weight_params, bits_list):
        param.value = dequantize_codes(
            quantize_weights(param.value, bits), bits
        )
