"""Weight storage schemes and optimizations (Section 5).

* :mod:`repro.storage.quantization` — the low-precision weight storage
  mapping ``y = Int((x+1)/2 · 2^w) / 2^w`` of Section 5.2;
* :mod:`repro.storage.layerwise` — layer-wise precision assignment
  (Section 5.3), including the network-error sweeps behind Figure 13;
* :mod:`repro.storage.sharing` — the filter-aware SRAM sharing scheme of
  Section 5.1 and its area/routing accounting.
"""

from repro.storage.quantization import (
    quantize_weights,
    dequantize_codes,
    quantization_error,
    quantize_model,
)
from repro.storage.layerwise import (
    precision_sweep,
    layerwise_precision_search,
    storage_savings,
)
from repro.storage.sharing import FilterSharingPlan, lenet_sharing_plan

__all__ = [
    "quantize_weights",
    "dequantize_codes",
    "quantization_error",
    "quantize_model",
    "precision_sweep",
    "layerwise_precision_search",
    "storage_savings",
    "FilterSharingPlan",
    "lenet_sharing_plan",
]
