"""Declarative SC-DCNN configurations (Table 6).

An SC-DCNN design is described by: the network-wide pooling strategy
(max or average), the bit-stream length ``L``, and the inner product
block kind (MUX or APC) of each *hidden* weight layer.  The output layer
is always APC-based (a MUX inner product over hundreds of inputs would
scale its output into the noise floor).  For the paper's LeNet-5 that
means three layer configs — Layer 0 (conv1+pool1), Layer 1 (conv2+pool2)
and Layer 2 (the 500-unit fully-connected layer) — but a configuration
may carry any depth: the engine validates the count against the model it
lowers (see :func:`repro.engine.graph.build_graph` and
:mod:`repro.nn.zoo`).

``TABLE6_CONFIGS`` reproduces the twelve configurations of Table 6,
together with the paper's reported numbers so harnesses can print
paper-vs-measured rows side by side.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.utils.validation import check_stream_length

__all__ = [
    "FEBKind",
    "PoolKind",
    "LayerConfig",
    "NetworkConfig",
    "PaperRow",
    "TABLE6_CONFIGS",
    "resolve_pooling",
    "resolve_kinds",
]


class FEBKind(enum.Enum):
    """Inner-product block family of a layer's feature extraction blocks."""

    MUX = "MUX"
    APC = "APC"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class PoolKind(enum.Enum):
    """Network-wide pooling strategy."""

    AVG = "Average"
    MAX = "Max"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclasses.dataclass(frozen=True)
class LayerConfig:
    """Per-layer SC configuration.

    Attributes
    ----------
    ip_kind:
        MUX or APC inner products.
    n_states:
        Optional explicit activation state count (``None`` = use the
        paper's equations for the layer's input size / stream length).
    """

    ip_kind: FEBKind
    n_states: int = None

    def feb_key(self, pooling: "PoolKind") -> str:
        """The :func:`repro.core.feature_extraction.make_feb` kind key."""
        ip = "mux" if self.ip_kind is FEBKind.MUX else "apc"
        pool = "avg" if pooling is PoolKind.AVG else "max"
        return f"{ip}-{pool}"


@dataclasses.dataclass(frozen=True)
class NetworkConfig:
    """A complete SC-DCNN design point.

    Attributes
    ----------
    pooling:
        Network-wide pooling strategy (Table 6 groups configs by it).
    length:
        Bit-stream length ``L``.
    layers:
        Layer configurations for the hidden weight layers (``Layer0`` …;
        three entries for the paper's LeNet-5, any depth for zoo
        models — the output layer is always APC and carries no config).
    name:
        Optional label (e.g. ``"No.11"``).
    """

    pooling: PoolKind
    length: int
    layers: tuple
    name: str = ""

    def __post_init__(self):
        check_stream_length(self.length)
        if not self.layers:
            raise ValueError(
                "expected at least 1 layer config (one per hidden weight "
                "layer), got 0"
            )
        for layer in self.layers:
            if not isinstance(layer, LayerConfig):
                raise ValueError(f"layers must be LayerConfig, got {layer!r}")

    @classmethod
    def from_kinds(cls, pooling: PoolKind, length: int, kinds,
                   name: str = "") -> "NetworkConfig":
        """Build from a sequence like ``("MUX", "APC", "APC")``."""
        layers = tuple(LayerConfig(FEBKind(k)) for k in kinds)
        return cls(pooling=pooling, length=length, layers=layers, name=name)

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``Max/1024 MUX-MUX-APC``."""
        kinds = "-".join(layer.ip_kind.value for layer in self.layers)
        label = f"{self.name} " if self.name else ""
        return f"{label}{self.pooling.value}/{self.length} {kinds}"


def resolve_pooling(pooling) -> PoolKind:
    """Parse a pooling spec (``"max"``/``"avg"`` or a PoolKind).

    The shared parser for user-facing spec strings (the CLI and the
    serving layer's request fields).
    """
    if isinstance(pooling, PoolKind):
        return pooling
    try:
        return {"max": PoolKind.MAX, "avg": PoolKind.AVG,
                "average": PoolKind.AVG}[str(pooling).lower()]
    except KeyError:
        raise ValueError(
            f"unknown pooling {pooling!r}; use 'max' or 'avg'") from None


def resolve_kinds(kinds, n_layers: int = None) -> tuple:
    """Parse a FEB-kind spec (``"APC,APC,APC"`` or a sequence).

    ``n_layers`` pins the expected hidden-layer count (the served
    model's depth); ``None`` accepts any non-empty assignment.
    """
    if isinstance(kinds, str):
        kinds = [k.strip() for k in kinds.split(",")]
    kinds = tuple(str(k).upper() for k in kinds)
    if not kinds or not all(k in ("MUX", "APC") for k in kinds):
        raise ValueError(
            f"kinds must be MUX/APC entries, got {kinds!r}")
    if n_layers is not None and len(kinds) != n_layers:
        raise ValueError(
            f"kinds carries {len(kinds)} entries but the model has "
            f"{n_layers} hidden weight layers")
    return kinds


@dataclasses.dataclass(frozen=True)
class PaperRow:
    """Paper-reported Table 6 metrics for one configuration."""

    inaccuracy_pct: float
    area_mm2: float
    power_w: float
    delay_ns: float
    energy_uj: float


def _cfg(no, pooling, length, kinds, inacc, area, power, delay, energy):
    config = NetworkConfig.from_kinds(pooling, length, kinds, name=f"No.{no}")
    return config, PaperRow(inacc, area, power, delay, energy)


#: The twelve Table 6 configurations, as ``(NetworkConfig, PaperRow)`` pairs.
TABLE6_CONFIGS = (
    _cfg(1, PoolKind.MAX, 1024, ("MUX", "MUX", "APC"), 2.64, 19.1, 1.74, 5120, 8.9),
    _cfg(2, PoolKind.MAX, 1024, ("MUX", "APC", "APC"), 2.23, 22.9, 2.13, 5120, 10.9),
    _cfg(3, PoolKind.MAX, 512, ("APC", "MUX", "APC"), 1.91, 32.7, 3.14, 2560, 8.0),
    _cfg(4, PoolKind.MAX, 512, ("APC", "APC", "APC"), 1.68, 36.4, 3.53, 2560, 9.0),
    _cfg(5, PoolKind.MAX, 256, ("APC", "MUX", "APC"), 2.13, 32.7, 3.14, 1280, 4.0),
    _cfg(6, PoolKind.MAX, 256, ("APC", "APC", "APC"), 1.74, 36.4, 3.53, 1280, 4.5),
    _cfg(7, PoolKind.AVG, 1024, ("MUX", "APC", "APC"), 3.06, 17.0, 1.53, 5120, 7.8),
    _cfg(8, PoolKind.AVG, 1024, ("APC", "APC", "APC"), 2.58, 22.1, 2.14, 5120, 11.0),
    _cfg(9, PoolKind.AVG, 512, ("MUX", "APC", "APC"), 3.16, 17.0, 1.53, 2560, 3.9),
    _cfg(10, PoolKind.AVG, 512, ("APC", "APC", "APC"), 2.65, 22.1, 2.14, 2560, 5.5),
    _cfg(11, PoolKind.AVG, 256, ("MUX", "APC", "APC"), 3.36, 17.0, 1.53, 1280, 2.0),
    _cfg(12, PoolKind.AVG, 256, ("APC", "APC", "APC"), 2.76, 22.1, 2.14, 1280, 2.7),
)
