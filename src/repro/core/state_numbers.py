"""State-number selection equations for Stanh and Btanh (Section 4.4).

The paper derives three empirical equations for the "approximately optimal"
FSM/counter state number ``K`` of each feature extraction block, always
rounded to the nearest even number:

Equation (1), MUX-Avg-Stanh::

    K = 2·log2(N) + (log2(L)·N) / (α·log2(N)),   α = 33.27

Equation (2), MUX-Max-Stanh::

    K = 2·(log2(N) + log2(L)) - α/log2(N) - β/log5(L),  α = 37, β = 16.5

Equation (3), APC-Avg-Btanh::

    K = N / 2

APC-Max-Btanh reuses the *original* Btanh sizing of ref (21) unchanged;
by the diffusion argument in DESIGN.md the directly-connected counter
needs ``K = 2N`` states (the average pooling divider shrinks the count
variance 4×, which is exactly how equation (3) arrives at ``N/2``).

``N`` is the inner-product input size, ``L`` the bit-stream length.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_positive_int

__all__ = [
    "nearest_even",
    "stanh_states_mux_avg",
    "stanh_states_mux_max",
    "btanh_states_apc_avg",
    "btanh_states_apc_max",
    "select_states",
    "MUX_AVG_ALPHA",
    "MUX_MAX_ALPHA",
    "MUX_MAX_BETA",
]

MUX_AVG_ALPHA = 33.27
MUX_MAX_ALPHA = 37.0
MUX_MAX_BETA = 16.5

_MIN_STATES = 2


def nearest_even(value: float) -> int:
    """Round to the nearest even integer (ties away from zero), min 2.

    The paper assigns "the nearest even number to the result calculated by
    the equation" — FSM state counts must be even so the diagram splits
    into equal halves.
    """
    half = value / 2.0
    even = int(math.floor(half + 0.5)) * 2
    return max(even, _MIN_STATES)


def stanh_states_mux_avg(length: int, n: int) -> int:
    """Equation (1): Stanh state count for MUX-Avg-Stanh blocks."""
    length = check_positive_int(length, "length")
    n = check_positive_int(n, "n")
    if n < 2:
        raise ValueError("equation (1) requires an input size of at least 2")
    log2n = math.log2(n)
    k = 2.0 * log2n + (math.log2(length) * n) / (MUX_AVG_ALPHA * log2n)
    return nearest_even(k)


def stanh_states_mux_max(length: int, n: int) -> int:
    """Equation (2): Stanh state count for MUX-Max-Stanh blocks."""
    length = check_positive_int(length, "length")
    n = check_positive_int(n, "n")
    if n < 2 or length < 2:
        raise ValueError("equation (2) requires n >= 2 and length >= 2")
    log5l = math.log(length) / math.log(5.0)
    k = (2.0 * (math.log2(n) + math.log2(length))
         - MUX_MAX_ALPHA / math.log2(n)
         - MUX_MAX_BETA / log5l)
    return nearest_even(k)


def btanh_states_apc_avg(n: int) -> int:
    """Equation (3): Btanh state count behind APC + average pooling."""
    n = check_positive_int(n, "n")
    return nearest_even(n / 2.0)


def btanh_states_apc_max(n: int) -> int:
    """Original Btanh sizing of ref (21) for a directly-connected APC.

    The counter consumes un-averaged counts whose increment variance is
    ~4× that of the averaged stream, so it needs ``K = 2N`` states (see
    module docstring and DESIGN.md).
    """
    n = check_positive_int(n, "n")
    return nearest_even(2.0 * n)


def select_states(kind, n: int, length: int, pooling, pooled: bool = True
                  ) -> int:
    """Dispatch to the right state-number equation for a layer.

    The single selection rule shared by the feature extraction blocks, the
    engine's plan compiler and the legacy evaluators: a MUX layer behind
    max pooling uses equation (2), any other MUX layer equation (1); an
    APC layer behind average pooling uses equation (3), any other APC
    layer the original ``2N`` Btanh sizing (which also covers the
    pooling-free fully-connected stages).

    ``kind`` is a :class:`repro.core.config.FEBKind` and ``pooling`` a
    :class:`repro.core.config.PoolKind`; ``pooled`` says whether the layer
    actually feeds a pooling block (False for fully-connected stages).
    """
    from repro.core.config import FEBKind, PoolKind
    avg = pooling is PoolKind.AVG
    if kind is FEBKind.MUX:
        if pooled and not avg:
            return stanh_states_mux_max(length, n)
        return stanh_states_mux_avg(length, n)
    if pooled and avg:
        return btanh_states_apc_avg(n)
    return btanh_states_apc_max(n)
