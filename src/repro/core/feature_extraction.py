"""Feature extraction blocks (Section 4.4) — the paper's core designs.

A feature extraction block (FEB) cascades four inner-product blocks, one
pooling block and one activation block (Figure 10), extracting one pooled,
activated feature from four receptive fields.  The four jointly-optimized
designs are:

========================  =========================================
``MuxAvgStanh``           MUX inner products → MUX average pooling →
                          Stanh(K) with K from equation (1)
``MuxMaxStanh``           MUX inner products → hardware-oriented max
                          pooling → re-designed Stanh (threshold K/5)
                          with K from equation (2)
``ApcAvgBtanh``           APC inner products → binary average pooling →
                          Btanh with K = N/2 (equation (3))
``ApcMaxBtanh``           APC inner products → accumulator-based max
                          pooling → original Btanh (K = 2N)
========================  =========================================

Every block exposes ``forward`` (decoded hardware output), ``reference``
(the software value ``tanh(pool(Σ x·w))``) and ``forward_stream`` (the raw
output bit-stream, for cascading into the next layer).  The hardware
inaccuracy measured by Figure 14 is ``|forward - reference|``.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.activation import BtanhBlock, StanhBlock
from repro.core.config import FEBKind, PoolKind
from repro.blocks.pooling import (
    DEFAULT_SEGMENT,
    apc_average_pool,
    apc_max_pool,
    average_pool,
    hardware_max_pool,
)
from repro.core.state_numbers import select_states
from repro.sc import adders, ops
from repro.sc.bitstream import Bitstream
from repro.sc.encoding import Encoding
from repro.sc.rng import StreamFactory
from repro.utils.validation import check_positive_int, check_stream_length

__all__ = [
    "FeatureExtractionBlock",
    "MuxAvgStanh",
    "MuxMaxStanh",
    "ApcAvgBtanh",
    "ApcMaxBtanh",
    "make_feb",
    "FEB_CLASSES",
]

POOL_WINDOWS = 4
"""Pooling window size (2×2) throughout the paper."""


class FeatureExtractionBlock:
    """Base class: four ``n``-input inner products → pool → activation.

    Parameters
    ----------
    n:
        Inner-product input size (receptive field × channels).
    length:
        Bit-stream length ``L``.
    seed:
        Seed for the block's private stream factory.
    n_states:
        Activation state count ``K``; ``None`` selects it with the
        block's paper equation.
    segment:
        Max-pooling segment length ``c`` (ignored by Avg blocks).
    """

    #: subclasses set these
    name = "base"
    pooling = None  # "avg" | "max"
    ip_kind = None  # FEBKind of the inner-product blocks

    def __init__(self, n: int, length: int, seed: int = 0,
                 n_states: int = None, segment: int = DEFAULT_SEGMENT):
        self.n = check_positive_int(n, "n")
        self.length = check_stream_length(length)
        self.segment = check_positive_int(segment, "segment")
        self.factory = StreamFactory(seed=seed, encoding=Encoding.BIPOLAR)
        self.n_states = (check_positive_int(n_states, "n_states")
                         if n_states is not None
                         else self._default_states())

    # -- software reference -------------------------------------------------
    def reference(self, x, w) -> np.ndarray:
        """Software FEB output: ``tanh(pool_j(Σ_i x_ij · w_ij))``.

        ``x`` and ``w`` have shape ``(..., 4, n)``; the pool reduces the
        four windows.
        """
        x = np.asarray(x, dtype=np.float64)
        w = np.asarray(w, dtype=np.float64)
        ips = (x * w).sum(axis=-1)  # (..., 4)
        if self.pooling == "avg":
            pooled = ips.mean(axis=-1)
        else:
            pooled = ips.max(axis=-1)
        return np.tanh(pooled)

    # -- hardware ------------------------------------------------------------
    def _check_window_inputs(self, x, w):
        x = np.asarray(x, dtype=np.float64)
        w = np.asarray(w, dtype=np.float64)
        if x.shape[-2:] != (POOL_WINDOWS, self.n):
            raise ValueError(
                f"x must end with shape ({POOL_WINDOWS}, {self.n}), got "
                f"{x.shape}"
            )
        return x, np.broadcast_to(w, x.shape)

    def _product_streams(self, x, w) -> np.ndarray:
        """XNOR product streams, packed, shape ``x.shape + (nbytes,)``."""
        xs = self.factory.packed(x, self.length)
        ws = self.factory.packed(w, self.length)
        return ops.xnor_(xs, ws, self.length)

    def forward_stream(self, x, w) -> Bitstream:  # pragma: no cover
        raise NotImplementedError

    def forward(self, x, w) -> np.ndarray:
        """Decoded hardware output in [-1, 1]."""
        return self.forward_stream(x, w).value()

    def _default_states(self) -> int:
        """The paper's state-number equation for this block.

        Dispatches through :func:`repro.core.state_numbers.select_states`
        on the block's (inner-product kind, pooling) — the same selection
        rule the engine's plan compiler applies to whole networks.
        """
        if not isinstance(self.ip_kind, FEBKind) or self.pooling not in (
                "avg", "max"):
            raise NotImplementedError(
                f"{type(self).__name__} must set ip_kind/pooling (or "
                "override _default_states)"
            )
        pooling = PoolKind.AVG if self.pooling == "avg" else PoolKind.MAX
        return select_states(self.ip_kind, self.n, self.length, pooling,
                             pooled=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(n={self.n}, length={self.length}, "
                f"K={self.n_states})")


class MuxAvgStanh(FeatureExtractionBlock):
    """MUX-Avg-Stanh: cheapest design, suited to small receptive fields.

    The MUX inner product scales by ``1/n`` and the MUX average pooling by
    a further ``1/4``; the information dropped by those scalings is why
    this block has the worst accuracy of the four (Section 6.1) — it is,
    however, the most area/energy-efficient (Figure 15).
    """

    name = "MUX-Avg-Stanh"
    pooling = "avg"
    ip_kind = FEBKind.MUX

    def forward_stream(self, x, w) -> Bitstream:
        x, w = self._check_window_inputs(x, w)
        products = self._product_streams(x, w)  # (..., 4, n, nbytes)
        ip_sel = self.factory.select_signal(self.n, self.length)
        ips = adders.mux_add(products, ip_sel, self.length)  # (..., 4, nbytes)
        pool_sel = self.factory.select_signal(POOL_WINDOWS, self.length)
        pooled = average_pool(ips, pool_sel, self.length)  # (..., nbytes)
        act = StanhBlock(self.n_states)
        return Bitstream(act.apply_packed(pooled, self.length), self.length,
                         Encoding.BIPOLAR)


class MuxMaxStanh(FeatureExtractionBlock):
    """MUX-Max-Stanh: MUX inner products + hardware-oriented max pooling.

    Uses the re-designed Stanh of Figure 11 (output threshold at K/5) to
    counteract the pooling block's systematic under-counting after the
    ``1/n`` down-scaling (Section 4.4).
    """

    name = "MUX-Max-Stanh"
    pooling = "max"
    ip_kind = FEBKind.MUX

    def forward_stream(self, x, w) -> Bitstream:
        x, w = self._check_window_inputs(x, w)
        products = self._product_streams(x, w)
        ip_sel = self.factory.select_signal(self.n, self.length)
        ips = adders.mux_add(products, ip_sel, self.length)  # (..., 4, nbytes)
        pooled = hardware_max_pool(ips, self.length, self.segment)
        act = StanhBlock.mux_max_variant(self.n_states)
        return Bitstream(act.apply_packed(pooled, self.length), self.length,
                         Encoding.BIPOLAR)


class ApcAvgBtanh(FeatureExtractionBlock):
    """APC-Avg-Btanh: high accuracy, higher hardware cost (Section 6.1).

    The APC keeps (nearly) all inner-product information as binary counts;
    the average pooling is a binary adder + divider whose dropped
    fractional bits are this block's main loss.
    """

    name = "APC-Avg-Btanh"
    pooling = "avg"
    ip_kind = FEBKind.APC

    def __init__(self, *args, approximate: bool = True, **kwargs):
        self.approximate = bool(approximate)
        super().__init__(*args, **kwargs)

    def count_streams(self, x, w) -> np.ndarray:
        """Per-window APC count streams ``(..., 4, L)``."""
        x, w = self._check_window_inputs(x, w)
        products = self._product_streams(x, w)
        if self.approximate:
            return adders.apc_count(products, self.length)
        return adders.parallel_counter(products, self.length)

    def forward_stream(self, x, w) -> Bitstream:
        counts = self.count_streams(x, w)
        pooled = apc_average_pool(counts)
        act = BtanhBlock(self.n, self.n_states)
        return Bitstream.from_bits(act.apply_counts(pooled), Encoding.BIPOLAR)


class ApcMaxBtanh(FeatureExtractionBlock):
    """APC-Max-Btanh: the most accurate design (Section 6.1).

    Max pooling runs in the binary domain with accumulators instead of
    counters (the stream of counts is still stochastic, so a plain binary
    comparator would over-estimate — Section 4.4), and the original Btanh
    is used unchanged.
    """

    name = "APC-Max-Btanh"
    pooling = "max"
    ip_kind = FEBKind.APC

    def __init__(self, *args, approximate: bool = True, **kwargs):
        self.approximate = bool(approximate)
        super().__init__(*args, **kwargs)

    def count_streams(self, x, w) -> np.ndarray:
        """Per-window APC count streams ``(..., 4, L)``."""
        x, w = self._check_window_inputs(x, w)
        products = self._product_streams(x, w)
        if self.approximate:
            return adders.apc_count(products, self.length)
        return adders.parallel_counter(products, self.length)

    def forward_stream(self, x, w) -> Bitstream:
        counts = self.count_streams(x, w)
        pooled = apc_max_pool(counts, self.segment)
        act = BtanhBlock(self.n, self.n_states)
        return Bitstream.from_bits(act.apply_counts(pooled), Encoding.BIPOLAR)


FEB_CLASSES = {
    "mux-avg": MuxAvgStanh,
    "mux-max": MuxMaxStanh,
    "apc-avg": ApcAvgBtanh,
    "apc-max": ApcMaxBtanh,
}


def make_feb(kind: str, n: int, length: int, seed: int = 0,
             **kwargs) -> FeatureExtractionBlock:
    """Build a feature extraction block by name.

    ``kind`` is one of ``"mux-avg"``, ``"mux-max"``, ``"apc-avg"``,
    ``"apc-max"`` (case-insensitive; the full paper names such as
    ``"MUX-Avg-Stanh"`` are also accepted).
    """
    key = kind.lower()
    aliases = {
        "mux-avg-stanh": "mux-avg",
        "mux-max-stanh": "mux-max",
        "apc-avg-btanh": "apc-avg",
        "apc-max-btanh": "apc-max",
    }
    key = aliases.get(key, key)
    try:
        cls = FEB_CLASSES[key]
    except KeyError:
        raise ValueError(
            f"unknown FEB kind {kind!r}; choose from {sorted(FEB_CLASSES)}"
        ) from None
    return cls(n, length, seed=seed, **kwargs)
