"""SC-DCNN core: feature extraction blocks, network mapping, optimization.

This subpackage is the paper's primary contribution:

* :mod:`repro.core.state_numbers` — the empirical state-number equations
  (1), (2) and (3) for Stanh/Btanh in each feature extraction block;
* :mod:`repro.core.feature_extraction` — the four jointly-optimized
  feature extraction blocks (Section 4.4);
* :mod:`repro.core.config` — declarative layer/network configurations,
  including the twelve Table 6 LeNet-5 designs;
* :mod:`repro.core.network` — exact bit-level SC inference for a trained
  LeNet-5;
* :mod:`repro.core.fast_model` — a calibrated surrogate (transfer curve +
  measured noise per block) that makes the Table 6 sweep and the
  Section 6.3 optimizer tractable;
* :mod:`repro.core.optimizer` — the holistic optimization procedure of
  Section 6.3.
"""

from repro.core.state_numbers import (
    nearest_even,
    stanh_states_mux_avg,
    stanh_states_mux_max,
    btanh_states_apc_avg,
    btanh_states_apc_max,
)
from repro.core.feature_extraction import (
    FeatureExtractionBlock,
    MuxAvgStanh,
    MuxMaxStanh,
    ApcAvgBtanh,
    ApcMaxBtanh,
    make_feb,
    FEB_CLASSES,
)
from repro.core.config import (
    FEBKind,
    PoolKind,
    LayerConfig,
    NetworkConfig,
    TABLE6_CONFIGS,
)
from repro.core.network import SCNetwork
from repro.core.fast_model import FastSCModel
from repro.core.optimizer import HolisticOptimizer

__all__ = [
    "nearest_even",
    "stanh_states_mux_avg",
    "stanh_states_mux_max",
    "btanh_states_apc_avg",
    "btanh_states_apc_max",
    "FeatureExtractionBlock",
    "MuxAvgStanh",
    "MuxMaxStanh",
    "ApcAvgBtanh",
    "ApcMaxBtanh",
    "make_feb",
    "FEB_CLASSES",
    "FEBKind",
    "PoolKind",
    "LayerConfig",
    "NetworkConfig",
    "TABLE6_CONFIGS",
    "SCNetwork",
    "FastSCModel",
    "HolisticOptimizer",
]
