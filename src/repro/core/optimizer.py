"""Holistic SC-DCNN optimization (Section 6.3).

The paper's procedure: start every candidate configuration at the maximum
bit-stream length (1024); for configurations that meet the network
accuracy target (error-rate degradation over the software baseline at
most 1.5%), halve the bit-stream length to cut energy; drop configurations
that fail; iterate until no configuration is left.  The surviving
(configuration, length) points — costed with the hardware model — are the
rows of Table 6.

:class:`HolisticOptimizer` is now a thin facade over the
:mod:`repro.dse` subsystem: :meth:`HolisticOptimizer.run` delegates to
:class:`repro.dse.runner.ParallelRunner` (gaining process parallelism,
surrogate pre-screening and resumable stores with the same return
shape), while :meth:`HolisticOptimizer.run_sequential` keeps the
original in-process loop as the regression oracle the conformance suite
compares against bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.core.config import FEBKind, LayerConfig, NetworkConfig, PoolKind
from repro.engine.engine import Engine
from repro.engine.graph import build_graph
from repro.engine.plan import compile_plan
from repro.hw.network_cost import NetworkCost, graph_network_cost

__all__ = ["DesignPoint", "HolisticOptimizer"]

ACCURACY_THRESHOLD_PCT = 1.5
MAX_STREAM_LENGTH = 1024
MIN_STREAM_LENGTH = 64


@dataclasses.dataclass
class DesignPoint:
    """One evaluated (configuration, stream length) point."""

    config: NetworkConfig
    error_pct: float
    degradation_pct: float
    cost: NetworkCost

    def summary(self) -> str:
        return (f"{self.config.describe():34s} err={self.error_pct:5.2f}% "
                f"area={self.cost.area_mm2:6.2f}mm² "
                f"power={self.cost.power_w:5.2f}W "
                f"energy={self.cost.energy_uj:6.2f}µJ")


class HolisticOptimizer:
    """Design-space exploration over layer FEB kinds and stream lengths.

    Parameters
    ----------
    trained:
        A :class:`repro.data.cache.TrainedModel` (model + test data +
        software baseline error).
    threshold_pct:
        Maximum allowed error-rate degradation vs the software baseline
        (the paper uses 1.5%).
    eval_images:
        Test-subset size for each accuracy evaluation.
    seed:
        Evaluation seed.
    restrict_layer2_to_apc:
        A MUX inner product over 800 inputs scales its output by 1/800 —
        hopeless; the paper's Table 6 always uses APC at Layer 2.  For
        any model the restriction pins the *last hidden* layer (the
        wide pre-logit stage) to APC.  Set False to let the accuracy
        filter demonstrate that itself.
    evaluator:
        ``"noise"`` (default) — the paper's methodology: measured block
        inaccuracy injected as zero-mean noise
        (:class:`repro.core.fast_model.PaperNoiseModel`);
        ``"surrogate"`` — the calibrated transfer-curve surrogate that
        also carries each block's systematic distortion
        (:class:`repro.core.fast_model.FastSCModel`).
    """

    def __init__(self, trained, threshold_pct: float = ACCURACY_THRESHOLD_PCT,
                 eval_images: int = 400, seed: int = 0,
                 restrict_layer2_to_apc: bool = True,
                 weight_bits=None, evaluator: str = "noise"):
        if evaluator not in ("noise", "surrogate"):
            raise ValueError(
                f"evaluator must be 'noise' or 'surrogate', got {evaluator!r}"
            )
        self.trained = trained
        self.threshold_pct = threshold_pct
        self.eval_images = eval_images
        self.seed = seed
        self.restrict_layer2_to_apc = restrict_layer2_to_apc
        # Default storage precision: 8 bits.  The paper quotes w = 7 for
        # its MNIST-trained model; our synthetic-data model's conv2
        # weights are smaller, moving the Figure-13 knee one bit right.
        self.weight_bits = weight_bits if weight_bits is not None else 8
        self.evaluator = evaluator

    @property
    def _hidden_layers(self) -> int:
        """Configurable FEB layers of the trained model (ex output)."""
        from repro.nn.zoo import hidden_layer_count
        return hidden_layer_count(self.trained.model)

    def _candidate_kind_combos(self):
        kinds = (FEBKind.MUX, FEBKind.APC)
        hidden = self._hidden_layers
        last_choices = ((FEBKind.APC,) if self.restrict_layer2_to_apc
                        else kinds)
        return [combo for combo in itertools.product(
            *([kinds] * (hidden - 1) + [last_choices]))]

    #: engine backend per evaluator methodology.
    _BACKENDS = {"noise": "noise", "surrogate": "surrogate"}
    #: facade-compatible backend options per evaluator (the legacy
    #: classes' defaults: PaperNoiseModel measured 96 samples per sigma,
    #: FastSCModel 240 per curve).
    _BACKEND_OPTS = {"noise": {"samples": 96}, "surrogate": {"samples": 240}}

    def evaluate(self, config: NetworkConfig, plan=None) -> DesignPoint:
        """Evaluate one configuration with the calibrated fast model.

        ``plan`` optionally supplies a pre-compiled engine plan (the
        halving loop passes re-targeted plans so weights are quantized
        and state numbers derived only when they actually change).
        """
        x = self.trained.bipolar_test_images()[: self.eval_images]
        y = self.trained.y_test[: self.eval_images]
        source = ({"plan": plan} if plan is not None
                  else {"weight_bits": self.weight_bits})
        engine = Engine(self.trained.model, config,
                        backend=self._BACKENDS[self.evaluator],
                        seed=self.seed, **source,
                        **self._BACKEND_OPTS[self.evaluator])
        # 256-image chunks: the legacy evaluator classes' batching, kept
        # so sampled-noise draws reproduce pre-engine results exactly.
        error = engine.error_rate(x, y, batch_size=256)
        graph = (plan.graph if plan is not None
                 else build_graph(self.trained.model, config))
        return DesignPoint(
            config=config,
            error_pct=error,
            degradation_pct=error - self.trained.software_error_pct,
            cost=graph_network_cost(graph, weight_bits=self.weight_bits),
        )

    def run(self, max_length: int = MAX_STREAM_LENGTH,
            min_length: int = MIN_STREAM_LENGTH, verbose: bool = False,
            workers: int = 1, screen=None, store=None,
            **runner_kwargs) -> list:
        """Run the Section 6.3 procedure; returns passing design points.

        The returned list contains every (configuration, length) point
        that met the accuracy target, across all halving iterations,
        sorted by energy — bit-identical to
        :meth:`run_sequential` at any ``workers`` count (asserted by the
        conformance suite).  Since the DSE subsystem the work delegates
        to, the search can fan evaluations across ``workers`` processes,
        pre-screen candidates (``screen=True`` or a
        :class:`repro.dse.screen.ScreenPolicy`) and persist/resume
        through a :class:`repro.dse.store.ResultStore` (``store=``);
        see :class:`repro.dse.runner.ParallelRunner` for the full
        result object.
        """
        from repro.dse.runner import ParallelRunner
        from repro.dse.space import SearchSpace
        space = SearchSpace.from_trained(
            self.trained, weight_bits=(self.weight_bits,),
            max_length=max_length, min_length=min_length,
            restrict_last_to_apc=self.restrict_layer2_to_apc)
        runner = ParallelRunner(
            self.trained, space, threshold_pct=self.threshold_pct,
            eval_images=self.eval_images, seed=self.seed,
            evaluator=self.evaluator, workers=workers, screen=screen,
            store=store, verbose=verbose, **runner_kwargs)
        return runner.run().passing

    def run_sequential(self, max_length: int = MAX_STREAM_LENGTH,
                       min_length: int = MIN_STREAM_LENGTH,
                       verbose: bool = False) -> list:
        """The original in-process halving loop (the regression oracle).

        Each kind-combo's plan is compiled once at ``max_length`` and
        kept as the *canonical* cache entry; every halving step
        re-targets it with
        :meth:`repro.engine.plan.CompiledPlan.with_length`, re-deriving
        only length-dependent pieces (for all-APC combos the layer plans
        are reused outright — their state numbers never involve ``L``).
        Re-targeting always starts from the max-length plan — the cache
        must never be overwritten with a shorter re-target, or a combo
        revisited by a later scenario would derive from a stale length
        (pinned by a regression test).
        """
        pooling = PoolKind.MAX if self.trained.pooling == "max" else PoolKind.AVG
        survivors = self._candidate_kind_combos()
        passing = []
        plans = {}
        length = max_length
        while survivors and length >= min_length:
            next_round = []
            for combo in survivors:
                config = NetworkConfig(
                    pooling=pooling, length=length,
                    layers=tuple(LayerConfig(k) for k in combo),
                    name=f"{'-'.join(k.value for k in combo)}@{length}",
                )
                base = plans.get(combo)
                if base is None:
                    base = plans[combo] = compile_plan(
                        self.trained.model, config,
                        weight_bits=self.weight_bits)
                plan = base.with_length(length, name=config.name)
                point = self.evaluate(config, plan=plan)
                ok = point.degradation_pct <= self.threshold_pct
                if verbose:  # pragma: no cover - console output
                    print(f"{point.summary()}  "
                          f"{'PASS' if ok else 'FAIL'}")
                if ok:
                    passing.append(point)
                    next_round.append(combo)
            survivors = next_round
            length //= 2
        passing.sort(key=lambda p: p.cost.energy_uj)
        return passing

    @staticmethod
    def pareto_front(points) -> list:
        """Points not dominated on (error, area, energy).

        Kept on the optimizer for backwards compatibility; the
        generalized four-metric frontier (adding power) lives in
        :mod:`repro.dse.frontier`.
        """
        from repro.dse.frontier import LEGACY_METRICS
        from repro.dse.frontier import pareto_front as generalized
        return generalized(points, metrics=LEGACY_METRICS)
