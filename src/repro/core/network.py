"""Exact bit-level SC inference for the trained LeNet-5 (Section 6.3).

:class:`SCNetwork` maps a trained float LeNet-5 onto the SC hardware and
simulates it bit-for-bit: inputs are encoded once into bipolar streams,
every weight layer runs as its configured feature extraction block (MUX
or APC inner products, average or hardware-oriented max pooling, Stanh or
Btanh activation), and *activations stay bit-streams between layers* —
exactly as in the hardware, there is no decode/re-encode at layer
boundaries.

Biases are folded in as one extra inner-product input driven by a
constant-1 stream, so the SC computation targets the same function the
float network was trained for.

Simulation strategy (see DESIGN.md): streams are bit-packed; APC layers
materialize per-cycle counts per output channel through the word-level
counter of :mod:`repro.sc.adders`, whose stream-axis chunking is bounded
by ``chunk_budget`` bytes; MUX layers exploit the identity
``MUX(xnor(x_i, w_i)) = xnor(MUX(x), MUX(w))`` (the same select signal on
both sides) with the packed-mask MUX of :mod:`repro.sc.ops`, which avoids
materializing per-output products — or any unpacked bits — entirely.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.pooling import (
    DEFAULT_SEGMENT,
    apc_average_pool,
    apc_max_pool,
    average_pool,
    hardware_max_pool,
)
from repro.core.config import FEBKind, NetworkConfig, PoolKind
from repro.core.state_numbers import (
    btanh_states_apc_avg,
    btanh_states_apc_max,
    stanh_states_mux_avg,
    stanh_states_mux_max,
)
from repro.nn.conv import Conv2D, im2col_indices
from repro.nn.dense import Dense
from repro.sc import activation, adders, ops
from repro.sc.encoding import Encoding
from repro.sc.rng import StreamFactory
from repro.storage.quantization import dequantize_codes, quantize_weights
from repro.utils.validation import check_positive_int

__all__ = ["SCNetwork", "pool_window_indices", "layer_gain_compensation"]


def layer_gain_compensation(weights: np.ndarray, bias: np.ndarray,
                            kind: FEBKind, n: int, n_states: int,
                            incoming_deficit: float = 1.0,
                            headroom: float = 0.97):
    """Cascade weight pre-scaling for SC layers (the paper's ref (45)).

    A MUX inner product scales its output by ``1/n`` and the following
    Stanh's small-signal slope is ``K/2``, so the layer's end-to-end gain
    on its pooled pre-activation is ``K/(2n)`` — far below the unit gain
    the float network was trained with.  The compensation scales the
    *stored* weights up toward the local target ``t = 2n/K`` (MUX; ``1``
    for unit-gain APC layers).  On top of that, any gain deficit left by
    *earlier* layers (whose activations arrive compressed by
    ``1/incoming_deficit``) is absorbed by the weight part only — biases
    are not multiplied by the compressed activations, so they scale by
    the local target alone.

    All scaled values must stay inside the [-1, 1] SRAM range; the
    common back-off factor ``alpha ≤ 1`` that enforces this becomes the
    layer's own residual compression.  In the tanh-linear regime the
    layer then computes ``tanh(alpha · P)`` for true pre-activation
    ``P``, so the returned outgoing deficit is ``1/alpha`` (exact up to
    tanh saturation, where compression is milder anyway).

    Returns ``(scaled_weights, scaled_bias, outgoing_deficit,
    applied_weight_factor)``.
    """
    local_target = (2.0 * n / float(n_states) if kind is FEBKind.MUX
                    else 1.0)
    desired_w = incoming_deficit * local_target
    desired_b = local_target
    peak = max(
        float(np.max(np.abs(weights)) if weights.size else 0.0) * desired_w,
        float(np.max(np.abs(bias)) if bias.size else 0.0) * desired_b,
        1e-12,
    )
    alpha = min(1.0, headroom / peak)
    return (weights * (alpha * desired_w), bias * (alpha * desired_b),
            1.0 / alpha, alpha * desired_w)


def pool_window_indices(out_h: int, out_w: int) -> np.ndarray:
    """Indices of each 2×2 pooling window into the flattened conv grid.

    For a conv output grid of shape ``(2·out_h, 2·out_w)`` (row-major
    flattening), returns an ``(out_h·out_w, 4)`` index array gathering
    the four member positions of every pooling window.
    """
    check_positive_int(out_h, "out_h")
    check_positive_int(out_w, "out_w")
    in_w = 2 * out_w
    windows = np.empty((out_h * out_w, 4), dtype=np.int64)
    k = 0
    for i in range(out_h):
        for j in range(out_w):
            base = (2 * i) * in_w + 2 * j
            windows[k] = (base, base + 1, base + in_w, base + in_w + 1)
            k += 1
    return windows


class _LayerPlan:
    """Resolved per-layer simulation parameters."""

    def __init__(self, name: str, kind: FEBKind, n_inputs: int,
                 n_states: int, weights: np.ndarray, has_pool: bool,
                 geometry=None):
        self.name = name
        self.kind = kind
        self.n_inputs = n_inputs      # including the bias input
        self.n_states = n_states
        self.weights = weights        # (units, n_inputs) with bias folded
        self.has_pool = has_pool
        self.geometry = geometry      # conv: (channels, in_hw, out_hw)


class SCNetwork:
    """Bit-level SC simulator of a trained LeNet-5.

    Parameters
    ----------
    model:
        The trained :class:`repro.nn.module.Sequential` from
        :func:`repro.nn.lenet.build_lenet5` (conv-pool-tanh ×2, dense,
        dense).
    config:
        The SC design point (layer FEB kinds, pooling, stream length).
    seed:
        Stream-generation seed.
    weight_bits:
        Optional weight storage precision (int or 3-tuple, Section 5);
        ``None`` keeps float weights.
    segment:
        Hardware max-pooling segment length ``c``.
    chunk_budget:
        Upper bound (bytes) on any unpacked bit tensor materialized while
        counting APC columns.
    """

    def __init__(self, model, config: NetworkConfig, seed: int = 0,
                 weight_bits=None, segment: int = DEFAULT_SEGMENT,
                 chunk_budget: int = 1 << 26):
        self.config = config
        self.length = config.length
        self.segment = segment
        self.chunk_budget = int(chunk_budget)
        self.factory = StreamFactory(seed=seed, encoding=Encoding.BIPOLAR)
        self._plans = self._build_plans(model, weight_bits)
        self._weight_streams = [
            self.factory.packed(np.clip(plan.weights, -1.0, 1.0), self.length)
            for plan in self._plans
        ]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_plans(self, model, weight_bits):
        convs = [l for l in model.layers if isinstance(l, Conv2D)]
        denses = [l for l in model.layers if isinstance(l, Dense)]
        if len(convs) != 2 or len(denses) != 2:
            raise ValueError(
                "SCNetwork expects the paper's LeNet-5 (2 conv + 2 dense "
                f"layers); got {len(convs)} conv, {len(denses)} dense"
            )
        bits = self._normalize_bits(weight_bits)
        kinds = [layer.ip_kind for layer in self.config.layers] + [FEBKind.APC]
        geometries = [
            (convs[0].out_channels, (28, 28), (24, 24)),
            (convs[1].out_channels, (12, 12), (8, 8)),
            None,
            None,
        ]
        names = ["Layer0", "Layer1", "Layer2", "Output"]
        plans = []
        self.gain_deficits = []
        deficit = 1.0
        for stage, layer in enumerate(convs + denses):
            kind = kinds[stage]
            n = (layer.fan_in if isinstance(layer, Conv2D)
                 else layer.in_features) + 1
            pooled = stage < 2
            n_states = (self._states_for(kind, n, pooled=pooled)
                        if stage < 3 else 2)
            w, b, deficit, _ = layer_gain_compensation(
                layer.weight.value, layer.bias.value, kind, n, n_states,
                incoming_deficit=deficit,
            )
            folded = np.concatenate([w, b[:, None]], axis=1)
            if bits[stage] is not None:
                folded = dequantize_codes(
                    quantize_weights(folded, bits[stage]), bits[stage]
                )
            plans.append(_LayerPlan(names[stage], kind, n, n_states,
                                    folded, has_pool=pooled,
                                    geometry=geometries[stage]))
            self.gain_deficits.append(deficit)
        return plans

    @staticmethod
    def _normalize_bits(weight_bits):
        if weight_bits is None:
            return (None, None, None, None)
        if isinstance(weight_bits, int):
            return (weight_bits,) * 4
        bits = tuple(int(b) for b in weight_bits)
        if len(bits) == 3:
            return bits + (bits[-1],)
        if len(bits) != 4:
            raise ValueError("weight_bits must be an int, 3- or 4-tuple")
        return bits

    def _states_for(self, kind: FEBKind, n: int, pooled: bool) -> int:
        avg = self.config.pooling is PoolKind.AVG
        if kind is FEBKind.MUX:
            if pooled and not avg:
                return stanh_states_mux_max(self.length, n)
            return stanh_states_mux_avg(self.length, n)
        if pooled and avg:
            return btanh_states_apc_avg(n)
        return btanh_states_apc_max(n)

    # ------------------------------------------------------------------
    # stream-level building blocks
    # ------------------------------------------------------------------
    def _ones_column(self, rows: int) -> np.ndarray:
        """Packed constant-1 streams (the bias input), ``(rows, nbytes)``."""
        mask = ops.pad_mask(self.length)
        return np.broadcast_to(mask, (rows, mask.shape[0])).copy()

    def _apc_counts(self, x_patch: np.ndarray, w_streams: np.ndarray
                    ) -> np.ndarray:
        """APC counts for every (unit, position).

        ``x_patch``: packed ``(P, n, nbytes)``; ``w_streams``: packed
        ``(C, n, nbytes)``.  Returns int16 counts ``(C, P, L)``; the
        word-level counter chunks over the stream axis so no more than
        ``chunk_budget`` unpacked bytes exist at once.  The APC's LSB
        approximation (see :func:`repro.sc.adders.apc_count`) is applied
        per column.
        """
        P, n, nbytes = x_patch.shape
        C = w_streams.shape[0]
        L = self.length
        counts = np.empty((C, P, L), dtype=np.int16)
        for c in range(C):
            prod = ops.xnor_(x_patch, w_streams[c][None, :, :], L)
            counts[c] = adders.apc_count(prod, L,
                                         chunk_budget=self.chunk_budget)
        return counts

    def _mux_ip_streams(self, x_patch: np.ndarray, w_streams: np.ndarray,
                        n: int) -> np.ndarray:
        """MUX inner-product output streams, packed ``(C, P, nbytes)``.

        Uses ``MUX(xnor(x, w)) = xnor(MUX(x), MUX(w))`` with a shared
        select signal; the packed-mask MUX keeps everything in the packed
        domain, so nothing is unpacked at all.
        """
        L = self.length
        select = self.factory.select_signal(n, L)
        x_sel = ops.mux_select(x_patch, select, L)       # (P, nbytes)
        w_sel = ops.mux_select(w_streams, select, L)     # (C, nbytes)
        return ops.xnor_(x_sel[None, :, :], w_sel[:, None, :], L)

    # ------------------------------------------------------------------
    # layer execution
    # ------------------------------------------------------------------
    def _run_conv_layer(self, plan: _LayerPlan, x_streams: np.ndarray,
                        w_streams: np.ndarray) -> np.ndarray:
        """One conv+pool+activation stage on packed input streams.

        ``x_streams``: ``(channels_in · H · W, nbytes)`` in channel-major
        row-major order.  Returns the pooled/activated output streams
        ``(channels_out · out_h · out_w, nbytes)``.
        """
        channels_out, (in_h, in_w), (conv_h, conv_w) = plan.geometry
        kernel = 5
        rows, cols = im2col_indices(in_h, in_w, kernel)
        flat = rows * in_w + cols                        # (P, k·k)
        channels_in = (plan.n_inputs - 1) // (kernel * kernel)
        # Patch gather across input channels: (P, C_in·k·k)
        per_channel = [x_streams[c * in_h * in_w + flat]
                       for c in range(channels_in)]
        x_patch = np.concatenate(per_channel, axis=1)    # (P, n-1, nbytes)
        P = x_patch.shape[0]
        x_patch = np.concatenate(
            [x_patch, self._ones_column(P)[:, None, :]], axis=1
        )

        windows = pool_window_indices(conv_h // 2, conv_w // 2)
        avg = self.config.pooling is PoolKind.AVG

        if plan.kind is FEBKind.APC:
            counts = self._apc_counts(x_patch, w_streams)  # (C, P, L)
            grouped = counts[:, windows, :]                # (C, W, 4, L)
            del counts
            if avg:
                pooled = apc_average_pool(
                    np.moveaxis(grouped, 2, -2)
                )
            else:
                pooled = apc_max_pool(
                    np.moveaxis(grouped, 2, -2), self.segment
                )
            del grouped
            out_bits = activation.btanh_counts(pooled, plan.n_inputs,
                                               plan.n_states)
            out = ops.pack_bits(out_bits)
        else:
            ips = self._mux_ip_streams(x_patch, w_streams, plan.n_inputs)
            grouped = ips[:, windows, :]                   # (C, W, 4, nbytes)
            del ips
            if avg:
                select = self.factory.select_signal(4, self.length)
                pooled = average_pool(grouped, select, self.length)
                threshold = None
            else:
                pooled = hardware_max_pool(grouped, self.length,
                                           self.segment)
                threshold = max(int(round(plan.n_states / 5.0)), 1)
            del grouped
            out = activation.stanh_packed(pooled, self.length,
                                          plan.n_states, threshold=threshold)
        return out.reshape(-1, out.shape[-1])

    def _run_fc_layer(self, plan: _LayerPlan, x_streams: np.ndarray,
                      w_streams: np.ndarray, final: bool):
        """Fully-connected stage.  ``final=True`` returns float logits."""
        x_with_bias = np.concatenate(
            [x_streams, self._ones_column(1)], axis=0
        )[None, :, :]                                     # (1, n, nbytes)
        n = plan.n_inputs
        if plan.kind is FEBKind.APC or final:
            counts = self._apc_counts(x_with_bias, w_streams)[:, 0, :]
            if final:
                total = counts.sum(axis=-1, dtype=np.int64)
                return (2.0 * total - n * self.length) / self.length
            out_bits = activation.btanh_counts(counts, n, plan.n_states)
            return ops.pack_bits(out_bits)
        ips = self._mux_ip_streams(x_with_bias, w_streams, n)[:, 0, :]
        return activation.stanh_packed(ips, self.length, plan.n_states)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def forward_image(self, image: np.ndarray) -> np.ndarray:
        """Simulate one image; returns the 10 decoded output values.

        ``image`` is ``(1, 28, 28)`` (or ``(28, 28)``) with values in
        [-1, 1].  The returned logits estimate ``Σxw + b`` of the output
        layer scaled by ``1/n`` — argmax-compatible with the float model.
        """
        img = np.asarray(image, dtype=np.float64).reshape(-1)
        if img.size != 784:
            raise ValueError(f"expected a 28×28 image, got {image.shape}")
        if np.max(np.abs(img)) > 1.0:
            raise ValueError("image values must lie in [-1, 1] "
                             "(use repro.data.to_bipolar)")
        x = self.factory.packed(img, self.length)         # (784, nbytes)
        x = self._run_conv_layer(self._plans[0], x, self._weight_streams[0])
        x = self._run_conv_layer(self._plans[1], x, self._weight_streams[1])
        x = self._run_fc_layer(self._plans[2], x, self._weight_streams[2],
                               final=False)
        return self._run_fc_layer(self._plans[3], x, self._weight_streams[3],
                                  final=True)

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Argmax predictions for a batch of ``(N, 1, 28, 28)`` images."""
        images = np.asarray(images, dtype=np.float64)
        return np.array([int(np.argmax(self.forward_image(img)))
                         for img in images])

    def error_rate(self, images: np.ndarray, labels: np.ndarray,
                   max_images: int = None) -> float:
        """SC network error rate in percent (Table 6's metric)."""
        if max_images is not None:
            images = images[:max_images]
            labels = labels[:max_images]
        preds = self.predict(images)
        return 100.0 * float((preds != np.asarray(labels)).mean())
