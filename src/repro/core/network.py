"""Exact bit-level SC inference for the trained LeNet-5 (Section 6.3).

:class:`SCNetwork` maps a trained float LeNet-5 onto the SC hardware and
simulates it bit-for-bit: inputs are encoded once into bipolar streams,
every weight layer runs as its configured feature extraction block (MUX
or APC inner products, average or hardware-oriented max pooling, Stanh or
Btanh activation), and *activations stay bit-streams between layers* —
exactly as in the hardware, there is no decode/re-encode at layer
boundaries.

Since the layer-graph engine refactor this class is a thin compatibility
facade over :class:`repro.engine.engine.Engine` with the ``exact``
backend: construction compiles a :class:`repro.engine.plan.CompiledPlan`
(gain-compensation cascade, quantized folded weights, state numbers,
gather/pool indices) and simulation runs the batched bit-level backend of
:mod:`repro.engine.exact`.  Outputs are bit-identical to the pre-engine
implementation (asserted against the frozen copy in
:mod:`repro.engine.reference` by ``tests/test_engine``); ``predict``
now simulates whole batches per call instead of one image at a time.

``layer_gain_compensation`` and ``pool_window_indices`` live in
:mod:`repro.engine.plan` and are re-exported here for compatibility.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.pooling import DEFAULT_SEGMENT
from repro.core.config import NetworkConfig
from repro.engine.engine import Engine
from repro.engine.plan import layer_gain_compensation, pool_window_indices

__all__ = ["SCNetwork", "pool_window_indices", "layer_gain_compensation"]


class SCNetwork:
    """Bit-level SC simulator of a trained LeNet-5 (engine facade).

    Parameters
    ----------
    model:
        The trained :class:`repro.nn.module.Sequential` from
        :func:`repro.nn.lenet.build_lenet5` (conv-pool-tanh ×2, dense,
        dense).
    config:
        The SC design point (layer FEB kinds, pooling, stream length).
    seed:
        Stream-generation seed.
    weight_bits:
        Optional weight storage precision (int or 3-tuple, Section 5);
        ``None`` keeps float weights.
    segment:
        Hardware max-pooling segment length ``c``.
    chunk_budget:
        Upper bound (bytes) on transient tensors in the counting path.
    """

    def __init__(self, model, config: NetworkConfig, seed: int = 0,
                 weight_bits=None, segment: int = DEFAULT_SEGMENT,
                 chunk_budget: int = 1 << 26):
        self.config = config
        self.length = config.length
        self.segment = segment
        self.chunk_budget = int(chunk_budget)
        self._engine = Engine(model, config, backend="exact", seed=seed,
                              weight_bits=weight_bits, segment=segment,
                              chunk_budget=chunk_budget)

    # ------------------------------------------------------------------
    # engine plumbing exposed for tests and power users
    # ------------------------------------------------------------------
    @property
    def engine(self) -> Engine:
        """The underlying :class:`repro.engine.engine.Engine`."""
        return self._engine

    @property
    def plan(self):
        """The compiled :class:`repro.engine.plan.CompiledPlan`."""
        return self._engine.plan

    @property
    def factory(self):
        """The exact backend's stream factory."""
        return self._engine.backend.factory

    @property
    def gain_deficits(self):
        """Per-layer outgoing gain deficits of the compensation cascade."""
        return self._engine.plan.gain_deficits

    @property
    def _plans(self):
        """Per-layer plans (legacy attribute name)."""
        return self._engine.plan.layers

    @property
    def _weight_streams(self):
        """Packed per-layer weight streams (legacy attribute name)."""
        return self._engine.backend.weight_streams

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def forward_image(self, image: np.ndarray) -> np.ndarray:
        """Simulate one image; returns the 10 decoded output values.

        ``image`` is ``(1, 28, 28)`` (or ``(28, 28)``) with values in
        [-1, 1].  The returned logits estimate ``Σxw + b`` of the output
        layer scaled by ``1/n`` — argmax-compatible with the float model.
        """
        img = np.asarray(image, dtype=np.float64).reshape(-1)
        if img.size != 784:
            raise ValueError(f"expected a 28×28 image, got {image.shape}")
        if img.size and np.max(np.abs(img)) > 1.0:
            raise ValueError("image values must lie in [-1, 1] "
                             "(use repro.data.to_bipolar)")
        return self._engine.forward(img[None, :])[0]

    def predict(self, images: np.ndarray, batch_size: int | None = None
                ) -> np.ndarray:
        """Argmax predictions for a batch of ``(N, 1, 28, 28)`` images.

        Batched through the engine — bit-identical to sequential
        single-image simulation, just faster.
        """
        return self._engine.predict(images, batch_size=batch_size)

    def error_rate(self, images: np.ndarray, labels: np.ndarray,
                   max_images: int | None = None) -> float:
        """SC network error rate in percent (Table 6's metric)."""
        return self._engine.error_rate(images, labels, max_images=max_images)
