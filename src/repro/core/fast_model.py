"""Calibrated fast SC-network evaluators (engine facades).

Bit-exact simulation (:class:`repro.core.network.SCNetwork`) costs
hundreds of milliseconds per image; sweeping all twelve Table 6
configurations over a meaningful test sample — and driving the
Section 6.3 optimizer — needs something faster.  Two float-domain
evaluators cover that:

* :class:`FastSCModel` — the calibrated transfer-curve surrogate
  (``surrogate`` backend): each layer's ``tanh(pool(·))`` is replaced by
  the transfer curve measured from the genuine bit-level blocks plus
  sampled measured noise, reproducing both the systematic and random
  components of SC inaccuracy.
* :class:`PaperNoiseModel` — the paper's own methodology (``noise``
  backend): ideal layer outputs perturbed by zero-mean Gaussian noise of
  each block's measured bit-level absolute inaccuracy.  The two bracket
  the design space; EXPERIMENTS.md reports both against Table 6.

Since the layer-graph engine refactor both classes are thin facades over
:class:`repro.engine.engine.Engine`; the measurement machinery
(:class:`FEBCalibration`, :func:`calibrate_feb`) lives in
:mod:`repro.engine.calibration` and is re-exported here for
compatibility.  ``tests/test_core/test_fast_model.py`` cross-validates
the surrogate against exact simulation.
"""

from __future__ import annotations

from repro.core.config import NetworkConfig
from repro.engine.calibration import (
    FEBCalibration,
    calibrate_feb,
    measured_stage_sigma as _measured_stage_sigma,
)
from repro.engine.engine import Engine
from repro.engine.plan import normalize_weight_bits

__all__ = ["FEBCalibration", "calibrate_feb", "FastSCModel",
           "PaperNoiseModel"]


class _FloatFacade:
    """Shared facade plumbing over a float-domain engine backend."""

    _backend = None  # subclasses set the backend name

    def __init__(self, model, config: NetworkConfig, seed: int = 0,
                 weight_bits=None, **backend_opts):
        self.config = config
        self._engine = Engine(model, config, backend=self._backend,
                              seed=seed, weight_bits=weight_bits,
                              **backend_opts)

    @property
    def engine(self) -> Engine:
        """The underlying :class:`repro.engine.engine.Engine`."""
        return self._engine

    @property
    def plan(self):
        """The compiled :class:`repro.engine.plan.CompiledPlan`."""
        return self._engine.plan

    @staticmethod
    def _normalize_bits(weight_bits):
        return normalize_weight_bits(weight_bits)

    def forward(self, images):
        """Logits for a batch of ``(N, 1, 28, 28)`` images."""
        return self._engine.forward(images)

    def predict(self, images, batch_size: int = 256):
        return self._engine.predict(images, batch_size=batch_size)

    def error_rate(self, images, labels) -> float:
        """SC network error rate in percent (Table 6's metric).

        Evaluates in chunks of 256 images — the legacy class's batching
        — so sampled-noise draws reproduce the pre-engine results
        exactly.
        """
        return self._engine.error_rate(images, labels, batch_size=256)


class FastSCModel(_FloatFacade):
    """Calibrated float-domain evaluator of an SC-DCNN configuration.

    Parameters
    ----------
    model:
        Trained LeNet-5 (:class:`repro.nn.module.Sequential`).
    config:
        SC design point.
    seed:
        Noise/calibration seed.
    weight_bits:
        Optional weight storage precision (Section 5).
    samples:
        Bit-level samples per calibration curve.
    noisy:
        Sample the measured noise (True) or use the deterministic
        transfer curve only (False).
    """

    _backend = "surrogate"

    def __init__(self, model, config: NetworkConfig, seed: int = 0,
                 weight_bits=None, samples: int = 240, noisy: bool = True):
        super().__init__(model, config, seed=seed, weight_bits=weight_bits,
                         samples=samples, noisy=noisy)

    @property
    def noisy(self) -> bool:
        return self._engine.backend.noisy

    @property
    def _cal(self):
        """The measured per-stage transfer curves (legacy name)."""
        return self._engine.backend.calibrations


class PaperNoiseModel(_FloatFacade):
    """The paper's network-evaluation methodology: inaccuracy as noise.

    Section 6's layer-wise analysis (Figure 16) treats each layer's
    hardware inaccuracy as a perturbation of the layer's *correct*
    output, and Table 6's configurations are selected by how well the
    network tolerates each block's measured inaccuracy.  This evaluator
    implements exactly that: a float forward pass where every feature
    extraction stage outputs its ideal ``tanh(pool(·))`` plus zero-mean
    Gaussian noise whose magnitude is the block's *measured* bit-level
    absolute inaccuracy for the layer's (kind, n, L).

    Contrast with :class:`FastSCModel`, which additionally carries each
    block's *systematic* transfer distortion (MUX down-scaling residue,
    Btanh gain, max-pool under-counting) — the physics our exact
    simulator exhibits.
    """

    _backend = "noise"

    def __init__(self, model, config: NetworkConfig, seed: int = 0,
                 weight_bits=None, samples: int = 96):
        super().__init__(model, config, seed=seed, weight_bits=weight_bits,
                         samples=samples)

    @property
    def stage_sigmas(self):
        """Measured per-stage noise magnitudes (legacy name)."""
        return self._engine.backend.stage_sigmas
