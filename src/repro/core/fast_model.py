"""Calibrated fast SC-network evaluator.

Bit-exact simulation (:class:`repro.core.network.SCNetwork`) costs seconds
per image; sweeping all twelve Table 6 configurations over a meaningful
test sample — and driving the Section 6.3 optimizer — needs something
faster.  The surrogate here is *measured from the real hardware blocks*:

1. For every (FEB kind, pooling, input size, stream length) appearing in
   the network, run the bit-level feature extraction block on a few
   hundred synthetic receptive fields whose true pooled pre-activations
   sweep the operating range, and record ``(reference, hardware output)``
   pairs.
2. Bin by reference value and keep the per-bin mean (the block's
   *transfer curve*, capturing systematic effects: MUX down-scaling,
   max-pool under-counting, Btanh gain) and standard deviation (the
   stochastic noise).
3. Evaluate the network in float arithmetic, replacing each layer's
   ``tanh(pool(·))`` with the measured transfer curve plus sampled noise.

Because the curve and noise come from the genuine bit-level blocks, the
surrogate reproduces both the systematic and random components of SC
inaccuracy; ``tests/test_core/test_fast_model.py`` cross-validates it
against exact simulation.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core.config import FEBKind, NetworkConfig, PoolKind
from repro.core.feature_extraction import make_feb
from repro.core.network import layer_gain_compensation
from repro.core.state_numbers import (
    btanh_states_apc_max,
    stanh_states_mux_avg,
    stanh_states_mux_max,
)
from repro.data.cache import cache_dir
from repro.nn.conv import Conv2D, im2col
from repro.nn.dense import Dense
from repro.sc import activation
from repro.sc.adders import apc_count, parallel_counter
from repro.sc.encoding import Encoding
from repro.sc.ops import popcount as ops_popcount
from repro.sc.ops import xnor_
from repro.sc.rng import StreamFactory
from repro.storage.quantization import dequantize_codes, quantize_weights
from repro.utils.seeding import spawn_rng

__all__ = ["FEBCalibration", "calibrate_feb", "FastSCModel",
           "PaperNoiseModel"]

TARGET_RANGE = 3.0   # pooled pre-activations of the trained net stay within
N_BINS = 25


class FEBCalibration:
    """A measured transfer curve: per-bin mean and noise of a block."""

    def __init__(self, centers: np.ndarray, mean: np.ndarray,
                 std: np.ndarray):
        self.centers = np.asarray(centers, dtype=np.float64)
        self.mean = np.asarray(mean, dtype=np.float64)
        self.std = np.asarray(std, dtype=np.float64)

    def apply(self, values: np.ndarray, rng: np.random.Generator = None
              ) -> np.ndarray:
        """Map true pooled values through the measured transfer + noise."""
        v = np.asarray(values, dtype=np.float64)
        out = np.interp(v, self.centers, self.mean)
        if rng is not None:
            sigma = np.interp(v, self.centers, self.std)
            out = out + rng.normal(0.0, 1.0, v.shape) * sigma
        return np.clip(out, -1.0, 1.0)

    def save(self, path) -> None:
        np.savez(path, centers=self.centers, mean=self.mean, std=self.std)

    @classmethod
    def load(cls, path) -> "FEBCalibration":
        data = np.load(path)
        return cls(data["centers"], data["mean"], data["std"])


def _window_inputs(targets: np.ndarray, n: int, rng: np.random.Generator):
    """Construct (x, w) whose per-window inner products hit ``targets``.

    ``targets`` has shape ``(samples, windows)``.  x is random in
    [-1, 1]; w is the along-x component achieving the target plus a small
    orthogonal perturbation for realism, clipped into [-1, 1] (the clip
    perturbs extreme targets by a negligible amount for n ≥ 16).
    """
    samples, windows = targets.shape
    x = rng.uniform(-1.0, 1.0, (samples, windows, n))
    norms = (x ** 2).sum(axis=-1, keepdims=True)
    alpha = targets[..., None] / np.maximum(norms, 1e-9)
    r = rng.uniform(-1.0, 1.0, (samples, windows, n)) * 0.2
    proj = (r * x).sum(axis=-1, keepdims=True) / np.maximum(norms, 1e-9)
    w = alpha * x + (r - proj * x)
    return x, np.clip(w, -1.0, 1.0)


def _measure_feb(kind_key: str, n: int, length: int, samples: int,
                 seed: int, target_range: float = TARGET_RANGE):
    """Run the bit-level FEB on target-swept inputs; return (ref, hw)."""
    rng = spawn_rng(seed, "feb-calibration", kind_key, n, length)
    feb = make_feb(kind_key, n, length, seed=seed + 1)
    refs = np.empty(samples)
    hw = np.empty(samples)
    base = rng.uniform(-target_range, target_range, samples)
    spread = rng.uniform(0.0, 1.0, (samples, 4))
    targets = base[:, None] - spread
    x, w = _window_inputs(targets, n, rng)
    batch = max(1, min(samples, (1 << 24) // max(4 * n * length // 8, 1)))
    for start in range(0, samples, batch):
        stop = min(start + batch, samples)
        refs[start:stop] = feb.reference(x[start:stop], w[start:stop])
        hw[start:stop] = feb.forward(x[start:stop], w[start:stop])
    return refs, hw


def _measure_fc(kind: FEBKind, n: int, length: int, samples: int,
                seed: int, target_range: float = TARGET_RANGE):
    """Measure the FC stage: inner product + activation, no pooling."""
    rng = spawn_rng(seed, "fc-calibration", kind.value, n, length)
    factory = StreamFactory(seed=seed + 2, encoding=Encoding.BIPOLAR)
    targets = rng.uniform(-target_range, target_range, (samples, 1))
    x, w = _window_inputs(targets, n, rng)
    x = x[:, 0, :]
    w = w[:, 0, :]
    refs = np.tanh((x * w).sum(axis=-1))
    xs = factory.packed(x, length)
    ws = factory.packed(w, length)
    products = xnor_(xs, ws, length)
    if kind is FEBKind.APC:
        counts = apc_count(products, length)
        k = btanh_states_apc_max(n)
        bits = activation.btanh_counts(counts, n, k)
        hw = 2.0 * bits.mean(axis=-1) - 1.0
    else:
        select = factory.select_signal(n, length)
        from repro.sc.adders import mux_add
        ips = mux_add(products, select, length)
        k = stanh_states_mux_avg(length, n)
        # Packed-domain Stanh + word popcount: bit-identical to running
        # the FSM on unpacked bits and averaging them.
        out = activation.stanh_packed(ips, length, k)
        hw = 2.0 * ops_popcount(out, length) / length - 1.0
    return refs, hw


def _fit(refs: np.ndarray, hw: np.ndarray,
         target_range: float = TARGET_RANGE) -> FEBCalibration:
    """Bin (reference, output) pairs into a monotone-tabulated curve."""
    edges = np.linspace(-target_range, target_range, N_BINS + 1)
    centers = (edges[:-1] + edges[1:]) / 2.0
    mean = np.empty(N_BINS)
    std = np.empty(N_BINS)
    which = np.clip(np.digitize(refs, edges) - 1, 0, N_BINS - 1)
    for b in range(N_BINS):
        sel = which == b
        if sel.sum() >= 2:
            mean[b] = hw[sel].mean()
            std[b] = hw[sel].std()
        else:
            mean[b] = np.nan
            std[b] = np.nan
    # Fill sparse bins by interpolation from populated neighbours.
    good = ~np.isnan(mean)
    if not good.any():
        raise RuntimeError("calibration produced no populated bins")
    mean = np.interp(centers, centers[good], mean[good])
    std = np.interp(centers, centers[good], std[good])
    return FEBCalibration(centers, mean, std)


def calibrate_feb(kind_key: str, n: int, length: int, samples: int = 240,
                  seed: int = 0, use_cache: bool = True,
                  target_range: float = TARGET_RANGE) -> FEBCalibration:
    """Measure (or load) the transfer curve of one block configuration.

    ``kind_key`` is a FEB key (``"apc-max"`` …) or ``"fc-apc"`` /
    ``"fc-mux"`` for the pooling-free fully-connected stage.
    ``target_range`` widens the swept pooled-value range (MUX stages with
    gain compensation see scaled pre-activations).
    """
    tag = (f"febcal_{kind_key}_{n}_{length}_{samples}_{seed}_"
           f"{target_range:g}")
    digest = hashlib.sha1(tag.encode()).hexdigest()[:16]
    path = cache_dir() / f"{digest}.npz"
    if use_cache and path.exists():
        return FEBCalibration.load(path)
    if kind_key.startswith("fc-"):
        kind = FEBKind.APC if kind_key == "fc-apc" else FEBKind.MUX
        refs, hw = _measure_fc(kind, n, length, samples, seed, target_range)
    else:
        refs, hw = _measure_feb(kind_key, n, length, samples, seed,
                                target_range)
    cal = _fit(refs, hw, target_range)
    if use_cache:
        cal.save(path)
    return cal


class FastSCModel:
    """Calibrated float-domain evaluator of an SC-DCNN configuration.

    Parameters
    ----------
    model:
        Trained LeNet-5 (:class:`repro.nn.module.Sequential`).
    config:
        SC design point.
    seed:
        Noise/calibration seed.
    weight_bits:
        Optional weight storage precision (Section 5).
    samples:
        Bit-level samples per calibration curve.
    noisy:
        Sample the measured noise (True) or use the deterministic
        transfer curve only (False).
    """

    def __init__(self, model, config: NetworkConfig, seed: int = 0,
                 weight_bits=None, samples: int = 240, noisy: bool = True):
        self.config = config
        self.noisy = noisy
        self._rng = spawn_rng(seed, "fast-model")
        convs = [l for l in model.layers if isinstance(l, Conv2D)]
        denses = [l for l in model.layers if isinstance(l, Dense)]
        if len(convs) != 2 or len(denses) != 2:
            raise ValueError("FastSCModel expects the paper's LeNet-5")
        bits = self._normalize_bits(weight_bits)
        pool = "avg" if config.pooling is PoolKind.AVG else "max"
        L = config.length
        kinds = [layer.ip_kind for layer in config.layers] + [FEBKind.APC]
        self._weights = []
        deficit = 1.0
        applied = []
        for stage, (layer, b) in enumerate(zip(convs + denses, bits)):
            # Same cascade gain compensation the bit-level mapper applies
            # (see repro.core.network.layer_gain_compensation).
            n = layer.weight.value.shape[1] + 1
            if stage < 3:
                n_states = self._stage_states(kinds[stage], n, L, pool,
                                              pooled=stage < 2)
            else:
                n_states = 2
            w, bias, deficit, factor = layer_gain_compensation(
                layer.weight.value, layer.bias.value, kinds[stage], n,
                n_states, incoming_deficit=deficit,
            )
            applied.append(factor)
            if b is not None:
                w = dequantize_codes(quantize_weights(w, b), b)
                bias = dequantize_codes(quantize_weights(bias, b), b)
            self._weights.append((w, bias))
        # The calibration curve is measured on the raw block; a stage
        # whose weights were scaled up sees pooled values magnified by
        # the applied factor, so widen its swept range accordingly.
        self._cal = [
            calibrate_feb(
                f"{'mux' if kinds[0] is FEBKind.MUX else 'apc'}-{pool}",
                convs[0].fan_in + 1, L, samples, seed,
                target_range=TARGET_RANGE * max(applied[0], 1.0)),
            calibrate_feb(
                f"{'mux' if kinds[1] is FEBKind.MUX else 'apc'}-{pool}",
                convs[1].fan_in + 1, L, samples, seed,
                target_range=TARGET_RANGE * max(applied[1], 1.0)),
            calibrate_feb(
                "fc-apc" if kinds[2] is FEBKind.APC else "fc-mux",
                denses[0].in_features + 1, L, samples, seed,
                target_range=TARGET_RANGE * max(applied[2], 1.0)),
        ]
        # Output stage noise: the decoded APC inner product over n inputs
        # has standard deviation sqrt(n/L) in sum units; the logits are
        # reported scaled by 1/(n+1), so scale the noise the same way.
        n_out = denses[1].in_features + 1
        self._output_sigma = np.sqrt(n_out / L) / n_out

    @staticmethod
    def _stage_states(kind: FEBKind, n: int, length: int, pool: str,
                      pooled: bool) -> int:
        if kind is FEBKind.MUX:
            if pooled and pool == "max":
                return stanh_states_mux_max(length, n)
            return stanh_states_mux_avg(length, n)
        if pooled and pool == "avg":
            from repro.core.state_numbers import btanh_states_apc_avg
            return btanh_states_apc_avg(n)
        return btanh_states_apc_max(n)

    @staticmethod
    def _normalize_bits(weight_bits):
        if weight_bits is None:
            return (None,) * 4
        if isinstance(weight_bits, int):
            return (weight_bits,) * 4
        bits = tuple(int(b) for b in weight_bits)
        if len(bits) == 3:
            return bits + (bits[-1],)
        if len(bits) != 4:
            raise ValueError("weight_bits must be an int, 3- or 4-tuple")
        return bits

    # ------------------------------------------------------------------
    def _conv_stage(self, x: np.ndarray, stage: int, out_hw: int
                    ) -> np.ndarray:
        """conv → pool → calibrated transfer, on NCHW float input."""
        w, b = self._weights[stage]
        n_img = x.shape[0]
        cols = im2col(x, 5)                       # (N, P, fan_in)
        pre = cols @ w.T + b                      # (N, P, C)
        grid = int(np.sqrt(pre.shape[1]))
        pre = pre.transpose(0, 2, 1).reshape(n_img, -1, grid, grid)
        view = pre.reshape(n_img, pre.shape[1], out_hw, 2, out_hw, 2)
        if self.config.pooling is PoolKind.AVG:
            pooled = view.mean(axis=(3, 5))
        else:
            pooled = view.max(axis=(3, 5))
        rng = self._rng if self.noisy else None
        return self._cal[stage].apply(pooled, rng)

    def forward(self, images: np.ndarray) -> np.ndarray:
        """Surrogate logits for a batch of ``(N, 1, 28, 28)`` images."""
        x = np.asarray(images, dtype=np.float64)
        x = self._conv_stage(x, 0, 12)
        x = self._conv_stage(x, 1, 4)
        x = x.reshape(x.shape[0], -1)
        w, b = self._weights[2]
        pre = x @ w.T + b
        rng = self._rng if self.noisy else None
        x = self._cal[2].apply(pre, rng)
        w, b = self._weights[3]
        logits = (x @ w.T + b) / (w.shape[1] + 1)
        if self.noisy:
            logits = logits + self._rng.normal(
                0.0, self._output_sigma, logits.shape
            )
        return logits

    def predict(self, images: np.ndarray, batch_size: int = 256
                ) -> np.ndarray:
        preds = []
        for start in range(0, len(images), batch_size):
            logits = self.forward(images[start:start + batch_size])
            preds.append(np.argmax(logits, axis=1))
        return (np.concatenate(preds) if preds
                else np.empty(0, dtype=np.int64))

    def error_rate(self, images: np.ndarray, labels: np.ndarray) -> float:
        """SC network error rate in percent (Table 6's metric)."""
        preds = self.predict(images)
        return 100.0 * float((preds != np.asarray(labels)).mean())


def _measured_stage_sigma(kind_key: str, n: int, length: int,
                          samples: int, seed: int,
                          use_cache: bool = True) -> float:
    """Measured FEB absolute inaccuracy (as a Gaussian sigma), cached.

    Runs the bit-level block against its software reference on random
    operating-range inputs and converts the mean absolute error to a
    standard deviation (×√(π/2), exact for Gaussian residuals).
    """
    tag = f"febsigma_{kind_key}_{n}_{length}_{samples}_{seed}"
    digest = hashlib.sha1(tag.encode()).hexdigest()[:16]
    path = cache_dir() / f"{digest}.npz"
    if use_cache and path.exists():
        return float(np.load(path)["sigma"])
    if kind_key.startswith("fc-"):
        kind = FEBKind.APC if kind_key == "fc-apc" else FEBKind.MUX
        refs, hw = _measure_fc(kind, n, length, samples, seed)
    else:
        refs, hw = _measure_feb(kind_key, n, length, samples, seed)
    sigma = float(np.abs(hw - refs).mean() * np.sqrt(np.pi / 2.0))
    if use_cache:
        np.savez(path, sigma=sigma)
    return sigma


class PaperNoiseModel:
    """The paper's network-evaluation methodology: inaccuracy as noise.

    Section 6's layer-wise analysis (Figure 16) treats each layer's
    hardware inaccuracy as a perturbation of the layer's *correct*
    output, and Table 6's configurations are selected by how well the
    network tolerates each block's measured inaccuracy.  This evaluator
    implements exactly that: a float forward pass where every feature
    extraction stage outputs its ideal ``tanh(pool(·))`` plus zero-mean
    Gaussian noise whose magnitude is the block's *measured* bit-level
    absolute inaccuracy for the layer's (kind, n, L).

    Contrast with :class:`FastSCModel`, which additionally carries each
    block's *systematic* transfer distortion (MUX down-scaling residue,
    Btanh gain, max-pool under-counting) — the physics our exact
    simulator exhibits.  The two bracket the design space; EXPERIMENTS.md
    reports both against Table 6.
    """

    def __init__(self, model, config: NetworkConfig, seed: int = 0,
                 weight_bits=None, samples: int = 96):
        self.config = config
        self._rng = spawn_rng(seed, "paper-noise-model")
        convs = [l for l in model.layers if isinstance(l, Conv2D)]
        denses = [l for l in model.layers if isinstance(l, Dense)]
        if len(convs) != 2 or len(denses) != 2:
            raise ValueError("PaperNoiseModel expects the paper's LeNet-5")
        bits = FastSCModel._normalize_bits(weight_bits)
        self._weights = []
        for layer, b in zip(convs + denses, bits):
            w, bias = layer.weight.value, layer.bias.value
            if b is not None:
                w = dequantize_codes(quantize_weights(w, b), b)
                bias = dequantize_codes(quantize_weights(bias, b), b)
            self._weights.append((w, bias))

        pool = "avg" if config.pooling is PoolKind.AVG else "max"
        L = config.length
        kinds = [layer.ip_kind for layer in config.layers]
        self.stage_sigmas = [
            _measured_stage_sigma(
                f"{'mux' if kinds[0] is FEBKind.MUX else 'apc'}-{pool}",
                convs[0].fan_in + 1, L, samples, seed),
            _measured_stage_sigma(
                f"{'mux' if kinds[1] is FEBKind.MUX else 'apc'}-{pool}",
                convs[1].fan_in + 1, L, samples, seed),
            _measured_stage_sigma(
                "fc-apc" if kinds[2] is FEBKind.APC else "fc-mux",
                denses[0].in_features + 1, L, samples, seed),
        ]
        n_out = denses[1].in_features + 1
        self._output_sigma = np.sqrt(n_out / L) / n_out

    def _conv_stage(self, x: np.ndarray, stage: int, out_hw: int
                    ) -> np.ndarray:
        w, b = self._weights[stage]
        n_img = x.shape[0]
        cols = im2col(x, 5)
        pre = cols @ w.T + b
        grid = int(np.sqrt(pre.shape[1]))
        pre = pre.transpose(0, 2, 1).reshape(n_img, -1, grid, grid)
        view = pre.reshape(n_img, pre.shape[1], out_hw, 2, out_hw, 2)
        if self.config.pooling is PoolKind.AVG:
            pooled = view.mean(axis=(3, 5))
        else:
            pooled = view.max(axis=(3, 5))
        out = np.tanh(pooled)
        noise = self._rng.normal(0.0, self.stage_sigmas[stage], out.shape)
        return np.clip(out + noise, -1.0, 1.0)

    def forward(self, images: np.ndarray) -> np.ndarray:
        """Noise-injected logits for a batch of ``(N, 1, 28, 28)`` images."""
        x = np.asarray(images, dtype=np.float64)
        x = self._conv_stage(x, 0, 12)
        x = self._conv_stage(x, 1, 4)
        x = x.reshape(x.shape[0], -1)
        w, b = self._weights[2]
        out = np.tanh(x @ w.T + b)
        noise = self._rng.normal(0.0, self.stage_sigmas[2], out.shape)
        x = np.clip(out + noise, -1.0, 1.0)
        w, b = self._weights[3]
        logits = (x @ w.T + b) / (w.shape[1] + 1)
        return logits + self._rng.normal(0.0, self._output_sigma,
                                         logits.shape)

    def predict(self, images: np.ndarray, batch_size: int = 256
                ) -> np.ndarray:
        preds = []
        for start in range(0, len(images), batch_size):
            logits = self.forward(images[start:start + batch_size])
            preds.append(np.argmax(logits, axis=1))
        return (np.concatenate(preds) if preds
                else np.empty(0, dtype=np.int64))

    def error_rate(self, images: np.ndarray, labels: np.ndarray) -> float:
        """SC network error rate in percent (Table 6's metric)."""
        preds = self.predict(images)
        return 100.0 * float((preds != np.asarray(labels)).mean())
