"""Analytic SRAM model (CACTI 5.3 stand-in).

The paper uses CACTI to size the weight SRAMs; here an analytic model
captures the structure CACTI exposes at 45 nm: per-bit cell area plus
per-block peripheral overhead (decoders, sense amplifiers, drivers) that
amortizes with block size, leakage proportional to bit count, and access
energy growing with word width.  The paper's Section 5 conclusions are
ratios under weight-precision changes, which this model preserves
(precision scales the bit count linearly while the block count is fixed
by the filter-aware sharing scheme).
"""

from __future__ import annotations

import dataclasses

from repro.hw.gates import CLOCK_NS, CostBreakdown
from repro.utils.validation import check_positive_int

__all__ = ["SramBlockSpec", "sram_cost"]

# 45 nm 6T SRAM characteristics (CACTI-class numbers).
CELL_AREA_UM2 = 0.55          # µm² per bit including array overhead
PERIPHERY_AREA_UM2 = 300.0    # per block: decoder + control
COLUMN_AREA_PER_BIT = 60.0    # sense amp + write driver per word bit
LEAKAGE_NW_PER_BIT = 0.012
READ_ENERGY_FJ_PER_BIT = 2.2  # per bit read per access


@dataclasses.dataclass(frozen=True)
class SramBlockSpec:
    """One SRAM block of the filter-aware sharing scheme (Section 5.1).

    Attributes
    ----------
    words:
        Number of weight words stored (one filter's weights).
    word_bits:
        Bits per word (the weight precision ``w`` of Section 5.2).
    readers:
        Inner-product blocks sharing this block (one feature-map group).
    """

    words: int
    word_bits: int
    readers: int = 1

    @property
    def bits(self) -> int:
        return self.words * self.word_bits


def sram_cost(spec: SramBlockSpec, reads_per_cycle: float = 1.0
              ) -> CostBreakdown:
    """Cost of one SRAM block.

    ``reads_per_cycle`` scales dynamic energy: stochastic weights are read
    every cycle to drive the weight SNGs.
    """
    check_positive_int(spec.words, "words")
    check_positive_int(spec.word_bits, "word_bits")
    area = (spec.bits * CELL_AREA_UM2
            + spec.word_bits * COLUMN_AREA_PER_BIT
            + PERIPHERY_AREA_UM2)
    leak = spec.bits * LEAKAGE_NW_PER_BIT
    dyn = READ_ENERGY_FJ_PER_BIT * spec.word_bits * reads_per_cycle
    # Access time of small blocks is well under the 5 ns SC clock.
    return CostBreakdown(area_um2=area, dyn_energy_fj_per_cycle=dyn,
                         leakage_nw=leak, delay_ns=min(CLOCK_NS * 0.4, 2.0))
