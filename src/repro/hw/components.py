"""Gate inventories of SC components.

Each function returns a :class:`repro.hw.gates.CostBreakdown` for one
instance of the component; block- and network-level roll-ups live in
:mod:`repro.hw.blocks_cost` and :mod:`repro.hw.network_cost`.
"""

from __future__ import annotations

import math

from repro.hw.gates import CostBreakdown
from repro.sc.adders import apc_gate_equivalents
from repro.utils.validation import check_positive_int

__all__ = [
    "xnor_array",
    "and_array",
    "or_tree",
    "mux_tree",
    "apc",
    "counter",
    "accumulator",
    "comparator",
    "adder",
    "stanh_fsm",
    "btanh_counter",
    "lfsr_cost",
    "sng",
]


def _bits(n: int) -> int:
    """Bits needed to represent values 0..n."""
    return max(int(math.ceil(math.log2(n + 1))), 1)


def xnor_array(n: int) -> CostBreakdown:
    """``n`` parallel XNOR multipliers (bipolar products)."""
    check_positive_int(n, "n")
    return CostBreakdown.from_gates({"XNOR2": n}, depth={"XNOR2": 1})


def and_array(n: int) -> CostBreakdown:
    """``n`` parallel AND multipliers (unipolar products)."""
    check_positive_int(n, "n")
    return CostBreakdown.from_gates({"AND2": n}, depth={"AND2": 1})


def or_tree(n: int) -> CostBreakdown:
    """OR-gate adder: an (n-1)-gate reduction tree."""
    check_positive_int(n, "n")
    depth = max(int(math.ceil(math.log2(max(n, 2)))), 1)
    return CostBreakdown.from_gates({"OR2": max(n - 1, 1)},
                                    depth={"OR2": depth})


def mux_tree(n: int) -> CostBreakdown:
    """n-to-1 multiplexer tree plus its select-signal LFSR."""
    check_positive_int(n, "n")
    depth = max(int(math.ceil(math.log2(max(n, 2)))), 1)
    tree = CostBreakdown.from_gates({"MUX2": max(n - 1, 1)},
                                    depth={"MUX2": depth})
    return tree + lfsr_cost(max(depth, 3))


def apc(n: int, approximate: bool = True) -> CostBreakdown:
    """Parallel counter over ``n`` product bits.

    ``approximate=True`` is the APC of ref (20) (~40% fewer gates than
    the conventional accumulative parallel counter, Section 4.1);
    ``False`` is the conventional counter used as Table 3's baseline.
    """
    check_positive_int(n, "n")
    gates = apc_gate_equivalents(max(n, 2))
    fa = (gates["approx_full_adders"] if approximate
          else gates["exact_full_adders"])
    depth = max(int(math.ceil(math.log2(max(n, 2)))), 1)
    return CostBreakdown.from_gates({"FA": fa}, depth={"FA": depth})


def counter(bits: int) -> CostBreakdown:
    """Synchronous up-counter (max-pooling segment counters)."""
    check_positive_int(bits, "bits")
    return CostBreakdown.from_gates({"DFF": bits, "HA": bits},
                                    depth={"HA": bits})


def accumulator(bits: int) -> CostBreakdown:
    """Accumulating adder register (APC-Max pooling, Section 4.4)."""
    check_positive_int(bits, "bits")
    return CostBreakdown.from_gates({"DFF": bits, "FA": bits},
                                    depth={"FA": bits})


def comparator(bits: int, inputs: int = 2) -> CostBreakdown:
    """Magnitude comparator across ``inputs`` operands of ``bits`` bits."""
    check_positive_int(bits, "bits")
    check_positive_int(inputs, "inputs")
    pairs = max(inputs - 1, 1)
    return CostBreakdown.from_gates(
        {"XNOR2": bits * pairs, "AND2": bits * pairs, "OR2": bits * pairs},
        depth={"XNOR2": 1, "AND2": bits},
    )


def adder(bits: int) -> CostBreakdown:
    """Ripple-carry binary adder (APC-Avg pooling divider front-end)."""
    check_positive_int(bits, "bits")
    return CostBreakdown.from_gates({"FA": bits}, depth={"FA": bits})


def stanh_fsm(n_states: int) -> CostBreakdown:
    """K-state Stanh FSM: a saturating up/down counter + output decode."""
    check_positive_int(n_states, "n_states")
    bits = _bits(max(n_states - 1, 1))
    return CostBreakdown.from_gates(
        {"DFF": bits, "HA": bits, "AND2": 2 * bits, "OR2": bits, "INV": bits},
        depth={"HA": bits, "AND2": 1},
    )


def btanh_counter(n_states: int, n_inputs: int) -> CostBreakdown:
    """Btanh saturated up/down counter fed by an APC's binary output."""
    check_positive_int(n_states, "n_states")
    check_positive_int(n_inputs, "n_inputs")
    state_bits = _bits(max(n_states - 1, 1))
    in_bits = _bits(n_inputs)
    width = max(state_bits, in_bits)
    return CostBreakdown.from_gates(
        {"DFF": state_bits, "FA": width, "AND2": 2 * width, "INV": width},
        depth={"FA": width, "AND2": 1},
    )


def lfsr_cost(width: int) -> CostBreakdown:
    """Maximal-length LFSR: ``width`` flops + feedback XORs."""
    check_positive_int(width, "width")
    return CostBreakdown.from_gates({"DFF": width, "XOR2": 3},
                                    depth={"XOR2": 2})


def sng(width: int = 8) -> CostBreakdown:
    """Stochastic number generator: LFSR + comparator (ref (22))."""
    return lfsr_cost(width) + comparator(width)
