"""Hardware cost models (45 nm) standing in for synthesis + CACTI.

The paper evaluates area/power/delay/energy by synthesizing with the
Nangate 45 nm Open Cell Library and estimating SRAM with CACTI 5.3.  This
subpackage substitutes a structural cost model (see DESIGN.md):

* :mod:`repro.hw.gates` — per-gate area / switching-energy / leakage /
  delay constants for the 45 nm node;
* :mod:`repro.hw.components` — gate inventories of every SC component
  (XNOR arrays, MUX trees, APCs, counters, comparators, FSMs, SNGs);
* :mod:`repro.hw.blocks_cost` — feature-extraction-block roll-up
  (regenerates Figure 15);
* :mod:`repro.hw.sram` — analytic SRAM area/power model (CACTI stand-in);
* :mod:`repro.hw.network_cost` — LeNet-5 network roll-up (Tables 6, 7);
* :mod:`repro.hw.platforms` — published reference-platform rows of
  Table 7.
"""

from repro.hw.gates import GateSpec, LIBRARY, CostBreakdown, CLOCK_NS
from repro.hw.components import (
    xnor_array,
    mux_tree,
    or_tree,
    apc,
    counter,
    accumulator,
    comparator,
    stanh_fsm,
    btanh_counter,
    lfsr_cost,
    sng,
)
from repro.hw.blocks_cost import feb_cost, inner_product_cost, pooling_cost
from repro.hw.sram import sram_cost, SramBlockSpec
from repro.hw.network_cost import (
    NetworkCost,
    lenet_network_cost,
    LENET_GEOMETRY,
)
from repro.hw.platforms import PLATFORMS, PlatformRow

__all__ = [
    "GateSpec",
    "LIBRARY",
    "CostBreakdown",
    "CLOCK_NS",
    "xnor_array",
    "mux_tree",
    "or_tree",
    "apc",
    "counter",
    "accumulator",
    "comparator",
    "stanh_fsm",
    "btanh_counter",
    "lfsr_cost",
    "sng",
    "feb_cost",
    "inner_product_cost",
    "pooling_cost",
    "sram_cost",
    "SramBlockSpec",
    "NetworkCost",
    "lenet_network_cost",
    "LENET_GEOMETRY",
    "PLATFORMS",
    "PlatformRow",
]
