"""45 nm standard-cell constants and the :class:`CostBreakdown` algebra.

Per-gate areas follow the Nangate 45 nm Open Cell Library X1 drive cells;
switching energies and leakage are representative 45 nm values.  Absolute
numbers carry model error, but every paper conclusion rests on *ratios*
between designs evaluated under the same constants (see DESIGN.md).
"""

from __future__ import annotations

import dataclasses

__all__ = ["GateSpec", "LIBRARY", "CostBreakdown", "CLOCK_NS",
           "ACTIVITY_FACTOR"]

CLOCK_NS = 5.0
"""Clock period (ns).  Table 6's delay column is ``L × 5 ns`` exactly
(1024 → 5120 ns, 512 → 2560 ns, 256 → 1280 ns), fixing the SC clock at
200 MHz."""

ACTIVITY_FACTOR = 0.5
"""Average switching activity — stochastic streams toggle ~every other
cycle by construction, the defining power characteristic of SC logic."""


@dataclasses.dataclass(frozen=True)
class GateSpec:
    """One standard cell: area, per-toggle energy, leakage, delay."""

    area_um2: float
    energy_fj: float  # dynamic energy per output toggle
    leakage_nw: float
    delay_ns: float


LIBRARY = {
    "INV": GateSpec(0.532, 0.35, 8.0, 0.012),
    "NAND2": GateSpec(0.798, 0.45, 10.0, 0.015),
    "AND2": GateSpec(1.064, 0.55, 12.0, 0.020),
    "OR2": GateSpec(1.064, 0.55, 12.0, 0.020),
    "XOR2": GateSpec(1.596, 0.90, 18.0, 0.030),
    "XNOR2": GateSpec(1.596, 0.90, 18.0, 0.030),
    "MUX2": GateSpec(1.862, 0.80, 16.0, 0.025),
    "DFF": GateSpec(4.522, 1.80, 40.0, 0.070),
    "HA": GateSpec(2.660, 1.10, 25.0, 0.045),
    "FA": GateSpec(4.788, 2.00, 45.0, 0.080),
}


@dataclasses.dataclass
class CostBreakdown:
    """Aggregate hardware cost of a component or subsystem.

    Attributes
    ----------
    area_um2:
        Cell area in µm².
    dyn_energy_fj_per_cycle:
        Dynamic switching energy per clock cycle (fJ), already including
        the activity factor.
    leakage_nw:
        Leakage power (nW).
    delay_ns:
        Critical-path delay (ns) — combined with ``max`` under addition,
        since parallel components share the clock.
    """

    area_um2: float = 0.0
    dyn_energy_fj_per_cycle: float = 0.0
    leakage_nw: float = 0.0
    delay_ns: float = 0.0

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            self.area_um2 + other.area_um2,
            self.dyn_energy_fj_per_cycle + other.dyn_energy_fj_per_cycle,
            self.leakage_nw + other.leakage_nw,
            max(self.delay_ns, other.delay_ns),
        )

    def __radd__(self, other):
        if other == 0:  # support sum()
            return self
        return NotImplemented  # pragma: no cover

    def chain(self, other: "CostBreakdown") -> "CostBreakdown":
        """Series composition: delays add (one feeds the other)."""
        out = self + other
        out.delay_ns = self.delay_ns + other.delay_ns
        return out

    def scale(self, k: float) -> "CostBreakdown":
        """Replicate ``k`` instances in parallel (delay unchanged)."""
        return CostBreakdown(
            self.area_um2 * k,
            self.dyn_energy_fj_per_cycle * k,
            self.leakage_nw * k,
            self.delay_ns,
        )

    def power_uw(self, clock_ns: float = CLOCK_NS) -> float:
        """Total power in µW at the given clock period."""
        dyn_uw = self.dyn_energy_fj_per_cycle / clock_ns * 1e-3
        return dyn_uw + self.leakage_nw * 1e-3

    @staticmethod
    def from_gates(counts: dict, depth: dict = None) -> "CostBreakdown":
        """Build a breakdown from ``{cell: count}`` and optional depths.

        ``depth`` maps cell names to the number of that cell on the
        critical path (default: one of the slowest cell type used).
        """
        area = energy = leak = 0.0
        for cell, count in counts.items():
            spec = LIBRARY[cell]
            area += spec.area_um2 * count
            energy += spec.energy_fj * count * ACTIVITY_FACTOR
            leak += spec.leakage_nw * count
        delay = 0.0
        depth = depth or {}
        for cell, levels in depth.items():
            delay += LIBRARY[cell].delay_ns * levels
        if not depth and counts:
            delay = max(LIBRARY[c].delay_ns for c in counts)
        return CostBreakdown(area, energy, leak, delay)
