"""Network-level hardware roll-up for the LeNet-5 SC-DCNN (Tables 6, 7).

The geometry follows the paper's 784-11520-2880-3200-800-500-10 LeNet-5:

========  =====================================  ======  ==============
Stage     Feature extraction units               n       Weight storage
========  =====================================  ======  ==============
Layer 0   2880 FEBs (11520 inner products / 4)   25      20 filter blocks × 25 words
Layer 1   800 FEBs (3200 inner products / 4)     500     50 filter blocks × 500 words
Layer 2   500 neuron units (IP + activation)     800     500 blocks × 800 words
Output    10 neuron units (IP, APC-based)        500     10 blocks × 500 words
========  =====================================  ======  ==============

Stochastic number generators: one SNG per input pixel, plus per-layer
weight SNGs shared across *equal-valued* weights — with ``w``-bit storage
there are at most ``2**w`` distinct weight values per layer, which is the
"efficient utilization of SNGs" the paper calls for (Section 3.2).
Intermediate activations remain bit-streams, so hidden layers need no
input SNGs.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import FEBKind, NetworkConfig, PoolKind
from repro.hw import components as comp
from repro.hw.blocks_cost import activation_cost, feb_cost, inner_product_cost
from repro.hw.gates import CLOCK_NS, CostBreakdown
from repro.hw.sram import SramBlockSpec, sram_cost
from repro.utils.validation import check_positive_int

__all__ = ["LayerGeometry", "LENET_GEOMETRY", "NetworkCost",
           "lenet_network_cost"]

#: Calibration multipliers absorbing interconnect/placement overhead and
#: clock-tree/IO power that a pure standard-cell inventory cannot see.
#: Held at the values that pin configuration No.11 at the paper's
#: 17.0 mm² / 1.53 W; all Table 6/7 comparisons are ratios under the same
#: constants (see DESIGN.md).
AREA_CALIBRATION = 1.324
POWER_CALIBRATION = 14.04


@dataclasses.dataclass(frozen=True)
class LayerGeometry:
    """Static geometry of one LeNet-5 stage."""

    name: str
    kind: str          # "conv" | "fc"
    n: int             # inner-product input size
    units: int         # FEBs (conv) or neurons (fc)
    sram_blocks: int   # filter-aware SRAM sharing: one block per filter
    words_per_block: int
    has_pool: bool

    @property
    def weight_count(self) -> int:
        return self.sram_blocks * self.words_per_block


LENET_GEOMETRY = (
    LayerGeometry("Layer0", "conv", 25, 2880, 20, 25, True),
    LayerGeometry("Layer1", "conv", 500, 800, 50, 500, True),
    LayerGeometry("Layer2", "fc", 800, 500, 500, 800, False),
    LayerGeometry("Output", "fc", 500, 10, 10, 500, False),
)

INPUT_PIXELS = 784
SNG_WIDTH = 8


@dataclasses.dataclass
class NetworkCost:
    """Table 6 / Table 7 metrics of one SC-DCNN configuration.

    ``breakdown`` maps stage names (plus ``"SRAM"`` and ``"SNG"``) to
    their :class:`CostBreakdown`.
    """

    area_mm2: float
    power_w: float
    delay_ns: float
    energy_uj: float
    throughput_ips: float
    area_efficiency: float   # images / s / mm²
    energy_efficiency: float  # images / J
    breakdown: dict

    def row(self) -> tuple:
        """(area mm², power W, delay ns, energy µJ) — Table 6's columns."""
        return (self.area_mm2, self.power_w, self.delay_ns, self.energy_uj)


def _layer_cost(geometry: LayerGeometry, ip_kind: FEBKind,
                pooling: PoolKind, length: int) -> CostBreakdown:
    ip = "mux" if ip_kind is FEBKind.MUX else "apc"
    if geometry.has_pool:
        pool = "avg" if pooling is PoolKind.AVG else "max"
        unit = feb_cost(f"{ip}-{pool}", geometry.n, length)
    elif geometry.name == "Output":
        # The output stage decodes APC counts with accumulators; no
        # activation FSM.
        unit = inner_product_cost(ip, geometry.n).chain(comp.accumulator(16))
    else:
        unit = inner_product_cost(ip, geometry.n).chain(
            activation_cost(ip, geometry.n, length, "avg")
        )
    return unit.scale(geometry.units)


def _sram_total(weight_bits) -> CostBreakdown:
    total = CostBreakdown()
    for geometry, bits in zip(LENET_GEOMETRY, weight_bits):
        spec = SramBlockSpec(words=geometry.words_per_block, word_bits=bits,
                             readers=geometry.units)
        total = total + sram_cost(spec).scale(geometry.sram_blocks)
    return total


def _sng_total(weight_bits) -> CostBreakdown:
    one = comp.sng(SNG_WIDTH)
    count = INPUT_PIXELS
    for geometry, bits in zip(LENET_GEOMETRY, weight_bits):
        count += min(geometry.weight_count, 2 ** bits)
    return one.scale(count)


def _normalize_weight_bits(weight_bits):
    if isinstance(weight_bits, int):
        weight_bits = (weight_bits,) * len(LENET_GEOMETRY)
    weight_bits = tuple(int(b) for b in weight_bits)
    if len(weight_bits) == 3:
        # Section 5.3 quotes three weight layers; the output layer
        # inherits Layer2's precision.
        weight_bits = weight_bits + (weight_bits[-1],)
    if len(weight_bits) != len(LENET_GEOMETRY):
        raise ValueError(
            f"weight_bits must have 1, 3 or {len(LENET_GEOMETRY)} entries"
        )
    for b in weight_bits:
        check_positive_int(b, "weight_bits")
    return weight_bits


def lenet_network_cost(config: NetworkConfig,
                       weight_bits=7) -> NetworkCost:
    """Roll up the full LeNet-5 hardware cost for one configuration.

    Parameters
    ----------
    config:
        A :class:`repro.core.config.NetworkConfig` (layer FEB kinds,
        pooling, stream length).
    weight_bits:
        Weight storage precision — an int for all layers, or a 3-tuple
        (Layer0, Layer1, Layer2) per the Section 5.3 layer-wise scheme.
    """
    weight_bits = _normalize_weight_bits(weight_bits)
    breakdown = {}
    # Layer kinds: config covers Layer0..Layer2; the output stage is
    # always APC-based (Section 6.3 configurations).
    kinds = [layer.ip_kind for layer in config.layers] + [FEBKind.APC]
    for geometry, kind in zip(LENET_GEOMETRY, kinds):
        breakdown[geometry.name] = _layer_cost(geometry, kind,
                                               config.pooling, config.length)
    breakdown["SRAM"] = _sram_total(weight_bits)
    breakdown["SNG"] = _sng_total(weight_bits)

    total = sum(breakdown.values(), CostBreakdown())
    area_mm2 = total.area_um2 * 1e-6 * AREA_CALIBRATION
    power_w = total.power_uw() * 1e-6 * POWER_CALIBRATION
    delay_ns = config.length * CLOCK_NS
    energy_uj = power_w * delay_ns * 1e-3  # W · ns = 1e-9 J = 1e-3 µJ
    throughput = 1e9 / delay_ns
    return NetworkCost(
        area_mm2=area_mm2,
        power_w=power_w,
        delay_ns=delay_ns,
        energy_uj=energy_uj,
        throughput_ips=throughput,
        area_efficiency=throughput / area_mm2,
        energy_efficiency=1.0 / (energy_uj * 1e-6),
        breakdown=breakdown,
    )
