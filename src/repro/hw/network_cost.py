"""Network-level hardware roll-up for the LeNet-5 SC-DCNN (Tables 6, 7).

The geometry follows the paper's 784-11520-2880-3200-800-500-10 LeNet-5:

========  =====================================  ======  ==============
Stage     Feature extraction units               n       Weight storage
========  =====================================  ======  ==============
Layer 0   2880 FEBs (11520 inner products / 4)   25      20 filter blocks × 25 words
Layer 1   800 FEBs (3200 inner products / 4)     500     50 filter blocks × 500 words
Layer 2   500 neuron units (IP + activation)     800     500 blocks × 800 words
Output    10 neuron units (IP, APC-based)        500     10 blocks × 500 words
========  =====================================  ======  ==============

Stochastic number generators: one SNG per input pixel, plus per-layer
weight SNGs shared across *equal-valued* weights — with ``w``-bit storage
there are at most ``2**w`` distinct weight values per layer, which is the
"efficient utilization of SNGs" the paper calls for (Section 3.2).
Intermediate activations remain bit-streams, so hidden layers need no
input SNGs.
"""

from __future__ import annotations

import dataclasses
import threading

from repro.core.config import FEBKind, NetworkConfig, PoolKind
from repro.hw import components as comp
from repro.hw.blocks_cost import activation_cost, feb_cost, inner_product_cost
from repro.hw.gates import CLOCK_NS, CostBreakdown
from repro.hw.sram import SramBlockSpec, sram_cost
from repro.utils.validation import check_positive_int

__all__ = ["LayerGeometry", "LENET_GEOMETRY", "NetworkCost",
           "lenet_network_cost", "graph_geometry", "graph_network_cost",
           "clear_network_cost_cache"]

#: Calibration multipliers absorbing interconnect/placement overhead and
#: clock-tree/IO power that a pure standard-cell inventory cannot see.
#: Held at the values that pin configuration No.11 at the paper's
#: 17.0 mm² / 1.53 W; all Table 6/7 comparisons are ratios under the same
#: constants (see DESIGN.md).
AREA_CALIBRATION = 1.324
POWER_CALIBRATION = 14.04


@dataclasses.dataclass(frozen=True)
class LayerGeometry:
    """Static geometry of one LeNet-5 stage."""

    name: str
    kind: str          # "conv" | "fc"
    n: int             # inner-product input size
    units: int         # FEBs (conv) or neurons (fc)
    sram_blocks: int   # filter-aware SRAM sharing: one block per filter
    words_per_block: int
    has_pool: bool

    @property
    def weight_count(self) -> int:
        return self.sram_blocks * self.words_per_block


LENET_GEOMETRY = (
    LayerGeometry("Layer0", "conv", 25, 2880, 20, 25, True),
    LayerGeometry("Layer1", "conv", 500, 800, 50, 500, True),
    LayerGeometry("Layer2", "fc", 800, 500, 500, 800, False),
    LayerGeometry("Output", "fc", 500, 10, 10, 500, False),
)

INPUT_PIXELS = 784
SNG_WIDTH = 8


@dataclasses.dataclass(frozen=True)
class NetworkCost:
    """Table 6 / Table 7 metrics of one SC-DCNN configuration.

    ``breakdown`` maps stage names (plus ``"SRAM"`` and ``"SNG"``) to
    their :class:`CostBreakdown`.  Frozen: :func:`graph_network_cost`
    caches and *shares* instances across callers (the DSE runner costs
    each design point once per search), so a mutable roll-up would let
    one caller silently poison every later query.
    """

    area_mm2: float
    power_w: float
    delay_ns: float
    energy_uj: float
    throughput_ips: float
    area_efficiency: float   # images / s / mm²
    energy_efficiency: float  # images / J
    breakdown: dict

    def row(self) -> tuple:
        """(area mm², power W, delay ns, energy µJ) — Table 6's columns."""
        return (self.area_mm2, self.power_w, self.delay_ns, self.energy_uj)


def _layer_cost(geometry: LayerGeometry, ip_kind: FEBKind,
                pooling: PoolKind, length: int,
                final: bool | None = None) -> CostBreakdown:
    if final is None:
        final = geometry.name == "Output"
    ip = "mux" if ip_kind is FEBKind.MUX else "apc"
    if geometry.has_pool:
        pool = "avg" if pooling is PoolKind.AVG else "max"
        unit = feb_cost(f"{ip}-{pool}", geometry.n, length)
    elif final:
        # The output stage decodes APC counts with accumulators; no
        # activation FSM.
        unit = inner_product_cost(ip, geometry.n).chain(comp.accumulator(16))
    else:
        unit = inner_product_cost(ip, geometry.n).chain(
            activation_cost(ip, geometry.n, length, "avg")
        )
    return unit.scale(geometry.units)


def _sram_total(weight_bits, geometries=LENET_GEOMETRY) -> CostBreakdown:
    total = CostBreakdown()
    for geometry, bits in zip(geometries, weight_bits):
        spec = SramBlockSpec(words=geometry.words_per_block, word_bits=bits,
                             readers=geometry.units)
        total = total + sram_cost(spec).scale(geometry.sram_blocks)
    return total


def _sng_total(weight_bits, geometries=LENET_GEOMETRY,
               pixels: int = INPUT_PIXELS) -> CostBreakdown:
    one = comp.sng(SNG_WIDTH)
    count = pixels
    for geometry, bits in zip(geometries, weight_bits):
        count += min(geometry.weight_count, 2 ** bits)
    return one.scale(count)


def _normalize_weight_bits(weight_bits, n_layers: int = len(LENET_GEOMETRY)):
    # Deliberately NOT repro.engine.plan.normalize_weight_bits: the
    # simulator treats None as "keep float weights", but a hardware
    # cost roll-up has no float storage — every layer must carry a
    # positive SRAM word width here.
    if isinstance(weight_bits, int):
        weight_bits = (weight_bits,) * n_layers
    weight_bits = tuple(int(b) for b in weight_bits)
    if len(weight_bits) == n_layers - 1:
        # Section 5.3 quotes the hidden weight layers only; the output
        # layer inherits the last hidden layer's precision.
        weight_bits = weight_bits + (weight_bits[-1],)
    if len(weight_bits) != n_layers:
        raise ValueError(
            f"weight_bits must have 1, {n_layers - 1} or {n_layers} entries"
        )
    for b in weight_bits:
        check_positive_int(b, "weight_bits")
    return weight_bits


def _roll_up(geometries, kinds, finals, pooling: PoolKind, length: int,
             weight_bits, pixels: int) -> NetworkCost:
    """Shared Table 6 roll-up over an arbitrary layer-geometry list."""
    breakdown = {}
    for geometry, kind, final in zip(geometries, kinds, finals):
        breakdown[geometry.name] = _layer_cost(geometry, kind, pooling,
                                               length, final=final)
    breakdown["SRAM"] = _sram_total(weight_bits, geometries)
    breakdown["SNG"] = _sng_total(weight_bits, geometries, pixels)

    total = sum(breakdown.values(), CostBreakdown())
    area_mm2 = total.area_um2 * 1e-6 * AREA_CALIBRATION
    power_w = total.power_uw() * 1e-6 * POWER_CALIBRATION
    delay_ns = length * CLOCK_NS
    energy_uj = power_w * delay_ns * 1e-3  # W · ns = 1e-9 J = 1e-3 µJ
    throughput = 1e9 / delay_ns
    return NetworkCost(
        area_mm2=area_mm2,
        power_w=power_w,
        delay_ns=delay_ns,
        energy_uj=energy_uj,
        throughput_ips=throughput,
        area_efficiency=throughput / area_mm2,
        energy_efficiency=1.0 / (energy_uj * 1e-6),
        breakdown=breakdown,
    )


def lenet_network_cost(config: NetworkConfig,
                       weight_bits=7) -> NetworkCost:
    """Roll up the full LeNet-5 hardware cost for one configuration.

    Parameters
    ----------
    config:
        A :class:`repro.core.config.NetworkConfig` (layer FEB kinds,
        pooling, stream length).
    weight_bits:
        Weight storage precision — an int for all layers, or a 3-tuple
        (Layer0, Layer1, Layer2) per the Section 5.3 layer-wise scheme.
    """
    if len(config.layers) != 3:
        # NetworkConfig itself accepts any depth since the model zoo;
        # this roll-up is hard-wired to the LeNet-5 geometry.  Anything
        # else silently zip-truncates, so refuse it — use
        # :func:`graph_network_cost` for arbitrary architectures.
        raise ValueError(
            f"lenet_network_cost needs the paper's 3-hidden-layer "
            f"configuration, got {len(config.layers)} layer configs; "
            "cost other architectures with graph_network_cost")
    weight_bits = _normalize_weight_bits(weight_bits)
    # Layer kinds: config covers Layer0..Layer2; the output stage is
    # always APC-based (Section 6.3 configurations).
    kinds = [layer.ip_kind for layer in config.layers] + [FEBKind.APC]
    finals = [geometry.name == "Output" for geometry in LENET_GEOMETRY]
    return _roll_up(LENET_GEOMETRY, kinds, finals, config.pooling,
                    config.length, weight_bits, INPUT_PIXELS)


def graph_geometry(graph) -> tuple:
    """Derive per-layer hardware geometry from a lowered layer graph.

    The same filter-aware SRAM sharing as ``LENET_GEOMETRY``: one block
    per conv filter (readers = FEBs), one block per dense neuron.  A
    pooled conv stage has one FEB per pooling window; an unpooled one,
    one per conv output position.  For the paper's LeNet-5 graph this
    reproduces ``LENET_GEOMETRY`` exactly.
    """
    geometries = []
    for node in graph.nodes:
        n = node.n_inputs - 1   # hardware n excludes the folded bias
        if node.op == "conv":
            _, _, (conv_h, conv_w) = node.geometry
            positions = conv_h * conv_w
            units = node.units * (positions // 4 if node.pooled
                                  else positions)
            geometries.append(LayerGeometry(
                node.name, "conv", n, units,
                sram_blocks=node.units, words_per_block=n,
                has_pool=node.pooled))
        else:
            geometries.append(LayerGeometry(
                node.name, "fc", n, node.units,
                sram_blocks=node.units, words_per_block=n,
                has_pool=False))
    return tuple(geometries)


#: Cache of graph cost roll-ups keyed by the *structural* content of
#: (graph, weight_bits) — everything the roll-up reads (trained weight
#: values never enter the cost model).  The DSE runner costs each
#: (combo, length, bits) cell once per search; the cache makes repeat
#: queries (resumed searches, the optimizer facade, benchmark reruns)
#: free.  Bounded defensively; hitting the bound simply resets it.
_COST_CACHE: dict = {}
_COST_CACHE_LOCK = threading.Lock()
_COST_CACHE_MAX = 4096


def _graph_cost_key(graph, weight_bits) -> tuple:
    nodes = tuple(
        (node.name, node.op, node.kind, node.n_inputs, node.units,
         node.pooled, node.final, node.kernel, node.geometry)
        for node in graph.nodes)
    return (nodes, graph.config.pooling, graph.config.length,
            graph.input_shape, weight_bits)


def clear_network_cost_cache() -> None:
    """Drop every cached :func:`graph_network_cost` roll-up."""
    with _COST_CACHE_LOCK:
        _COST_CACHE.clear()


def graph_network_cost(graph, weight_bits=7, cache: bool = True
                       ) -> NetworkCost:
    """Roll up the hardware cost of any lowered layer graph.

    Byte-identical to :func:`lenet_network_cost` when ``graph`` is the
    paper's LeNet-5 (asserted by ``tests/test_hw``); for other
    architectures the same component inventory, SRAM sharing and SNG
    accounting apply to the graph-derived geometry.  Roll-ups are
    cached per (graph structure, weight_bits) — the returned
    :class:`NetworkCost` is shared, so treat it as immutable (or pass
    ``cache=False`` for a private instance).
    """
    weight_bits = _normalize_weight_bits(weight_bits,
                                         n_layers=len(graph.nodes))
    if cache:
        key = _graph_cost_key(graph, weight_bits)
        with _COST_CACHE_LOCK:
            cost = _COST_CACHE.get(key)
        if cost is not None:
            return cost
    geometries = graph_geometry(graph)
    kinds = [node.kind for node in graph.nodes]
    finals = [node.final for node in graph.nodes]
    cost = _roll_up(geometries, kinds, finals, graph.config.pooling,
                    graph.config.length, weight_bits, graph.input_pixels)
    if cache:
        with _COST_CACHE_LOCK:
            if len(_COST_CACHE) >= _COST_CACHE_MAX:
                _COST_CACHE.clear()
            _COST_CACHE[key] = cost
    return cost
