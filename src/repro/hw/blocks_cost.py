"""Feature-extraction-block cost roll-up (regenerates Figure 15).

A feature extraction block comprises four inner-product blocks, one
pooling block and one activation block (Figure 10).  The functions here
compose the component inventories of :mod:`repro.hw.components` for each
of the four designs and report area, critical-path delay, power and total
energy for one feature-extraction operation (``L`` cycles).
"""

from __future__ import annotations

import math

from repro.blocks.pooling import DEFAULT_SEGMENT
from repro.core.state_numbers import (
    btanh_states_apc_avg,
    btanh_states_apc_max,
    stanh_states_mux_avg,
    stanh_states_mux_max,
)
from repro.hw import components as comp
from repro.hw.gates import CLOCK_NS, CostBreakdown
from repro.utils.validation import check_positive_int, check_stream_length

__all__ = ["inner_product_cost", "pooling_cost", "activation_cost",
           "feb_cost", "feb_metrics"]

POOL_WINDOWS = 4


def _bits(n: int) -> int:
    return max(int(math.ceil(math.log2(n + 1))), 1)


def inner_product_cost(kind: str, n: int) -> CostBreakdown:
    """Cost of one ``n``-input inner-product block (``"mux"``/``"apc"``)."""
    check_positive_int(n, "n")
    products = comp.xnor_array(n)
    if kind == "mux":
        return products.chain(comp.mux_tree(n))
    if kind == "apc":
        return products.chain(comp.apc(n, approximate=True))
    if kind == "or":
        return products.chain(comp.or_tree(n))
    raise ValueError(f"unknown inner-product kind {kind!r}")


def pooling_cost(kind: str, ip_kind: str, n: int,
                 segment: int = DEFAULT_SEGMENT) -> CostBreakdown:
    """Cost of the pooling block joining four inner products.

    * MUX blocks pool bit-streams: average = a 4-to-1 MUX; max = the
      Figure 8 block (4 segment counters + comparator + 4-to-1 MUX).
    * APC blocks pool count streams: average = adder tree + shift divider
      (free); max = the Figure 8 block with *accumulators* (Section 4.4).
    """
    count_bits = _bits(n)
    if kind == "avg":
        if ip_kind == "mux":
            return comp.mux_tree(POOL_WINDOWS)
        # Binary adder tree over the four counts + arithmetic shift.
        return comp.adder(count_bits).scale(POOL_WINDOWS - 1)
    if kind == "max":
        seg_bits = _bits(segment if ip_kind == "mux" else segment * n)
        tally = (comp.counter(seg_bits) if ip_kind == "mux"
                 else comp.accumulator(seg_bits))
        block = tally.scale(POOL_WINDOWS)
        block = block + comp.comparator(seg_bits, inputs=POOL_WINDOWS)
        if ip_kind == "mux":
            select = CostBreakdown.from_gates({"MUX2": POOL_WINDOWS - 1},
                                              depth={"MUX2": 2})
        else:
            select = CostBreakdown.from_gates(
                {"MUX2": (POOL_WINDOWS - 1) * count_bits},
                depth={"MUX2": 2},
            )
        return block.chain(select)
    raise ValueError(f"unknown pooling kind {kind!r}")


def activation_cost(ip_kind: str, n: int, length: int,
                    pooling: str) -> CostBreakdown:
    """Cost of the activation block with its paper-equation state count."""
    if ip_kind == "mux":
        k = (stanh_states_mux_avg(length, n) if pooling == "avg"
             else stanh_states_mux_max(length, n))
        return comp.stanh_fsm(k)
    k = (btanh_states_apc_avg(n) if pooling == "avg"
         else btanh_states_apc_max(n))
    return comp.btanh_counter(k, n)


def feb_cost(kind: str, n: int, length: int,
             segment: int = DEFAULT_SEGMENT) -> CostBreakdown:
    """Total cost of one feature extraction block.

    ``kind`` is a FEB key: ``"mux-avg"``, ``"mux-max"``, ``"apc-avg"`` or
    ``"apc-max"`` (the full paper names are accepted too).
    """
    aliases = {
        "mux-avg-stanh": "mux-avg", "mux-max-stanh": "mux-max",
        "apc-avg-btanh": "apc-avg", "apc-max-btanh": "apc-max",
    }
    key = aliases.get(kind.lower(), kind.lower())
    try:
        ip_kind, pool_kind = key.split("-")
    except ValueError:
        raise ValueError(f"unknown FEB kind {kind!r}") from None
    if ip_kind not in ("mux", "apc") or pool_kind not in ("avg", "max"):
        raise ValueError(f"unknown FEB kind {kind!r}")
    check_stream_length(length)
    ip = inner_product_cost(ip_kind, n).scale(POOL_WINDOWS)
    pool = pooling_cost(pool_kind, ip_kind, n, segment)
    act = activation_cost(ip_kind, n, length, pool_kind)
    # Stages are cascaded: the critical path runs through all three.
    return ip.chain(pool).chain(act)


def feb_metrics(kind: str, n: int, length: int,
                segment: int = DEFAULT_SEGMENT) -> dict:
    """Figure 15 metrics for one FEB: area, path delay, power, energy.

    Returns a dict with ``area_um2``, ``delay_ns`` (critical path),
    ``power_uw`` and ``energy_pj`` (for one full ``L``-cycle operation).
    """
    cost = feb_cost(kind, n, length, segment)
    power_uw = cost.power_uw()
    energy_pj = power_uw * length * CLOCK_NS * 1e-3  # µW·ns = 1e-3 pJ
    return {
        "area_um2": cost.area_um2,
        "delay_ns": cost.delay_ns,
        "power_uw": power_uw,
        "energy_pj": energy_pj,
    }
