"""Published reference-platform rows of Table 7.

These numbers are citations in the paper as well (CPU/GPU measurements
and the Minitaur/SpiNNaker/TrueNorth/DaDianNao/EIE publications); only
the two SC-DCNN rows are computed by this library
(:func:`repro.hw.network_cost.lenet_network_cost`).
"""

from __future__ import annotations

import dataclasses
import math

__all__ = ["PlatformRow", "PLATFORMS"]


@dataclasses.dataclass(frozen=True)
class PlatformRow:
    """One Table 7 row.  ``None`` marks the paper's N/A entries."""

    name: str
    dataset: str
    network_type: str
    year: int
    platform_type: str
    area_mm2: float
    power_w: float
    accuracy_pct: float
    throughput_ips: float

    @property
    def area_efficiency(self) -> float:
        """Images/s/mm² (None when area is unpublished)."""
        if self.area_mm2 is None:
            return None
        return self.throughput_ips / self.area_mm2

    @property
    def energy_efficiency(self) -> float:
        """Images/J (None when power is unpublished)."""
        if self.power_w is None:
            return None
        return self.throughput_ips / self.power_w


PLATFORMS = (
    PlatformRow("2x Intel Xeon W5580", "MNIST", "CNN", 2009, "CPU",
                263.0, 156.0, 98.46, 656.0),
    PlatformRow("Nvidia Tesla C2075", "MNIST", "CNN", 2011, "GPU",
                520.0, 202.5, 98.46, 2333.0),
    PlatformRow("Minitaur", "MNIST", "ANN", 2014, "FPGA",
                None, 1.5, 92.00, 4880.0),
    PlatformRow("SpiNNaker", "MNIST", "DBN", 2015, "ARM",
                None, 0.3, 95.00, 50.0),
    PlatformRow("TrueNorth", "MNIST", "SNN", 2015, "ASIC",
                430.0, 0.18, 99.42, 1000.0),
    PlatformRow("DaDianNao", "ImageNet", "CNN", 2014, "ASIC",
                67.7, 15.97, math.nan, 147938.0),
    PlatformRow("EIE-64PE", "CNN layer", "CNN", 2016, "ASIC",
                40.8, 0.59, math.nan, 81967.0),
)
