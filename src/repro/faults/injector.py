"""Seed-scheduled fault injection: named failure points tests arm.

Design
------
A :class:`FaultSpec` names a *site* (a string the instrumented code
passes to :func:`fire`), an *action*, and a schedule deciding which
occurrences of that site trip the fault.  A :class:`FaultInjector`
holds a set of specs plus per-site occurrence counters; the module
keeps at most one injector *installed* at a time and :func:`fire` is a
no-op (one global load + ``is None`` test) while none is.

Scheduling is deterministic so that a faulted run is reproducible and
— the property the robustness suite leans on — a *recovered* run is
bit-identical to a fault-free one:

* ``hits`` — explicit 1-based occurrence numbers of the site (counted
  per process; forked workers inherit the counter state at fork time);
* ``rate`` — per-occurrence probability drawn from a hash of
  ``(seed, site, occurrence)``, not from any global RNG, so arming a
  fault never perturbs the RNG streams the simulator's bit-identity
  contract depends on;
* ``latch`` — a filesystem path making the spec a *cross-process
  one-shot*: it only trips while the file exists and consumes it
  (unlink) at trip time.  This is how a test kills exactly one worker
  out of a respawning pool — per-process counters restart at fork, a
  latch does not.

``match`` further restricts a spec to occurrences whose ``label``
contains the substring (e.g. one design point's ``"MUX-APC-APC@128"``),
which is what lets a test poison a single evaluation while the rest of
the search proceeds.

Actions
-------
``raise``
    Raise :class:`ComputeFault` — a generic in-band computation
    failure.
``ioerror``
    Raise :class:`InjectedIOError` (an ``OSError``) — a store/disk
    write failure.
``kill``
    ``os._exit(KILL_EXIT_CODE)`` — the process dies without cleanup,
    exactly like an OOM kill or segfault; a ``ProcessPoolExecutor``
    parent observes ``BrokenProcessPool``.
``sleep``
    ``time.sleep(sleep_s)`` then return normally — a hung/slow
    evaluation, for exercising timeouts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import threading
import time
from contextlib import contextmanager

from repro import obs

__all__ = ["ComputeFault", "InjectedIOError", "FaultSpec", "FaultInjector",
           "install", "active", "clear", "armed", "fire",
           "maybe_install_from_env", "KILL_EXIT_CODE"]

ACTIONS = ("raise", "ioerror", "kill", "sleep")

#: Exit status of a ``kill`` action — distinctive on purpose, so a test
#: watching a worker pool can tell an injected death from a real crash.
KILL_EXIT_CODE = 87


class ComputeFault(RuntimeError):
    """The ``raise`` action's exception: an injected compute failure."""


class InjectedIOError(OSError):
    """The ``ioerror`` action's exception: an injected write failure."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One armed fault: a site, an action, and a deterministic schedule.

    Attributes
    ----------
    site:
        The failure-point name instrumented code fires (e.g.
        ``"dse.evaluate"``, ``"store.append"``, ``"serve.compute"``).
    action:
        One of :data:`ACTIONS`.
    hits:
        1-based occurrence numbers (per process) that trip.
    rate:
        Per-occurrence trip probability in ``[0, 1]``, decided by a
        hash of ``(seed, site, occurrence)`` — ``1.0`` means every
        matched occurrence.
    match:
        Substring the occurrence's label must contain (``""`` = any).
    sleep_s:
        Duration of the ``sleep`` action.
    latch:
        Optional path; the spec trips only while the file exists and
        unlinks it when tripping (cross-process one-shot).
    max_trips:
        Per-process cap on how often this spec trips (``None`` = no
        cap; note forked workers each get their own count — use
        ``latch`` for a cross-process bound).
    """

    site: str
    action: str = "raise"
    hits: tuple = ()
    rate: float = 0.0
    match: str = ""
    sleep_s: float = 0.05
    latch: str | None = None
    max_trips: int | None = None

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError(
                f"action must be one of {ACTIONS}, got {self.action!r}")
        if not self.site:
            raise ValueError("site must be a non-empty string")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if not self.hits and self.rate == 0.0 and self.latch is None:
            raise ValueError(
                "spec would never trip: give hits, a rate > 0, or a latch")
        object.__setattr__(self, "hits",
                           tuple(int(h) for h in self.hits))

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``"site=dse.evaluate,action=kill,hits=2|5,rate=0.5"``.

        Comma-separated ``key=value`` pairs; ``hits`` entries are
        ``|``-separated.  This is the ``REPRO_FAULTS`` env format
        (specs themselves are ``;``-separated there).
        """
        fields = {}
        for pair in filter(None, (p.strip() for p in text.split(","))):
            key, sep, value = pair.partition("=")
            if not sep:
                raise ValueError(f"fault spec field {pair!r} is not "
                                 "key=value")
            fields[key.strip()] = value.strip()
        unknown = set(fields) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(f"unknown fault spec fields: {sorted(unknown)}")
        if "hits" in fields:
            fields["hits"] = tuple(
                int(h) for h in fields["hits"].split("|") if h)
        for key in ("rate", "sleep_s"):
            if key in fields:
                fields[key] = float(fields[key])
        if "max_trips" in fields:
            fields["max_trips"] = int(fields["max_trips"])
        return cls(**fields)


def _hash_unit(seed: int, site: str, occurrence: int) -> float:
    """Deterministic uniform draw in [0, 1) for one site occurrence."""
    digest = hashlib.sha1(
        f"{seed}|{site}|{occurrence}".encode("utf8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


class FaultInjector:
    """A set of armed :class:`FaultSpec`\\ s plus occurrence counters.

    Thread-safe: the serving tier fires sites from several worker
    threads at once.  Counters are per-site and per-process (forked
    children inherit a snapshot); every decision is a pure function of
    ``(seed, site, occurrence, specs, latch files)``.
    """

    def __init__(self, specs, seed: int = 0):
        specs = (specs,) if isinstance(specs, FaultSpec) else tuple(specs)
        if not specs:
            raise ValueError("an injector needs at least one FaultSpec")
        self.specs = specs
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._counts = {}
        self._trips = []
        self._spec_trips = {}  # id(spec) -> per-process trip count

    # ------------------------------------------------------------------
    def occurrences(self, site: str) -> int:
        """How often ``site`` has fired in this process."""
        with self._lock:
            return self._counts.get(site, 0)

    @property
    def trips(self) -> list:
        """Log of tripped faults: ``(site, occurrence, action, label)``."""
        with self._lock:
            return list(self._trips)

    def _due(self, spec: FaultSpec, occurrence: int, label: str,
             tripped: int) -> bool:
        if spec.match and spec.match not in label:
            return False
        if spec.max_trips is not None and tripped >= spec.max_trips:
            return False
        if spec.hits and occurrence in spec.hits:
            return True
        return spec.rate > 0.0 and \
            _hash_unit(self.seed, spec.site, occurrence) < spec.rate

    def _consume_latch(self, spec: FaultSpec) -> bool:
        """Atomically claim a latched spec's one shot (unlink wins)."""
        if spec.latch is None:
            return True
        try:
            os.unlink(spec.latch)
            return True
        except FileNotFoundError:
            return False

    def fire(self, site: str, label: str = "") -> None:
        """Count one occurrence of ``site``; trip any due spec."""
        due = None
        with self._lock:
            occurrence = self._counts.get(site, 0) + 1
            self._counts[site] = occurrence
            for spec in self.specs:
                if spec.site != site:
                    continue
                if self._due(spec, occurrence, label,
                             self._spec_trips.get(id(spec), 0)):
                    if not self._consume_latch(spec):
                        continue
                    due = spec
                    self._spec_trips[id(spec)] = \
                        self._spec_trips.get(id(spec), 0) + 1
                    self._trips.append((site, occurrence, spec.action,
                                        label))
                    break
        if due is None:
            return
        # Mirror the trip into the metrics registry before the action
        # runs — a "kill" action never returns, and chaos tests assert
        # on the scraped counter instead of reaching into ``trips``.
        obs.counter("repro_fault_trips_total",
                    "Injected fault trips, by site and action.",
                    site=site, action=due.action).inc()
        if due.action == "sleep":
            time.sleep(due.sleep_s)
        elif due.action == "kill":
            os._exit(KILL_EXIT_CODE)
        elif due.action == "ioerror":
            raise InjectedIOError(
                f"injected I/O error at {site}[{occurrence}] {label}")
        else:
            raise ComputeFault(
                f"injected fault at {site}[{occurrence}] {label}")


# ----------------------------------------------------------------------
# module-level installation (what production call sites consult)
# ----------------------------------------------------------------------
_ACTIVE: FaultInjector | None = None


def install(injector: FaultInjector) -> FaultInjector:
    """Make ``injector`` the process's active injector (returns it)."""
    global _ACTIVE
    _ACTIVE = injector
    return injector


def active() -> FaultInjector | None:
    """The installed injector, or ``None``."""
    return _ACTIVE


def clear() -> None:
    """Uninstall any active injector."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def armed(*specs, seed: int = 0):
    """Install an injector over ``specs`` for the ``with`` body."""
    injector = install(FaultInjector(specs, seed=seed))
    try:
        yield injector
    finally:
        clear()


def fire(site: str, label: str = "") -> None:
    """Fire a failure point; free when no injector is installed.

    This is the only call production code makes — keep it on one line
    at each site so the instrumentation reads as an annotation.
    """
    if _ACTIVE is not None:
        _ACTIVE.fire(site, label)


def maybe_install_from_env(env: str = "REPRO_FAULTS") -> FaultInjector | None:
    """Install an injector described by an environment variable.

    ``REPRO_FAULTS="site=serve.compute,action=raise,hits=1;site=..."``
    — ``;``-separated :meth:`FaultSpec.parse` entries, with an optional
    leading ``seed=N`` entry.  Returns the injector, or ``None`` when
    the variable is unset/empty.  Lets subprocess-level tests (the CI
    smoke scripts) arm faults without a Python hook.
    """
    text = os.environ.get(env, "").strip()
    if not text:
        return None
    seed = 0
    specs = []
    for chunk in filter(None, (c.strip() for c in text.split(";"))):
        if chunk.startswith("seed="):
            seed = int(chunk[5:])
            continue
        specs.append(FaultSpec.parse(chunk))
    if not specs:
        return None
    return install(FaultInjector(specs, seed=seed))
