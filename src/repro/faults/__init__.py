"""``repro.faults`` — deterministic fault injection for robustness tests.

Production code calls :func:`fire` at named *failure points* (sites);
with no injector installed the call is a near-free attribute check, so
the framework costs nothing in normal operation.  Tests (and chaos
drills) arm faults by site name through :func:`armed` /
:func:`install`, choosing an action — raise, kill the process, sleep,
or raise an I/O error — and a deterministic schedule (explicit
occurrence numbers, a seeded rate, or a cross-process one-shot latch
file).  See :mod:`repro.faults.injector` for the scheduling contract
and DESIGN.md ("Failure model and recovery") for the fault taxonomy.
"""

from repro.faults.injector import (
    ComputeFault,
    FaultInjector,
    FaultSpec,
    InjectedIOError,
    active,
    armed,
    clear,
    fire,
    install,
    maybe_install_from_env,
)

__all__ = [
    "ComputeFault",
    "FaultInjector",
    "FaultSpec",
    "InjectedIOError",
    "active",
    "armed",
    "clear",
    "fire",
    "install",
    "maybe_install_from_env",
]
