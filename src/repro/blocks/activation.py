"""Activation function blocks (Section 4.3).

Thin, stateful wrappers around the FSM/counter cores in
:mod:`repro.sc.activation`, carrying the chosen state number so feature
extraction blocks can be composed declaratively.  State numbers should be
picked with the equations in :mod:`repro.core.state_numbers`.
"""

from __future__ import annotations

import numpy as np

from repro.sc import activation
from repro.sc.bitstream import Bitstream
from repro.utils.validation import check_positive_int

__all__ = ["StanhBlock", "BtanhBlock"]


class StanhBlock:
    """K-state FSM hyperbolic tangent (Figure 6 / Figure 11).

    Parameters
    ----------
    n_states:
        FSM state count ``K``.
    threshold:
        Output threshold state.  ``None`` = canonical ``K/2``;
        the MUX-Max re-design (Figure 11) uses ``round(K/5)``.
    """

    def __init__(self, n_states: int, threshold: int = None):
        self.n_states = check_positive_int(n_states, "n_states")
        if threshold is not None:
            threshold = check_positive_int(threshold, "threshold")
            if threshold >= self.n_states:
                raise ValueError(
                    f"threshold {threshold} must be < n_states {n_states}"
                )
        self.threshold = threshold

    @classmethod
    def mux_max_variant(cls, n_states: int) -> "StanhBlock":
        """The re-designed Stanh of Figure 11 (threshold at K/5)."""
        return cls(n_states, threshold=max(int(round(n_states / 5.0)), 1))

    def __call__(self, stream: Bitstream) -> Bitstream:
        return activation.stanh(stream, self.n_states, self.threshold)

    def apply_packed(self, data: np.ndarray, length: int) -> np.ndarray:
        """Packed-array fast path used by the network simulator."""
        return activation.stanh_packed(data, length, self.n_states,
                                       self.threshold)

    def expected(self, x) -> np.ndarray:
        """Analytic transfer curve ``tanh(K/2 · x)``."""
        return activation.stanh_expected(x, self.n_states)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StanhBlock(K={self.n_states}, threshold={self.threshold})"


class BtanhBlock:
    """Saturated up/down counter tanh for APC count streams.

    Parameters
    ----------
    n_inputs:
        APC input count ``n`` (the counter steps by ``2·count - n``).
    n_states:
        Counter state count ``K``; equation (3) gives ``N/2`` behind an
        average pooling block, the original design of ref (21) gives
        ``2N`` for a directly-connected APC.
    """

    def __init__(self, n_inputs: int, n_states: int):
        self.n_inputs = check_positive_int(n_inputs, "n_inputs")
        self.n_states = check_positive_int(n_states, "n_states")

    def __call__(self, counts: np.ndarray) -> Bitstream:
        return activation.btanh_stream(counts, self.n_inputs, self.n_states)

    def apply_counts(self, counts: np.ndarray) -> np.ndarray:
        """Fast path: counts in, boolean output bits out."""
        return activation.btanh_counts(counts, self.n_inputs, self.n_states)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BtanhBlock(n={self.n_inputs}, K={self.n_states})"
