"""Pooling function blocks (Section 4.2).

Average pooling reuses the MUX's inherent down-scaling (Figure 5b applied
to the four window streams).  Max pooling in the SC domain is the paper's
novel contribution (Figure 8): the four candidate streams are sliced into
``c``-bit segments; counters tally the ones in each segment, and the
winner of segment ``k`` drives the MUX selection for segment ``k+1`` —
zero extra latency, at the cost of a (small, measurable) deviation from
the true maximum (Table 4).

For APC-based feature extraction blocks the same scheme operates on
*binary count streams*: counters become accumulators (Section 4.4,
APC-Max-Btanh), and average pooling becomes a binary adder + divider whose
dropped fractional bits are the information loss the paper attributes to
APC-Avg-Btanh.
"""

from __future__ import annotations

import numpy as np

from repro.sc import ops
from repro.utils.validation import check_positive_int, check_stream_length

__all__ = [
    "average_pool",
    "hardware_max_pool",
    "software_max_pool",
    "apc_average_pool",
    "apc_max_pool",
    "segment_selection",
]

DEFAULT_SEGMENT = 16
"""Paper's segment length ``c`` ("The length of a bit-stream segment is 16")."""


def average_pool(streams: np.ndarray, select: np.ndarray,
                 length: int) -> np.ndarray:
    """MUX-based average pooling over the second-to-last axis.

    ``streams`` is a packed array ``(..., k, nbytes)``; ``select`` is a
    ``(length,)`` signal with values in ``[0, k)``.  The output's value is
    the mean of the inputs' values (sum scaled by ``1/k``).
    """
    return ops.mux_select(streams, select, length)


def segment_selection(segment_scores: np.ndarray) -> np.ndarray:
    """Turn per-segment scores into the Figure-8 MUX selection sequence.

    ``segment_scores`` has shape ``(..., k, nseg)``.  Selection for
    segment ``j`` is the argmax of segment ``j-1``'s scores; segment 0
    uses row 0 ("the c-bit segment from the first small matrix is randomly
    chosen" — we fix row 0 for determinism, which is one valid random
    draw and keeps the zero-latency property).
    """
    winners = np.argmax(segment_scores, axis=-2)  # (..., nseg)
    sel = np.roll(winners, 1, axis=-1)
    sel[..., 0] = 0
    return sel


def hardware_max_pool(streams: np.ndarray, length: int,
                      segment: int = DEFAULT_SEGMENT) -> np.ndarray:
    """Hardware-oriented max pooling on packed bit-streams (Figure 8).

    Parameters
    ----------
    streams:
        Packed array ``(..., k, nbytes)`` of candidate streams (``k=4``
        for 2×2 pooling).
    length:
        Stream length; must be a multiple of ``segment``.
    segment:
        Segment length ``c`` in bits; must be a multiple of 8 (byte
        aligned) — the paper uses 16.

    Returns
    -------
    Packed array ``(..., nbytes)`` approximating the largest input stream.
    """
    length = check_stream_length(length)
    segment = check_positive_int(segment, "segment")
    if segment % 8:
        raise ValueError(f"segment length {segment} must be a multiple of 8")
    if length % segment:
        raise ValueError(
            f"stream length {length} must be a multiple of segment {segment}"
        )
    streams = np.asarray(streams, dtype=np.uint8)
    counts = ops.segment_popcount(streams, length, segment)  # (..., k, nseg)
    sel = segment_selection(counts)  # (..., nseg)

    nseg = length // segment
    bps = segment // 8
    segs = streams.reshape(streams.shape[:-1] + (nseg, bps))  # (..., k, nseg, bps)
    idx = sel[..., None, :, None]
    idx = np.broadcast_to(idx, sel.shape[:-1] + (1, nseg, bps))
    picked = np.take_along_axis(segs, idx, axis=-3)[..., 0, :, :]
    return picked.reshape(picked.shape[:-2] + (nseg * bps,))


def software_max_pool(streams: np.ndarray, length: int) -> np.ndarray:
    """Reference max pooling: return the stream with the most ones.

    This is the "software-based max pooling" baseline of Table 4 — it
    needs the whole stream before it can decide, which is exactly the
    latency the hardware-oriented design avoids.
    """
    length = check_stream_length(length)
    streams = np.asarray(streams, dtype=np.uint8)
    totals = ops.popcount(streams, length)  # (..., k)
    winner = np.argmax(totals, axis=-1)  # (...,)
    idx = winner[..., None, None]
    idx = np.broadcast_to(idx, winner.shape + (1, streams.shape[-1]))
    return np.take_along_axis(streams, idx, axis=-2)[..., 0, :]


def apc_average_pool(counts: np.ndarray, rounding: str = "nearest"
                     ) -> np.ndarray:
    """Average pooling in the APC (binary) domain (Section 4.4).

    ``counts`` has shape ``(..., k, L)``; the output is the per-cycle
    average count.  The hardware divider is an arithmetic shift, so the
    fractional part is lost — "the mean of (2, 3, 4, 5) is 3.5, but it
    will be represented as 3" (Section 6.1).

    ``rounding`` selects the divider flavour:

    * ``"floor"`` — truncating shift, exactly the paper's example.  Note a
      truncating divider biases every cycle downward by 3/8 LSB, which
      dominates the block's inaccuracy;
    * ``"nearest"`` (default) — add-half-then-shift, the standard
      bias-bounded hardware divider.  The residual quantization loss is
      what makes APC-Avg-Btanh less accurate than APC-Max-Btanh, as the
      paper reports.
    """
    counts = np.asarray(counts)
    if not np.issubdtype(counts.dtype, np.integer):
        raise ValueError(f"counts must be integers, got {counts.dtype}")
    k = counts.shape[-2]
    total = counts.sum(axis=-2, dtype=np.int64)
    if rounding == "floor":
        return total // k
    if rounding == "nearest":
        return (total + k // 2) // k
    raise ValueError(f"unknown rounding {rounding!r}; use 'floor' or 'nearest'")


def apc_max_pool(counts: np.ndarray, segment: int = DEFAULT_SEGMENT
                 ) -> np.ndarray:
    """Hardware-oriented max pooling in the APC (binary) domain.

    Identical control scheme to :func:`hardware_max_pool`, but the
    per-segment counters are replaced by *accumulators* summing the binary
    counts since the start of the stream (Section 4.4, APC-Max-Btanh).
    The running totals integrate away the per-segment stochastic noise,
    so the selection converges onto the true maximum inner product — the
    "high accuracy provided by accumulators" the paper credits for this
    block's best-in-class accuracy.

    ``counts`` has shape ``(..., k, L)``; returns ``(..., L)``.
    """
    counts = np.asarray(counts)
    if not np.issubdtype(counts.dtype, np.integer):
        raise ValueError(f"counts must be integers, got {counts.dtype}")
    L = counts.shape[-1]
    segment = check_positive_int(segment, "segment")
    if L % segment:
        raise ValueError(f"stream length {L} must be a multiple of "
                         f"segment {segment}")
    nseg = L // segment
    segs = counts.reshape(counts.shape[:-1] + (nseg, segment))
    # Accumulators: cumulative totals through the end of each segment.
    scores = np.cumsum(segs.sum(axis=-1, dtype=np.int64), axis=-1)
    sel = segment_selection(scores)  # (..., nseg)
    idx = sel[..., None, :, None]
    idx = np.broadcast_to(idx, sel.shape[:-1] + (1, nseg, segment))
    picked = np.take_along_axis(segs, idx, axis=-3)[..., 0, :, :]
    return picked.reshape(picked.shape[:-2] + (L,))
