"""Inner-product / convolution function blocks (Section 4.1).

Each block multiplies ``n`` inputs with ``n`` weights in the SC domain
(XNOR gates for the bipolar format, AND for unipolar) and reduces the
products with one of the four adder designs.  All blocks expose:

``compute(x, w)``
    Run the bit-level hardware and return the decoded estimate of the
    inner product ``Σ x_i w_i`` (scaled back by any inherent factor, so
    results are directly comparable with :meth:`ideal`).

``ideal(x, w)``
    The exact software inner product.

The measurement harnesses behind Tables 1-3 live in
:mod:`repro.analysis.block_error`; the blocks themselves are stateless
apart from their stream factory.
"""

from __future__ import annotations

import numpy as np

from repro.sc import adders, ops
from repro.sc.encoding import Encoding
from repro.sc.rng import StreamFactory
from repro.sc.twoline import TwoLineStream, two_line_multiply, two_line_sum
from repro.utils.seeding import spawn_rng
from repro.utils.validation import check_positive_int, check_stream_length

__all__ = [
    "InnerProductBlock",
    "OrInnerProduct",
    "MuxInnerProduct",
    "ApcInnerProduct",
    "TwoLineInnerProduct",
]


class InnerProductBlock:
    """Common machinery for the four inner-product block designs.

    Parameters
    ----------
    n:
        Input size (receptive-field size × channels).
    length:
        Bit-stream length.
    encoding:
        Stream encoding; DCNN inputs/weights live in [-1, 1] so bipolar is
        the default (Section 4.1).
    seed:
        Seed of the block's private stream factory.
    """

    def __init__(self, n: int, length: int,
                 encoding: Encoding = Encoding.BIPOLAR, seed: int = 0):
        self.n = check_positive_int(n, "n")
        self.length = check_stream_length(length)
        self.encoding = encoding
        self.factory = StreamFactory(seed=seed, encoding=encoding)

    def ideal(self, x, w) -> np.ndarray:
        """Exact inner product ``Σ x_i w_i`` (summed over the last axis)."""
        x = np.asarray(x, dtype=np.float64)
        w = np.asarray(w, dtype=np.float64)
        return (x * w).sum(axis=-1)

    def _check_inputs(self, x, w):
        x = np.asarray(x, dtype=np.float64)
        w = np.asarray(w, dtype=np.float64)
        if x.shape[-1] != self.n or w.shape[-1] != self.n:
            raise ValueError(
                f"expected {self.n} inputs/weights on the last axis, got "
                f"x{x.shape}, w{w.shape}"
            )
        return x, np.broadcast_to(w, x.shape)

    def _product_streams(self, x, w) -> np.ndarray:
        """Packed product streams, shape ``x.shape + (nbytes,)``."""
        xs = self.factory.packed(x, self.length)
        ws = self.factory.packed(w, self.length)
        if self.encoding is Encoding.UNIPOLAR:
            return ops.and_(xs, ws)
        return ops.xnor_(xs, ws, self.length)

    def compute(self, x, w) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError


class OrInnerProduct(InnerProductBlock):
    """OR-gate based inner product (Figure 5a; Table 1).

    The OR adder saturates whenever several products are one in the same
    cycle, so inputs are pre-scaled by ``1/scale`` before encoding and the
    decoded output is scaled back.  For the bipolar format pre-scaling is
    ineffective (streams near value 0 are half ones), reproducing the
    paper's conclusion that this block is unusable for DCNNs.
    """

    def __init__(self, n: int, length: int,
                 encoding: Encoding = Encoding.UNIPOLAR, seed: int = 0,
                 scale: float = None):
        super().__init__(n, length, encoding, seed)
        # Default pre-scaling: spread the expected sum across [0, 1].
        self.scale = float(scale) if scale is not None else float(n)
        if self.scale < 1.0:
            raise ValueError(f"scale must be >= 1, got {self.scale}")

    def compute(self, x, w) -> np.ndarray:
        x, w = self._check_inputs(x, w)
        products = self._product_streams(x / self.scale, w)
        summed = adders.or_add(products)
        p = ops.popcount(summed, self.length) / self.length
        if self.encoding is Encoding.UNIPOLAR:
            return p * self.scale
        # Bipolar decode of the OR output, scaled back.  There is no
        # consistent bipolar OR-adder scale; this mirrors the unipolar
        # rule and exhibits the large errors of Table 1.
        return (2.0 * p - 1.0) * self.scale


class MuxInnerProduct(InnerProductBlock):
    """MUX-based inner product (Figure 5b; Table 2).

    An n-to-1 MUX selects one product bit per cycle, producing the sum
    scaled by ``1/n``; :meth:`compute` scales the decoded value back by
    ``n``.  Accuracy improves with stream length and degrades with input
    size — more bits are dropped (Section 4.1).
    """

    def compute(self, x, w) -> np.ndarray:
        x, w = self._check_inputs(x, w)
        products = self._product_streams(x, w)
        select = self.factory.select_signal(self.n, self.length)
        summed = adders.mux_add(products, select, self.length)
        p = ops.popcount(summed, self.length) / self.length
        if self.encoding is Encoding.UNIPOLAR:
            return p * self.n
        return (2.0 * p - 1.0) * self.n

    def output_stream(self, x, w) -> np.ndarray:
        """The raw (packed) scaled output stream, for cascading into FEBs."""
        x, w = self._check_inputs(x, w)
        products = self._product_streams(x, w)
        select = self.factory.select_signal(self.n, self.length)
        return adders.mux_add(products, select, self.length)


class ApcInnerProduct(InnerProductBlock):
    """APC-based inner product (Figure 5c / Figure 7; Table 3).

    XNOR products feed a parallel counter that emits a *binary* count per
    cycle.  ``approximate=True`` (default) applies the APC LSB
    approximation of ref (20); ``False`` gives the conventional
    accumulative parallel counter used as Table 3's baseline.
    """

    def __init__(self, n: int, length: int,
                 encoding: Encoding = Encoding.BIPOLAR, seed: int = 0,
                 approximate: bool = True):
        super().__init__(n, length, encoding, seed)
        self.approximate = bool(approximate)

    def count_stream(self, x, w) -> np.ndarray:
        """Per-cycle counts (int16, shape ``batch + (length,)``)."""
        x, w = self._check_inputs(x, w)
        products = self._product_streams(x, w)
        if self.approximate:
            return adders.apc_count(products, self.length)
        return adders.parallel_counter(products, self.length)

    def compute(self, x, w) -> np.ndarray:
        counts = self.count_stream(x, w)
        total = counts.sum(axis=-1, dtype=np.int64)
        if self.encoding is Encoding.UNIPOLAR:
            return total / self.length
        # Bipolar: each cycle's signed sum is (2·count - n).
        return (2.0 * total - self.n * self.length) / self.length


class TwoLineInnerProduct(InnerProductBlock):
    """Two-line representation based inner product (Figure 5d).

    Non-scaled addition: products are ternary digit streams summed through
    a cascade of two-line adders with three-state carry counters.  With
    more than a couple of inputs the bounded digit range overflows, which
    is why Section 4.1 rejects the design; :meth:`compute_with_overflow`
    exposes the overflow count so that conclusion is measurable.
    """

    def __init__(self, n: int, length: int,
                 encoding: Encoding = Encoding.BIPOLAR, seed: int = 0):
        if encoding is not Encoding.BIPOLAR:
            raise ValueError("the two-line block is defined for bipolar values")
        super().__init__(n, length, encoding, seed)
        self._rng = spawn_rng(seed, "two-line")

    def compute_with_overflow(self, x, w):
        """Return ``(estimate, overflow_count)`` for a single (x, w) pair."""
        x, w = self._check_inputs(x, w)
        if x.ndim != 1:
            raise ValueError("the two-line block computes one window at a "
                             "time (x must be 1-D)")
        xs = TwoLineStream.encode(x, self.length, self._rng)
        ws = TwoLineStream.encode(w, self.length, self._rng)
        products = [
            two_line_multiply(
                TwoLineStream(xs.magnitude[i], xs.sign[i], self.length),
                TwoLineStream(ws.magnitude[i], ws.sign[i], self.length),
            )
            for i in range(self.n)
        ]
        total, overflow = two_line_sum(products)
        return float(total.value()) , int(overflow)

    def compute(self, x, w) -> float:
        estimate, _ = self.compute_with_overflow(x, w)
        return estimate
