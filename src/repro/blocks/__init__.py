"""DCNN function blocks (Section 4): inner product, pooling, activation.

A *function block* is the SC implementation of one basic DCNN operation.
This subpackage provides:

* four inner-product/convolution block designs — OR-gate, MUX, APC and
  two-line representation based (:mod:`repro.blocks.inner_product`);
* pooling blocks — MUX average pooling, the paper's hardware-oriented max
  pooling (Figure 8), the APC-domain variants of Section 4.4, and the
  software max-pooling reference (:mod:`repro.blocks.pooling`);
* activation blocks wrapping Stanh/Btanh with state-number selection
  (:mod:`repro.blocks.activation`).
"""

from repro.blocks.inner_product import (
    InnerProductBlock,
    OrInnerProduct,
    MuxInnerProduct,
    ApcInnerProduct,
    TwoLineInnerProduct,
)
from repro.blocks.pooling import (
    average_pool,
    hardware_max_pool,
    software_max_pool,
    apc_average_pool,
    apc_max_pool,
)
from repro.blocks.activation import StanhBlock, BtanhBlock

__all__ = [
    "InnerProductBlock",
    "OrInnerProduct",
    "MuxInnerProduct",
    "ApcInnerProduct",
    "TwoLineInnerProduct",
    "average_pool",
    "hardware_max_pool",
    "software_max_pool",
    "apc_average_pool",
    "apc_max_pool",
    "StanhBlock",
    "BtanhBlock",
]
