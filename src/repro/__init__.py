"""SC-DCNN: stochastic-computing deep convolutional neural networks.

A full reproduction of *SC-DCNN: Highly-Scalable Deep Convolutional Neural
Network using Stochastic Computing* (Ren et al., ASPLOS 2017).

The package is organised bottom-up, mirroring the paper:

``repro.sc``
    The stochastic-computing substrate: bit-stream encodings, stochastic
    number generators (LFSR and ideal), packed bit-stream containers,
    logic-level arithmetic (AND/XNOR multipliers, OR/MUX/APC/two-line
    adders) and FSM/counter based activation functions (Stanh, Btanh).

``repro.blocks``
    DCNN *function blocks*: inner-product/convolution blocks, average and
    hardware-oriented max pooling blocks, and activation blocks.

``repro.core``
    The paper's primary contribution: the four jointly-optimized feature
    extraction blocks, state-number equations (1)-(3), network-level SC
    inference (exact bit-level and calibrated fast model) and the holistic
    design-space optimizer of Section 6.3.

``repro.nn``
    A from-scratch numpy deep-learning substrate used to train the LeNet-5
    (784-11520-2880-3200-800-500-10) whose weights the SC engine consumes.

``repro.data``
    A synthetic MNIST-like handwritten-digit dataset (the environment has
    no network access; see DESIGN.md for the substitution rationale).

``repro.hw``
    Gate-level area/power/delay/energy cost models for the 45 nm node, an
    analytic SRAM model standing in for CACTI, and the network-level cost
    roll-up that regenerates Tables 6 and 7 and Figure 15.

``repro.storage``
    Weight-storage schemes of Section 5: low-precision weight quantization,
    layer-wise precision optimization and filter-aware SRAM sharing.

``repro.analysis``
    Measurement harnesses that regenerate every table and figure of the
    paper's evaluation (see EXPERIMENTS.md for the index).
"""

from repro.sc.bitstream import Bitstream
from repro.sc.encoding import Encoding
from repro.sc.rng import IdealSNG, LfsrSNG, StreamFactory
from repro.core.config import (
    FEBKind,
    PoolKind,
    LayerConfig,
    NetworkConfig,
    TABLE6_CONFIGS,
)
from repro.core.feature_extraction import (
    FeatureExtractionBlock,
    MuxAvgStanh,
    MuxMaxStanh,
    ApcAvgBtanh,
    ApcMaxBtanh,
    make_feb,
)
from repro.core.network import SCNetwork
from repro.core.fast_model import FastSCModel

__version__ = "1.0.0"

__all__ = [
    "Bitstream",
    "Encoding",
    "IdealSNG",
    "LfsrSNG",
    "StreamFactory",
    "FEBKind",
    "PoolKind",
    "LayerConfig",
    "NetworkConfig",
    "TABLE6_CONFIGS",
    "FeatureExtractionBlock",
    "MuxAvgStanh",
    "MuxMaxStanh",
    "ApcAvgBtanh",
    "ApcMaxBtanh",
    "make_feb",
    "SCNetwork",
    "FastSCModel",
    "__version__",
]
