"""Frozen pre-engine bit-level simulator: the regression oracle.

This is the single-image ``SCNetwork`` implementation exactly as it stood
before the layer-graph engine refactor (one stream-factory call per
image, one APC kernel invocation per output channel).  It is kept — and
must not be "optimized" — so that:

* ``tests/test_engine`` can assert the exact backend's batched outputs
  are **bit-identical** to the pre-refactor implementation on fixed
  seeds, forever, without golden files;
* ``benchmarks/bench_engine.py`` can measure the batched engine against
  genuine sequential legacy calls.

Production code should use :class:`repro.engine.engine.Engine` (or the
:class:`repro.core.network.SCNetwork` facade).
"""

from __future__ import annotations

import numpy as np

from repro.blocks.pooling import (
    DEFAULT_SEGMENT,
    apc_average_pool,
    apc_max_pool,
    average_pool,
    hardware_max_pool,
)
from repro.core.config import FEBKind, NetworkConfig, PoolKind
from repro.core.state_numbers import (
    btanh_states_apc_avg,
    btanh_states_apc_max,
    stanh_states_mux_avg,
    stanh_states_mux_max,
)
from repro.engine.plan import layer_gain_compensation, pool_window_indices
from repro.nn.conv import Conv2D, im2col_indices
from repro.nn.dense import Dense
from repro.sc import activation, adders, ops
from repro.sc.encoding import Encoding
from repro.sc.rng import StreamFactory
from repro.storage.quantization import dequantize_codes, quantize_weights

__all__ = ["ReferenceSCNetwork"]


class _LayerPlan:
    """Resolved per-layer simulation parameters (frozen legacy form)."""

    def __init__(self, name: str, kind: FEBKind, n_inputs: int,
                 n_states: int, weights: np.ndarray, has_pool: bool,
                 geometry=None):
        self.name = name
        self.kind = kind
        self.n_inputs = n_inputs      # including the bias input
        self.n_states = n_states
        self.weights = weights        # (units, n_inputs) with bias folded
        self.has_pool = has_pool
        self.geometry = geometry      # conv: (channels, in_hw, out_hw)


class ReferenceSCNetwork:
    """Pre-engine bit-level SC simulator of a trained LeNet-5 (frozen)."""

    def __init__(self, model, config: NetworkConfig, seed: int = 0,
                 weight_bits=None, segment: int = DEFAULT_SEGMENT,
                 chunk_budget: int = 1 << 26):
        self.config = config
        self.length = config.length
        self.segment = segment
        self.chunk_budget = int(chunk_budget)
        self.factory = StreamFactory(seed=seed, encoding=Encoding.BIPOLAR)
        self._plans = self._build_plans(model, weight_bits)
        self._weight_streams = [
            self.factory.packed(np.clip(plan.weights, -1.0, 1.0), self.length)
            for plan in self._plans
        ]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_plans(self, model, weight_bits):
        convs = [l for l in model.layers if isinstance(l, Conv2D)]
        denses = [l for l in model.layers if isinstance(l, Dense)]
        if len(convs) != 2 or len(denses) != 2:
            raise ValueError(
                "ReferenceSCNetwork expects the paper's LeNet-5 (2 conv + "
                f"2 dense layers); got {len(convs)} conv, {len(denses)} dense"
            )
        bits = self._normalize_bits(weight_bits)
        kinds = [layer.ip_kind for layer in self.config.layers] + [FEBKind.APC]
        geometries = [
            (convs[0].out_channels, (28, 28), (24, 24)),
            (convs[1].out_channels, (12, 12), (8, 8)),
            None,
            None,
        ]
        names = ["Layer0", "Layer1", "Layer2", "Output"]
        plans = []
        self.gain_deficits = []
        deficit = 1.0
        for stage, layer in enumerate(convs + denses):
            kind = kinds[stage]
            n = (layer.fan_in if isinstance(layer, Conv2D)
                 else layer.in_features) + 1
            pooled = stage < 2
            n_states = (self._states_for(kind, n, pooled=pooled)
                        if stage < 3 else 2)
            w, b, deficit, _ = layer_gain_compensation(
                layer.weight.value, layer.bias.value, kind, n, n_states,
                incoming_deficit=deficit,
            )
            folded = np.concatenate([w, b[:, None]], axis=1)
            if bits[stage] is not None:
                folded = dequantize_codes(
                    quantize_weights(folded, bits[stage]), bits[stage]
                )
            plans.append(_LayerPlan(names[stage], kind, n, n_states,
                                    folded, has_pool=pooled,
                                    geometry=geometries[stage]))
            self.gain_deficits.append(deficit)
        return plans

    @staticmethod
    def _normalize_bits(weight_bits):
        if weight_bits is None:
            return (None, None, None, None)
        if isinstance(weight_bits, int):
            return (weight_bits,) * 4
        bits = tuple(int(b) for b in weight_bits)
        if len(bits) == 3:
            return bits + (bits[-1],)
        if len(bits) != 4:
            raise ValueError("weight_bits must be an int, 3- or 4-tuple")
        return bits

    def _states_for(self, kind: FEBKind, n: int, pooled: bool) -> int:
        avg = self.config.pooling is PoolKind.AVG
        if kind is FEBKind.MUX:
            if pooled and not avg:
                return stanh_states_mux_max(self.length, n)
            return stanh_states_mux_avg(self.length, n)
        if pooled and avg:
            return btanh_states_apc_avg(n)
        return btanh_states_apc_max(n)

    # ------------------------------------------------------------------
    # stream-level building blocks
    # ------------------------------------------------------------------
    def _ones_column(self, rows: int) -> np.ndarray:
        """Packed constant-1 streams (the bias input), ``(rows, nbytes)``."""
        mask = ops.pad_mask(self.length)
        return np.broadcast_to(mask, (rows, mask.shape[0])).copy()

    def _apc_counts(self, x_patch: np.ndarray, w_streams: np.ndarray
                    ) -> np.ndarray:
        """APC counts for every (unit, position), one channel at a time."""
        P, n, nbytes = x_patch.shape
        C = w_streams.shape[0]
        L = self.length
        counts = np.empty((C, P, L), dtype=np.int16)
        for c in range(C):
            prod = ops.xnor_(x_patch, w_streams[c][None, :, :], L)
            counts[c] = adders.apc_count(prod, L,
                                         chunk_budget=self.chunk_budget)
        return counts

    def _mux_ip_streams(self, x_patch: np.ndarray, w_streams: np.ndarray,
                        n: int) -> np.ndarray:
        """MUX inner-product output streams, packed ``(C, P, nbytes)``."""
        L = self.length
        select = self.factory.select_signal(n, L)
        x_sel = ops.mux_select(x_patch, select, L)       # (P, nbytes)
        w_sel = ops.mux_select(w_streams, select, L)     # (C, nbytes)
        return ops.xnor_(x_sel[None, :, :], w_sel[:, None, :], L)

    # ------------------------------------------------------------------
    # layer execution
    # ------------------------------------------------------------------
    def _run_conv_layer(self, plan: _LayerPlan, x_streams: np.ndarray,
                        w_streams: np.ndarray) -> np.ndarray:
        """One conv+pool+activation stage on packed input streams."""
        channels_out, (in_h, in_w), (conv_h, conv_w) = plan.geometry
        kernel = 5
        rows, cols = im2col_indices(in_h, in_w, kernel)
        flat = rows * in_w + cols                        # (P, k·k)
        channels_in = (plan.n_inputs - 1) // (kernel * kernel)
        per_channel = [x_streams[c * in_h * in_w + flat]
                       for c in range(channels_in)]
        x_patch = np.concatenate(per_channel, axis=1)    # (P, n-1, nbytes)
        P = x_patch.shape[0]
        x_patch = np.concatenate(
            [x_patch, self._ones_column(P)[:, None, :]], axis=1
        )

        windows = pool_window_indices(conv_h // 2, conv_w // 2)
        avg = self.config.pooling is PoolKind.AVG

        if plan.kind is FEBKind.APC:
            counts = self._apc_counts(x_patch, w_streams)  # (C, P, L)
            grouped = counts[:, windows, :]                # (C, W, 4, L)
            del counts
            if avg:
                pooled = apc_average_pool(
                    np.moveaxis(grouped, 2, -2)
                )
            else:
                pooled = apc_max_pool(
                    np.moveaxis(grouped, 2, -2), self.segment
                )
            del grouped
            out_bits = activation.btanh_counts(pooled, plan.n_inputs,
                                               plan.n_states)
            out = ops.pack_bits(out_bits)
        else:
            ips = self._mux_ip_streams(x_patch, w_streams, plan.n_inputs)
            grouped = ips[:, windows, :]                   # (C, W, 4, nbytes)
            del ips
            if avg:
                select = self.factory.select_signal(4, self.length)
                pooled = average_pool(grouped, select, self.length)
                threshold = None
            else:
                pooled = hardware_max_pool(grouped, self.length,
                                           self.segment)
                threshold = max(int(round(plan.n_states / 5.0)), 1)
            del grouped
            out = activation.stanh_packed(pooled, self.length,
                                          plan.n_states, threshold=threshold)
        return out.reshape(-1, out.shape[-1])

    def _run_fc_layer(self, plan: _LayerPlan, x_streams: np.ndarray,
                      w_streams: np.ndarray, final: bool):
        """Fully-connected stage.  ``final=True`` returns float logits."""
        x_with_bias = np.concatenate(
            [x_streams, self._ones_column(1)], axis=0
        )[None, :, :]                                     # (1, n, nbytes)
        n = plan.n_inputs
        if plan.kind is FEBKind.APC or final:
            counts = self._apc_counts(x_with_bias, w_streams)[:, 0, :]
            if final:
                total = counts.sum(axis=-1, dtype=np.int64)
                return (2.0 * total - n * self.length) / self.length
            out_bits = activation.btanh_counts(counts, n, plan.n_states)
            return ops.pack_bits(out_bits)
        ips = self._mux_ip_streams(x_with_bias, w_streams, n)[:, 0, :]
        return activation.stanh_packed(ips, self.length, plan.n_states)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def forward_image(self, image: np.ndarray) -> np.ndarray:
        """Simulate one image; returns the 10 decoded output values."""
        img = np.asarray(image, dtype=np.float64).reshape(-1)
        if img.size != 784:
            raise ValueError(f"expected a 28×28 image, got {image.shape}")
        if np.max(np.abs(img)) > 1.0:
            raise ValueError("image values must lie in [-1, 1] "
                             "(use repro.data.to_bipolar)")
        x = self.factory.packed(img, self.length)         # (784, nbytes)
        x = self._run_conv_layer(self._plans[0], x, self._weight_streams[0])
        x = self._run_conv_layer(self._plans[1], x, self._weight_streams[1])
        x = self._run_fc_layer(self._plans[2], x, self._weight_streams[2],
                               final=False)
        return self._run_fc_layer(self._plans[3], x, self._weight_streams[3],
                                  final=True)

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Argmax predictions, one sequential single-image call each."""
        images = np.asarray(images, dtype=np.float64)
        return np.array([int(np.argmax(self.forward_image(img)))
                         for img in images])
