"""Layer-graph IR: the backend-agnostic description of an SC-DCNN.

The engine's intermediate representation is deliberately small: a trained
sequential conv/pool/dense model plus a
:class:`repro.core.config.NetworkConfig` lower into a linear graph of
:class:`LayerNode` records — one per weight layer — each carrying the
layer's *structure* (operation, inner-product block kind,
receptive-field geometry, whether a pooling block follows) and references
to the raw trained parameters.  Nothing here is backend-specific: the
same graph compiles into plans executed by the exact bit-level backend,
the calibrated surrogate and the float reference.

Lowering is **topology-driven**: :func:`build_graph` walks the model's
layer list in order, infers every intermediate shape (conv output grids,
pooled grids, flattened feature counts) from the input geometry, and
validates the stack as it goes — any conv/pool/dense sequence that is
structurally sound lowers, not just the paper's LeNet-5.  See
:mod:`repro.nn.zoo` for the stock architectures and DESIGN.md,
"Model zoo and generalized lowering".
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import FEBKind, NetworkConfig
from repro.nn.activations import Tanh
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense
from repro.nn.module import Flatten
from repro.nn.pool import AvgPool2D, MaxPool2D
from repro.nn.zoo import DEFAULT_INPUT_HW, input_geometry

__all__ = ["LayerNode", "LayerGraph", "build_graph", "INPUT_HW"]

INPUT_HW = DEFAULT_INPUT_HW
"""Default input image geometry (the synthetic-MNIST data the zoo
models train on); override per model via ``model.input_hw`` or the
``input_hw`` argument of :func:`build_graph`."""


@dataclasses.dataclass(frozen=True)
class LayerNode:
    """One weight layer of the graph.

    Attributes
    ----------
    name:
        The layer label (``Layer0`` .. ``Output``).
    op:
        ``"conv"`` or ``"dense"``.
    kind:
        Inner-product block family (MUX or APC) this design point assigns
        to the layer.
    n_inputs:
        Inner-product input size *including* the folded bias input.
    units:
        Output channel / neuron count.
    pooled:
        Whether a 2×2 pooling block follows the inner products.
    final:
        Whether this is the logit layer (no activation, decoded output).
    geometry:
        For conv nodes ``(channels_out, (in_h, in_w), (conv_h, conv_w))``;
        ``None`` for dense nodes.
    weight, bias:
        References to the trained float parameters (not copied — the
        graph is a view onto the model).
    kernel:
        Convolution kernel size (0 for dense nodes).
    """

    name: str
    op: str
    kind: FEBKind
    n_inputs: int
    units: int
    pooled: bool
    final: bool
    geometry: tuple
    weight: np.ndarray = dataclasses.field(repr=False)
    bias: np.ndarray = dataclasses.field(repr=False)
    kernel: int = 0


@dataclasses.dataclass(frozen=True)
class LayerGraph:
    """A lowered network: layer nodes plus the design point they serve."""

    nodes: tuple
    config: NetworkConfig
    input_shape: tuple = (1,) + INPUT_HW

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    @property
    def input_pixels(self) -> int:
        """Flat input size (channels × height × width)."""
        c, h, w = self.input_shape
        return c * h * w

    def describe(self) -> str:
        """One line per node, for logs and doctests."""
        return "\n".join(
            f"{node.name}: {node.op} {node.kind.value} "
            f"n={node.n_inputs} units={node.units}"
            f"{' +pool' if node.pooled else ''}"
            for node in self.nodes
        )


def _weight_layers(model):
    return [l for l in model.layers if isinstance(l, (Conv2D, Dense))]


def build_graph(model, config: NetworkConfig,
                input_hw: tuple | None = None) -> LayerGraph:
    """Lower a trained sequential model onto a design point's layer graph.

    ``model`` is any :class:`repro.nn.module.Sequential` stack of
    ``Conv2D`` / 2×2 pooling / ``Tanh`` / ``Flatten`` / ``Dense`` layers
    ending in a ``Dense`` logit layer (see :mod:`repro.nn.zoo` for stock
    architectures); ``config`` assigns each *hidden* weight layer its
    inner-product kind — the output layer is always APC, as in Table 6.

    ``input_hw`` sets the input image geometry; when omitted it falls
    back to ``model.input_hw`` and finally the 28×28 default.  Shapes are
    inferred layer by layer, and any structural problem (layer-count
    mismatch with ``config``, feature-size mismatch at a dense layer,
    pooling that does not follow a convolution, odd conv grids feeding a
    2×2 pooling block, anything after the logit layer) raises
    ``ValueError`` with an actionable message.
    """
    weights = _weight_layers(model)
    if not weights:
        raise ValueError(
            "the model has no Conv2D or Dense layers — nothing to lower")
    if not isinstance(weights[-1], Dense):
        raise ValueError(
            "the last weight layer must be a Dense logit layer; got "
            f"{type(weights[-1]).__name__}")
    hidden = len(weights) - 1
    if len(config.layers) != hidden:
        raise ValueError(
            f"config carries {len(config.layers)} layer kinds but the "
            f"model has {hidden} hidden weight layers (plus the "
            "always-APC output layer); pass one LayerConfig per hidden "
            "conv/dense layer")
    input_shape = input_geometry(model, input_hw)
    channels, in_h, in_w = input_shape
    in_hw = (in_h, in_w)

    kinds = [layer.ip_kind for layer in config.layers] + [FEBKind.APC]
    nodes = []
    stage = 0            # index into `weights` / `kinds`
    flat = None          # feature count once the spatial grid is gone
    layers = list(model.layers)
    i = 0
    while i < len(layers):
        layer = layers[i]
        if stage == len(weights) and isinstance(layer,
                                                (Conv2D, Dense, Flatten)):
            # Trailing Tanh and pooling layers get their own specific
            # messages in their branches below.
            raise ValueError(
                f"layer {type(layer).__name__} follows the logit layer; "
                "the output layer must be the last computational stage")
        if isinstance(layer, Conv2D):
            if flat is not None:
                raise ValueError(
                    f"{layer_name(stage, weights)}: Conv2D after the "
                    "activations were flattened; convolutions must "
                    "precede every Dense layer")
            if layer.in_channels != channels:
                raise ValueError(
                    f"{layer_name(stage, weights)}: expects "
                    f"{layer.in_channels} input channels but receives "
                    f"{channels}")
            if in_hw[0] < layer.kernel or in_hw[1] < layer.kernel:
                raise ValueError(
                    f"{layer_name(stage, weights)}: {layer.kernel}×"
                    f"{layer.kernel} kernel does not fit the "
                    f"{in_hw[0]}×{in_hw[1]} input grid")
            conv_hw = layer.output_hw(*in_hw)
            pooled = False
            j = i + 1
            if j < len(layers) and isinstance(layers[j],
                                              (AvgPool2D, MaxPool2D)):
                pool = layers[j]
                if pool.size != 2:
                    raise ValueError(
                        f"{layer_name(stage, weights)}: only 2×2 pooling "
                        f"blocks exist in hardware, got size {pool.size}")
                if conv_hw[0] % 2 or conv_hw[1] % 2:
                    raise ValueError(
                        f"{layer_name(stage, weights)}: conv output grid "
                        f"{conv_hw[0]}×{conv_hw[1]} is odd and cannot "
                        "feed a 2×2 pooling block; adjust the kernel or "
                        "drop the pool")
                pooled = True
                j += 1
            nodes.append(LayerNode(
                name=layer_name(stage, weights), op="conv",
                kind=kinds[stage],
                n_inputs=layer.fan_in + 1, units=layer.out_channels,
                pooled=pooled, final=False,
                geometry=(layer.out_channels, in_hw, conv_hw),
                weight=layer.weight.value, bias=layer.bias.value,
                kernel=layer.kernel,
            ))
            channels = layer.out_channels
            in_hw = ((conv_hw[0] // 2, conv_hw[1] // 2) if pooled
                     else conv_hw)
            stage += 1
            i = j
        elif isinstance(layer, Dense):
            features = flat if flat is not None else channels * in_hw[0] * in_hw[1]
            if layer.in_features != features:
                raise ValueError(
                    f"{layer_name(stage, weights)}: expects "
                    f"{layer.in_features} input features but the previous "
                    f"stage produces {features}")
            final = stage == len(weights) - 1
            nodes.append(LayerNode(
                name=layer_name(stage, weights), op="dense",
                kind=kinds[stage],
                n_inputs=layer.in_features + 1, units=layer.out_features,
                pooled=False, final=final,
                geometry=None,
                weight=layer.weight.value, bias=layer.bias.value,
            ))
            flat = layer.out_features
            stage += 1
            i += 1
        elif isinstance(layer, (AvgPool2D, MaxPool2D)):
            raise ValueError(
                "a pooling block must immediately follow a convolution "
                "layer (the hardware FEB is inner-product → pool → "
                "activation); found a stray pooling layer"
                + (" after the final layer" if stage == len(weights)
                   else ""))
        elif isinstance(layer, Flatten):
            if flat is None:
                flat = channels * in_hw[0] * in_hw[1]
            i += 1
        elif isinstance(layer, Tanh):
            if stage == len(weights):
                raise ValueError(
                    "a Tanh follows the logit layer; the output layer "
                    "must produce raw logits (its activation is the "
                    "decoded APC sum)")
            i += 1
        else:
            raise ValueError(
                f"unsupported layer {type(layer).__name__}; the engine "
                "lowers Conv2D, Dense, AvgPool2D/MaxPool2D, Tanh and "
                "Flatten stacks")
    return LayerGraph(nodes=tuple(nodes), config=config,
                      input_shape=input_shape)


def layer_name(stage: int, weights) -> str:
    """The paper's layer labels: ``Layer0`` … then ``Output`` last."""
    return "Output" if stage == len(weights) - 1 else f"Layer{stage}"
