"""Layer-graph IR: the backend-agnostic description of an SC-DCNN.

The engine's intermediate representation is deliberately small: a trained
LeNet-5 plus a :class:`repro.core.config.NetworkConfig` lower into a
linear graph of :class:`LayerNode` records — one per weight layer — each
carrying the layer's *structure* (operation, inner-product block kind,
receptive-field geometry, whether a pooling block follows) and references
to the raw trained parameters.  Nothing here is backend-specific: the
same graph compiles into plans executed by the exact bit-level backend,
the calibrated surrogate and the float reference.

The graph is the single place the "three disjoint evaluators" of the
pre-engine code base each re-derived independently; see DESIGN.md,
"Layer-graph engine".
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import FEBKind, NetworkConfig
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense

__all__ = ["LayerNode", "LayerGraph", "build_graph", "INPUT_HW"]

INPUT_HW = (28, 28)
"""Input image geometry the paper's LeNet-5 consumes."""


@dataclasses.dataclass(frozen=True)
class LayerNode:
    """One weight layer of the graph.

    Attributes
    ----------
    name:
        The paper's layer label (``Layer0`` .. ``Output``).
    op:
        ``"conv"`` or ``"dense"``.
    kind:
        Inner-product block family (MUX or APC) this design point assigns
        to the layer.
    n_inputs:
        Inner-product input size *including* the folded bias input.
    units:
        Output channel / neuron count.
    pooled:
        Whether a 2×2 pooling block follows the inner products.
    final:
        Whether this is the logit layer (no activation, decoded output).
    geometry:
        For conv nodes ``(channels_out, (in_h, in_w), (conv_h, conv_w))``;
        ``None`` for dense nodes.
    weight, bias:
        References to the trained float parameters (not copied — the
        graph is a view onto the model).
    """

    name: str
    op: str
    kind: FEBKind
    n_inputs: int
    units: int
    pooled: bool
    final: bool
    geometry: tuple
    weight: np.ndarray = dataclasses.field(repr=False)
    bias: np.ndarray = dataclasses.field(repr=False)


@dataclasses.dataclass(frozen=True)
class LayerGraph:
    """A lowered network: layer nodes plus the design point they serve."""

    nodes: tuple
    config: NetworkConfig

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def describe(self) -> str:
        """One line per node, for logs and doctests."""
        return "\n".join(
            f"{node.name}: {node.op} {node.kind.value} "
            f"n={node.n_inputs} units={node.units}"
            f"{' +pool' if node.pooled else ''}"
            for node in self.nodes
        )


def build_graph(model, config: NetworkConfig) -> LayerGraph:
    """Lower a trained LeNet-5 onto a design point's layer graph.

    ``model`` is the :class:`repro.nn.module.Sequential` from
    :func:`repro.nn.lenet.build_lenet5`; ``config`` assigns each weight
    layer its inner-product kind (the output layer is always APC, as in
    Table 6).  Raises ``ValueError`` for any other architecture.
    """
    convs = [l for l in model.layers if isinstance(l, Conv2D)]
    denses = [l for l in model.layers if isinstance(l, Dense)]
    if len(convs) != 2 or len(denses) != 2:
        raise ValueError(
            "the engine expects the paper's LeNet-5 (2 conv + 2 dense "
            f"layers); got {len(convs)} conv, {len(denses)} dense"
        )
    kinds = [layer.ip_kind for layer in config.layers] + [FEBKind.APC]
    names = ["Layer0", "Layer1", "Layer2", "Output"]
    nodes = []
    in_hw = INPUT_HW
    for stage, layer in enumerate(convs):
        conv_hw = layer.output_hw(*in_hw)
        nodes.append(LayerNode(
            name=names[stage], op="conv", kind=kinds[stage],
            n_inputs=layer.fan_in + 1, units=layer.out_channels,
            pooled=True, final=False,
            geometry=(layer.out_channels, in_hw, conv_hw),
            weight=layer.weight.value, bias=layer.bias.value,
        ))
        in_hw = (conv_hw[0] // 2, conv_hw[1] // 2)
    for stage, layer in enumerate(denses, start=len(convs)):
        nodes.append(LayerNode(
            name=names[stage], op="dense", kind=kinds[stage],
            n_inputs=layer.in_features + 1, units=layer.out_features,
            pooled=False, final=stage == 3,
            geometry=None,
            weight=layer.weight.value, bias=layer.bias.value,
        ))
    return LayerGraph(nodes=tuple(nodes), config=config)
