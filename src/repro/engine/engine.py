"""The unified inference engine: one dispatch point, pluggable backends.

``Engine`` ties the subsystem together: it lowers a trained model and a
:class:`repro.core.config.NetworkConfig` into the layer-graph IR,
compiles (or reuses) an immutable per-layer plan, instantiates the
requested backend, and exposes batched ``forward`` / ``predict`` /
``error_rate``.  Every evaluator in the repository — the exact bit-level
simulator, the calibrated surrogate, the paper-noise methodology and the
float baseline — is an ``Engine`` with a different ``backend`` string::

    engine = Engine(trained.model, config, backend="exact", seed=0)
    preds = engine.predict(images)          # batched bit-level inference

Passing a pre-compiled ``plan`` skips compilation entirely; the
Section 6.3 optimizer uses this with
:meth:`repro.engine.plan.CompiledPlan.with_length` to walk the
stream-length halving loop without re-quantizing weights or re-deriving
state numbers at every point.
"""

from __future__ import annotations

import threading

import numpy as np

from repro import obs
from repro.core.config import NetworkConfig
from repro.engine.backends import get_backend
from repro.engine.graph import build_graph
from repro.engine.plan import CompiledPlan, compile_plan

__all__ = ["Engine", "as_image_batch"]


def as_image_batch(images: np.ndarray, bipolar: bool = False,
                   shape: tuple = (1, 28, 28)) -> np.ndarray:
    """Normalize input to a float64 ``(B, pixels)`` batch.

    Accepts a flat pixel vector, a single 2-D image matching the
    ``shape`` geometry, or a batch of either.  With ``bipolar=True``
    values are additionally required to lie in the bipolar range [-1, 1]
    (the bit-level backends and the serving layer enforce this; the
    float-domain executors tolerate out-of-range pre-activations).  The
    single normalization point for the engine front-end, the exact
    backend and ``repro.serve``; ``shape`` is the target model's
    ``(channels, height, width)`` input geometry, defaulting to the
    1×28×28 synthetic-MNIST images every zoo model consumes.  A 2-D or
    3-D input is treated as a single image only when its shape *is* the
    plan's geometry — ``(h, w)`` for single-channel plans, or the full
    ``(channels, h, w)`` — any other shape is validated as a batch, so
    a wrongly-sized batch fails instead of being silently reinterpreted.
    An empty batch normalizes to ``(0, pixels)`` (zero predictions),
    not a reshape error.
    """
    channels, h, w = (int(s) for s in shape)
    pixels = channels * h * w
    images = np.asarray(images, dtype=np.float64)
    if (images.ndim <= 1
            or (channels == 1 and images.shape == (h, w))
            or images.shape == (channels, h, w)):
        flat = images.reshape(1, -1)
    else:
        # np.prod instead of -1: reshape(0, -1) cannot infer the column
        # count of an empty batch.
        flat = images.reshape(
            images.shape[0], int(np.prod(images.shape[1:], dtype=np.int64)))
    if flat.shape[-1] != pixels:
        raise ValueError(
            f"expected {pixels}-pixel images, got input of shape "
            f"{images.shape}")
    if bipolar and flat.size and np.max(np.abs(flat)) > 1.0:
        raise ValueError("image values must lie in [-1, 1] "
                         "(bipolar encoding; use repro.data.to_bipolar)")
    return flat


class Engine:
    """Backend-agnostic batched inference over a compiled layer plan.

    Parameters
    ----------
    model:
        The trained :class:`repro.nn.module.Sequential` — any
        conv/pool/dense stack the graph builder can lower (see
        :mod:`repro.nn.zoo`); ignored when ``plan`` is given.
    config:
        The SC design point (ignored when ``plan`` is given).
    backend:
        Registered backend name: ``"exact"``, ``"surrogate"``,
        ``"float"`` or ``"noise"`` (extensible via
        :func:`repro.engine.backends.register_backend`).
    seed:
        Backend seed (stream generation / sampled noise).
    weight_bits:
        Optional weight storage precision (int or 3-/4-tuple, Section 5).
    plan:
        A pre-compiled :class:`repro.engine.plan.CompiledPlan` to execute
        directly (skips graph building and compilation; ``model`` and
        ``config`` are ignored, and passing ``weight_bits`` alongside a
        plan is rejected — the plan already fixes the storage precision).
    **backend_opts:
        Extra keyword arguments forwarded to the backend constructor
        (e.g. ``segment``/``chunk_budget``/``sng`` for ``exact``,
        ``samples``/``noisy`` for ``surrogate``).
    """

    def __init__(self, model=None, config: NetworkConfig | None = None,
                 backend: str = "exact", seed: int = 0, weight_bits=None,
                 plan: CompiledPlan | None = None, **backend_opts):
        if plan is None:
            if model is None or config is None:
                raise ValueError(
                    "Engine needs either (model, config) or a compiled plan"
                )
            plan = compile_plan(build_graph(model, config),
                                weight_bits=weight_bits)
        elif weight_bits is not None:
            raise ValueError(
                "weight_bits cannot be combined with a pre-compiled plan "
                "(the plan already fixes the storage precision; pass "
                "weight_bits to compile_plan instead)"
            )
        self.plan = plan
        self.config = plan.config
        self.backend_name = backend
        self.backend = get_backend(backend)(plan, seed=seed, **backend_opts)
        #: serializes callers that share this engine when the backend is
        #: stateful (its RNG advances per call); the serving layer locks
        #: this for backends without ``forward_independent``.
        self.serial_lock = threading.Lock()

    # ------------------------------------------------------------------
    def _as_batch(self, images: np.ndarray) -> np.ndarray:
        """Normalize input to a float64 ``(B, pixels)`` batch."""
        return as_image_batch(images, shape=self.plan.input_shape)

    def forward(self, images: np.ndarray) -> np.ndarray:
        """Per-image logits ``(B, 10)`` (argmax-compatible across backends)."""
        return self.backend.forward(self._as_batch(images))

    def predict(self, images: np.ndarray, batch_size: int | None = None
                ) -> np.ndarray:
        """Argmax class predictions for a batch of images.

        ``batch_size`` caps how many images each backend call receives
        (``None`` hands the whole batch over — the exact backend applies
        its own memory-bounded splitting internally).
        """
        flat = self._as_batch(images)
        step = len(flat) if batch_size is None else int(batch_size)
        preds = []
        with obs.span("engine.predict", backend=self.backend_name,
                      images=len(flat)):
            for start in range(0, len(flat), max(step, 1)):
                logits = self.backend.forward(
                    flat[start:start + max(step, 1)])
                preds.append(np.argmax(logits, axis=1))
        return (np.concatenate(preds) if preds
                else np.empty(0, dtype=np.int64))

    def error_rate(self, images: np.ndarray, labels: np.ndarray,
                   max_images: int | None = None,
                   batch_size: int | None = None) -> float:
        """Error rate in percent (Table 6's metric)."""
        if max_images is not None:
            images = images[:max_images]
            labels = labels[:max_images]
        preds = self.predict(images, batch_size=batch_size)
        return 100.0 * float((preds != np.asarray(labels)).mean())
