"""Measured FEB transfer curves and noise magnitudes (surrogate inputs).

The calibrated surrogate backend evaluates the network in float
arithmetic, replacing each layer's ``tanh(pool(·))`` with a transfer
curve *measured from the real bit-level blocks*:

1. For every (FEB kind, pooling, input size, stream length) appearing in
   the network, run the bit-level feature extraction block on a few
   hundred synthetic receptive fields whose true pooled pre-activations
   sweep the operating range, and record ``(reference, hardware output)``
   pairs.
2. Bin by reference value and keep the per-bin mean (the block's
   *transfer curve*, capturing systematic effects: MUX down-scaling,
   max-pool under-counting, Btanh gain) and standard deviation (the
   stochastic noise).

:func:`measured_stage_sigma` distills the same measurements into a single
Gaussian sigma per block — the paper's own network-evaluation
methodology (inaccuracy injected as zero-mean noise), consumed by the
``noise`` backend.  Both artifact families are disk-cached under
:func:`repro.data.cache.cache_dir`.

This module was lifted out of ``repro.core.fast_model`` when the engine
subsystem was introduced; the legacy module re-exports the public names.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

import numpy as np

from repro.core.config import FEBKind
from repro.core.feature_extraction import make_feb
from repro.core.state_numbers import btanh_states_apc_max, stanh_states_mux_avg
from repro.data.cache import cache_dir
from repro.sc import activation
from repro.sc.adders import apc_count, mux_add
from repro.sc.encoding import Encoding
from repro.sc.ops import popcount as ops_popcount
from repro.sc.ops import xnor_
from repro.sc.rng import StreamFactory
from repro.utils.seeding import spawn_rng

__all__ = [
    "TARGET_RANGE",
    "N_BINS",
    "FEBCalibration",
    "calibrate_feb",
    "measured_stage_sigma",
]

TARGET_RANGE = 3.0   # pooled pre-activations of the trained net stay within
N_BINS = 25


def _atomic_savez(path, **arrays) -> None:
    """Write an ``.npz`` atomically (write-temp + rename).

    The calibration disk cache is shared by every process on the
    machine; the DSE runner's worker pool can race two processes onto
    one cache key (they compute identical artifacts).  A plain
    ``np.savez`` would let one process load the other's half-written
    file; ``os.replace`` makes the publish atomic on POSIX.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.stem}.{os.getpid()}.tmp.npz")
    np.savez(tmp, **arrays)
    os.replace(tmp, path)


class FEBCalibration:
    """A measured transfer curve: per-bin mean and noise of a block."""

    def __init__(self, centers: np.ndarray, mean: np.ndarray,
                 std: np.ndarray):
        self.centers = np.asarray(centers, dtype=np.float64)
        self.mean = np.asarray(mean, dtype=np.float64)
        self.std = np.asarray(std, dtype=np.float64)

    def apply(self, values: np.ndarray, rng: np.random.Generator | None = None
              ) -> np.ndarray:
        """Map true pooled values through the measured transfer + noise."""
        v = np.asarray(values, dtype=np.float64)
        out = np.interp(v, self.centers, self.mean)
        if rng is not None:
            sigma = np.interp(v, self.centers, self.std)
            out = out + rng.normal(0.0, 1.0, v.shape) * sigma
        return np.clip(out, -1.0, 1.0)

    def save(self, path) -> None:
        _atomic_savez(path, centers=self.centers, mean=self.mean,
                      std=self.std)

    @classmethod
    def load(cls, path) -> "FEBCalibration":
        data = np.load(path)
        return cls(data["centers"], data["mean"], data["std"])


def _window_inputs(targets: np.ndarray, n: int, rng: np.random.Generator):
    """Construct (x, w) whose per-window inner products hit ``targets``.

    ``targets`` has shape ``(samples, windows)``.  x is random in
    [-1, 1]; w is the along-x component achieving the target plus a small
    orthogonal perturbation for realism, clipped into [-1, 1] (the clip
    perturbs extreme targets by a negligible amount for n ≥ 16).
    """
    samples, windows = targets.shape
    x = rng.uniform(-1.0, 1.0, (samples, windows, n))
    norms = (x ** 2).sum(axis=-1, keepdims=True)
    alpha = targets[..., None] / np.maximum(norms, 1e-9)
    r = rng.uniform(-1.0, 1.0, (samples, windows, n)) * 0.2
    proj = (r * x).sum(axis=-1, keepdims=True) / np.maximum(norms, 1e-9)
    w = alpha * x + (r - proj * x)
    return x, np.clip(w, -1.0, 1.0)


def _measure_feb(kind_key: str, n: int, length: int, samples: int,
                 seed: int, target_range: float = TARGET_RANGE):
    """Run the bit-level FEB on target-swept inputs; return (ref, hw)."""
    rng = spawn_rng(seed, "feb-calibration", kind_key, n, length)
    feb = make_feb(kind_key, n, length, seed=seed + 1)
    refs = np.empty(samples)
    hw = np.empty(samples)
    base = rng.uniform(-target_range, target_range, samples)
    spread = rng.uniform(0.0, 1.0, (samples, 4))
    targets = base[:, None] - spread
    x, w = _window_inputs(targets, n, rng)
    batch = max(1, min(samples, (1 << 24) // max(4 * n * length // 8, 1)))
    for start in range(0, samples, batch):
        stop = min(start + batch, samples)
        refs[start:stop] = feb.reference(x[start:stop], w[start:stop])
        hw[start:stop] = feb.forward(x[start:stop], w[start:stop])
    return refs, hw


def _measure_fc(kind: FEBKind, n: int, length: int, samples: int,
                seed: int, target_range: float = TARGET_RANGE):
    """Measure the FC stage: inner product + activation, no pooling."""
    rng = spawn_rng(seed, "fc-calibration", kind.value, n, length)
    factory = StreamFactory(seed=seed + 2, encoding=Encoding.BIPOLAR)
    targets = rng.uniform(-target_range, target_range, (samples, 1))
    x, w = _window_inputs(targets, n, rng)
    x = x[:, 0, :]
    w = w[:, 0, :]
    refs = np.tanh((x * w).sum(axis=-1))
    xs = factory.packed(x, length)
    ws = factory.packed(w, length)
    products = xnor_(xs, ws, length)
    if kind is FEBKind.APC:
        counts = apc_count(products, length)
        k = btanh_states_apc_max(n)
        bits = activation.btanh_counts(counts, n, k)
        hw = 2.0 * bits.mean(axis=-1) - 1.0
    else:
        select = factory.select_signal(n, length)
        ips = mux_add(products, select, length)
        k = stanh_states_mux_avg(length, n)
        # Packed-domain Stanh + word popcount: bit-identical to running
        # the FSM on unpacked bits and averaging them.
        out = activation.stanh_packed(ips, length, k)
        hw = 2.0 * ops_popcount(out, length) / length - 1.0
    return refs, hw


def _fit(refs: np.ndarray, hw: np.ndarray,
         target_range: float = TARGET_RANGE) -> FEBCalibration:
    """Bin (reference, output) pairs into a monotone-tabulated curve."""
    edges = np.linspace(-target_range, target_range, N_BINS + 1)
    centers = (edges[:-1] + edges[1:]) / 2.0
    mean = np.empty(N_BINS)
    std = np.empty(N_BINS)
    which = np.clip(np.digitize(refs, edges) - 1, 0, N_BINS - 1)
    for b in range(N_BINS):
        sel = which == b
        if sel.sum() >= 2:
            mean[b] = hw[sel].mean()
            std[b] = hw[sel].std()
        else:
            mean[b] = np.nan
            std[b] = np.nan
    # Fill sparse bins by interpolation from populated neighbours.
    good = ~np.isnan(mean)
    if not good.any():
        raise RuntimeError("calibration produced no populated bins")
    mean = np.interp(centers, centers[good], mean[good])
    std = np.interp(centers, centers[good], std[good])
    return FEBCalibration(centers, mean, std)


def calibrate_feb(kind_key: str, n: int, length: int, samples: int = 240,
                  seed: int = 0, use_cache: bool = True,
                  target_range: float = TARGET_RANGE) -> FEBCalibration:
    """Measure (or load) the transfer curve of one block configuration.

    ``kind_key`` is a FEB key (``"apc-max"`` …) or ``"fc-apc"`` /
    ``"fc-mux"`` for the pooling-free fully-connected stage.
    ``target_range`` widens the swept pooled-value range (MUX stages with
    gain compensation see scaled pre-activations).
    """
    tag = (f"febcal_{kind_key}_{n}_{length}_{samples}_{seed}_"
           f"{target_range:g}")
    digest = hashlib.sha1(tag.encode()).hexdigest()[:16]
    path = cache_dir() / f"{digest}.npz"
    if use_cache and path.exists():
        return FEBCalibration.load(path)
    if kind_key.startswith("fc-"):
        kind = FEBKind.APC if kind_key == "fc-apc" else FEBKind.MUX
        refs, hw = _measure_fc(kind, n, length, samples, seed, target_range)
    else:
        refs, hw = _measure_feb(kind_key, n, length, samples, seed,
                                target_range)
    cal = _fit(refs, hw, target_range)
    if use_cache:
        cal.save(path)
    return cal


def measured_stage_sigma(kind_key: str, n: int, length: int,
                         samples: int, seed: int,
                         use_cache: bool = True) -> float:
    """Measured FEB absolute inaccuracy (as a Gaussian sigma), cached.

    Runs the bit-level block against its software reference on random
    operating-range inputs and converts the mean absolute error to a
    standard deviation (×√(π/2), exact for Gaussian residuals).
    """
    tag = f"febsigma_{kind_key}_{n}_{length}_{samples}_{seed}"
    digest = hashlib.sha1(tag.encode()).hexdigest()[:16]
    path = cache_dir() / f"{digest}.npz"
    if use_cache and path.exists():
        return float(np.load(path)["sigma"])
    if kind_key.startswith("fc-"):
        kind = FEBKind.APC if kind_key == "fc-apc" else FEBKind.MUX
        refs, hw = _measure_fc(kind, n, length, samples, seed)
    else:
        refs, hw = _measure_feb(kind_key, n, length, samples, seed)
    sigma = float(np.abs(hw - refs).mean() * np.sqrt(np.pi / 2.0))
    if use_cache:
        _atomic_savez(path, sigma=sigma)
    return sigma
