"""Pluggable backend registry for the layer-graph engine.

A backend executes a :class:`repro.engine.plan.CompiledPlan` on batches
of images.  The protocol is deliberately tiny::

    class MyBackend:
        name = "mine"
        def __init__(self, plan, seed=0, **opts): ...
        def forward(self, images) -> np.ndarray:   # (B, units) logits

``forward`` takes bipolar ``(B, 1, 28, 28)`` (or ``(B, 784)``) images and
returns per-image logits whose argmax is the class prediction — the only
contract the :class:`repro.engine.engine.Engine` relies on.  Register
implementations with :func:`register_backend`; the built-in families
(``exact``, ``surrogate``, ``float``, ``noise``) self-register when
:mod:`repro.engine` is imported.
"""

from __future__ import annotations

__all__ = ["BACKENDS", "register_backend", "get_backend", "list_backends"]

BACKENDS = {}
"""Registry: backend name → backend class."""


def register_backend(cls):
    """Register a backend class under its ``name`` attribute.

    Usable as a decorator.  Re-registering a name overwrites the previous
    entry (deliberate: callers may shadow a built-in with a tuned
    variant).
    """
    name = getattr(cls, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError(
            f"backend {cls!r} must define a string `name` attribute"
        )
    BACKENDS[name] = cls
    return cls


def get_backend(name: str):
    """Look up a backend class by name."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered: {sorted(BACKENDS)}"
        ) from None


def list_backends() -> list:
    """Sorted names of all registered backends.

    The built-in families self-register on ``import repro.engine``;
    importing this module alone may observe an empty registry.
    """
    return sorted(BACKENDS)
