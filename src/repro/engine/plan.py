"""Compiled per-layer plans: everything derivable before the first image.

``compile_plan`` turns a :class:`repro.engine.graph.LayerGraph` into an
immutable :class:`CompiledPlan` holding, per layer, every quantity that
does not depend on the input image:

* the gain-compensation cascade (the paper's ref (45) pre-scaling) and
  its per-layer deficit / applied factor;
* the activation state number ``K`` from the paper's equations;
* three stored-weight variants, one per backend family:
  ``weights`` (bias folded in, then quantized — what the exact bit-level
  backend streams), ``dense_weights``/``dense_bias`` (scaled then
  quantized separately — what the calibrated surrogate multiplies), and
  ``raw_weights``/``raw_bias`` (unscaled, quantized — what the float
  reference and the paper-noise evaluator use);
* conv-layer gather indices (im2col patch index across channels) and 2×2
  pool-window indices, shared by every image of every batch.

``CompiledPlan.with_length`` re-derives *only* the length-dependent
pieces when the stream length changes (the Section 6.3 halving loop):
state numbers are recomputed, and if none changed — always true for
all-APC configurations, whose equations never involve ``L`` — the layer
plans are reused as-is.  Raw-weight quantization is cached across
re-compiles in all cases, since the raw variant never depends on ``L``.
"""

from __future__ import annotations

import dataclasses
import functools
import threading

import numpy as np

from repro import obs
from repro.core.config import FEBKind, NetworkConfig
from repro.core.state_numbers import select_states
from repro.engine.graph import LayerGraph, build_graph
from repro.nn.conv import im2col_indices
from repro.storage.quantization import dequantize_codes, quantize_weights
from repro.utils.validation import check_positive_int

__all__ = [
    "layer_gain_compensation",
    "pool_window_indices",
    "conv_patch_index",
    "normalize_weight_bits",
    "LayerPlan",
    "CompiledPlan",
    "compile_plan",
    "pack_plan",
    "unpack_plan",
]

OUTPUT_STATES = 2
"""Degenerate state number recorded for the (activation-free) logit layer."""


def layer_gain_compensation(weights: np.ndarray, bias: np.ndarray,
                            kind: FEBKind, n: int, n_states: int,
                            incoming_deficit: float = 1.0,
                            headroom: float = 0.97):
    """Cascade weight pre-scaling for SC layers (the paper's ref (45)).

    A MUX inner product scales its output by ``1/n`` and the following
    Stanh's small-signal slope is ``K/2``, so the layer's end-to-end gain
    on its pooled pre-activation is ``K/(2n)`` — far below the unit gain
    the float network was trained with.  The compensation scales the
    *stored* weights up toward the local target ``t = 2n/K`` (MUX; ``1``
    for unit-gain APC layers).  On top of that, any gain deficit left by
    *earlier* layers (whose activations arrive compressed by
    ``1/incoming_deficit``) is absorbed by the weight part only — biases
    are not multiplied by the compressed activations, so they scale by
    the local target alone.

    All scaled values must stay inside the [-1, 1] SRAM range; the
    common back-off factor ``alpha ≤ 1`` that enforces this becomes the
    layer's own residual compression.  In the tanh-linear regime the
    layer then computes ``tanh(alpha · P)`` for true pre-activation
    ``P``, so the returned outgoing deficit is ``1/alpha`` (exact up to
    tanh saturation, where compression is milder anyway).

    Returns ``(scaled_weights, scaled_bias, outgoing_deficit,
    applied_weight_factor)``.
    """
    local_target = (2.0 * n / float(n_states) if kind is FEBKind.MUX
                    else 1.0)
    desired_w = incoming_deficit * local_target
    desired_b = local_target
    peak = max(
        float(np.max(np.abs(weights)) if weights.size else 0.0) * desired_w,
        float(np.max(np.abs(bias)) if bias.size else 0.0) * desired_b,
        1e-12,
    )
    alpha = min(1.0, headroom / peak)
    return (weights * (alpha * desired_w), bias * (alpha * desired_b),
            1.0 / alpha, alpha * desired_w)


@functools.lru_cache(maxsize=32)
def pool_window_indices(out_h: int, out_w: int) -> np.ndarray:
    """Indices of each 2×2 pooling window into the flattened conv grid.

    For a conv output grid of shape ``(2·out_h, 2·out_w)`` (row-major
    flattening), returns an ``(out_h·out_w, 4)`` index array gathering
    the four member positions of every pooling window.  Cached (and
    marked read-only) — every plan for a given geometry shares one array.
    """
    check_positive_int(out_h, "out_h")
    check_positive_int(out_w, "out_w")
    in_w = 2 * out_w
    windows = np.empty((out_h * out_w, 4), dtype=np.int64)
    k = 0
    for i in range(out_h):
        for j in range(out_w):
            base = (2 * i) * in_w + 2 * j
            windows[k] = (base, base + 1, base + in_w, base + in_w + 1)
            k += 1
    windows.setflags(write=False)
    return windows


@functools.lru_cache(maxsize=32)
def conv_patch_index(channels_in: int, in_h: int, in_w: int,
                     kernel: int) -> np.ndarray:
    """Flat gather index turning a stream bank into conv patches.

    For packed layer input of shape ``(channels_in · in_h · in_w, nbytes)``
    in channel-major row-major order, ``streams[index]`` yields the
    ``(P, channels_in · kernel²)`` patch bank (P output positions),
    channel-major along the input axis — the exact layout the weight
    matrix of :class:`repro.nn.conv.Conv2D` expects.  Cached per geometry.
    """
    rows, cols = im2col_indices(in_h, in_w, kernel)
    flat = rows * in_w + cols                                # (P, k·k)
    index = np.concatenate(
        [c * in_h * in_w + flat for c in range(channels_in)], axis=1
    )
    index.setflags(write=False)
    return index


def normalize_weight_bits(weight_bits, n_layers: int = 4):
    """Normalize the weight-storage precision spec to an ``n_layers``-tuple.

    ``None`` keeps float weights everywhere; an int applies to all
    layers; an ``(n_layers - 1)``-tuple (the paper's per-layer w1-w3 for
    LeNet-5) reuses the last entry for the output layer.  ``n_layers``
    is the model's total weight-layer count including the output layer
    (4 for the paper's LeNet-5).
    """
    if weight_bits is None:
        return (None,) * n_layers
    if isinstance(weight_bits, int):
        return (weight_bits,) * n_layers
    # idempotent: normalized tuples (possibly holding None) pass through
    bits = tuple(None if b is None else int(b) for b in weight_bits)
    if len(bits) == n_layers - 1:
        return bits + (bits[-1],)
    if len(bits) != n_layers:
        raise ValueError(
            f"weight_bits must be an int, {n_layers - 1}- or "
            f"{n_layers}-tuple for this {n_layers}-layer model")
    return bits


def _quantize(values: np.ndarray, bits) -> np.ndarray:
    if bits is None:
        return values
    return dequantize_codes(quantize_weights(values, bits), bits)


class LayerPlan:
    """Resolved per-layer execution parameters (immutable once built)."""

    #: The stored-weight variants a plan carries per layer — the
    #: quantization products :func:`pack_plan` serializes so a
    #: rehydrated plan never re-quantizes.
    ARRAY_FIELDS = ("weights", "dense_weights", "dense_bias",
                    "raw_weights", "raw_bias")

    def __init__(self, node, n_states: int, bits, scaled_w, scaled_b,
                 deficit: float, applied_factor: float, raw_cache: dict):
        self._init_structure(node, n_states, bits, deficit, applied_factor)
        #: exact-backend storage: bias folded as one extra column, then
        #: quantized — matches the pre-engine ``SCNetwork`` bit for bit.
        self.weights = _quantize(
            np.concatenate([scaled_w, scaled_b[:, None]], axis=1), bits
        )
        #: surrogate storage: scaled weight/bias quantized separately.
        self.dense_weights = _quantize(scaled_w, bits)
        self.dense_bias = _quantize(scaled_b, bits)
        #: float/noise storage: unscaled parameters, quantized; cached
        #: across recompiles (never length-dependent).
        key = (node.name, bits)
        if key not in raw_cache:
            raw_cache[key] = (_quantize(node.weight, bits),
                              _quantize(node.bias, bits))
        self.raw_weights, self.raw_bias = raw_cache[key]

    def _init_structure(self, node, n_states: int, bits, deficit: float,
                        applied_factor: float) -> None:
        """Everything derivable from the node alone (no quantization):
        shared by compilation and zero-copy rehydration."""
        self.name = node.name
        self.op = node.op
        self.kind = node.kind
        self.n_inputs = node.n_inputs
        self.units = node.units
        self.pooled = node.pooled
        self.final = node.final
        self.geometry = node.geometry
        self.n_states = n_states
        self.bits = bits
        self.deficit = deficit
        self.applied_factor = applied_factor
        self.kernel = node.kernel
        if node.op == "conv":
            channels_out, (in_h, in_w), (conv_h, conv_w) = node.geometry
            kernel = node.kernel
            channels_in = (node.n_inputs - 1) // (kernel * kernel)
            self.patch_index = conv_patch_index(channels_in, in_h, in_w,
                                                kernel)
            self.pool_windows = (
                pool_window_indices(conv_h // 2, conv_w // 2)
                if node.pooled else None)
        else:
            self.patch_index = None
            self.pool_windows = None

    @classmethod
    def _rehydrate(cls, node, n_states: int, bits, deficit: float,
                   applied_factor: float, arrays: dict) -> "LayerPlan":
        """Rebuild a layer plan around externally-stored weight arrays
        (zero-copy views into a shared buffer) without re-quantizing."""
        layer = cls.__new__(cls)
        layer._init_structure(node, n_states, bits, deficit,
                              applied_factor)
        for field in cls.ARRAY_FIELDS:
            setattr(layer, field, arrays[field])
        return layer

    # legacy alias kept for call sites that predate the engine
    @property
    def has_pool(self) -> bool:
        return self.pooled

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"LayerPlan({self.name}, {self.kind.value}, "
                f"n={self.n_inputs}, K={self.n_states})")


class CompiledPlan:
    """An immutable compiled network plan: config + per-layer plans.

    Backends may stash derived artifacts (calibration curves, measured
    sigmas) in the plan's keyed cache via :meth:`cached` so repeated
    engine constructions over one plan do not recompute them.
    """

    def __init__(self, graph: LayerGraph, layers, weight_bits,
                 raw_cache: dict):
        self.graph = graph
        self.config = graph.config
        self.layers = tuple(layers)
        self.weight_bits = weight_bits
        self._raw_cache = raw_cache
        self._derived = {}
        # Serving workers share one plan across threads; the lock makes
        # `cached` a safe memoization point (an RLock so a factory may
        # itself consult the cache without deadlocking).
        self._derived_lock = threading.RLock()

    @property
    def length(self) -> int:
        return self.config.length

    @property
    def input_shape(self) -> tuple:
        """Input geometry ``(channels, height, width)`` the plan consumes."""
        return self.graph.input_shape

    @property
    def input_pixels(self) -> int:
        """Flat input size (channels × height × width)."""
        return self.graph.input_pixels

    @property
    def gain_deficits(self):
        """Per-layer outgoing gain deficits, in layer order."""
        return [layer.deficit for layer in self.layers]

    def cached(self, key, factory):
        """Memoize a backend-derived artifact on the plan (thread-safe).

        Concurrent callers racing on one key see exactly one ``factory``
        invocation; the loser blocks until the artifact exists.  Holding
        the lock across the factory call is deliberate — the guarded
        artifacts (calibration curves, measured sigmas) are expensive,
        and racing duplicates would waste far more than the serialization
        costs.
        """
        with self._derived_lock:
            if key not in self._derived:
                self._derived[key] = factory()
            return self._derived[key]

    def with_length(self, length: int, name: str | None = None
                    ) -> "CompiledPlan":
        """Re-target the plan at a new stream length.

        Only length-dependent pieces are re-derived: state numbers are
        recomputed, and when every layer's state number is unchanged
        (all-APC configurations) the existing layer plans are reused
        outright.  Raw-weight quantization is shared through the plan's
        cache either way.
        """
        if length == self.config.length and name in (None, self.config.name):
            return self
        config = dataclasses.replace(
            self.config, length=length,
            name=self.config.name if name is None else name,
        )
        graph = dataclasses.replace(self.graph, config=config)
        with obs.span("engine.with_length", length=length):
            states = _state_numbers(graph)
            if states == tuple(l.n_states for l in self.layers):
                # Layer plans are reusable, but backend-derived artifacts
                # (calibration curves, noise sigmas) are measured at this
                # plan's stream length — the re-targeted plan must start
                # a fresh derived store so no length-specific artifact
                # leaks.
                return CompiledPlan(graph, self.layers, self.weight_bits,
                                    self._raw_cache)
            return _compile(graph, self.weight_bits, self._raw_cache)


def _state_numbers(graph: LayerGraph):
    """Per-layer activation state numbers for a graph's design point."""
    config = graph.config
    states = []
    for node in graph.nodes:
        if node.final:
            states.append(OUTPUT_STATES)
        else:
            states.append(select_states(node.kind, node.n_inputs,
                                        config.length, config.pooling,
                                        pooled=node.pooled))
    return tuple(states)


def _compile(graph: LayerGraph, weight_bits, raw_cache: dict
             ) -> CompiledPlan:
    bits = normalize_weight_bits(weight_bits, n_layers=len(graph.nodes))
    states = _state_numbers(graph)
    layers = []
    deficit = 1.0
    for node, n_states, b in zip(graph.nodes, states, bits):
        w, bias, deficit, factor = layer_gain_compensation(
            node.weight, node.bias, node.kind, node.n_inputs, n_states,
            incoming_deficit=deficit,
        )
        layers.append(LayerPlan(node, n_states, b, w, bias,
                                deficit, factor, raw_cache))
    return CompiledPlan(graph, layers, bits, raw_cache)


def compile_plan(graph_or_model, config: NetworkConfig | None = None,
                 weight_bits=None) -> CompiledPlan:
    """Compile a layer graph (or model + config) into an executable plan.

    Accepts either a pre-built :class:`LayerGraph` or a trained model
    plus a :class:`NetworkConfig`.  The compilation is deterministic:
    it uses no randomness, so two compilations of the same inputs produce
    identical plans (asserted by ``tests/test_engine/test_plan.py``).
    """
    if isinstance(graph_or_model, LayerGraph):
        graph = graph_or_model
    else:
        if config is None:
            raise ValueError("compile_plan(model, ...) needs a NetworkConfig")
        graph = build_graph(graph_or_model, config)
    with obs.span("engine.compile", length=graph.config.length):
        return _compile(graph, weight_bits, raw_cache={})


# ---------------------------------------------------------------------------
# shared-buffer plan serialization (the serving tier's plan arena)
# ---------------------------------------------------------------------------

PACK_MAGIC = b"RPLN\x01\x00\x00\x00"
"""8-byte header tag (+ format version) of a packed plan buffer."""

_PACK_ALIGN = 64  # array alignment inside the payload (cache-line)


def _aligned(offset: int) -> int:
    return (offset + _PACK_ALIGN - 1) // _PACK_ALIGN * _PACK_ALIGN


def pack_plan(plan: CompiledPlan) -> bytes:
    """Serialize a compiled plan's quantization products into one buffer.

    The buffer holds a JSON manifest (per-layer scalars and array
    layout) followed by every stored-weight variant of every layer,
    64-byte aligned.  Pair with :func:`unpack_plan`, which rebuilds the
    plan as **zero-copy read-only views** into the same buffer — the
    mechanism the multi-process serving tier uses to keep one copy of
    each plan in ``multiprocessing.shared_memory`` no matter how many
    worker processes serve it (see :mod:`repro.serve.procpool`).

    Only quantization products travel: graph structure is re-derived by
    the unpacker from the model it already holds, and the gather indices
    (conv patches, pool windows) come from their per-geometry caches.
    """
    import json

    layers = []
    chunks = []
    offset = 0
    for layer in plan.layers:
        arrays = {}
        for field in LayerPlan.ARRAY_FIELDS:
            arr = np.ascontiguousarray(getattr(layer, field))
            offset = _aligned(offset)
            arrays[field] = {"dtype": arr.dtype.str,
                             "shape": list(arr.shape),
                             "offset": offset}
            chunks.append((offset, arr))
            offset += arr.nbytes
        layers.append({
            "name": layer.name,
            "n_states": int(layer.n_states),
            "bits": layer.bits,
            "deficit": float(layer.deficit),
            "applied_factor": float(layer.applied_factor),
            "arrays": arrays,
        })
    manifest = json.dumps({
        "length": int(plan.config.length),
        "pooling": plan.config.pooling.value,
        "weight_bits": list(plan.weight_bits),
        "layers": layers,
    }).encode("utf8")
    payload_start = _aligned(len(PACK_MAGIC) + 8 + len(manifest))
    total = payload_start + offset
    buf = bytearray(total)
    buf[:len(PACK_MAGIC)] = PACK_MAGIC
    buf[len(PACK_MAGIC):len(PACK_MAGIC) + 8] = len(manifest).to_bytes(
        8, "little")
    buf[len(PACK_MAGIC) + 8:len(PACK_MAGIC) + 8 + len(manifest)] = manifest
    for rel, arr in chunks:
        start = payload_start + rel
        buf[start:start + arr.nbytes] = arr.tobytes()
    return bytes(buf)


def unpack_plan(graph: LayerGraph, buf) -> CompiledPlan:
    """Rehydrate a :func:`pack_plan` buffer into a live plan, zero-copy.

    ``graph`` is the layer graph for the *same* model and design point
    the plan was compiled from (cheap to rebuild — lowering touches no
    weights); every stored-weight array of the returned plan is a
    read-only view into ``buf``, so plans served from a shared-memory
    segment cost no per-process copies.  The caller must keep the
    backing buffer alive for the plan's lifetime (attaching it to the
    plan object, as the serve arena does, is enough).

    Raises ``ValueError`` when the buffer does not match the graph —
    wrong magic, layer mismatch, or shape mismatch.
    """
    import json

    view = memoryview(buf)
    if bytes(view[:len(PACK_MAGIC)]) != PACK_MAGIC:
        raise ValueError("not a packed plan buffer (bad magic)")
    manifest_len = int.from_bytes(
        view[len(PACK_MAGIC):len(PACK_MAGIC) + 8], "little")
    manifest = json.loads(
        bytes(view[len(PACK_MAGIC) + 8:len(PACK_MAGIC) + 8 + manifest_len])
        .decode("utf8"))
    payload_start = _aligned(len(PACK_MAGIC) + 8 + manifest_len)
    if manifest["length"] != graph.config.length:
        raise ValueError(
            f"packed plan targets L={manifest['length']} but the graph "
            f"is configured for L={graph.config.length}")
    if len(manifest["layers"]) != len(graph.nodes):
        raise ValueError(
            f"packed plan has {len(manifest['layers'])} layers but the "
            f"graph lowers to {len(graph.nodes)}")
    layers = []
    raw_cache = {}
    for node, meta in zip(graph.nodes, manifest["layers"]):
        if meta["name"] != node.name:
            raise ValueError(
                f"packed layer {meta['name']!r} does not match graph "
                f"node {node.name!r}")
        bits = meta["bits"]
        arrays = {}
        for field, spec in meta["arrays"].items():
            dtype = np.dtype(spec["dtype"])
            shape = tuple(spec["shape"])
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            arr = np.frombuffer(
                view, dtype=dtype, count=count,
                offset=payload_start + spec["offset"]).reshape(shape)
            arr.flags.writeable = False
            arrays[field] = arr
        expect = (node.units, node.n_inputs)
        if arrays["weights"].shape != expect:
            raise ValueError(
                f"{node.name}: packed weights shape "
                f"{arrays['weights'].shape} does not match the graph's "
                f"{expect}")
        layers.append(LayerPlan._rehydrate(
            node, meta["n_states"], bits, meta["deficit"],
            meta["applied_factor"], arrays))
        # Seed the raw-quantization cache so with_length re-derivations
        # share the packed raw variants instead of re-quantizing.
        raw_cache[(node.name, bits)] = (arrays["raw_weights"],
                                        arrays["raw_bias"])
    weight_bits = tuple(manifest["weight_bits"])
    return CompiledPlan(graph, layers, weight_bits, raw_cache)
