"""Float-domain backends: calibrated surrogate, paper-noise, reference.

Three backends execute the compiled plan without bit-level simulation:

``surrogate``
    The calibrated transfer-curve evaluator (previously
    ``repro.core.fast_model.FastSCModel``): each feature extraction
    stage's ``tanh(pool(·))`` is replaced by the transfer curve measured
    from the genuine bit-level blocks, plus (optionally) the measured
    stochastic noise.  Carries both the systematic and random components
    of SC inaccuracy.

``noise``
    The paper's own network-evaluation methodology (previously
    ``repro.core.fast_model.PaperNoiseModel``): every stage outputs its
    ideal ``tanh(pool(·))`` plus zero-mean Gaussian noise whose magnitude
    is the block's measured bit-level absolute inaccuracy.  Together with
    ``surrogate`` it brackets the design space.

``float``
    The software baseline: the plain float forward pass of the trained
    network (optionally with quantized weight storage) — the reference
    Table 6's degradation threshold is measured against.

All three share the plan's per-layer weights and the conv geometry; the
expensive measured artifacts (calibration curves, sigmas) are memoized on
the plan via :meth:`repro.engine.plan.CompiledPlan.cached`, so re-using
one plan across engines — as the Section 6.3 optimizer does along its
halving loop — never re-measures or re-quantizes anything.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FEBKind, PoolKind
from repro.engine.backends import register_backend
from repro.engine.calibration import (
    TARGET_RANGE,
    calibrate_feb,
    measured_stage_sigma,
)
from repro.nn.conv import im2col
from repro.utils.seeding import spawn_rng

__all__ = ["SurrogateBackend", "NoiseBackend", "FloatBackend"]


def _feb_key(kind: FEBKind, pooled: bool, pooling: PoolKind) -> str:
    """Calibration key for a layer: conv stages by (kind, pool), FC flat."""
    ip = "mux" if kind is FEBKind.MUX else "apc"
    if not pooled:
        return f"fc-{ip}"
    pool = "avg" if pooling is PoolKind.AVG else "max"
    return f"{ip}-{pool}"


class _FloatGraphExecutor:
    """Shared conv/pool plumbing for the float-domain backends.

    The executor is topology-driven: each backend's ``forward`` walks
    ``plan.layers`` in order, so any graph the IR can describe (arbitrary
    conv stacks, pooled or not, any dense depth) executes without
    LeNet-specific wiring.
    """

    def __init__(self, plan):
        self.plan = plan

    def _stage_weights(self, lp):  # pragma: no cover - interface
        raise NotImplementedError

    def _as_nchw(self, images: np.ndarray) -> np.ndarray:
        """Reshape a request batch to the plan's NCHW input geometry."""
        c, h, w = self.plan.input_shape
        return np.asarray(images, dtype=np.float64).reshape(-1, c, h, w)

    @staticmethod
    def _as_flat(x: np.ndarray) -> np.ndarray:
        """Flatten spatial activations once the dense stages begin."""
        return x.reshape(x.shape[0], -1) if x.ndim > 2 else x

    def _conv_pre(self, x: np.ndarray, lp) -> np.ndarray:
        """conv (→ pool) on NCHW float input; returns pre-activations."""
        w, b = self._stage_weights(lp)
        n_img = x.shape[0]
        cols = im2col(x, lp.kernel)               # (N, P, fan_in)
        pre = cols @ w.T + b                      # (N, P, C)
        channels, _, (conv_h, conv_w) = lp.geometry
        pre = pre.transpose(0, 2, 1).reshape(n_img, channels, conv_h, conv_w)
        if not lp.pooled:
            return pre
        view = pre.reshape(n_img, channels, conv_h // 2, 2, conv_w // 2, 2)
        if self.plan.config.pooling is PoolKind.AVG:
            return view.mean(axis=(3, 5))
        return view.max(axis=(3, 5))


@register_backend
class SurrogateBackend(_FloatGraphExecutor):
    """Calibrated transfer-curve evaluator of a compiled plan.

    Parameters
    ----------
    plan:
        The compiled plan (uses the separately-quantized scaled weights).
    seed:
        Noise/calibration seed.
    samples:
        Bit-level samples per calibration curve.
    noisy:
        Sample the measured noise (True) or use the deterministic
        transfer curve only (False).
    """

    name = "surrogate"

    def __init__(self, plan, seed: int = 0, samples: int = 240,
                 noisy: bool = True):
        super().__init__(plan)
        self.noisy = noisy
        self._rng = spawn_rng(seed, "fast-model")
        self.calibrations = plan.cached(
            ("surrogate-cal", plan.length, samples, seed),
            lambda: self._measure_curves(samples, seed),
        )
        # Output stage noise: the decoded APC inner product over n inputs
        # has standard deviation sqrt(n/L) in sum units; the logits are
        # reported scaled by 1/(n+1), so scale the noise the same way.
        n_out = plan.layers[-1].n_inputs
        self.output_sigma = np.sqrt(n_out / plan.length) / n_out

    def _measure_curves(self, samples: int, seed: int):
        # The calibration curve is measured on the raw block; a stage
        # whose weights were scaled up sees pooled values magnified by
        # the applied factor, so widen its swept range accordingly.
        return [
            calibrate_feb(
                _feb_key(lp.kind, lp.pooled, self.plan.config.pooling),
                lp.n_inputs, self.plan.length, samples, seed,
                target_range=TARGET_RANGE * max(lp.applied_factor, 1.0))
            for lp in self.plan.layers[:-1]
        ]

    def _stage_weights(self, lp):
        return lp.dense_weights, lp.dense_bias

    def forward(self, images: np.ndarray) -> np.ndarray:
        """Surrogate logits for a batch of images."""
        x = self._as_nchw(images)
        rng = self._rng if self.noisy else None
        for i, lp in enumerate(self.plan.layers):
            if lp.op == "conv":
                x = self.calibrations[i].apply(self._conv_pre(x, lp), rng)
                continue
            x = self._as_flat(x)
            w, b = self._stage_weights(lp)
            pre = x @ w.T + b
            if lp.final:
                logits = pre / lp.n_inputs
                if self.noisy:
                    logits = logits + self._rng.normal(
                        0.0, self.output_sigma, logits.shape
                    )
                return logits
            x = self.calibrations[i].apply(pre, rng)


@register_backend
class NoiseBackend(_FloatGraphExecutor):
    """The paper's methodology: measured block inaccuracy as noise.

    Section 6's layer-wise analysis (Figure 16) treats each layer's
    hardware inaccuracy as a perturbation of the layer's *correct*
    output; this backend evaluates the float network with zero-mean
    Gaussian noise of the measured magnitude injected after every
    feature extraction stage.  Uses the *unscaled* (raw, optionally
    quantized) weights — the noise curve is measured relative to the
    ideal block, not the gain-compensated mapping.
    """

    name = "noise"

    def __init__(self, plan, seed: int = 0, samples: int = 96):
        super().__init__(plan)
        self._rng = spawn_rng(seed, "paper-noise-model")
        self.stage_sigmas = plan.cached(
            ("noise-sigmas", plan.length, samples, seed),
            lambda: [
                measured_stage_sigma(
                    _feb_key(lp.kind, lp.pooled, self.plan.config.pooling),
                    lp.n_inputs, self.plan.length, samples, seed)
                for lp in plan.layers[:-1]
            ],
        )
        n_out = plan.layers[-1].n_inputs
        self.output_sigma = np.sqrt(n_out / plan.length) / n_out

    def _stage_weights(self, lp):
        return lp.raw_weights, lp.raw_bias

    def forward(self, images: np.ndarray) -> np.ndarray:
        """Noise-injected logits for a batch of images."""
        x = self._as_nchw(images)
        for i, lp in enumerate(self.plan.layers):
            if lp.op == "conv":
                pre = self._conv_pre(x, lp)
            else:
                x = self._as_flat(x)
                w, b = self._stage_weights(lp)
                pre = x @ w.T + b
                if lp.final:
                    logits = pre / lp.n_inputs
                    return logits + self._rng.normal(0.0, self.output_sigma,
                                                     logits.shape)
            out = np.tanh(pre)
            noise = self._rng.normal(0.0, self.stage_sigmas[i], out.shape)
            x = np.clip(out + noise, -1.0, 1.0)


@register_backend
class FloatBackend(_FloatGraphExecutor):
    """The float software baseline, executed over the same layer graph.

    Deterministic; matches :meth:`repro.nn.module.Sequential.predict` of
    the trained model (exactly in argmax, to float tolerance in logits)
    when ``weight_bits`` is ``None``.  Logits are returned unscaled.
    """

    name = "float"

    def __init__(self, plan, seed: int = 0):
        super().__init__(plan)

    def _stage_weights(self, lp):
        return lp.raw_weights, lp.raw_bias

    def forward(self, images: np.ndarray) -> np.ndarray:
        x = self._as_nchw(images)
        for lp in self.plan.layers:
            if lp.op == "conv":
                x = np.tanh(self._conv_pre(x, lp))
                continue
            x = self._as_flat(x)
            w, b = self._stage_weights(lp)
            if lp.final:
                return x @ w.T + b
            x = np.tanh(x @ w.T + b)

    #: stateless and deterministic, so batching can never perturb a
    #: response — the serving layer may run it lock-free and coalesced
    #: exactly like the exact backend's per-request-forked path.
    forward_independent = forward
