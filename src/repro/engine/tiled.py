"""Tiled inference: slide a model-sized window over a composite scene.

A zoo classifier consumes one 28×28 tile; a composite scene
(:mod:`repro.data.scenes`) is larger.  :class:`TiledInference` bridges
the two: it extracts every stride-aligned window from the scene canvas,
pushes *all* windows through one engine call, and reduces the per-window
logits back to per-cell predictions.

Two invariants the serving layer builds on:

* **One plan, one engine.**  A scene run compiles nothing — the engine
  (typically pool-sourced, see :mod:`repro.serve.pool`) is handed in and
  reused for every window; ``plan.with_length`` re-targeting happens
  upstream.
* **Bit-identity per window.**  With a backend that exposes
  ``forward_independent`` (the exact backend), row *i* of the window
  logits is bit-identical to a dedicated single-window run through a
  freshly constructed same-seed engine — batching windows is purely a
  throughput optimization, never a numerics change.

Reduction is kind-aware: ``grid`` scenes map each labelled cell to its
maximum-overlap window (exactly the cell's own window when the stride
divides the tile size); single-digit scenes (``translated`` /
``cluttered``) pick the window with the largest top-1 margin
(``top1 − top2`` logit gap) — the window that saw the digit most
centred — with ties broken toward the first window in scan order.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.data.scenes import Scene
from repro.data.synthetic_mnist import to_bipolar

__all__ = [
    "window_origins",
    "window_boxes",
    "extract_windows",
    "reduce_scene",
    "SceneResult",
    "TiledInference",
]


def window_origins(span: int, window: int, stride: int) -> tuple:
    """Stride-spaced window offsets covering ``[0, span)``, edge-aligned.

    The last origin is clamped to ``span - window`` so the far edge is
    always covered even when the stride does not divide evenly.
    """
    span, window, stride = int(span), int(window), int(stride)
    if window < 1 or stride < 1:
        raise ValueError(
            f"window and stride must be >= 1, got {window}, {stride}")
    if window > span:
        raise ValueError(
            f"window of {window} exceeds the {span}-pixel span")
    origins = list(range(0, span - window + 1, stride))
    if origins[-1] != span - window:
        origins.append(span - window)
    return tuple(origins)


def window_boxes(canvas_hw: tuple, window_hw: tuple, stride: int) -> tuple:
    """All ``(top, left, h, w)`` boxes of the sliding window, row-major."""
    H, W = (int(v) for v in canvas_hw)
    h, w = (int(v) for v in window_hw)
    return tuple((top, left, h, w)
                 for top in window_origins(H, h, stride)
                 for left in window_origins(W, w, stride))


def extract_windows(canvas: np.ndarray, window_hw: tuple, stride: int):
    """Return ``(windows (N, h, w), boxes)`` for a 2-D canvas."""
    canvas = np.asarray(canvas, dtype=np.float64)
    if canvas.ndim != 2:
        raise ValueError(
            f"canvas must be 2-D, got shape {canvas.shape}")
    boxes = window_boxes(canvas.shape, window_hw, stride)
    windows = np.stack([canvas[t:t + h, l:l + w] for t, l, h, w in boxes])
    return windows, boxes


def _overlap_area(a: tuple, b: tuple) -> int:
    at, al, ah, aw = a
    bt, bl, bh, bw = b
    dh = min(at + ah, bt + bh) - max(at, bt)
    dw = min(al + aw, bl + bw) - max(al, bl)
    return max(dh, 0) * max(dw, 0)


def reduce_scene(kind: str, cell_boxes, boxes, logits):
    """Reduce per-window logits to per-cell predictions.

    Returns ``(cell_preds (C,) int64, cell_windows (C,) tuple)`` where
    ``cell_windows[i]`` is the index of the window whose logits decided
    cell ``i``.  Pure function of its arguments — the serving layer runs
    it on logits gathered through the micro-batcher, the local tiler on
    logits from one engine call, and both must agree.
    """
    logits = np.asarray(logits, dtype=np.float64)
    if logits.ndim != 2 or logits.shape[0] != len(boxes):
        raise ValueError(
            f"expected ({len(boxes)}, classes) logits, got shape "
            f"{logits.shape}")
    if kind == "grid":
        # each cell takes the window covering it best (scan-order tie-break)
        idx = [int(np.argmax([_overlap_area(cb, wb) for wb in boxes]))
               for cb in cell_boxes]
    else:
        # single digit somewhere on the canvas: trust the most confident
        # window — the largest top1−top2 logit gap
        part = np.partition(logits, logits.shape[1] - 2, axis=1)
        margins = part[:, -1] - part[:, -2]
        idx = [int(np.argmax(margins))] * len(cell_boxes)
    preds = np.argmax(logits[idx], axis=1).astype(np.int64)
    return preds, tuple(idx)


@dataclasses.dataclass(frozen=True, eq=False)
class SceneResult:
    """One tiled-inference pass over a scene.

    ``window_logits[i]`` are the raw logits of ``boxes[i]``;
    ``cell_preds[j]`` is the predicted label of ``scene.cells[j]``,
    decided by window ``cell_windows[j]``.
    """

    kind: str
    boxes: tuple
    window_logits: np.ndarray
    cell_preds: np.ndarray
    cell_windows: tuple

    @property
    def window_preds(self) -> np.ndarray:
        return np.argmax(self.window_logits, axis=1).astype(np.int64)

    def accuracy(self, scene: Scene) -> float:
        """Fraction of scene cells predicted correctly."""
        return float((self.cell_preds == scene.labels).mean())


class TiledInference:
    """Slide one engine across scenes, batching all windows per scene.

    Parameters
    ----------
    engine:
        A ready :class:`repro.engine.engine.Engine` whose plan consumes
        single-channel tiles (scene canvases are single-channel).  The
        engine is reused across every window and every scene — compile
        cost is paid once, upstream.
    stride:
        Window step in pixels.  Defaults to the window height —
        non-overlapping tiling, which sees each ``grid`` cell exactly
        once.  Single-digit scenes benefit from a denser stride
        (e.g. ``7``) so some window lands close to the true box.
    """

    def __init__(self, engine, stride: int | None = None):
        channels, h, w = engine.plan.input_shape
        if channels != 1:
            raise ValueError(
                f"tiled inference needs a single-channel model, got "
                f"{channels}-channel input geometry")
        self.engine = engine
        self.window_hw = (h, w)
        self.stride = h if stride is None else int(stride)
        if self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")

    # ------------------------------------------------------------------
    def window_logits(self, canvas: np.ndarray):
        """``(boxes, logits)`` for every window of a ``[0, 1]`` canvas.

        One backend call for the whole window batch.  Uses
        ``forward_independent`` when the backend offers it, so each
        row is bit-identical to a dedicated single-window run; stateful
        backends without it are serialized under the engine lock.
        """
        windows, boxes = extract_windows(canvas, self.window_hw,
                                         self.stride)
        flat = to_bipolar(windows.reshape(len(boxes), -1))
        independent = getattr(self.engine.backend, "forward_independent",
                              None)
        if independent is not None:
            logits = independent(flat)
        else:
            with self.engine.serial_lock:
                logits = self.engine.backend.forward(flat)
        return boxes, logits

    def infer(self, scene: Scene) -> SceneResult:
        """Classify every labelled cell of a scene."""
        boxes, logits = self.window_logits(scene.canvas)
        cell_preds, cell_windows = reduce_scene(
            scene.kind, [c.box for c in scene.cells], boxes, logits)
        return SceneResult(kind=scene.kind, boxes=boxes,
                           window_logits=logits, cell_preds=cell_preds,
                           cell_windows=cell_windows)
