"""Unified layer-graph IR + pluggable inference engine.

The engine subsystem replaces the three historically-disjoint evaluator
code paths (exact bit-level simulation, calibrated surrogate, float
baseline) with one pipeline:

1. :func:`repro.engine.graph.build_graph` lowers a trained LeNet-5 and a
   :class:`repro.core.config.NetworkConfig` into a backend-agnostic
   layer graph;
2. :func:`repro.engine.plan.compile_plan` produces an immutable per-layer
   plan (gain-compensation cascade, state numbers, all stored-weight
   variants, gather/window indices) computed once;
3. a pluggable backend (``exact`` / ``surrogate`` / ``float`` /
   ``noise``, see :mod:`repro.engine.backends`) executes the plan on
   batches of images through :class:`repro.engine.engine.Engine`.

See DESIGN.md ("Layer-graph engine") for the architecture rationale and
the batching strategy.
"""

from repro.engine.backends import (
    BACKENDS,
    get_backend,
    list_backends,
    register_backend,
)
from repro.engine.calibration import (
    FEBCalibration,
    calibrate_feb,
    measured_stage_sigma,
)
from repro.engine.engine import Engine
from repro.engine.exact import ExactBackend
from repro.engine.graph import LayerGraph, LayerNode, build_graph
from repro.engine.plan import (
    CompiledPlan,
    LayerPlan,
    compile_plan,
    layer_gain_compensation,
    normalize_weight_bits,
    pool_window_indices,
)
from repro.engine.surrogate import FloatBackend, NoiseBackend, SurrogateBackend
from repro.engine.tiled import (
    SceneResult,
    TiledInference,
    extract_windows,
    reduce_scene,
    window_boxes,
    window_origins,
)

__all__ = [
    "Engine",
    "LayerGraph",
    "LayerNode",
    "build_graph",
    "CompiledPlan",
    "LayerPlan",
    "compile_plan",
    "layer_gain_compensation",
    "normalize_weight_bits",
    "pool_window_indices",
    "BACKENDS",
    "get_backend",
    "list_backends",
    "register_backend",
    "ExactBackend",
    "SurrogateBackend",
    "NoiseBackend",
    "FloatBackend",
    "FEBCalibration",
    "calibrate_feb",
    "measured_stage_sigma",
    "SceneResult",
    "TiledInference",
    "extract_windows",
    "reduce_scene",
    "window_boxes",
    "window_origins",
]
