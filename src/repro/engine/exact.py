"""Exact bit-level backend: batched SC simulation of the compiled plan.

Bit-for-bit the same computation as the pre-engine ``SCNetwork`` (the
frozen copy in :mod:`repro.engine.reference` is the regression oracle),
re-organized around a batch axis so one call simulates many images:

* all images of a batch are encoded with **one** SNG call when the SNG
  is the ideal PCG64 comparator — numpy fills the ``(B, 784, L)``
  uniform block in C order, which draws exactly the same PRNG sequence
  as ``B`` sequential per-image calls, so batching never perturbs the
  streams (pooled-LFSR SNGs advance per call, so they encode one image
  per call to keep the same invariant);
* MUX select signals are pre-drawn per image in the legacy
  image-major/layer-major order, then consumed by per-image MUX gathers
  inside otherwise batched layers;
* APC column counts run in the *transposed* domain (see
  :meth:`ExactBackend._apc_counts`): the input bank is re-packed once so
  each cycle's ``n`` bits form one short row, a product count is
  ``n - popcount(xT ^ wT)``, and row popcounts run word-level — ~8× less
  traffic than unpacking every product bit, with the transposition
  amortized over all output channels (the legacy code paid one
  unpack-and-reduce kernel invocation per output channel per image,
  580 invocations per LeNet-5 image);
* conv patch gathers use the plan's cached flat index (one fancy index
  instead of a per-channel gather loop), and pooling / activation
  operate on whole ``(C, B, W, ·)`` blocks.

Large batches are internally split so the transient count tensors stay
within ``batch_budget`` bytes; chunk boundaries never change results
(every stream's computation is independent).
"""

from __future__ import annotations

import numpy as np

import repro.native as native
from repro import obs
from repro.obs import kernels as _prof
from repro.blocks.pooling import (
    DEFAULT_SEGMENT,
    apc_average_pool,
    apc_max_pool,
    average_pool,
    hardware_max_pool,
)
from repro.core.config import FEBKind, PoolKind
from repro.engine.backends import register_backend
from repro.engine.engine import as_image_batch
from repro.sc import activation, ops
from repro.sc.encoding import Encoding
from repro.sc.rng import IdealSNG, StreamFactory

__all__ = ["ExactBackend"]


@register_backend
class ExactBackend:
    """Bit-exact stochastic simulation of a compiled plan.

    Parameters
    ----------
    plan:
        The :class:`repro.engine.plan.CompiledPlan` to execute.
    seed:
        Stream-generation seed (weight streams are drawn at construction,
        in layer order, exactly like the legacy simulator).
    segment:
        Hardware max-pooling segment length ``c``.
    chunk_budget:
        Upper bound (bytes) on any transient product/unpacked tensor in
        the APC counting path.
    sng:
        ``"ideal"`` (PCG64 comparator) or ``"lfsr"`` (pooled LFSR
        sequences served from the cached orbit tables of
        :mod:`repro.sc.lfsr`).
    batch_budget:
        Upper bound (bytes) on the per-batch APC count tensors; larger
        batches are split internally.
    """

    name = "exact"

    def __init__(self, plan, seed: int = 0, segment: int = DEFAULT_SEGMENT,
                 chunk_budget: int = 1 << 26, sng: str = "ideal",
                 batch_budget: int = 1 << 29):
        self.plan = plan
        self.length = plan.length
        self.segment = segment
        self.chunk_budget = int(chunk_budget)
        self.batch_budget = int(batch_budget)
        self.factory = StreamFactory(seed=seed, encoding=Encoding.BIPOLAR,
                                     sng=sng)
        self.weight_streams = [
            self.factory.packed(np.clip(lp.weights, -1.0, 1.0), self.length)
            for lp in plan.layers
        ]
        # Transposed weight banks for the counting layers (APC inner
        # products and the decoded output layer): per cycle, each unit's
        # n weight bits packed as one short row — built once, shared by
        # every batch.  MUX layers never count, so they skip it.
        self._weight_t = []
        self._weight_last = []
        for lp, w in zip(plan.layers, self.weight_streams):
            if lp.kind is FEBKind.APC or lp.final:
                self._weight_t.append(ops.transpose_pack(w, self.length))
                self._weight_last.append(
                    ops.unpack_bits(w[:, -1, :], self.length))
            else:
                self._weight_t.append(None)
                self._weight_last.append(None)
        # Post-construction stream state: weight streams are drawn, no
        # image has been encoded.  ``forward_independent`` forks this
        # snapshot once per request so every image of a coalesced batch
        # replays the exact draws a freshly-constructed backend (same
        # seed) would make for its first image.
        self._fresh_factory = self.factory.fork()

    # ------------------------------------------------------------------
    # batching
    # ------------------------------------------------------------------
    def _max_batch(self) -> int:
        """How many images fit the count-tensor budget at once.

        Conv stages dominate whenever they exist (their count tensors
        carry a per-position axis); the dense estimate is what keeps
        conv-free stacks (the zoo's ``mlp``) memory-bounded too instead
        of running any request in one unbounded chunk.
        """
        per_image = 0
        for lp in self.plan.layers:
            width = (lp.n_inputs + 7) // 8
            width += (-width) % 4
            if lp.op == "conv":
                _, _, (conv_h, conv_w) = lp.geometry
                positions = conv_h * conv_w
                # counts + windowed copy (int16 each) + transposed bank
                per_image = max(per_image,
                                lp.units * positions * self.length * 2 * 2
                                + positions * self.length * width)
            else:
                # counts (int16) + transposed input bank, one row/image
                per_image = max(per_image,
                                lp.units * self.length * 2
                                + self.length * width)
        return max(1, self.batch_budget // max(per_image, 1))

    def _validated(self, images: np.ndarray) -> np.ndarray:
        return as_image_batch(images, bipolar=True,
                              shape=self.plan.input_shape)

    def forward(self, images: np.ndarray) -> np.ndarray:
        """Simulate a batch; returns ``(B, 10)`` decoded logits.

        Logits estimate ``Σxw + b`` of the output layer scaled by ``1/n``
        — argmax-compatible with the float model.
        """
        flat = self._validated(images)
        with obs.span("engine.forward", backend=self.name,
                      batch=int(flat.shape[0]), length=self.length):
            out = np.empty((flat.shape[0], self.plan.layers[-1].units))
            step = self._max_batch()
            for start in range(0, flat.shape[0], step):
                stop = min(start + step, flat.shape[0])
                out[start:stop] = self._forward_batch(flat[start:stop])
        return out

    def forward_independent(self, images: np.ndarray) -> np.ndarray:
        """Batched simulation with *per-request* stream state.

        Each image's streams (SNG uniforms and MUX selects) are drawn
        from a fork of the post-construction snapshot, so row ``i`` of
        the result is bit-identical to what a freshly-constructed backend
        with the same seed would return for ``images[i]`` alone — while
        the expensive layer execution still runs batched.  This is the
        contract the micro-batching service relies on: coalescing
        concurrent single-image requests into one call must not perturb
        any response.

        Unlike :meth:`forward`, this method never mutates the backend's
        own stream factory, so concurrent calls from multiple serving
        workers are safe on a shared backend.
        """
        flat = self._validated(images)
        with obs.span("engine.forward", backend=self.name,
                      batch=int(flat.shape[0]), length=self.length,
                      independent=True):
            out = np.empty((flat.shape[0], self.plan.layers[-1].units))
            step = self._max_batch()
            for start in range(0, flat.shape[0], step):
                stop = min(start + step, flat.shape[0])
                with obs.span("engine.encode", images=stop - start):
                    selects, banks = [], []
                    for img in flat[start:stop]:
                        factory = self._fresh_factory.fork()
                        selects.extend(self._draw_selects(1,
                                                          factory=factory))
                        banks.append(factory.packed(img, self.length))
                out[start:stop] = self._run_layers(np.stack(banks),
                                                   selects)
        return out

    # ------------------------------------------------------------------
    # stream-level building blocks
    # ------------------------------------------------------------------
    def _draw_selects(self, batch: int, factory: StreamFactory = None):
        """Pre-draw MUX select signals in the legacy per-image order.

        The legacy simulator drew selects lazily while walking one image
        through the layers; replaying that order (image-major, then
        layer-major: inner-product select before the pooling select)
        keeps batched execution bit-identical to sequential runs.
        """
        factory = self.factory if factory is None else factory
        avg = self.plan.config.pooling is PoolKind.AVG
        draws = []
        for _ in range(batch):
            per = {}
            for i, lp in enumerate(self.plan.layers):
                if lp.kind is not FEBKind.MUX or lp.final:
                    continue
                per["ip", i] = factory.select_signal(lp.n_inputs,
                                                     self.length)
                if lp.op == "conv" and lp.pooled and avg:
                    per["pool", i] = factory.select_signal(
                        4, self.length)
            draws.append(per)
        return draws

    def _ones(self, *shape) -> np.ndarray:
        """Broadcast view of the packed constant-1 (bias) stream."""
        mask = ops.pad_mask(self.length)
        return np.broadcast_to(mask, shape + (mask.shape[0],))

    #: target working-set bytes per counting tile — sized so the XOR +
    #: row-popcount hot loop stays inside the last-level cache (a naive
    #: batched loop over budget-sized slabs streams through DRAM and runs
    #: *slower* than the legacy per-image code; measured while building
    #: this backend).
    TILE_BYTES = 8 << 20

    def _apc_counts(self, i: int, x: np.ndarray) -> np.ndarray:
        """APC counts for every (channel, row) of layer ``i``: ``(C, R, L)``.

        ``x`` is the packed input bank ``(R, n, nbytes)``.  Counting runs
        in the *transposed* domain: the bank is re-packed so each cycle's
        ``n`` input bits form one short row (:func:`repro.sc.ops.
        transpose_pack` — one unpack/pack round trip amortized over all
        ``C`` output channels), and a cycle's product count becomes

            ``count = n - popcount(xT ^ wT)``

        since XNOR flips exactly the bits XOR sets and both banks'
        padding is zero.  Row popcounts run word-level
        (:func:`repro.sc.ops.popcount_sum`) — roughly 8× less traffic
        than unpacking every product bit and reducing over ``n``.

        The APC's LSB approximation (see :func:`repro.sc.adders.
        apc_count`: the output LSB is the exact LSB XOR-ed with the last
        input's product bit) is applied per column from the two banks'
        last-input bit planes — bit-identical to the legacy per-channel
        loop.  Work is tiled over (channels × rows) to ``TILE_BYTES``;
        tiling never changes results.
        """
        lp = self.plan.layers[i]
        wT = self._weight_t[i]
        n = lp.n_inputs
        L = self.length
        if native.enabled():
            # Native tier: transposition, XOR, row popcount and the LSB
            # patch fused into one cache-tiled pass over the bank.
            t0 = _prof.tick()
            counts = native.apc_inner_counts(x, wT, n, L, approximate=True)
            _prof.tock(t0, "apc_counts", "native")
            return counts
        t0 = _prof.tick()
        w_last = self._weight_last[i]
        R = x.shape[0]
        xT = ops.transpose_pack(x, L,
                                chunk_budget=self.chunk_budget)  # (R, L, W)
        x_last = ops.unpack_bits(x[:, -1, :], L)        # (R, L)
        C = wT.shape[0]
        counts = np.empty((C, R, L), dtype=np.int16)
        one = np.int16(1)
        tile = max(1, (min(self.TILE_BYTES, self.chunk_budget)
                       // max(L * xT.shape[-1], 1)))
        cstep = 1 if R >= tile else max(1, min(C, tile // R))
        rstep = min(R, tile)
        for c0 in range(0, C, cstep):
            c1 = min(c0 + cstep, C)
            for r0 in range(0, R, rstep):
                r1 = min(r0 + rstep, R)
                ham = ops.popcount_sum(
                    xT[None, r0:r1] ^ wT[c0:c1, None], dtype=np.int16)
                exact = np.int16(n) - ham               # (c, r, L)
                prod_last = (np.uint8(1) ^ x_last[None, r0:r1]
                             ^ w_last[c0:c1, None])
                counts[c0:c1, r0:r1] = ((exact & ~one)
                                        | ((exact ^ prod_last) & one))
        # The whole transposed-counting pass (its transpose_pack /
        # popcount_sum callees time themselves too, so subtracting them
        # from this line isolates the XOR + LSB-patch glue).
        _prof.tock(t0, "apc_counts", ops._NUMPY_TIER)
        return counts

    def _mux_ip_streams(self, x: np.ndarray, w_streams: np.ndarray,
                        select: np.ndarray) -> np.ndarray:
        """MUX inner-product streams for one image: ``(C, P, nbytes)``.

        Uses ``MUX(xnor(x, w)) = xnor(MUX(x), MUX(w))`` with the shared
        select signal, entirely in the packed domain.
        """
        x_sel = ops.mux_select(x, select, self.length)          # (P, nb)
        w_sel = ops.mux_select(w_streams, select, self.length)  # (C, nb)
        return ops.xnor_(x_sel[None, :, :], w_sel[:, None, :], self.length)

    # ------------------------------------------------------------------
    # layer execution
    # ------------------------------------------------------------------
    def _forward_batch(self, imgs: np.ndarray) -> np.ndarray:
        with obs.span("engine.encode", images=int(imgs.shape[0])):
            selects = self._draw_selects(imgs.shape[0])
            if isinstance(self.factory.sng, IdealSNG):
                # One SNG call for the whole batch: numpy fills the
                # uniform block in C order, the same PRNG sequence as
                # per-image calls.
                x = self.factory.packed(imgs, self.length)  # (B, 784, nb)
            else:
                # Pooled-LFSR SNGs advance per *call* (slot rotation and
                # window offsets key on it), so batched encoding must
                # keep the legacy one-call-per-image sequence to stay
                # batch-size-invariant.
                x = np.stack([self.factory.packed(img, self.length)
                              for img in imgs])
        return self._run_layers(x, selects)

    def _run_layers(self, x: np.ndarray, selects) -> np.ndarray:
        """Execute the layer pipeline on an encoded ``(B, pixels, nb)`` bank."""
        for i, lp in enumerate(self.plan.layers):
            with obs.span("engine.layer", index=i, op=lp.op,
                          kind=lp.kind.value, units=lp.units):
                if lp.op == "conv":
                    x = self._conv_layer(i, lp, x, selects)
                else:
                    x = self._fc_layer(i, lp, x, selects)
        return x

    def _conv_layer(self, i, lp, x, selects):
        """One conv(+pool)+activation stage on packed ``(B, S, nb)`` input.

        Returns the pooled/activated output streams ``(B, C·W, nb)`` in
        channel-major row-major order per image (``W`` is the pooled
        window count, or the full conv-position count for an unpooled
        stage).
        """
        B = x.shape[0]
        L = self.length
        patch = x[:, lp.patch_index]                    # (B, P, n-1, nb)
        P = patch.shape[1]
        patch = np.concatenate(
            [patch, self._ones(B, P, 1)], axis=2)       # (B, P, n, nb)
        windows = lp.pool_windows
        avg = self.plan.config.pooling is PoolKind.AVG
        w = self.weight_streams[i]

        if lp.kind is FEBKind.APC:
            counts = self._apc_counts(
                i, patch.reshape(B * P, lp.n_inputs, patch.shape[-1]))
            counts = counts.reshape(lp.units, B, P, L)
            if lp.pooled:
                grouped = counts[:, :, windows, :]      # (C, B, W, 4, L)
                del counts
                if avg:
                    pooled = apc_average_pool(grouped)
                else:
                    pooled = apc_max_pool(grouped, self.segment)
                del grouped
            else:
                pooled = counts                         # (C, B, P, L)
            out_bits = activation.btanh_counts(pooled, lp.n_inputs,
                                               lp.n_states)
            out = ops.pack_bits(out_bits)               # (C, B, W, nb)
        else:
            ips = np.empty((lp.units, B, P, patch.shape[-1]), dtype=np.uint8)
            for b in range(B):
                ips[:, b] = self._mux_ip_streams(patch[b], w,
                                                 selects[b]["ip", i])
            if lp.pooled:
                grouped = ips[:, :, windows, :]         # (C, B, W, 4, nb)
                del ips
                if avg:
                    pooled = np.empty(grouped.shape[:3] + grouped.shape[4:],
                                      dtype=np.uint8)
                    for b in range(B):
                        pooled[:, b] = average_pool(grouped[:, b],
                                                    selects[b]["pool", i], L)
                    threshold = None
                else:
                    pooled = hardware_max_pool(grouped, L, self.segment)
                    threshold = max(int(round(lp.n_states / 5.0)), 1)
                del grouped
            else:
                # No pooling block: the Stanh consumes the inner-product
                # stream directly (the FC-stage wiring, kept per position).
                pooled = ips
                threshold = None
            out = activation.stanh_packed(pooled, L, lp.n_states,
                                          threshold=threshold)
        return np.ascontiguousarray(out.transpose(1, 0, 2, 3)).reshape(
            B, -1, out.shape[-1])

    def _fc_layer(self, i, lp, x, selects):
        """Fully-connected stage on ``(B, S, nb)``; final returns logits."""
        B = x.shape[0]
        L = self.length
        xb = np.concatenate([x, self._ones(B, 1)], axis=1)  # (B, n, nb)
        w = self.weight_streams[i]
        n = lp.n_inputs
        if lp.kind is FEBKind.APC or lp.final:
            counts = self._apc_counts(i, xb)                # (C, B, L)
            if lp.final:
                total = counts.sum(axis=-1, dtype=np.int64)  # (C, B)
                return ((2.0 * total - n * L) / L).T
            bits = activation.btanh_counts(counts, n, lp.n_states)
            return np.ascontiguousarray(
                ops.pack_bits(bits).transpose(1, 0, 2))
        ips = np.empty((B, lp.units, xb.shape[-1]), dtype=np.uint8)
        for b in range(B):
            ips[b] = self._mux_ip_streams(xb[b][None, :, :], w,
                                          selects[b]["ip", i])[:, 0, :]
        return activation.stanh_packed(ips, L, lp.n_states)
