"""Prometheus text exposition: render a registry snapshot, parse it back.

``render`` emits the classic text format (``# HELP`` / ``# TYPE``
headers, one sample per line, histograms expanded into cumulative
``_bucket{le="..."}`` series plus ``_sum`` and ``_count``).  ``parse``
is the inverse — not a full scraper, just enough structure recovery
for the round-trip conformance test and the ``python -m repro stats``
CLI to re-tabulate a scrape.
"""

from __future__ import annotations

import math

__all__ = ["render", "parse", "merge"]

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}
_UNESCAPES = {"\\\\": "\\", '\\"': '"', "\\n": "\n"}


def _escape(value: str) -> str:
    return "".join(_ESCAPES.get(c, c) for c in str(value))


def _unescape(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        pair = value[i:i + 2]
        if pair in _UNESCAPES:
            out.append(_UNESCAPES[pair])
            i += 2
        else:
            out.append(value[i])
            i += 1
    return "".join(out)


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labelstr(labelnames, labelvalues, extra=()) -> str:
    parts = [f'{n}="{_escape(v)}"'
             for n, v in list(zip(labelnames, labelvalues)) + list(extra)]
    return "{" + ",".join(parts) + "}" if parts else ""


def render(source) -> str:
    """Prometheus text (version 0.0.4) for a registry or snapshot dict.

    Accepts either a :class:`~repro.obs.registry.MetricsRegistry` or a
    ``registry.snapshot()`` dict, so exporters can scrape live or from
    a frozen copy.
    """
    snapshot = source.snapshot() if hasattr(source, "snapshot") else source
    lines = []
    for name in sorted(snapshot):
        meta = snapshot[name]
        kind, labelnames = meta["kind"], tuple(meta["labelnames"])
        if meta["help"]:
            lines.append(f"# HELP {name} {_escape(meta['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for labelvalues in sorted(meta["samples"]):
            sample = meta["samples"][labelvalues]
            if kind == "histogram":
                for bound, cum in sample["buckets"]:
                    le = "+Inf" if bound == math.inf else f"{bound:g}"
                    labels = _labelstr(labelnames, labelvalues,
                                       extra=[("le", le)])
                    lines.append(f"{name}_bucket{labels} {cum}")
                labels = _labelstr(labelnames, labelvalues)
                lines.append(f"{name}_sum{labels} {_fmt(sample['sum'])}")
                lines.append(f"{name}_count{labels} {sample['count']}")
            else:
                labels = _labelstr(labelnames, labelvalues)
                lines.append(f"{name}{labels} {_fmt(sample)}")
    return "\n".join(lines) + "\n" if lines else ""


def _parse_labels(body: str) -> dict:
    labels, i = {}, 0
    while i < len(body):
        eq = body.index("=", i)
        key = body[i:eq].strip()
        if body[eq + 1] != '"':
            raise ValueError(f"unquoted label value near {body[eq:]!r}")
        j = eq + 2
        raw = []
        while body[j] != '"':
            if body[j] == "\\":
                raw.append(body[j:j + 2])
                j += 2
            else:
                raw.append(body[j])
                j += 1
        labels[key] = _unescape("".join(raw))
        i = j + 1
        if i < len(body) and body[i] == ",":
            i += 1
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse(text: str) -> dict:
    """Structure a text exposition back into
    ``{name: {"kind", "help", "samples": {label-frozenset: value}}}``.

    Histogram series come back under their base name with the
    synthetic ``le``/``_sum``/``_count`` structure reassembled into
    ``{"buckets": [(le, cum), ...], "sum": s, "count": n}`` keyed by
    the non-``le`` labels.
    """
    metrics = {}
    types = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            metrics.setdefault(name, {"kind": "untyped", "help": "",
                                      "samples": {}})
            metrics[name]["help"] = _unescape(help_text)
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            types[name] = kind
            metrics.setdefault(name, {"kind": kind, "help": "",
                                      "samples": {}})
            metrics[name]["kind"] = kind
            continue
        if line.startswith("#"):
            continue
        # sample line: name{labels} value  (a label value may contain
        # spaces, so split on the brace first when one starts the name)
        brace = line.find("{")
        if brace != -1 and (" " not in line or brace < line.index(" ")):
            name = line[:brace]
            close = line.rindex("}")
            labels = _parse_labels(line[brace + 1:close])
            value_text = line[close + 1:].strip().split()[0]
        else:
            name, _, rest = line.partition(" ")
            labels = {}
            value_text = rest.strip().split()[0]
        value = _parse_value(value_text)

        base = name
        part = None
        for suffix in ("_bucket", "_sum", "_count"):
            candidate = name[:-len(suffix)] if name.endswith(suffix) else None
            if candidate and types.get(candidate) == "histogram":
                base, part = candidate, suffix
                break
        entry = metrics.setdefault(
            base, {"kind": types.get(base, "untyped"), "help": "",
                   "samples": {}})
        if part is None:
            entry["samples"][frozenset(labels.items())] = value
            continue
        le = labels.pop("le", None)
        key = frozenset(labels.items())
        hist = entry["samples"].setdefault(
            key, {"buckets": [], "sum": 0.0, "count": 0})
        if part == "_bucket":
            hist["buckets"].append((_parse_value(le), value))
        elif part == "_sum":
            hist["sum"] = value
        else:
            hist["count"] = int(value)
    for entry in metrics.values():
        if entry["kind"] == "histogram":
            for hist in entry["samples"].values():
                hist["buckets"].sort(key=lambda pair: pair[0])
                hist["count"] = int(hist["count"])
    return metrics


def _merge_hist(into: dict, hist: dict) -> None:
    cum = dict(into["buckets"])
    for bound, value in hist["buckets"]:
        cum[bound] = cum.get(bound, 0) + value
    into["buckets"] = sorted(cum.items())
    into["sum"] += hist["sum"]
    into["count"] += hist["count"]


def merge(texts) -> str:
    """Merge several text expositions into one, summing samples.

    The multi-process serving tier scrapes each worker's process-wide
    registry, then merges the texts with the frontend's own — one
    ``/metrics`` page for the whole server.  Counters and histogram
    buckets are additive by construction; gauges are summed too, which
    is the meaningful aggregate for every gauge the serving layer emits
    (queue depths, resident engines/plans).  Point-in-time gauges that
    must *not* be summed (``repro_serve_draining``) are the frontend's
    to publish after merging.

    Returns Prometheus text; ``help``/``kind`` metadata comes from the
    first exposition that defines each metric.
    """
    merged = {}
    for text in texts:
        for name, entry in parse(text).items():
            into = merged.setdefault(
                name, {"kind": entry["kind"], "help": entry["help"],
                       "samples": {}})
            if not into["help"]:
                into["help"] = entry["help"]
            if into["kind"] == "untyped" and entry["kind"] != "untyped":
                into["kind"] = entry["kind"]
            for labels, sample in entry["samples"].items():
                if isinstance(sample, dict):
                    hist = into["samples"].setdefault(
                        labels, {"buckets": [], "sum": 0.0, "count": 0})
                    _merge_hist(hist, sample)
                else:
                    into["samples"][labels] = \
                        into["samples"].get(labels, 0.0) + sample
    # Re-shape into render()'s snapshot format: labelnames + tuple keys.
    snapshot = {}
    for name, entry in merged.items():
        labelnames = sorted({k for labels in entry["samples"]
                             for k, _ in labels})
        samples = {}
        for labels, sample in entry["samples"].items():
            values = dict(labels)
            samples[tuple(values.get(k, "") for k in labelnames)] = sample
        snapshot[name] = {"kind": entry["kind"], "help": entry["help"],
                          "labelnames": tuple(labelnames),
                          "samples": samples}
    return render(snapshot)
