"""Request tracing: hierarchical spans exported as JSONL.

A *span* is one timed stage of work (``serve.queue``, ``serve.compute``,
``engine.layer``...) with a unique id, an optional parent id, wall-clock
start, duration and free-form tags.  Spans from one request share the
ancestry chain, so a test (or any trace viewer that reads JSONL) can
reconstruct the critical path: HTTP parse → queue wait → coalesce →
encode → per-layer kernel → respond.

Recording is armed by ``REPRO_TRACE=/path/to/trace.jsonl`` (or
:func:`configure`); disarmed, :func:`span` costs one global load and a
branch and yields ``None``.  The contract mirrors the metrics registry:
tracing reads clocks and writes JSON — it never touches an RNG or
changes control flow, so output bits are identical armed or not.

Cross-thread propagation is explicit: the serve path hands a ticket the
caller's current span token (:func:`current`), and the batcher worker
passes it back as ``parent=`` when it opens the compute span on its own
thread.  Within a thread, nesting is automatic via a thread-local stack.

Fork safety: span ids embed the pid and the output file is reopened
(append mode) after a fork, so DSE fork-server workers interleave
complete lines into the same trace file instead of double-flushing an
inherited buffer.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager

__all__ = [
    "TraceRecorder",
    "span",
    "record_span",
    "current",
    "configure",
    "recorder",
    "armed",
    "maybe_enable_from_env",
]

_lock = threading.Lock()
_RECORDER = None  # type: TraceRecorder | None
_local = threading.local()


class TraceRecorder:
    """Appends span records to a JSONL file; safe across threads/forks."""

    def __init__(self, path: str):
        self.path = str(path)
        self._lock = threading.Lock()
        self._file = None
        self._pid = None
        self._ids = itertools.count(1)

    def _handle(self):
        # Reopen after fork: an inherited handle shares the parent's
        # buffer and offset, so each pid gets its own append-mode file.
        pid = os.getpid()
        if self._file is None or self._pid != pid:
            self._file = open(self.path, "a", encoding="utf-8")
            self._pid = pid
        return self._file

    def next_id(self) -> str:
        return f"{os.getpid():x}.{next(self._ids):x}"

    def emit(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        with self._lock:
            handle = self._handle()
            handle.write(line + "\n")
            handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._file is not None and self._pid == os.getpid():
                self._file.close()
            self._file = None
            self._pid = None


def configure(path) -> None:
    """Arm tracing to ``path`` (JSONL, append); ``None`` disarms."""
    global _RECORDER
    with _lock:
        old, _RECORDER = _RECORDER, None
        if old is not None:
            old.close()
        if path:
            _RECORDER = TraceRecorder(path)


def recorder():
    """The active :class:`TraceRecorder`, or ``None`` when disarmed."""
    return _RECORDER


def armed() -> bool:
    return _RECORDER is not None


def maybe_enable_from_env(var: str = "REPRO_TRACE") -> bool:
    """Arm tracing if ``$REPRO_TRACE`` names a path. Returns armed()."""
    path = os.environ.get(var, "").strip()
    if path:
        configure(path)
    return armed()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current():
    """The current thread's innermost open span id (or ``None``).

    This is the token to hand across a thread boundary: the receiving
    thread passes it back as ``parent=`` to stitch the trace together.
    """
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


# Offset between the monotonic and wall clocks, taken once: spans time
# with time.monotonic (the clock the serving layer already stamps
# ticket arrivals/deadlines with, immune to wall-clock steps) but
# export wall-clock timestamps so traces from different processes
# line up.
_WALL_OFFSET = time.time() - time.monotonic()


def _emit(rec, name, span_id, parent, start_mono, end_mono, tags):
    record = {
        "name": name,
        "span": span_id,
        "parent": parent,
        "ts": round(start_mono + _WALL_OFFSET, 6),
        "dur_ms": round((end_mono - start_mono) * 1e3, 6),
        "pid": os.getpid(),
        "thread": threading.current_thread().name,
    }
    if tags:
        record["tags"] = {k: v for k, v in tags.items() if v is not None}
    rec.emit(record)


@contextmanager
def span(name: str, parent=None, **tags):
    """Open a span around a block; yields the span id (None disarmed).

    Parentage defaults to the thread's innermost open span; pass
    ``parent=token`` (from :func:`current` on another thread) to stitch
    across threads.  Exceptions propagate untouched — the span is still
    recorded, tagged ``error`` with the exception class name.
    """
    rec = _RECORDER
    if rec is None:
        yield None
        return
    stack = _stack()
    if parent is None and stack:
        parent = stack[-1]
    span_id = rec.next_id()
    stack.append(span_id)
    start = time.monotonic()
    try:
        yield span_id
    except BaseException as exc:
        tags = dict(tags)
        tags["error"] = type(exc).__name__
        raise
    finally:
        end = time.monotonic()
        # The stack is strictly LIFO per thread, but guard against a
        # generator-close unwinding out of order.
        if stack and stack[-1] == span_id:
            stack.pop()
        elif span_id in stack:
            stack.remove(span_id)
        _emit(rec, name, span_id, parent, start, end, tags)


def record_span(name: str, start_mono: float, end_mono: float,
                parent=None, **tags):
    """Record a span retrospectively from two time.monotonic readings.

    Used where the interval is only known after the fact — e.g. the
    batcher worker records each ticket's queue wait as
    ``record_span("serve.queue", ticket.arrival, take_time,
    parent=ticket.trace)``.  Returns the span id (None when disarmed).
    """
    rec = _RECORDER
    if rec is None:
        return None
    span_id = rec.next_id()
    _emit(rec, name, span_id, parent, start_mono, end_mono, tags)
    return span_id
