"""Kernel-tier profiling hooks: wall time per kernel per dispatch tier.

The word engine dispatches each kernel (popcount, transpose_pack,
popcount_sum, mux_select, stanh, apc_counts) to one of three tiers:

* ``native``     — the compiled C library (``repro.native``),
* ``numpy-simd`` — NumPy >= 2.0 ``bitwise_count`` vector path,
* ``numpy-lut``  — the 256-entry lookup-table fallback.

Profiling attributes wall time and call counts to ``(kernel, tier)``
pairs in the current metrics registry, so ``/metrics`` and
``python -m repro list`` can show where inference time actually goes —
the data you need before trusting a tier-dispatch heuristic change.

Armed by ``REPRO_PROFILE=1`` (or :func:`arm`); **disarmed by default**
because these hooks sit on hot per-call paths: a disarmed
:func:`tick` is one global load + branch returning ``None``, and
:func:`tock` returns immediately on a ``None`` start.  Like the rest of
``repro.obs``, profiling only reads clocks — arming it cannot change a
single output bit.
"""

from __future__ import annotations

import os
import time

from .registry import get_registry

__all__ = [
    "arm",
    "armed",
    "tick",
    "tock",
    "summary",
    "maybe_enable_from_env",
]

_ARMED = False

_SECONDS_HELP = "Wall time spent inside each kernel, by dispatch tier."
_CALLS_HELP = "Kernel invocations, by dispatch tier."


def arm(on: bool = True) -> None:
    """Turn kernel profiling on/off process-wide."""
    global _ARMED
    _ARMED = bool(on)


def armed() -> bool:
    return _ARMED


def maybe_enable_from_env(var: str = "REPRO_PROFILE") -> bool:
    """Arm profiling when ``$REPRO_PROFILE`` is truthy. Returns armed()."""
    value = os.environ.get(var, "").strip().lower()
    if value not in ("", "0", "false", "no", "off"):
        arm(True)
    return _ARMED


def tick():
    """Start a kernel timing; ``None`` when profiling is disarmed.

    Call sites pair it with :func:`tock`::

        t0 = kernels.tick()
        result = ...  # the kernel
        kernels.tock(t0, "popcount", tier)
    """
    if not _ARMED:
        return None
    return time.perf_counter()


def tock(t0, kernel: str, tier: str) -> None:
    """Close a timing opened by :func:`tick` (no-op on ``None``)."""
    if t0 is None:
        return
    elapsed = time.perf_counter() - t0
    reg = get_registry()
    reg.counter("repro_kernel_seconds_total", _SECONDS_HELP,
                labelnames=("kernel", "tier")).labels(
                    kernel=kernel, tier=tier).inc(elapsed)
    reg.counter("repro_kernel_calls_total", _CALLS_HELP,
                labelnames=("kernel", "tier")).labels(
                    kernel=kernel, tier=tier).inc()


def summary() -> list:
    """Per-(kernel, tier) totals from the current registry, sorted by
    descending wall time: ``[{kernel, tier, seconds, calls}, ...]``."""
    reg = get_registry()
    seconds = reg.counter("repro_kernel_seconds_total", _SECONDS_HELP,
                          labelnames=("kernel", "tier")).samples()
    calls = reg.counter("repro_kernel_calls_total", _CALLS_HELP,
                        labelnames=("kernel", "tier")).samples()
    rows = []
    for (kernel, tier), secs in seconds.items():
        rows.append({
            "kernel": kernel,
            "tier": tier,
            "seconds": secs,
            "calls": int(calls.get((kernel, tier), 0)),
        })
    rows.sort(key=lambda r: -r["seconds"])
    return rows
