"""repro.obs — unified telemetry: metrics, tracing, kernel profiling.

Three independent facilities with one shared contract — instrumentation
is *pure observation* (clocks and counters only, never an RNG, never a
behavioral branch), so armed or disarmed the simulator's output bits
are identical (asserted by ``tests/test_conformance``):

* **metrics** (:mod:`.registry`, :mod:`.exposition`) — process-wide
  counters / gauges / log-bucket histograms, scraped at ``GET /metrics``
  and ``python -m repro stats``;
* **tracing** (:mod:`.trace`) — hierarchical spans over the request
  lifecycle and DSE evaluations, JSONL via ``REPRO_TRACE=path``;
* **kernel profiling** (:mod:`.kernels`) — wall time per kernel per
  dispatch tier, ``REPRO_PROFILE=1``.

Event-time call sites use the module-level conveniences below
(``obs.counter(...).inc()``), which resolve the *current* registry per
event — so :func:`scoped_registry` can isolate a test without patching
any instrumented module.

This package sits at the bottom of the import graph: it must not import
from ``repro.sc``, ``repro.engine``, ``repro.serve``, ``repro.dse``,
``repro.faults`` or ``repro.native`` (they all import *it*).
"""

from __future__ import annotations

from contextlib import contextmanager

from . import kernels, trace
from .exposition import merge, parse, render
from .registry import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    armed,
    get_registry,
    log_buckets,
    set_armed,
    set_registry,
)
from .trace import current, record_span, span

__all__ = [
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "log_buckets",
    "get_registry",
    "set_registry",
    "set_armed",
    "armed",
    "scoped_registry",
    "counter",
    "gauge",
    "histogram",
    "render",
    "parse",
    "merge",
    "span",
    "record_span",
    "current",
    "trace",
    "kernels",
    "maybe_enable_from_env",
]


def counter(name: str, help: str = "", **labels):
    """Event-time counter child in the *current* registry.

    Label names are derived from the keyword arguments (sorted), so a
    given metric name must always be called with the same label keys.
    """
    family = get_registry().counter(name, help,
                                    labelnames=tuple(sorted(labels)))
    return family.labels(**labels) if labels else family


def gauge(name: str, help: str = "", **labels):
    """Event-time gauge child in the *current* registry."""
    family = get_registry().gauge(name, help,
                                  labelnames=tuple(sorted(labels)))
    return family.labels(**labels) if labels else family


def histogram(name: str, help: str = "", buckets=None, **labels):
    """Event-time histogram child in the *current* registry."""
    family = get_registry().histogram(name, help,
                                      labelnames=tuple(sorted(labels)),
                                      buckets=buckets)
    return family.labels(**labels) if labels else family


@contextmanager
def scoped_registry(registry=None):
    """Swap in an isolated registry for the block (test isolation).

    Yields the scoped registry; the previous one is restored on exit
    even on error.  Note the scope is process-global, not thread-local —
    concurrent writers inside the block land in the scoped registry,
    which is exactly what the serve-path tests need.
    """
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def maybe_enable_from_env() -> dict:
    """Arm tracing/profiling from ``REPRO_TRACE`` / ``REPRO_PROFILE``.

    Called once at CLI entry (like ``faults.maybe_install_from_env``).
    Returns ``{"trace": bool, "profile": bool}`` for status display.
    """
    return {
        "trace": trace.maybe_enable_from_env(),
        "profile": kernels.maybe_enable_from_env(),
    }
