"""Thread-safe metrics registry: counters, gauges, log-bucket histograms.

The registry is the process-wide aggregation point every instrumented
subsystem writes to (serve, engine kernels, DSE, fault injection) and
every exporter reads from (``GET /metrics``, ``python -m repro stats``,
chaos tests).  Design constraints, in order:

* **pure observation** — nothing here touches a random-number
  generator, so arming or disarming metrics can never perturb the
  simulator's bit-identity contract (conformance-tested);
* **near-zero cost when disarmed** — every mutation checks one module
  global first and returns; a disarmed ``inc()`` is a function call, a
  load and a branch;
* **consistent scrapes under concurrent writers** — each metric child
  owns a lock, so a histogram snapshot is always internally coherent
  (``+Inf`` cumulative count == ``count``, bucket counts monotone) even
  while worker threads observe into it.

Metric *families* follow the Prometheus model: a family has a name, a
type, a help string and a fixed tuple of label names; ``labels(**kv)``
returns (creating on first use) the child holding the actual value for
one label combination.  A family declared with no label names acts as
its own single child, so ``registry.counter("x").inc()`` just works.

Histogram buckets are **fixed and log-spaced** (:func:`log_buckets`):
bucket layout never adapts to data, so two scrapes are always
comparable and exposition round-trips exactly.

The module-level *current registry* (:func:`get_registry` /
:func:`set_registry`) is what instrumentation sites write to at event
time — looked up per event, never cached, so tests can swap in an
isolated registry (:func:`repro.obs.scoped_registry`) without touching
the instrumented code.
"""

from __future__ import annotations

import bisect
import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "log_buckets",
    "get_registry",
    "set_registry",
    "set_armed",
    "armed",
]

#: Module-wide arming flag: every metric mutation checks this first.
#: Disarmed, the whole subsystem degrades to one load + branch per
#: event (the overhead budget DESIGN.md's Observability section pins).
_ARMED = True


def set_armed(on: bool) -> None:
    """Globally arm/disarm metric mutation (reads always work)."""
    global _ARMED
    _ARMED = bool(on)


def armed() -> bool:
    """Whether metric mutation is currently armed."""
    return _ARMED


def log_buckets(lo: float, hi: float, per_decade: int = 3) -> tuple:
    """Fixed log-spaced histogram bucket bounds covering ``[lo, hi]``.

    ``per_decade`` bounds per power of ten, rounded to three significant
    figures so the exposition text is tidy and round-trips exactly.
    The last bound is >= ``hi``; an implicit ``+Inf`` bucket always
    exists on top.
    """
    if not (0.0 < lo < hi):
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    n = int(math.ceil(per_decade * math.log10(hi / lo) - 1e-9))
    bounds = []
    for i in range(n + 1):
        b = float(f"{lo * 10.0 ** (i / per_decade):.3g}")
        if not bounds or b > bounds[-1]:
            bounds.append(b)
    return tuple(bounds)


#: Default latency buckets: 100 µs to ~60 s, three per decade — wide
#: enough for a batched exact inference at L=1024 and fine enough to
#: separate a queue-bound p95 from a compute-bound one.
DEFAULT_TIME_BUCKETS = log_buckets(1e-4, 60.0, per_decade=3)


class Counter:
    """Monotonically non-decreasing value (floats allowed)."""

    kind = "counter"
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not _ARMED:
            return
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self):
        return self.value


class Gauge:
    """Freely settable value (queue depths, in-flight counts)."""

    kind = "gauge"
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        if not _ARMED:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _ARMED:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram with cumulative (Prometheus-style) counts.

    ``observe`` is one bisect + two adds under the child lock; the
    snapshot returns cumulative per-bucket counts (including the
    implicit ``+Inf``), the running sum and the total count — always
    mutually coherent because both mutation and snapshot hold the lock.
    """

    kind = "histogram"
    __slots__ = ("_lock", "bounds", "_counts", "_sum", "_count")

    def __init__(self, buckets=DEFAULT_TIME_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be a non-empty increasing "
                             f"sequence, got {buckets!r}")
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not _ARMED:
            return
        value = float(value)
        i = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[i] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> dict:
        """``{"buckets": [(le, cumulative), ..., (inf, total)],
        "sum": s, "count": n}`` — internally coherent by construction."""
        with self._lock:
            counts = list(self._counts)
            total_sum = self._sum
            total = self._count
        cumulative, acc = [], 0
        for bound, c in zip(self.bounds + (math.inf,), counts):
            acc += c
            cumulative.append((bound, acc))
        return {"buckets": cumulative, "sum": total_sum, "count": total}


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric: a type, label names, and per-label children."""

    def __init__(self, name: str, kind: str, help: str = "",
                 labelnames=(), buckets=None):
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        if not name or not all(c.isalnum() or c == "_" for c in name):
            raise ValueError(
                f"metric name must be [A-Za-z0-9_]+, got {name!r}")
        self.name = name
        self.kind = kind
        self.help = str(help)
        self.labelnames = tuple(str(n) for n in labelnames)
        self._buckets = buckets
        self._lock = threading.Lock()
        self._children = {}

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self._buckets if self._buckets is not None
                             else DEFAULT_TIME_BUCKETS)
        return _KINDS[self.kind]()

    def labels(self, **labelvalues):
        """The child for one label-value combination (created on miss)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{sorted(self.labelnames)}, got {sorted(labelvalues)}")
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    # -- unlabeled convenience: a family with no label names is its own
    # -- single child, so call sites stay one-liners.
    def _solo(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} is labeled "
                f"({sorted(self.labelnames)}); use .labels(...)")
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self):
        return self._solo().value

    def samples(self) -> dict:
        """``{labelvalues tuple: child snapshot}`` for every child."""
        with self._lock:
            children = dict(self._children)
        return {key: child.snapshot() for key, child in children.items()}


class MetricsRegistry:
    """Get-or-create store of :class:`MetricFamily` by name.

    Re-registering an existing name with a matching (kind, labelnames)
    returns the existing family — instrumentation sites never have to
    coordinate construction.  A mismatch raises, catching name
    collisions between subsystems early.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families = {}

    def _family(self, name: str, kind: str, help: str,
                labelnames, buckets=None) -> MetricFamily:
        labelnames = tuple(str(n) for n in labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}{family.labelnames}, requested "
                        f"{kind}{labelnames}")
                return family
            family = MetricFamily(name, kind, help=help,
                                  labelnames=labelnames, buckets=buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labelnames=()) -> MetricFamily:
        return self._family(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames=()) -> MetricFamily:
        return self._family(name, "gauge", help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames=(),
                  buckets=None) -> MetricFamily:
        return self._family(name, "histogram", help, labelnames,
                            buckets=buckets)

    def families(self) -> list:
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def snapshot(self) -> dict:
        """Point-in-time copy: ``{name: {kind, help, labelnames,
        samples}}`` with every sample internally coherent."""
        return {
            family.name: {
                "kind": family.kind,
                "help": family.help,
                "labelnames": family.labelnames,
                "samples": family.samples(),
            }
            for family in self.families()
        }

    def reset(self) -> None:
        """Drop every family (tests; never called in production)."""
        with self._lock:
            self._families.clear()


# ----------------------------------------------------------------------
# the process-wide current registry
# ----------------------------------------------------------------------
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The registry instrumentation currently writes to."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the current registry; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
