"""Monte-Carlo accuracy measurement of function blocks (Tables 1-5, Fig 14).

Every harness draws random inputs/weights, runs the bit-level block and
reports the paper's metric for that experiment.  All harnesses take an
explicit ``seed`` and a ``trials`` count so benchmarks can trade runtime
for tightness.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import mean_absolute_error, mean_relative_error
from repro.blocks.inner_product import (
    ApcInnerProduct,
    MuxInnerProduct,
    OrInnerProduct,
)
from repro.blocks.pooling import hardware_max_pool, software_max_pool
from repro.core.feature_extraction import make_feb
from repro.sc import activation, ops
from repro.sc.encoding import Encoding
from repro.sc.rng import StreamFactory
from repro.utils.seeding import spawn_rng

__all__ = [
    "or_inner_product_error",
    "mux_inner_product_error",
    "apc_relative_error",
    "maxpool_deviation",
    "stanh_inaccuracy",
    "feb_inaccuracy",
]


def _random_xw(n: int, trials: int, rng, unipolar: bool):
    if unipolar:
        x = rng.uniform(0.0, 1.0, (trials, n))
        w = rng.uniform(0.0, 1.0, (trials, n))
    else:
        x = rng.uniform(-1.0, 1.0, (trials, n))
        w = rng.uniform(-1.0, 1.0, (trials, n))
    return x, w


def or_inner_product_error(n: int, length: int = 1024,
                           encoding: Encoding = Encoding.UNIPOLAR,
                           trials: int = 64, seed: int = 0,
                           scales=(1, 2, 4, 8, 16, 32, 64, 128)) -> float:
    """Table 1: OR-gate inner-product absolute error, best pre-scaling.

    The paper reports errors "obtained with the most suitable pre-scaling";
    this harness sweeps candidate scale factors and returns the minimum
    mean absolute error.
    """
    rng = spawn_rng(seed, "or-ip", n, length, encoding.value)
    unipolar = encoding is Encoding.UNIPOLAR
    x, w = _random_xw(n, trials, rng, unipolar)
    ideal = (x * w).sum(axis=-1)
    best = np.inf
    for scale in scales:
        block = OrInnerProduct(n, length, encoding=encoding, seed=seed,
                               scale=float(scale))
        est = block.compute(x, w)
        best = min(best, mean_absolute_error(est, ideal))
    return best


def mux_inner_product_error(n: int, length: int, trials: int = 64,
                            seed: int = 0) -> float:
    """Table 2: MUX inner-product absolute error (bipolar)."""
    rng = spawn_rng(seed, "mux-ip", n, length)
    x, w = _random_xw(n, trials, rng, unipolar=False)
    block = MuxInnerProduct(n, length, seed=seed)
    est = block.compute(x, w)
    return mean_absolute_error(est, block.ideal(x, w))


def apc_relative_error(n: int, length: int, trials: int = 64,
                       seed: int = 0) -> float:
    """Table 3: APC vs conventional parallel counter, relative error.

    Both counters consume the *same* product streams, isolating the APC's
    LSB approximation exactly as the paper's comparison does.
    """
    rng = spawn_rng(seed, "apc-ip", n, length)
    x, w = _random_xw(n, trials, rng, unipolar=False)
    apc_block = ApcInnerProduct(n, length, seed=seed, approximate=True)
    exact_block = ApcInnerProduct(n, length, seed=seed, approximate=False)
    approx = apc_block.compute(x, w)
    exact = exact_block.compute(x, w)
    # The two blocks share seeds, hence identical streams; the only
    # difference is the counter. Normalize against the input size so
    # near-zero sums do not blow up the ratio (counts live on [0, n]).
    return float(np.abs(approx - exact).mean() / n)


def maxpool_deviation(n_candidates: int, length: int, segment: int = 16,
                      trials: int = 200, seed: int = 0) -> float:
    """Table 4: hardware-oriented max pooling vs software max pooling.

    Returns the mean relative deviation of the selected stream's ones
    count versus the true maximum ("result deviation").
    """
    rng = spawn_rng(seed, "maxpool", n_candidates, length, segment)
    factory = StreamFactory(seed=seed, encoding=Encoding.UNIPOLAR)
    probs = rng.uniform(0.2, 0.8, (trials, n_candidates))
    streams = factory.packed(probs, length)
    hw = hardware_max_pool(streams, length, segment)
    sw = software_max_pool(streams, length)
    hw_count = ops.popcount(hw, length).astype(np.float64)
    sw_count = ops.popcount(sw, length).astype(np.float64)
    return float((np.abs(sw_count - hw_count) / np.maximum(sw_count, 1))
                 .mean())


def stanh_inaccuracy(n_states: int, length: int = 8192, trials: int = 128,
                     seed: int = 0) -> float:
    """Table 5 / Figure 9: Stanh relative inaccuracy vs ``tanh(K/2·x)``.

    Following the paper's setup, the *FSM input variable* ``K/2·x`` is
    distributed in [-1, 1], i.e. ``x`` is drawn from ``[-2/K, 2/K]``.
    In this low-drift regime the FSM's random-walk noise dominates, which
    is why the paper finds the inaccuracy "quite notable and not
    suppressed with the increasing of K" (Section 4.3).
    """
    rng = spawn_rng(seed, "stanh", n_states, length)
    factory = StreamFactory(seed=seed, encoding=Encoding.BIPOLAR)
    x = rng.uniform(-1.0, 1.0, trials) * (2.0 / n_states)
    streams = factory.packed(x, length)
    out = activation.stanh_packed(streams, length, n_states)
    est = 2.0 * ops.popcount(out, length) / length - 1.0
    ref = activation.stanh_expected(x, n_states)
    # Normalized mean absolute error: per-sample relative error diverges
    # on the near-zero references this input regime is full of.
    return float(np.abs(est - ref).mean() / np.abs(ref).mean())


def stanh_curve(n_states: int, length: int = 8192, points: int = 41,
                seed: int = 0):
    """Figure 9 data: (x, measured Stanh, tanh(K/2·x)) over an x sweep."""
    factory = StreamFactory(seed=seed, encoding=Encoding.BIPOLAR)
    x = np.linspace(-1.0, 1.0, points)
    streams = factory.packed(x, length)
    out = activation.stanh_packed(streams, length, n_states)
    measured = 2.0 * ops.popcount(out, length) / length - 1.0
    return x, measured, activation.stanh_expected(x, n_states)


def feb_inaccuracy(kind: str, n: int, length: int, trials: int = 48,
                   seed: int = 0) -> float:
    """Figure 14: feature extraction block absolute inaccuracy.

    Inputs and weights are drawn uniformly from [-1, 1] — the paper's
    setup.  The reference is the software FEB output
    ``tanh(pool_j(Σ_i x·w))``.  With unscaled inputs the inner products'
    magnitude grows as √n, so tanh saturates for large receptive fields:
    APC blocks (which preserve magnitude) ride the saturation and improve
    with n, while MUX blocks (output scaled by 1/n) cannot reach the
    saturated region and degrade — the central contrast of Figure 14.
    """
    rng = spawn_rng(seed, "feb", kind, n, length)
    feb = make_feb(kind, n, length, seed=seed)
    x = rng.uniform(-1.0, 1.0, (trials, 4, n))
    w = rng.uniform(-1.0, 1.0, (trials, 4, n))
    hw = feb.forward(x, w)
    ref = feb.reference(x, w)
    return mean_absolute_error(hw, ref)
