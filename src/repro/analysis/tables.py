"""Plain-text table formatting and the paper's reference values.

``PAPER`` collects every number the paper's evaluation tables report, so
benchmark harnesses can print paper-vs-measured rows side by side (the
same role EXPERIMENTS.md plays in prose).
"""

from __future__ import annotations

__all__ = ["format_table", "PAPER"]


def format_table(headers, rows, title: str = "") -> str:
    """Render a fixed-width text table.

    ``rows`` is an iterable of sequences; cells are stringified with
    ``str`` (pre-format floats yourself).
    """
    str_rows = [[str(c) for c in row] for row in rows]
    str_headers = [str(h) for h in headers]
    widths = [len(h) for h in str_headers]
    for row in str_rows:
        if len(row) != len(str_headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(str_headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(str_headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


#: Every evaluation number the paper reports, keyed by experiment.
PAPER = {
    # Table 1: absolute error of OR-gate inner product, L = 1024.
    "table1": {
        ("unipolar", 16): 0.47, ("unipolar", 32): 0.66,
        ("unipolar", 64): 1.29,
        ("bipolar", 16): 1.54, ("bipolar", 32): 1.70,
        ("bipolar", 64): 2.3,
    },
    # Table 2: absolute error of MUX inner product, (n, L) → error.
    "table2": {
        (16, 512): 0.54, (16, 1024): 0.39, (16, 2048): 0.28, (16, 4096): 0.21,
        (32, 512): 1.18, (32, 1024): 0.77, (32, 2048): 0.56, (32, 4096): 0.38,
        (64, 512): 2.35, (64, 1024): 1.58, (64, 2048): 1.19, (64, 4096): 0.79,
    },
    # Table 3: relative error of APC vs conventional counter, (n, L) → %.
    "table3": {
        (16, 128): 1.01, (16, 256): 0.87, (16, 384): 0.88, (16, 512): 0.84,
        (32, 128): 0.70, (32, 256): 0.61, (32, 384): 0.58, (32, 512): 0.57,
        (64, 128): 0.49, (64, 256): 0.44, (64, 384): 0.44, (64, 512): 0.42,
    },
    # Table 4: relative deviation of hardware max pooling, (n, L) → dev.
    "table4": {
        (4, 128): 0.127, (4, 256): 0.081, (4, 384): 0.066, (4, 512): 0.059,
        (9, 128): 0.147, (9, 256): 0.099, (9, 384): 0.086, (9, 512): 0.074,
        (16, 128): 0.166, (16, 256): 0.108, (16, 384): 0.097, (16, 512): 0.086,
    },
    # Table 5: Stanh relative inaccuracy (%) vs state count, L = 8192.
    "table5": {
        8: 10.06, 10: 8.27, 12: 7.43, 14: 7.36, 16: 7.51, 18: 8.07, 20: 8.55,
    },
    # Section 5.2 / 5.3 weight-storage claims.
    "weight_storage": {
        "uniform7_area_saving": 10.3,
        "layerwise_scheme": (7, 7, 6),
        "layerwise_area_saving": 12.0,
        "layerwise_power_saving": 11.9,
        "layerwise_error_pct": 1.65,
        "software_error_pct": 1.53,
    },
    # Software LeNet-5 baselines (Section 6.3).
    "baselines": {
        "max_pooling_error_pct": 1.53,
        "avg_pooling_error_pct": 2.24,
        "accuracy_threshold_pct": 1.5,
    },
    # Table 7 SC-DCNN rows.
    "table7": {
        "No.6": {"area_mm2": 36.4, "power_w": 3.53, "accuracy_pct": 98.26,
                 "throughput_ips": 781250, "area_eff": 21439,
                 "energy_eff": 221287},
        "No.11": {"area_mm2": 17.0, "power_w": 1.53, "accuracy_pct": 96.64,
                  "throughput_ips": 781250, "area_eff": 45946,
                  "energy_eff": 510734},
    },
}
