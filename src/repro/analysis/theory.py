"""Analytic error models for the SC building blocks.

Closed-form first/second-moment predictions for the estimators the
simulator implements, used three ways:

* cross-validation — tests check the bit-level simulator against these
  formulas, catching bugs in either;
* fast budgeting — the fast evaluators use them to sanity-check their
  measured noise;
* design intuition — they encode *why* the paper's trends hold
  (MUX error ∝ n/√L, APC inner-product noise ∝ √(n/L), …).

All formulas assume ideal (independent Bernoulli) streams of length
``L``; bipolar encoding unless stated.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import as_float_array, check_positive_int

__all__ = [
    "sng_decode_std",
    "xnor_product_std",
    "mux_inner_product_std",
    "apc_inner_product_std",
    "or_add_expectation",
    "stanh_stationary",
    "btanh_gain",
]


def sng_decode_std(value, length: int) -> np.ndarray:
    """Std of a single decoded bipolar stream: ``2·sqrt(p(1-p)/L)``."""
    check_positive_int(length, "length")
    v = as_float_array(value, "value")
    p = (v + 1.0) / 2.0
    return 2.0 * np.sqrt(p * (1.0 - p) / length)


def xnor_product_std(a, b, length: int) -> np.ndarray:
    """Std of a decoded XNOR product of independent streams.

    The product stream's value is ``a·b`` with ones-probability
    ``(ab+1)/2``, so the decode noise is that of a single stream at the
    product value.
    """
    prod = as_float_array(a) * as_float_array(b)
    return sng_decode_std(prod, length)


def mux_inner_product_std(n: int, length: int,
                          mean_square: float = 1.0 / 9.0) -> float:
    """Std of the scaled-back MUX inner-product estimate.

    Each cycle keeps one of ``n`` product bits; the decoded mean is the
    average product value and the estimate is scaled back by ``n``.  For
    products with second moment ``E[v²] = mean_square`` (1/9 for
    uniform[-1,1] inputs and weights), the per-cycle variance is
    ``1 - E[v̄]² ≈ 1``, giving ``std ≈ n/√L`` — Table 2's law.
    """
    check_positive_int(n, "n")
    check_positive_int(length, "length")
    per_cycle_var = 1.0 - mean_square / n  # ≈ 1 for small mean products
    return n * np.sqrt(per_cycle_var / length)


def apc_inner_product_std(n: int, length: int,
                          mean_square: float = 1.0 / 9.0) -> float:
    """Std of the APC inner-product estimate, ``≈ sqrt(n/L)``.

    Every product stream contributes decode variance ``(1-v²)/L``
    independently; the sum's variance is ``n·(1-E[v²])/L`` — the √n
    growth that makes wide fully-connected layers the noise bottleneck
    (EXPERIMENTS.md, deviation #1).
    """
    check_positive_int(n, "n")
    check_positive_int(length, "length")
    return float(np.sqrt(n * (1.0 - mean_square) / length))


def or_add_expectation(probs) -> float:
    """Exact OR-adder output probability: ``1 - Π(1 - p_i)``.

    The gap to ``Σ p_i`` is the "logic 1 OR logic 1" loss of Table 1.
    """
    p = as_float_array(probs, "probs")
    return float(1.0 - np.prod(1.0 - p))


def stanh_stationary(n_states: int, x: float, threshold: int = None) -> float:
    """Exact stationary output of the Stanh FSM for drift ``x``.

    The FSM is a birth-death chain with up-probability ``p = (x+1)/2``;
    its stationary distribution is geometric with ratio ``r = p/(1-p)``
    and the output is the stationary mass at/above the threshold, mapped
    to bipolar.  Converges to ``tanh(K/2·x)`` for moderate K — the
    Brown & Card result the paper builds on.
    """
    check_positive_int(n_states, "n_states")
    if not -1.0 < x < 1.0:
        return float(np.sign(x))
    if threshold is None:
        threshold = n_states // 2
    p = (x + 1.0) / 2.0
    r = p / (1.0 - p)
    weights = r ** np.arange(n_states)
    weights /= weights.sum()
    return float(2.0 * weights[threshold:].sum() - 1.0)


def btanh_gain(n_inputs: int, n_states: int, pooled: bool = False) -> float:
    """Small-signal gain of the Btanh counter, ``K/(2σ²)``.

    The counter's increment variance is ``≈ N`` for a directly-connected
    APC and ``≈ N/4`` behind the averaging divider; unit gain therefore
    needs ``K = 2N`` and ``K = N/2`` respectively — the diffusion
    argument behind equation (3) and the "original" Btanh sizing
    (DESIGN.md §6).
    """
    check_positive_int(n_inputs, "n_inputs")
    check_positive_int(n_states, "n_states")
    sigma_sq = n_inputs / 4.0 if pooled else float(n_inputs)
    return n_states / (2.0 * sigma_sq)
