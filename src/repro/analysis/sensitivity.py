"""Layer-wise inaccuracy sensitivity (Figure 16).

The paper's layer-wise configuration strategy rests on the observation
that "hardware inaccuracies in different layers in DCNN have different
effects on the overall accuracy".  This harness makes that measurable:
inject zero-mean noise of a chosen magnitude into the activations of one
layer at a time and record the network error rate.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import Tanh
from repro.nn.module import Sequential
from repro.utils.seeding import spawn_rng

__all__ = ["layer_noise_sensitivity", "NoisyForward"]


class NoisyForward:
    """Forward evaluator that perturbs one activation stage.

    ``stage`` indexes the tanh activations in network order (0 = after
    Layer0's pooling, 1 = after Layer1's, 2 = after the FC layer); the
    perturbation is additive Gaussian noise clipped back to [-1, 1],
    modelling an SC block whose output stream deviates from its ideal
    value.
    """

    def __init__(self, model: Sequential, stage: int, sigma: float,
                 seed: int = 0):
        tanh_positions = [i for i, layer in enumerate(model.layers)
                          if isinstance(layer, Tanh)]
        if not 0 <= stage < len(tanh_positions):
            raise ValueError(
                f"stage must be in [0, {len(tanh_positions)}), got {stage}"
            )
        self.model = model
        self.position = tanh_positions[stage]
        self.sigma = float(sigma)
        self._rng = spawn_rng(seed, "noisy-forward", stage)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for i, layer in enumerate(self.model.layers):
            x = layer.forward(x, training=False)
            if i == self.position and self.sigma > 0:
                x = np.clip(
                    x + self._rng.normal(0.0, self.sigma, x.shape),
                    -1.0, 1.0,
                )
        return x

    def error_rate(self, images: np.ndarray, labels: np.ndarray,
                   batch_size: int = 256) -> float:
        wrong = 0
        for start in range(0, len(images), batch_size):
            logits = self.forward(images[start:start + batch_size])
            preds = np.argmax(logits, axis=1)
            wrong += int((preds != labels[start:start + batch_size]).sum())
        return 100.0 * wrong / len(images)


def layer_noise_sensitivity(model: Sequential, images: np.ndarray,
                            labels: np.ndarray,
                            sigmas=(0.0, 0.05, 0.1, 0.2, 0.3, 0.4),
                            seed: int = 0) -> dict:
    """Figure 16 data: error rate vs injected noise, one layer at a time.

    Returns ``{"Layer0": [...], "Layer1": [...], "Layer2": [...],
    "sigmas": [...]}`` with error rates in percent.  The expected shape:
    Layer2 (closest to the output, most weights) is the most sensitive.
    """
    sigmas = list(sigmas)
    results = {}
    for stage in range(3):
        errors = []
        for sigma in sigmas:
            noisy = NoisyForward(model, stage, sigma, seed=seed)
            errors.append(noisy.error_rate(images, labels))
        results[f"Layer{stage}"] = errors
    results["sigmas"] = sigmas
    return results
