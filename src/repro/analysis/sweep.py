"""Generic parameter-sweep utilities used by the benchmark harnesses."""

from __future__ import annotations

import dataclasses
import itertools

__all__ = ["Sweep", "SweepResult"]


@dataclasses.dataclass
class SweepResult:
    """The outcome of one sweep: axis names, points and values.

    ``values`` maps each parameter combination (a tuple following
    ``axes`` order) to the measured value.
    """

    axes: tuple
    points: dict
    values: dict

    def grid(self):
        """Yield ``(combo_dict, value)`` in axis order."""
        axis_values = [self.points[a] for a in self.axes]
        for combo in itertools.product(*axis_values):
            yield dict(zip(self.axes, combo)), self.values[combo]

    def row(self, **fixed):
        """Values along the one remaining free axis, others fixed."""
        free = [a for a in self.axes if a not in fixed]
        if len(free) != 1:
            raise ValueError(
                f"fix all axes but one; free axes: {free}"
            )
        axis = free[0]
        out = []
        for v in self.points[axis]:
            key = tuple(fixed.get(a, v) if a != axis else v
                        for a in self.axes)
            out.append(self.values[key])
        return out


class Sweep:
    """Declarative cartesian sweep over named axes.

    >>> sweep = Sweep(n=[16, 32], length=[128, 256])
    >>> result = sweep.run(lambda n, length: n * length)
    >>> result.values[(16, 256)]
    4096
    """

    def __init__(self, **axes):
        if not axes:
            raise ValueError("a sweep needs at least one axis")
        self.axes = tuple(axes)
        self.points = {name: list(values) for name, values in axes.items()}

    def run(self, fn, progress=None) -> SweepResult:
        """Evaluate ``fn(**combo)`` over the full grid."""
        values = {}
        axis_values = [self.points[a] for a in self.axes]
        for combo in itertools.product(*axis_values):
            values[combo] = fn(**dict(zip(self.axes, combo)))
            if progress is not None:  # pragma: no cover - console output
                progress(dict(zip(self.axes, combo)), values[combo])
        return SweepResult(axes=self.axes, points=self.points, values=values)
