"""Generic parameter-sweep utilities used by the benchmark harnesses.

:class:`Sweep`/:class:`SweepResult` are the declarative cartesian-sweep
core; :func:`engine_error_sweep` layers the unified inference engine on
top for the repository's most common sweep shape — error rate over
(configuration × stream length × backend) — compiling each
configuration's plan once and re-targeting it per length
(:meth:`repro.engine.plan.CompiledPlan.with_length`) instead of
rebuilding evaluator models at every grid point.
"""

from __future__ import annotations

import dataclasses
import itertools

__all__ = ["Sweep", "SweepResult", "engine_error_sweep"]


@dataclasses.dataclass
class SweepResult:
    """The outcome of one sweep: axis names, points and values.

    ``values`` maps each parameter combination (a tuple following
    ``axes`` order) to the measured value.
    """

    axes: tuple
    points: dict
    values: dict

    def grid(self):
        """Yield ``(combo_dict, value)`` in axis order."""
        axis_values = [self.points[a] for a in self.axes]
        for combo in itertools.product(*axis_values):
            yield dict(zip(self.axes, combo)), self.values[combo]

    def row(self, **fixed):
        """Values along the one remaining free axis, others fixed."""
        free = [a for a in self.axes if a not in fixed]
        if len(free) != 1:
            raise ValueError(
                f"fix all axes but one; free axes: {free}"
            )
        axis = free[0]
        out = []
        for v in self.points[axis]:
            key = tuple(fixed.get(a, v) if a != axis else v
                        for a in self.axes)
            out.append(self.values[key])
        return out


class Sweep:
    """Declarative cartesian sweep over named axes.

    >>> sweep = Sweep(n=[16, 32], length=[128, 256])
    >>> result = sweep.run(lambda n, length: n * length)
    >>> result.values[(16, 256)]
    4096
    """

    def __init__(self, **axes):
        if not axes:
            raise ValueError("a sweep needs at least one axis")
        self.axes = tuple(axes)
        self.points = {name: list(values) for name, values in axes.items()}

    def run(self, fn, progress=None) -> SweepResult:
        """Evaluate ``fn(**combo)`` over the full grid."""
        values = {}
        axis_values = [self.points[a] for a in self.axes]
        for combo in itertools.product(*axis_values):
            values[combo] = fn(**dict(zip(self.axes, combo)))
            if progress is not None:  # pragma: no cover - console output
                progress(dict(zip(self.axes, combo)), values[combo])
        return SweepResult(axes=self.axes, points=self.points, values=values)


def engine_error_sweep(model, images, labels, kind_combos, lengths,
                       pooling, backends=("surrogate",), seed: int = 0,
                       weight_bits=None, max_images: int | None = None,
                       progress=None) -> SweepResult:
    """Error-rate sweep over (kind combo × stream length × backend).

    ``kind_combos`` is an iterable of 3-tuples of FEB kind strings (e.g.
    ``("APC", "APC", "APC")``); ``lengths`` the stream lengths;
    ``backends`` registered engine backend names.  Each combo's plan is
    compiled once at the first length and re-targeted per length, so the
    grid never re-quantizes weights or re-derives state numbers for
    points where they cannot change.

    Returns a :class:`SweepResult` over axes ``(combo, length, backend)``
    whose values are error rates in percent.
    """
    from repro.core.config import NetworkConfig
    from repro.engine.engine import Engine
    from repro.engine.plan import compile_plan

    combos = [tuple(c) for c in kind_combos]
    lengths = list(lengths)
    backends = list(backends)
    sweep = Sweep(combo=combos, length=lengths, backend=backends)
    plans = {}
    if max_images is not None:
        images = images[:max_images]
        labels = labels[:max_images]

    def evaluate(combo, length, backend):
        if combo in plans:
            plan = plans[combo].with_length(length)
        else:
            config = NetworkConfig.from_kinds(
                pooling, length, combo,
                name=f"{'-'.join(combo)}@{length}",
            )
            plan = compile_plan(model, config, weight_bits=weight_bits)
        plans[combo] = plan
        engine = Engine(backend=backend, seed=seed, plan=plan)
        return engine.error_rate(images, labels, batch_size=256)

    return sweep.run(evaluate, progress=progress)
