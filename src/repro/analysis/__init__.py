"""Measurement harnesses behind every table and figure.

* :mod:`repro.analysis.metrics` — error metrics shared by all harnesses;
* :mod:`repro.analysis.block_error` — Monte-Carlo measurement of function
  blocks and feature extraction blocks (Tables 1-5, Figure 14);
* :mod:`repro.analysis.sensitivity` — layer-wise inaccuracy injection
  (Figure 16);
* :mod:`repro.analysis.sweep` — generic parameter-sweep utilities;
* :mod:`repro.analysis.tables` — plain-text table formatting and the
  paper's reference values for side-by-side printing.
"""

from repro.analysis.metrics import (
    mean_absolute_error,
    mean_relative_error,
    error_rate_pct,
)
from repro.analysis.block_error import (
    or_inner_product_error,
    mux_inner_product_error,
    apc_relative_error,
    maxpool_deviation,
    stanh_inaccuracy,
    feb_inaccuracy,
)
from repro.analysis.sensitivity import layer_noise_sensitivity
from repro.analysis.sweep import Sweep, SweepResult
from repro.analysis.tables import format_table, PAPER
from repro.analysis import theory

__all__ = [
    "theory",
    "mean_absolute_error",
    "mean_relative_error",
    "error_rate_pct",
    "or_inner_product_error",
    "mux_inner_product_error",
    "apc_relative_error",
    "maxpool_deviation",
    "stanh_inaccuracy",
    "feb_inaccuracy",
    "layer_noise_sensitivity",
    "Sweep",
    "SweepResult",
    "format_table",
    "PAPER",
]
