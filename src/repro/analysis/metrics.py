"""Error metrics used by the measurement harnesses."""

from __future__ import annotations

import numpy as np

__all__ = ["mean_absolute_error", "mean_relative_error", "error_rate_pct"]


def mean_absolute_error(estimates, references) -> float:
    """Mean |estimate - reference| — the paper's "absolute inaccuracy"."""
    est = np.asarray(estimates, dtype=np.float64)
    ref = np.asarray(references, dtype=np.float64)
    return float(np.abs(est - ref).mean())


def mean_relative_error(estimates, references, floor: float = 1e-3) -> float:
    """Mean |estimate - reference| / |reference| — Tables 3-5's metric.

    References with magnitude below ``floor`` are excluded (a relative
    error against ~0 is meaningless and explodes the mean).
    """
    est = np.asarray(estimates, dtype=np.float64)
    ref = np.asarray(references, dtype=np.float64)
    mask = np.abs(ref) >= floor
    if not mask.any():
        raise ValueError("all reference magnitudes below the floor")
    return float((np.abs(est - ref)[mask] / np.abs(ref)[mask]).mean())


def error_rate_pct(predictions, labels) -> float:
    """Classification error rate in percent."""
    preds = np.asarray(predictions)
    labels = np.asarray(labels)
    if preds.shape != labels.shape:
        raise ValueError(f"shape mismatch: {preds.shape} vs {labels.shape}")
    return 100.0 * float((preds != labels).mean())
