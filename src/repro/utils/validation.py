"""Input-validation helpers used across the library.

All validators raise ``ValueError`` with a message naming the offending
parameter, so user errors surface at the public API boundary rather than as
cryptic numpy broadcasting failures deep in the bit-level simulation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_probability",
    "check_bipolar",
    "check_positive_int",
    "check_stream_length",
    "as_float_array",
]


def as_float_array(values, name: str = "values") -> np.ndarray:
    """Convert ``values`` to a float64 numpy array, rejecting non-numerics."""
    arr = np.asarray(values, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite, got non-finite entries")
    return arr


def check_probability(values, name: str = "values") -> np.ndarray:
    """Validate that every entry lies in the unipolar range [0, 1]."""
    arr = as_float_array(values, name)
    if arr.size and (arr.min() < 0.0 or arr.max() > 1.0):
        raise ValueError(
            f"{name} must lie in [0, 1] for unipolar encoding; "
            f"got range [{arr.min():.4f}, {arr.max():.4f}]. "
            "Pre-scale the inputs (repro.sc.encoding.prescale) first."
        )
    return arr


def check_bipolar(values, name: str = "values") -> np.ndarray:
    """Validate that every entry lies in the bipolar range [-1, 1]."""
    arr = as_float_array(values, name)
    if arr.size and (arr.min() < -1.0 or arr.max() > 1.0):
        raise ValueError(
            f"{name} must lie in [-1, 1] for bipolar encoding; "
            f"got range [{arr.min():.4f}, {arr.max():.4f}]. "
            "Pre-scale the inputs (repro.sc.encoding.prescale) first."
        )
    return arr


def check_positive_int(value, name: str = "value") -> int:
    """Validate a strictly positive integer parameter."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValueError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_stream_length(length) -> int:
    """Validate a bit-stream length.

    Lengths need not be powers of two, but must be positive.  Extremely long
    streams are rejected to protect against accidental memory blow-ups in
    the packed simulator.
    """
    length = check_positive_int(length, "length")
    if length > 1 << 22:
        raise ValueError(f"stream length {length} is unreasonably large (> 2^22)")
    return length
