"""Shared utilities: validation helpers and seeded RNG management."""

from repro.utils.validation import (
    check_probability,
    check_bipolar,
    check_positive_int,
    check_stream_length,
    as_float_array,
)
from repro.utils.seeding import spawn_rng, derive_seed

__all__ = [
    "check_probability",
    "check_bipolar",
    "check_positive_int",
    "check_stream_length",
    "as_float_array",
    "spawn_rng",
    "derive_seed",
]
