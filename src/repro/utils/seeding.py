"""Deterministic RNG derivation.

Every stochastic component in the library (SNGs, MUX select generators,
dataset synthesis, training shuffles, Monte-Carlo harnesses) takes an
explicit seed.  ``derive_seed``/``spawn_rng`` give a reproducible way to
derive statistically independent child streams from a root seed plus a
string key, so experiments are repeatable bit-for-bit.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["derive_seed", "spawn_rng"]


def derive_seed(seed: int, *keys) -> int:
    """Derive a child seed from ``seed`` and any number of hashable keys.

    The derivation is stable across processes and Python versions (it uses
    CRC32 of the repr rather than Python's randomized ``hash``).
    """
    acc = seed & 0xFFFFFFFF
    for key in keys:
        acc = zlib.crc32(repr(key).encode("utf8"), acc)
    return acc


def spawn_rng(seed: int, *keys) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` seeded from ``seed`` and keys."""
    return np.random.default_rng(np.random.SeedSequence(derive_seed(seed, *keys)))
