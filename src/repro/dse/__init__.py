"""Design-space exploration: parallel, resumable search over SC designs.

The paper's headline contribution is *holistic* optimization — jointly
choosing each layer's inner-product block kind, the bit-stream length
and the weight storage precision under an accuracy budget, then reading
area / power / energy off the hardware model (Section 6.3, Table 6).
This package turns that procedure into a subsystem:

* :mod:`repro.dse.space` — an explicit :class:`SearchSpace` over
  (kinds-combo × pooling × weight_bits × length-halving schedule),
  derived from the lowered layer graph so every zoo model is searchable;
* :mod:`repro.dse.runner` — a :class:`ParallelRunner` that fans the
  evaluations of each halving round across a process pool, with
  deterministic per-point seeding so parallel results are bit-identical
  to sequential (and to the legacy ``HolisticOptimizer.run`` loop);
* :mod:`repro.dse.screen` — surrogate-backend pre-screening that skips
  the full-fidelity evaluation of candidates a cheap deterministic pass
  already places far beyond the accuracy budget;
* :mod:`repro.dse.store` — an append-only JSONL result store making
  interrupted searches resumable (``--resume`` re-evaluates nothing
  already recorded);
* :mod:`repro.dse.frontier` — generalized Pareto utilities on
  (error, area, power, energy) plus CSV/JSON export.

``repro.core.optimizer.HolisticOptimizer`` is now a thin facade over
this package; ``python -m repro dse`` is the command-line entry point.
"""

from repro.dse.frontier import (
    DEFAULT_METRICS,
    dominates,
    export_frontier,
    halving_trajectories,
    pareto_front,
    pareto_indices,
)
from repro.dse.runner import DSERecord, DSEResult, EvalTask, ParallelRunner
from repro.dse.screen import ScreenPolicy
from repro.dse.space import Candidate, Scenario, SearchSpace
from repro.dse.store import ResultStore

__all__ = [
    "Candidate",
    "DEFAULT_METRICS",
    "DSERecord",
    "DSEResult",
    "EvalTask",
    "ParallelRunner",
    "ResultStore",
    "Scenario",
    "ScreenPolicy",
    "SearchSpace",
    "dominates",
    "export_frontier",
    "halving_trajectories",
    "pareto_front",
    "pareto_indices",
]
