"""Append-only JSONL result store: resumable, incremental searches.

Every evaluated point of a search is one JSON line keyed by
``(model digest, config digest, weight_bits, length, seed, stage,
backend, images)`` — everything that determines the evaluation's result
bit-for-bit.  The runner consults the store before dispatching an
evaluation and appends (with a flush) immediately after computing one,
so a search killed mid-flight loses at most the point in progress;
re-running with ``resume=True`` skips every recorded key and the final
file holds each point exactly once.

Schema (one object per line):

* header (first line)::

    {"kind": "header", "version": 1, "model": "lenet5",
     "model_digest": "…", "evaluator": "noise", "eval_images": 400,
     "seed": 0, "threshold_pct": 1.5}

* result (everything after)::

    {"kind": "result", "key": "…|…|w8,8,8,8|L1024|s0|full|noise|n400",
     "combo": "MUX-APC-APC", "pooling": "max", "weight_bits": [8,8,8,8],
     "length": 1024, "seed": 0, "stage": "full", "error_pct": 2.1,
     "degradation_pct": 0.6, "passed": true,
     "cost": {"area_mm2": …, "power_w": …, "delay_ns": …,
              "energy_uj": …}}

Only ``error_pct`` is consumed on resume — pass/fail is re-decided
against the *current* threshold and hardware costs are re-derived from
the (deterministic, cached) cost model, so resumed searches stay
bit-identical to uninterrupted ones even across a threshold change.
A torn trailing line (the signature of a killed process) is tolerated
and dropped; corruption anywhere else raises.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import faults

__all__ = ["ResultStore", "make_key"]

VERSION = 1


def make_key(model_digest: str, config_digest: str, weight_bits,
             length: int, seed: int, stage: str, backend: str,
             images: int) -> str:
    """The store key of one evaluation — its full determinism contract."""
    bits = ",".join("f" if b is None else str(int(b)) for b in weight_bits)
    return "|".join([model_digest, config_digest, f"w{bits}", f"L{length}",
                     f"s{seed}", stage, backend, f"n{images}"])


class ResultStore:
    """Append-only JSONL store of evaluated design points.

    Parameters
    ----------
    path:
        The JSONL file.  A fresh store writes its header immediately; an
        existing file is only touched when ``resume=True`` (refusing to
        silently clobber a previous search is deliberate — delete the
        file or resume it).
    model / model_digest / evaluator / eval_images / seed /
    threshold_pct:
        Search identity, recorded in the header.  On resume the
        ``model_digest`` must match — resuming a different model is
        always a mistake; every other field only feeds the per-result
        keys (a changed ``eval_images`` simply never matches a stored
        key).
    """

    def __init__(self, path, *, model: str = "", model_digest: str = "",
                 evaluator: str = "", eval_images: int = 0, seed: int = 0,
                 threshold_pct: float | None = None, resume: bool = False):
        self.path = Path(path)
        self.model_digest = model_digest
        self._index = {}
        self.dropped_lines = 0
        header = {"kind": "header", "version": VERSION, "model": model,
                  "model_digest": model_digest, "evaluator": evaluator,
                  "eval_images": int(eval_images), "seed": int(seed),
                  "threshold_pct": threshold_pct}
        if self.path.exists() and self.path.stat().st_size > 0:
            if not resume:
                raise ValueError(
                    f"result store {self.path} already exists; resume it "
                    "(--resume) or remove the file to start over")
            self._load()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._append(header)

    # ------------------------------------------------------------------
    def _load(self) -> None:
        raw = self.path.read_text()
        lines = raw.splitlines()
        if lines and not raw.endswith("\n"):
            # A kill can also persist a record's JSON bytes but not its
            # trailing newline; the line parses fine, but appending over
            # it would fuse two records.  Normalize the tail up front.
            with self.path.open("a") as fh:
                fh.write("\n")
        records = []
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if lineno == len(lines) - 1:
                    # A torn final line is exactly what a killed search
                    # leaves behind; drop it (the point re-evaluates)
                    # and truncate it from the file — a torn tail has no
                    # trailing newline, so appending over it would fuse
                    # it with the next record and corrupt the store.
                    self.dropped_lines += 1
                    with self.path.open("w") as fh:
                        fh.write("".join(good + "\n"
                                         for good in lines[:lineno]))
                    continue
                raise ValueError(
                    f"{self.path}:{lineno + 1}: corrupt store line")
        if not records or records[0].get("kind") != "header":
            raise ValueError(f"{self.path}: not a DSE result store "
                             "(missing header line)")
        header = records[0]
        if header.get("version") != VERSION:
            raise ValueError(
                f"{self.path}: store version {header.get('version')} "
                f"!= supported {VERSION}")
        if self.model_digest and header.get("model_digest") and \
                header["model_digest"] != self.model_digest:
            raise ValueError(
                f"{self.path}: store was written for model digest "
                f"{header['model_digest']}, not {self.model_digest} — "
                "resuming a different model/training run is not allowed")
        for record in records[1:]:
            if record.get("kind") == "result" and "key" in record:
                self._index[record["key"]] = record

    def _append(self, payload: dict) -> None:
        # Fired before any byte is written, so an injected I/O error
        # leaves the file clean (real partial writes are what the
        # torn-line recovery in _load is for).
        faults.fire("store.append", label=str(payload.get("key",
                                                          payload.get("kind", ""))))
        with self.path.open("a") as fh:
            fh.write(json.dumps(payload, sort_keys=True) + "\n")
            fh.flush()

    # ------------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """The stored record under ``key``, or ``None``."""
        return self._index.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        """Number of stored results (header excluded)."""
        return len(self._index)

    def record(self, key: str, payload: dict) -> None:
        """Append one result (idempotent: known keys are not rewritten).

        The append happens *before* the key is indexed: if the write
        raises, the store holds no memory of the record and a retry
        genuinely re-attempts the append instead of silently dropping
        it against a poisoned index entry.
        """
        if key in self._index:
            return
        record = {"kind": "result", "key": key, **payload}
        self._append(record)
        self._index[key] = record

    def results(self) -> list:
        """All stored result records (insertion order)."""
        return list(self._index.values())
