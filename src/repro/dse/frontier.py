"""Pareto-dominance utilities and frontier export for DSE results.

The paper reads its Table 6 off the set of design points that survive
the accuracy budget; what actually matters downstream is the *Pareto
frontier* of those survivors — no point on it can be improved in one
metric without paying in another.  This module generalizes the
optimizer's original (error, area, energy) filter to any metric tuple
(the DSE default adds power), keeps the dominance primitive reusable,
and exports frontiers and per-combo halving trajectories for offline
analysis.

Conventions:

* all metrics are *minimized* (error %, mm², W, µJ);
* a point dominates another when it is no worse in every metric and
  strictly better in at least one — ties dominate nothing, so duplicate
  points are all kept (the frontier's metric-tuple *set* is invariant
  under input permutation and duplication, property-tested in
  ``tests/test_dse/test_frontier.py``).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

__all__ = [
    "DEFAULT_METRICS",
    "point_metrics",
    "dominates",
    "pareto_indices",
    "pareto_front",
    "frontier_rows",
    "export_frontier",
    "halving_trajectories",
]

#: The generalized DSE objective vector.  ``error_pct`` lives on the
#: design point itself; the rest on its :class:`~repro.hw.network_cost.
#: NetworkCost`.
DEFAULT_METRICS = ("error_pct", "area_mm2", "power_w", "energy_uj")

#: The original optimizer objective (kept for
#: :meth:`repro.core.optimizer.HolisticOptimizer.pareto_front`).
LEGACY_METRICS = ("error_pct", "area_mm2", "energy_uj")


def point_metrics(point, metrics=DEFAULT_METRICS) -> tuple:
    """Extract a metric tuple from a ``DesignPoint``-shaped object.

    Each name is looked up on the point first, then on ``point.cost`` —
    so ``error_pct`` resolves to the accuracy metric and the hardware
    names to the cost roll-up.
    """
    values = []
    for name in metrics:
        if hasattr(point, name):
            values.append(float(getattr(point, name)))
        else:
            values.append(float(getattr(point.cost, name)))
    return tuple(values)


def dominates(a, b) -> bool:
    """True when metric tuple ``a`` Pareto-dominates ``b`` (minimize all).

    Requires ``a`` no worse than ``b`` everywhere and strictly better
    somewhere; equal tuples do not dominate each other.
    """
    if len(a) != len(b):
        raise ValueError(
            f"metric tuples must have equal length, got {len(a)} and {len(b)}")
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b))


def pareto_indices(rows) -> list:
    """Indices of the non-dominated rows of a metric-tuple sequence.

    Order-preserving: the returned indices are increasing, so callers
    can recover their original objects.  Duplicated rows are all
    non-dominated (ties never dominate).
    """
    rows = [tuple(float(v) for v in row) for row in rows]
    return [i for i, row in enumerate(rows)
            if not any(dominates(other, row) for other in rows)]


def pareto_front(points, metrics=DEFAULT_METRICS) -> list:
    """The non-dominated subset of ``points`` under ``metrics``.

    ``points`` are ``DesignPoint``-shaped objects (see
    :func:`point_metrics`); input order is preserved.
    """
    points = list(points)
    rows = [point_metrics(p, metrics) for p in points]
    return [points[i] for i in pareto_indices(rows)]


def frontier_rows(points, metrics=DEFAULT_METRICS) -> list:
    """Flat dict rows (config label + metrics) for export."""
    rows = []
    for point in points:
        row = {"config": point.config.describe(),
               "kinds": "-".join(l.ip_kind.value
                                 for l in point.config.layers),
               "pooling": point.config.pooling.value,
               "length": point.config.length,
               "degradation_pct": round(float(point.degradation_pct), 6)}
        for name, value in zip(metrics, point_metrics(point, metrics)):
            row[name] = round(value, 6)
        rows.append(row)
    return rows


def export_frontier(points, path, metrics=DEFAULT_METRICS,
                    trajectories: dict | None = None) -> Path:
    """Write the Pareto frontier of ``points`` as CSV or JSON.

    The format follows the file suffix (``.csv`` or ``.json``); JSON
    exports additionally carry the full passing set and, when given, the
    per-combo halving ``trajectories``
    (see :func:`halving_trajectories`).
    """
    path = Path(path)
    front = pareto_front(points, metrics)
    if path.suffix.lower() == ".csv":
        with path.open("w", newline="") as fh:
            writer = csv.DictWriter(
                fh, fieldnames=["config", "kinds", "pooling", "length",
                                "degradation_pct", *metrics])
            writer.writeheader()
            writer.writerows(frontier_rows(front, metrics))
        return path
    if path.suffix.lower() == ".json":
        payload = {
            "metrics": list(metrics),
            "frontier": frontier_rows(front, metrics),
            "passing": frontier_rows(points, metrics),
        }
        if trajectories is not None:
            payload["trajectories"] = trajectories
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return path
    raise ValueError(
        f"unsupported export suffix {path.suffix!r}; use .csv or .json")


def halving_trajectories(records) -> dict:
    """Per-combo (length, error, outcome) paths down the halving loop.

    ``records`` are :class:`repro.dse.runner.DSERecord` entries; the
    result maps a combo label (``"MUX-APC-APC"``, suffixed with pooling
    and weight bits when a search spans several scenarios) to its
    trajectory, longest length first — the raw material of the paper's
    accuracy-vs-length trade-off curves.
    """
    paths = {}
    for rec in records:
        label = rec.scenario_label
        poisoned = getattr(rec, "poisoned", False)
        paths.setdefault(label, []).append({
            "length": rec.length,
            "stage": rec.stage,
            # Quarantined points never produced a number; export null.
            "error_pct": (None if poisoned
                          else round(float(rec.error_pct), 6)),
            "degradation_pct": (None if poisoned
                                else round(float(rec.degradation_pct), 6)),
            "outcome": ("poisoned" if poisoned
                        else ("promoted" if rec.passed else "screened-out")
                        if rec.stage == "screen"
                        else ("pass" if rec.passed else "fail")),
        })
    for path in paths.values():
        path.sort(key=lambda row: (-row["length"], row["stage"] != "screen"))
    return paths
