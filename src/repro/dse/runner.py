"""Parallel, resumable execution of the Section 6.3 halving search.

``ParallelRunner`` walks a :class:`repro.dse.space.SearchSpace` with the
paper's procedure — evaluate every surviving candidate at the current
stream length, keep those within the accuracy budget, halve, repeat —
and fans each round's evaluations across a ``ProcessPoolExecutor``.

Determinism under parallelism
-----------------------------
Every evaluation is a *pure function* of ``(model, config, weight_bits,
seed, evaluator)``: each point constructs a fresh engine whose RNG is
spawned from the per-point seed, and the per-point seed is itself a pure
function of the search seed (the legacy optimizer seeds every point with
the search seed; the runner preserves exactly that, so ``workers=N``
produces results bit-identical to ``workers=1`` and to the sequential
``HolisticOptimizer.run`` loop — asserted by the conformance suite).
Results are gathered in submission order, not completion order, and the
passing list is assembled in the legacy (round, scenario, combo) order
before the final energy sort, so even tie-breaking is reproduced.

Plan reuse
----------
Each process (the parent at ``workers=1``, every worker otherwise)
compiles one plan per (kinds, pooling, weight_bits) at the schedule's
``max_length`` and re-targets it per evaluation with
:meth:`repro.engine.plan.CompiledPlan.with_length` — the max-length plan
stays the canonical cache entry, so length variants share quantized
weights and never recompile (all-APC combos share whole layer plans).

Screening and the store
-----------------------
With a :class:`repro.dse.screen.ScreenPolicy`, every candidate first
runs the cheap deterministic screen; only candidates within the policy's
margin of the threshold are promoted to the full evaluation (a
screened-out candidate prunes its combo exactly like a failed full
evaluation).  With a :class:`repro.dse.store.ResultStore`, every
result is appended as soon as it is known and already-stored points are
never re-evaluated — killing and resuming a search converges to the
same store contents and the same frontier as an uninterrupted run.

Failure model
-------------
Evaluations are pure functions, so every failure is recoverable by
re-dispatch — and because re-dispatch recomputes the same pure
function, every *recovered* point is bit-identical to the no-fault run.
The runner survives three failure classes (all injectable through
:mod:`repro.faults` for tests):

* **worker death** (kill -9, OOM, segfault) — the pool turns
  ``BrokenProcessPool``; the runner terminates the carcass, respawns
  the pool, and re-dispatches every lost point;
* **in-band exceptions** — a raising evaluation is retried with
  bounded exponential backoff (``retries`` re-dispatches, ``backoff_s``
  base); a point that keeps failing is *quarantined*: recorded in the
  store as poisoned (skipped on resume), pruned from its combo's
  schedule, and excluded from ``passing`` — the rest of the search
  proceeds;
* **hangs** — with ``eval_timeout_s`` set (pool mode only), a future
  that exceeds the bound counts as a failure: the stuck worker is
  terminated with the pool and the point re-dispatched.

Store writes get the same treatment: an ``OSError`` from the append
path is retried briefly, then the store is dropped for the rest of the
run (``stats["store_errors"]`` says so) — a failing disk costs
resumability, never the search.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool

from repro import faults, obs

from repro.core.config import NetworkConfig
from repro.core.optimizer import DesignPoint
from repro.dse.frontier import halving_trajectories, pareto_front
from repro.dse.screen import ScreenPolicy
from repro.dse.space import Candidate, SearchSpace
from repro.dse.store import ResultStore, make_key
from repro.engine.engine import Engine
from repro.engine.graph import build_graph
from repro.engine.plan import compile_plan
from repro.hw.network_cost import graph_network_cost
from repro.nn.zoo import model_digest
from repro.serve.pool import config_digest

__all__ = ["EVALUATOR_SPECS", "EvalTask", "DSERecord", "DSEResult",
           "ParallelRunner"]

#: Full-fidelity evaluator -> (engine backend, backend options).  The
#: ``noise``/``surrogate`` rows replicate the legacy optimizer's exactly
#: (sample counts included) — that equality is what makes the facade
#: bit-identical to the pre-DSE loop and is pinned by a test.  ``exact``
#: runs the bit-level simulator itself: far costlier, which is where
#: screening pays off most.
EVALUATOR_SPECS = {
    "noise": ("noise", {"samples": 96}),
    "surrogate": ("surrogate", {"samples": 240}),
    "exact": ("exact", {}),
}

#: Evaluation batch size — the legacy evaluator classes' 256-image
#: chunking, kept so sampled-noise draws reproduce pre-engine results.
EVAL_BATCH = 256


@dataclasses.dataclass(frozen=True)
class EvalTask:
    """One evaluation to dispatch (pickled to worker processes).

    A :class:`repro.dse.space.Candidate` plus the evaluation ``stage``;
    the candidate is the single source of the design-point naming
    contract (``"MUX-APC-APC@1024"``) the bit-identity suite pins.
    """

    candidate: Candidate
    stage: str  # "full" | "screen"

    @property
    def kinds(self) -> tuple:
        return self.candidate.kinds

    @property
    def pooling(self) -> str:
        return self.candidate.pooling

    @property
    def weight_bits(self) -> tuple:
        return self.candidate.weight_bits

    @property
    def length(self) -> int:
        return self.candidate.length

    @property
    def seed(self) -> int:
        return self.candidate.seed

    @property
    def combo_label(self) -> str:
        return self.candidate.combo_label

    def config(self) -> NetworkConfig:
        """The design point, named exactly as the legacy loop named it."""
        return self.candidate.config()


class _EvalContext:
    """Per-process evaluation state: model, eval split, plan cache.

    One instance lives in the parent (``workers=1``) or in each worker
    process (constructed once by the pool initializer).  Plans are
    cached per (kinds, pooling, weight_bits) at ``max_length`` and
    re-targeted per task — the canonical-plan rule the optimizer's
    regression test pins.
    """

    def __init__(self, model, x_eval, y_eval, max_length,
                 full_backend, full_opts, full_images,
                 screen_backend=None, screen_opts=None, screen_images=0):
        self.model = model
        self.x = x_eval
        self.y = y_eval
        self.max_length = int(max_length)
        self.full_backend = full_backend
        self.full_opts = dict(full_opts)
        self.full_images = int(full_images)
        self.screen_backend = screen_backend
        self.screen_opts = dict(screen_opts or {})
        self.screen_images = int(screen_images)
        self._plans = {}

    def _base_plan(self, kinds, pooling, weight_bits):
        key = (kinds, pooling, weight_bits)
        plan = self._plans.get(key)
        if plan is None:
            config = Candidate(kinds, pooling, weight_bits,
                               self.max_length, 0).config()
            plan = compile_plan(self.model, config,
                                weight_bits=weight_bits)
            self._plans[key] = plan
        return plan

    def evaluate(self, task: EvalTask) -> float:
        """Error rate (%) of one task — a pure function of the task."""
        faults.fire("dse.evaluate",
                    label=f"{task.combo_label}@{task.length}:{task.stage}")
        with obs.span("dse.evaluate", combo=task.combo_label,
                      length=task.length, stage=task.stage):
            config = task.config()
            plan = self._base_plan(task.kinds, task.pooling,
                                   task.weight_bits
                                   ).with_length(task.length,
                                                 name=config.name)
            if task.stage == "screen":
                backend, opts, images = (self.screen_backend,
                                         self.screen_opts,
                                         self.screen_images)
            else:
                backend, opts, images = (self.full_backend, self.full_opts,
                                         self.full_images)
            engine = Engine(plan=plan, backend=backend, seed=task.seed,
                            **opts)
            return engine.error_rate(self.x[:images], self.y[:images],
                                     batch_size=EVAL_BATCH)


def _bump(stats: dict, key: str, n: int = 1) -> None:
    """Increment a runner stat and mirror it into the metrics registry.

    Chaos tests (and ``/metrics`` on a co-resident server) read the
    mirrored ``repro_dse_<key>_total`` counters instead of reaching into
    the runner's private stats dict.
    """
    stats[key] += n
    if n:
        obs.counter(f"repro_dse_{key}_total",
                    "Design-space-exploration runner events.").inc(n)


#: Worker-global context, set once per process by the pool initializer.
_WORKER_CTX = None


def _init_worker(payload: dict) -> None:
    global _WORKER_CTX
    _WORKER_CTX = _EvalContext(**payload)
    # Re-arm tracing/profiling from the environment: a spawn-started
    # worker reimports everything, and a fork-started one inherits a
    # recorder whose pid guard reopens the JSONL file on first emit.
    obs.maybe_enable_from_env()


def _worker_evaluate(task: EvalTask) -> float:
    return _WORKER_CTX.evaluate(task)


@dataclasses.dataclass(frozen=True)
class DSERecord:
    """One evaluated (or store-reused) point of a search."""

    kinds: tuple
    pooling: str
    weight_bits: tuple
    length: int
    stage: str          # "full" | "screen"
    error_pct: float    # None when poisoned (no number was produced)
    degradation_pct: float
    passed: bool        # full: met the threshold; screen: promoted
    reused: bool        # satisfied from the result store
    poisoned: bool = False  # quarantined after exhausting retries
    point: object = None  # DesignPoint (full-stage records only)

    @property
    def combo_label(self) -> str:
        return "-".join(self.kinds)

    @property
    def scenario_label(self) -> str:
        bits = ",".join("f" if b is None else str(b)
                        for b in self.weight_bits)
        return f"{self.combo_label}|{self.pooling}/w{bits}"


@dataclasses.dataclass
class DSEResult:
    """Outcome of one search.

    ``passing`` is exactly the legacy ``HolisticOptimizer.run`` return
    shape: every (configuration, length) point that met the accuracy
    budget, sorted by energy.  ``records`` is the full evaluation log
    (screen results included), ``frontier`` the generalized Pareto
    frontier of ``passing`` on (error, area, power, energy).
    """

    passing: list
    records: list
    frontier: list
    stats: dict

    def trajectories(self) -> dict:
        """Per-combo halving trajectories (see :mod:`repro.dse.frontier`)."""
        return halving_trajectories(self.records)


class ParallelRunner:
    """Parallel, resumable design-space exploration over one model.

    Parameters
    ----------
    trained:
        A :class:`repro.data.cache.TrainedModel`.
    space:
        The :class:`SearchSpace` to walk (default: the legacy space —
        the model's pooling, 8-bit weights, lengths 1024 → 64).
    threshold_pct:
        Accuracy budget: maximum error-rate degradation over the
        software baseline (the paper uses 1.5).
    eval_images:
        Test images per full evaluation.
    seed:
        Search seed; every point's evaluation seed derives from it
        deterministically (identically, matching the legacy loop).
    evaluator:
        ``"noise"`` (the paper's methodology, default), ``"surrogate"``
        (calibrated transfer curves) or ``"exact"`` (bit-level
        simulation — costly; combine with screening).
    workers:
        Process count; ``1`` evaluates in-process (no pool).
    screen:
        ``None``/``False`` (off), ``True`` (default policy) or a
        :class:`ScreenPolicy`.
    store:
        A :class:`ResultStore` for resumable/incremental searches.
    retries:
        Re-dispatches granted to a failing evaluation before it is
        quarantined (worker crashes, injected faults and timeouts all
        count as failures; a retried point recomputes the same pure
        function, so recovery never changes results).
    backoff_s:
        Base of the bounded exponential backoff between retry rounds
        (``backoff_s * 2**round``, capped at 2 s).
    eval_timeout_s:
        Wall-clock bound on one evaluation (pool mode only — an
        in-process evaluation cannot be preempted).  A future past the
        bound fails: the pool is torn down (terminating the stuck
        worker) and the point re-dispatched.
    """

    def __init__(self, trained, space: SearchSpace | None = None, *,
                 threshold_pct: float = 1.5, eval_images: int = 400,
                 seed: int = 0, evaluator: str = "noise",
                 workers: int = 1, screen=None,
                 store: ResultStore | None = None, verbose: bool = False,
                 retries: int = 2, backoff_s: float = 0.05,
                 eval_timeout_s: float | None = None):
        if evaluator not in EVALUATOR_SPECS:
            raise ValueError(
                f"evaluator must be one of {sorted(EVALUATOR_SPECS)}, "
                f"got {evaluator!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s}")
        if eval_timeout_s is not None and eval_timeout_s <= 0:
            raise ValueError(
                f"eval_timeout_s must be > 0, got {eval_timeout_s}")
        self.trained = trained
        self.space = space if space is not None else \
            SearchSpace.from_trained(trained)
        self.threshold_pct = float(threshold_pct)
        self.seed = int(seed)
        self.evaluator = evaluator
        self.workers = int(workers)
        if screen is True:
            screen = ScreenPolicy()
        elif screen is False:
            screen = None
        self.screen = screen
        self.store = store
        self.verbose = verbose
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.eval_timeout_s = (None if eval_timeout_s is None
                               else float(eval_timeout_s))
        self._store_disabled = False
        self.digest = model_digest(trained.model)
        if store is not None and store.model_digest and \
                store.model_digest != self.digest:
            raise ValueError(
                "result store belongs to a different model "
                f"({store.model_digest} != {self.digest})")
        x = trained.bipolar_test_images()[:eval_images]
        self._x = x
        self._y = trained.y_test[:eval_images]
        self.eval_images = len(x)
        backend, opts = EVALUATOR_SPECS[evaluator]
        self._full_backend, self._full_opts = backend, opts
        if self.screen is not None:
            self._screen_images = self.screen.resolve_images(
                self.eval_images)
            self._screen_opts = self.screen.backend_opts()
        else:
            self._screen_images = 0
            self._screen_opts = {}

    # ------------------------------------------------------------------
    def _context_payload(self) -> dict:
        payload = dict(
            model=self.trained.model, x_eval=self._x, y_eval=self._y,
            max_length=self.space.max_length,
            full_backend=self._full_backend, full_opts=self._full_opts,
            full_images=self.eval_images,
        )
        if self.screen is not None:
            payload.update(screen_backend=self.screen.backend,
                           screen_opts=self._screen_opts,
                           screen_images=self._screen_images)
        return payload

    def _task(self, scenario, kinds, length: int, stage: str) -> EvalTask:
        return EvalTask(
            candidate=Candidate(tuple(kinds), scenario.pooling,
                                scenario.weight_bits, length, self.seed),
            stage=stage)

    def _stage_signature(self, stage: str) -> tuple:
        """(backend signature, images) pinning a stage's determinism."""
        if stage == "screen":
            backend, opts, images = (self.screen.backend,
                                     self._screen_opts,
                                     self._screen_images)
        else:
            backend, opts, images = (self._full_backend, self._full_opts,
                                     self.eval_images)
        sig = backend + "".join(f";{k}={v}" for k, v in sorted(opts.items()))
        return sig, images

    def _store_key(self, task: EvalTask) -> str:
        sig, images = self._stage_signature(task.stage)
        return make_key(self.digest, config_digest(task.config()),
                        task.weight_bits, task.length, task.seed,
                        task.stage, sig, images)

    def _store_record(self, task: EvalTask, error, degradation,
                      passed: bool, cost, stats: dict,
                      poisoned: bool = False) -> None:
        if self.store is None or self._store_disabled:
            return
        payload = {
            "model": getattr(self.trained, "model_name", ""),
            "combo": task.combo_label, "pooling": task.pooling,
            "weight_bits": list(task.weight_bits), "length": task.length,
            "seed": task.seed, "stage": task.stage,
            "error_pct": None if error is None else float(error),
            "degradation_pct": (None if degradation is None
                                else float(degradation)),
            "passed": bool(passed),
        }
        if poisoned:
            payload["poisoned"] = True
        if cost is not None:
            payload["cost"] = {"area_mm2": cost.area_mm2,
                               "power_w": cost.power_w,
                               "delay_ns": cost.delay_ns,
                               "energy_uj": cost.energy_uj}
        # A failing disk must never fail the search: retry the append
        # briefly, then run the rest of the search store-less (the
        # in-memory index keeps serving resume hits; unpersisted points
        # simply re-evaluate on the next resume).
        for attempt in range(3):
            try:
                self.store.record(self._store_key(task), payload)
                return
            except OSError:
                _bump(stats, "store_errors")
                time.sleep(self.backoff_s * (2 ** attempt))
        self._store_disabled = True
        if self.verbose:  # pragma: no cover - console output
            print("result store disabled after repeated write failures; "
                  "the search continues without persistence")

    def _executor(self, state: dict):
        """The lazily-created evaluation executor (pool or in-process).

        Created on the first store *miss* — a fully-resumed search never
        forks a worker (or even builds the in-process plan cache).
        """
        if self.workers == 1:
            if state.get("ctx") is None:
                state["ctx"] = _EvalContext(**self._context_payload())
            return None, state["ctx"]
        if state.get("pool") is None:
            methods = multiprocessing.get_all_start_methods()
            mp_ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else None)
            state["pool"] = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=mp_ctx,
                initializer=_init_worker,
                initargs=(self._context_payload(),))
        return state["pool"], None

    def _kill_pool(self, state: dict, stats: dict) -> None:
        """Tear down a broken/stuck pool so the next round respawns it."""
        pool = state["pool"]
        if pool is None:
            return
        state["pool"] = None
        _bump(stats, "respawns")
        # Terminate before shutdown: a hung worker would never drain its
        # work queue, and shutdown(wait=False) alone leaves it running.
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already dead
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _evaluate_batch(self, tasks, state: dict, stats: dict):
        """Evaluate ``tasks``; returns (errors, reused, poisoned) in order.

        Store hits short-circuit (a stored poisoned point stays
        quarantined); misses dispatch to the pool (or run in-process)
        and are *gathered in submission order* — completion order never
        influences results.  Failed dispatches (worker death, in-band
        exception, timeout) are re-dispatched with bounded exponential
        backoff; a point that exhausts ``retries`` is marked poisoned.
        """
        errors = [None] * len(tasks)
        reused = [False] * len(tasks)
        poisoned = [False] * len(tasks)
        pending = []
        for i, task in enumerate(tasks):
            record = (self.store.get(self._store_key(task))
                      if self.store is not None else None)
            if record is not None:
                reused[i] = True
                if record.get("poisoned"):
                    poisoned[i] = True
                else:
                    errors[i] = float(record["error_pct"])
            else:
                pending.append(i)
        attempts = dict.fromkeys(pending, 0)
        retry_round = 0
        while pending:
            failed = []
            pool, ctx = self._executor(state)
            if pool is not None:
                futures = [(i, pool.submit(_worker_evaluate, tasks[i]))
                           for i in pending]
                broken = False
                for i, future in futures:
                    try:
                        # After a timeout/pool-break, drain the rest on
                        # a short fuse: finished results still come
                        # through, in-flight ones fail and re-dispatch
                        # (recomputing is cheap next to waiting out a
                        # full timeout per future on a dead pool).
                        errors[i] = future.result(
                            0.25 if broken else self.eval_timeout_s)
                    except _FutureTimeout:
                        failed.append(i)
                        broken = True
                        _bump(stats, "timeouts")
                    except BrokenProcessPool:
                        failed.append(i)
                        broken = True
                    except Exception:
                        failed.append(i)  # in-band raise in the worker
                if broken:
                    self._kill_pool(state, stats)
            else:
                for i in pending:
                    try:
                        errors[i] = ctx.evaluate(tasks[i])
                    except Exception:
                        failed.append(i)
            pending = []
            for i in failed:
                attempts[i] += 1
                if attempts[i] > self.retries:
                    poisoned[i] = True
                    errors[i] = None
                    _bump(stats, "poisoned")
                else:
                    pending.append(i)
            if pending:
                _bump(stats, "retries", len(pending))
                time.sleep(min(self.backoff_s * (2 ** retry_round), 2.0))
                retry_round += 1
        return errors, reused, poisoned

    # ------------------------------------------------------------------
    def run(self) -> DSEResult:
        """Run the halving search; returns the :class:`DSEResult`."""
        start = time.perf_counter()
        space = self.space
        scenarios = space.scenarios()
        survivors = {scenario: list(space.combos())
                     for scenario in scenarios}
        software = self.trained.software_error_pct
        records, passing = [], []
        stats = {"full_evals": 0, "screen_evals": 0, "screened_out": 0,
                 "reused": 0, "points": 0, "retries": 0, "respawns": 0,
                 "timeouts": 0, "poisoned": 0, "store_errors": 0}
        state = {"pool": None, "ctx": None}
        try:
            for length in space.lengths():
                round_cells = [(scenario, combo) for scenario in scenarios
                               for combo in survivors[scenario]]
                if not round_cells:
                    break
                promoted = round_cells
                if self.screen is not None:
                    stasks = [self._task(sc, combo, length, "screen")
                              for sc, combo in round_cells]
                    serrs, sreused, spois = self._evaluate_batch(
                        stasks, state, stats)
                    promoted = []
                    for cell, task, error, was_reused, was_poisoned in zip(
                            round_cells, stasks, serrs, sreused, spois):
                        if was_poisoned:
                            # Quarantined: prune the combo like a failed
                            # screen, but record the distinct outcome.
                            records.append(DSERecord(
                                kinds=task.kinds, pooling=task.pooling,
                                weight_bits=task.weight_bits,
                                length=length, stage="screen",
                                error_pct=None, degradation_pct=None,
                                passed=False, reused=was_reused,
                                poisoned=True))
                            self._store_record(task, None, None, False,
                                               None, stats, poisoned=True)
                            _bump(stats, "reused", 1 if was_reused else 0)
                            continue
                        degradation = error - software
                        ok = self.screen.promotes(degradation,
                                                  self.threshold_pct)
                        records.append(DSERecord(
                            kinds=task.kinds, pooling=task.pooling,
                            weight_bits=task.weight_bits, length=length,
                            stage="screen", error_pct=error,
                            degradation_pct=degradation, passed=ok,
                            reused=was_reused))
                        self._store_record(task, error, degradation, ok,
                                           None, stats)
                        _bump(stats, "screen_evals", 0 if was_reused else 1)
                        _bump(stats, "reused", 1 if was_reused else 0)
                        if ok:
                            promoted.append(cell)
                        else:
                            _bump(stats, "screened_out")
                            if self.verbose:  # pragma: no cover - console
                                print(f"{task.config().describe():34s} "
                                      f"screen={degradation:+.2f}% "
                                      f"SCREENED-OUT")
                ftasks = [self._task(sc, combo, length, "full")
                          for sc, combo in promoted]
                ferrs, freused, fpois = self._evaluate_batch(
                    ftasks, state, stats)
                next_survivors = {scenario: [] for scenario in scenarios}
                for (scenario, combo), task, error, was_reused, \
                        was_poisoned in zip(promoted, ftasks, ferrs,
                                            freused, fpois):
                    if was_poisoned:
                        records.append(DSERecord(
                            kinds=task.kinds, pooling=task.pooling,
                            weight_bits=task.weight_bits, length=length,
                            stage="full", error_pct=None,
                            degradation_pct=None, passed=False,
                            reused=was_reused, poisoned=True))
                        self._store_record(task, None, None, False, None,
                                           stats, poisoned=True)
                        _bump(stats, "reused", 1 if was_reused else 0)
                        if self.verbose:  # pragma: no cover - console
                            print(f"{task.config().describe():34s} "
                                  "POISONED (quarantined)")
                        continue
                    degradation = error - software
                    ok = degradation <= self.threshold_pct
                    config = task.config()
                    cost = graph_network_cost(
                        build_graph(self.trained.model, config),
                        weight_bits=task.weight_bits)
                    point = DesignPoint(config=config, error_pct=error,
                                        degradation_pct=degradation,
                                        cost=cost)
                    records.append(DSERecord(
                        kinds=task.kinds, pooling=task.pooling,
                        weight_bits=task.weight_bits, length=length,
                        stage="full", error_pct=error,
                        degradation_pct=degradation, passed=ok,
                        reused=was_reused, point=point))
                    self._store_record(task, error, degradation, ok, cost,
                                       stats)
                    _bump(stats, "full_evals", 0 if was_reused else 1)
                    _bump(stats, "reused", 1 if was_reused else 0)
                    _bump(stats, "points")
                    if self.verbose:  # pragma: no cover - console output
                        print(f"{point.summary()}  "
                              f"{'PASS' if ok else 'FAIL'}")
                    if ok:
                        passing.append(point)
                        next_survivors[scenario].append(combo)
                survivors = next_survivors
        finally:
            if state["pool"] is not None:
                state["pool"].shutdown(wait=True, cancel_futures=True)
        passing.sort(key=lambda p: p.cost.energy_uj)
        stats.update(
            wall_s=round(time.perf_counter() - start, 4),
            workers=self.workers, evaluator=self.evaluator,
            eval_images=self.eval_images,
            threshold_pct=self.threshold_pct, space=space.describe(),
            screen=(dataclasses.asdict(self.screen)
                    if self.screen is not None else None),
            screen_images=self._screen_images or None,
        )
        return DSEResult(passing=passing, records=records,
                         frontier=pareto_front(passing), stats=stats)
