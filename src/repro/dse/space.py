"""The explicit SC-DCNN search space the DSE runner walks.

A search space is the cross product of four axes:

* **kinds combos** — one MUX/APC choice per hidden weight layer, the
  depth *derived from the lowered layer graph* of the trained model (so
  every :mod:`repro.nn.zoo` architecture is searchable, not just the
  paper's LeNet-5).  The last hidden layer defaults to APC-only, the
  paper's Table 6 restriction (a MUX inner product over the wide
  pre-logit stage scales its output into the noise floor);
* **pooling** — network-wide Max/Average pooling.  Defaults to the
  pooling the model was trained with; passing both lets the accuracy
  filter price the mismatch;
* **weight bits** — storage precisions to search (each normalized to a
  per-layer tuple, Section 5.3 semantics);
* **lengths** — the Section 6.3 halving schedule ``max_length,
  max_length/2, … ≥ min_length``.

The (pooling × weight_bits) cells are the space's *scenarios*: each
scenario runs the halving procedure independently over the kind combos,
and a combo that misses the accuracy budget is pruned from the rest of
its scenario's schedule — so :meth:`SearchSpace.size` is an upper bound
on evaluations, which the runner reports against honestly.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.core.config import NetworkConfig, PoolKind, resolve_pooling
from repro.engine.graph import build_graph
from repro.engine.plan import normalize_weight_bits
from repro.utils.validation import check_positive_int

__all__ = ["Candidate", "Scenario", "SearchSpace", "halving_lengths"]

KIND_CHOICES = ("MUX", "APC")


def _pooling_str(pooling) -> str:
    """Canonical ``"max"``/``"avg"`` form of any pooling spec."""
    return "max" if resolve_pooling(pooling) is PoolKind.MAX else "avg"


def halving_lengths(max_length: int, min_length: int) -> tuple:
    """The halving schedule ``max_length, max_length/2, … ≥ min_length``."""
    check_positive_int(max_length, "max_length")
    check_positive_int(min_length, "min_length")
    if max_length < min_length:
        raise ValueError(
            f"max_length ({max_length}) must be >= min_length "
            f"({min_length})")
    lengths = []
    length = max_length
    while length >= min_length:
        lengths.append(length)
        length //= 2
    return tuple(lengths)


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One (pooling, weight_bits) cell of the search space."""

    pooling: str       # "max" | "avg"
    weight_bits: tuple  # normalized per-layer tuple (entries int or None)

    def label(self) -> str:
        bits = ",".join("f" if b is None else str(b)
                        for b in self.weight_bits)
        return f"{self.pooling}/w{bits}"


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One fully-specified evaluation point of the space."""

    kinds: tuple       # e.g. ("MUX", "APC", "APC")
    pooling: str
    weight_bits: tuple
    length: int
    seed: int

    @property
    def combo_label(self) -> str:
        return "-".join(self.kinds)

    @property
    def scenario(self) -> Scenario:
        return Scenario(self.pooling, self.weight_bits)

    def config(self) -> NetworkConfig:
        """The :class:`NetworkConfig` this candidate evaluates.

        The name matches the legacy optimizer's labelling
        (``"MUX-APC-APC@1024"``) exactly — the equivalence suite
        compares design points bit-for-bit, names included.
        """
        return NetworkConfig.from_kinds(
            resolve_pooling(self.pooling), self.length, self.kinds,
            name=f"{self.combo_label}@{self.length}")


class SearchSpace:
    """The candidate axes of one design-space exploration.

    Parameters
    ----------
    model:
        The trained :class:`repro.nn.module.Sequential`.  The hidden
        FEB-layer count is derived by lowering the model into the layer
        graph, so any architecture the engine can lower is searchable.
    poolings:
        Pooling axis (``"max"``/``"avg"`` entries).
    weight_bits:
        Weight-precision axis; each entry is an int, a per-layer tuple,
        or ``None`` (float storage), normalized per the model's depth.
    max_length / min_length:
        Halving-schedule bounds (Section 6.3 walks 1024 → 64).
    restrict_last_to_apc:
        Pin the last hidden layer to APC (the paper's Table 6 rule).
    """

    def __init__(self, model, *, poolings=("max",), weight_bits=(8,),
                 max_length: int = 1024, min_length: int = 64,
                 restrict_last_to_apc: bool = True):
        self.model = model
        # Derive the searchable depth from the lowered graph: lower a
        # probe config at the maximal depth the zoo reports, then count
        # the graph's weight layers.  Lowering also validates the stack
        # up front, so a structurally broken model fails here and not
        # inside a worker process.
        from repro.nn.zoo import hidden_layer_count
        probe = NetworkConfig.from_kinds(
            resolve_pooling(poolings[0]), max_length,
            ("APC",) * hidden_layer_count(model), name="space-probe")
        graph = build_graph(model, probe)
        self.hidden_layers = len(graph.nodes) - 1
        self.n_weight_layers = len(graph.nodes)
        self.poolings = tuple(_pooling_str(p) for p in poolings)
        options = (weight_bits if isinstance(weight_bits, (tuple, list))
                   else (weight_bits,))
        normalized = [normalize_weight_bits(b, n_layers=self.n_weight_layers)
                      for b in options]
        for bits in normalized:
            if any(b is None for b in bits):
                # The simulator can run float-stored weights, but the
                # hardware roll-up cannot price float storage — and a
                # search without costs has no frontier.
                raise ValueError(
                    "weight_bits=None (float storage) cannot be costed "
                    "by the hardware model; search explicit bit widths")
        # De-duplicate post-normalization (an int and its expanded tuple
        # describe the same storage scheme) while preserving order.
        self.weight_bits = tuple(dict.fromkeys(normalized))
        self.max_length = int(max_length)
        self.min_length = int(min_length)
        self.restrict_last_to_apc = bool(restrict_last_to_apc)
        self._lengths = halving_lengths(self.max_length, self.min_length)

    # ------------------------------------------------------------------
    @classmethod
    def from_trained(cls, trained, *, weight_bits=(8,),
                     max_length: int = 1024, min_length: int = 64,
                     restrict_last_to_apc: bool = True) -> "SearchSpace":
        """The space the legacy optimizer explored for ``trained``.

        Pooling is pinned to the pooling the model was trained with (the
        paper trains one model per pooling strategy).
        """
        return cls(trained.model, poolings=(trained.pooling,),
                   weight_bits=weight_bits, max_length=max_length,
                   min_length=min_length,
                   restrict_last_to_apc=restrict_last_to_apc)

    def combos(self) -> list:
        """Kind combos in the legacy optimizer's enumeration order."""
        last = (("APC",) if self.restrict_last_to_apc else KIND_CHOICES)
        return [combo for combo in itertools.product(
            *([KIND_CHOICES] * (self.hidden_layers - 1) + [last]))]

    def lengths(self) -> tuple:
        """The halving schedule, longest first."""
        return self._lengths

    def scenarios(self) -> list:
        """(pooling × weight_bits) cells, pooling-major."""
        return [Scenario(p, b) for p in self.poolings
                for b in self.weight_bits]

    def candidates(self, seed: int = 0):
        """Every candidate of the full grid (before halving pruning)."""
        for length in self._lengths:
            for scenario in self.scenarios():
                for kinds in self.combos():
                    yield Candidate(kinds, scenario.pooling,
                                    scenario.weight_bits, length, seed)

    @property
    def size(self) -> int:
        """Upper bound on evaluation points (halving prunes below it)."""
        return (len(self.combos()) * len(self.scenarios())
                * len(self._lengths))

    def describe(self) -> str:
        return (f"{len(self.combos())} combos x {len(self.scenarios())} "
                f"scenario(s) x lengths {'-'.join(map(str, self._lengths))} "
                f"(<= {self.size} points)")
