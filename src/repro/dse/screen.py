"""Surrogate pre-screening: skip full evaluations a cheap pass rules out.

The halving search spends most of its budget evaluating points that fail
the accuracy budget by a mile (a MUX inner product over hundreds of
inputs at a short stream length is hopeless, and the search still pays a
full-fidelity evaluation to learn it).  Screening runs every candidate
through a *cheap, deterministic* pass first — by default the calibrated
transfer-curve surrogate with noise sampling off, fewer calibration
samples and a quarter of the evaluation images — and only *promotes*
candidates whose screened degradation lands within ``margin_pct`` of the
accuracy threshold to the full evaluation.  Screened-out candidates
count as failures for the halving loop (their combo is pruned), exactly
as a failed full evaluation would.

Margin semantics: a candidate is promoted when

    ``screen_degradation <= threshold_pct + margin_pct``

so the margin is the error-percentage slack absorbing the screen's
model mismatch.  Screening is an *approximation* — a margin of 0 trusts
the surrogate completely; the default is deliberately conservative
(calibrated so that on the LeNet-5 space even a briefly-trained model's
surrogate-vs-noise deviations never screen out a point the full
evaluation would have passed; the conformance suite asserts exactly
that).  The runner reports screened-out counts honestly — a screened
search that saved nothing says so.
"""

from __future__ import annotations

import dataclasses

__all__ = ["ScreenPolicy"]

#: Screen backends must be deterministic given a seed; these opts pin
#: the cheap configurations (the surrogate's noise sampling off).
_BACKEND_OPTS = {
    "surrogate": {"noisy": False},
    "float": {},
    "noise": {},
}


@dataclasses.dataclass(frozen=True)
class ScreenPolicy:
    """Configuration of the pre-screening pass.

    Attributes
    ----------
    margin_pct:
        Promotion slack over the accuracy threshold (see module doc).
    images:
        Evaluation images for the screen (``None`` → a quarter of the
        full evaluation's, floored at 32).
    samples:
        Calibration samples per surrogate transfer curve (the full
        surrogate evaluator uses 240).
    backend:
        Screening backend: ``"surrogate"`` (default, deterministic
        transfer curves), ``"float"`` or ``"noise"``.
    """

    margin_pct: float = 20.0
    images: int | None = None
    samples: int = 60
    backend: str = "surrogate"

    def __post_init__(self):
        if self.backend not in _BACKEND_OPTS:
            raise ValueError(
                f"screen backend must be one of "
                f"{sorted(_BACKEND_OPTS)}, got {self.backend!r}")
        if self.margin_pct < 0:
            raise ValueError(
                f"margin_pct must be >= 0, got {self.margin_pct}")

    def resolve_images(self, eval_images: int) -> int:
        """Images per screen evaluation (never more than the full pass)."""
        if self.images is not None:
            return min(int(self.images), int(eval_images))
        return min(max(int(eval_images) // 4, 32), int(eval_images))

    def backend_opts(self) -> dict:
        """Engine options of the screening backend."""
        opts = dict(_BACKEND_OPTS[self.backend])
        if self.backend in ("surrogate", "noise"):
            opts["samples"] = int(self.samples)
        return opts

    def promotes(self, screen_degradation_pct: float,
                 threshold_pct: float) -> bool:
        """Whether a screened candidate proceeds to full evaluation."""
        return screen_degradation_pct <= threshold_pct + self.margin_pct
