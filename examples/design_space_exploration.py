"""Section 6.3's holistic optimization, reproduced end to end.

Enumerates layer-wise feature-extraction-block assignments, evaluates
each configuration's network accuracy with the paper's noise-injection
methodology, prunes those violating the accuracy threshold, halves the
bit-stream length and iterates — then prints the surviving design points
with their hardware costs and marks the Pareto frontier (the paper's
Table 6 emerges from exactly this loop).

Run:  python examples/design_space_exploration.py
"""

from repro.analysis.tables import format_table
from repro.core.optimizer import HolisticOptimizer
from repro.data.cache import get_trained_lenet


def main():
    trained = get_trained_lenet(pooling="max")
    print(f"software baseline error: {trained.software_error_pct:.2f}%")

    opt = HolisticOptimizer(trained, threshold_pct=8.0, eval_images=300,
                            seed=5)
    points = opt.run(max_length=1024, min_length=128)
    front = set(id(p) for p in opt.pareto_front(points))

    rows = []
    for p in points:
        rows.append([
            "*" if id(p) in front else "",
            p.config.describe(),
            f"{p.error_pct:.2f}%",
            f"{p.degradation_pct:+.2f}%",
            f"{p.cost.area_mm2:.1f}",
            f"{p.cost.power_w:.2f}",
            f"{p.cost.energy_uj:.2f}",
        ])
    print(format_table(
        ["", "Design point", "Error", "Degradation", "Area mm²",
         "Power W", "Energy µJ"],
        rows,
        title="Surviving design points (* = Pareto-optimal on "
              "error/area/energy)",
    ))
    if points:
        best = points[0]
        print(f"\nmost energy-efficient survivor: {best.config.describe()} "
              f"at {best.cost.energy_uj:.2f} µJ/image")


if __name__ == "__main__":
    main()
