"""End-to-end SC-DCNN inference: LeNet-5, bit by bit.

Trains (or loads from cache) the paper's LeNet-5 on the synthetic digit
dataset, maps it onto an all-APC max-pooling SC configuration, and runs
exact bit-level stochastic inference on a handful of test digits —
comparing the SC predictions with the floating-point model's.

Run:  python examples/lenet5_sc_inference.py
"""

import numpy as np

from repro.core.config import NetworkConfig, PoolKind
from repro.core.network import SCNetwork
from repro.data.cache import get_trained_lenet


def ascii_digit(image: np.ndarray) -> str:
    """Render a 28×28 [0,1] image as ASCII art."""
    chars = " .:-=+*#%@"
    rows = []
    for r in range(0, 28, 2):
        row = image[r]
        rows.append("".join(chars[int(v * (len(chars) - 1))] for v in row))
    return "\n".join(rows)


def main():
    print("Loading / training LeNet-5 (cached after the first run)...")
    trained = get_trained_lenet(pooling="max", verbose=True)
    print(f"software error rate: {trained.software_error_pct:.2f}%\n")

    config = NetworkConfig.from_kinds(
        PoolKind.MAX, 1024, ("APC", "APC", "APC"), name="demo"
    )
    print(f"SC configuration: {config.describe()}")
    sc = SCNetwork(trained.model, config, seed=3, weight_bits=7)

    images = trained.bipolar_test_images()[:6]
    labels = trained.y_test[:6]
    sw_preds = trained.model.predict(images)

    for i, (img, label) in enumerate(zip(images, labels)):
        logits = sc.forward_image(img)
        sc_pred = int(np.argmax(logits))
        print(f"\ndigit #{i} (label {label})")
        print(ascii_digit(trained.x_test[i, 0]))
        print(f"  stochastic hardware -> {sc_pred}   "
              f"float software -> {sw_preds[i]}   "
              f"{'OK' if sc_pred == label else 'MISS'}")

    err = 100.0 * float((sc.predict(images) != labels).mean())
    print(f"\nSC error on this sample: {err:.1f}% "
          f"(software: {100.0 * float((sw_preds != labels).mean()):.1f}%)")


if __name__ == "__main__":
    main()
