"""End-to-end SC-DCNN inference: LeNet-5, bit by bit, three ways.

Trains (or loads from cache) the paper's LeNet-5 on the synthetic digit
dataset, lowers it onto an all-APC max-pooling SC configuration through
the unified layer-graph engine, and runs the *same compiled plan* through
three backends: exact bit-level stochastic simulation (batched — all
digits simulated in one engine call), the calibrated surrogate, and the
float software baseline.

Run:  python examples/lenet5_sc_inference.py
"""

import time

import numpy as np

from repro.core.config import NetworkConfig, PoolKind
from repro.data.cache import get_trained_lenet
from repro.engine import Engine, compile_plan


def ascii_digit(image: np.ndarray) -> str:
    """Render a 28×28 [0,1] image as ASCII art."""
    chars = " .:-=+*#%@"
    rows = []
    for r in range(0, 28, 2):
        row = image[r]
        rows.append("".join(chars[int(v * (len(chars) - 1))] for v in row))
    return "\n".join(rows)


def main():
    print("Loading / training LeNet-5 (cached after the first run)...")
    trained = get_trained_lenet(pooling="max", verbose=True)
    print(f"software error rate: {trained.software_error_pct:.2f}%\n")

    config = NetworkConfig.from_kinds(
        PoolKind.MAX, 1024, ("APC", "APC", "APC"), name="demo"
    )
    print(f"SC configuration: {config.describe()}")

    # One compiled plan (quantized weights, gain compensation, state
    # numbers, gather indices) drives every backend.
    plan = compile_plan(trained.model, config, weight_bits=7)
    exact = Engine(backend="exact", plan=plan, seed=3)
    surrogate = Engine(backend="surrogate", plan=plan, seed=3, noisy=False)
    software = Engine(backend="float", plan=plan)

    images = trained.bipolar_test_images()[:6]
    labels = trained.y_test[:6]

    start = time.perf_counter()
    logits = exact.forward(images)          # one batched bit-level call
    elapsed = time.perf_counter() - start
    sc_preds = np.argmax(logits, axis=1)
    fast_preds = surrogate.predict(images)
    sw_preds = software.predict(images)

    for i, label in enumerate(labels):
        print(f"\ndigit #{i} (label {label})")
        print(ascii_digit(trained.x_test[i, 0]))
        print(f"  stochastic hardware -> {sc_preds[i]}   "
              f"calibrated surrogate -> {fast_preds[i]}   "
              f"float software -> {sw_preds[i]}   "
              f"{'OK' if sc_preds[i] == label else 'MISS'}")

    err = 100.0 * float((sc_preds != labels).mean())
    print(f"\nSC error on this sample: {err:.1f}% "
          f"(software: {100.0 * float((sw_preds != labels).mean()):.1f}%)")
    print(f"batched exact simulation: {len(images) / elapsed:.2f} images/s "
          f"({elapsed:.2f}s for {len(images)} digits)")


if __name__ == "__main__":
    main()
