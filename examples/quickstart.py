"""Quickstart: stochastic-computing arithmetic in five minutes.

Walks through the SC substrate bottom-up, exactly as Section 3.2 of the
paper introduces it: encoding numbers as bit-streams, multiplying with
XNOR gates, adding with MUXes and parallel counters, and squashing with
the Stanh FSM — then lowers a *non-LeNet* model-zoo network onto the SC
engine end to end.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.sc import activation, adders, ops
from repro.sc.encoding import Encoding
from repro.sc.rng import StreamFactory


def main():
    length = 2048
    fab = StreamFactory(seed=42, encoding=Encoding.BIPOLAR)

    # 1. Encode: a bipolar stream carries x via P(bit=1) = (x+1)/2.
    x = fab.streams(0.4, length)
    print(f"encoded 0.4   -> decoded {float(x.value()):+.3f} "
          f"({x.popcount()} ones in {length} bits)")

    # 2. Multiply: one XNOR gate per product (Figure 4b).
    a = fab.streams(0.6, length)
    b = fab.streams(-0.5, length)
    prod = a.xnor(b)
    print(f"0.6 * -0.5    -> decoded {float(prod.value()):+.3f} "
          f"(exact -0.300)")

    # 3. Add with a MUX: output is the sum scaled by 1/n (Figure 5b).
    values = np.array([0.8, -0.4, 0.2, -0.2])
    streams = fab.packed(values, length)
    select = fab.select_signal(len(values), length)
    summed = adders.mux_add(streams, select, length)
    decoded = 2.0 * ops.popcount(summed, length) / length - 1.0
    print(f"MUX sum/4     -> decoded {decoded:+.3f} "
          f"(exact {values.mean():+.3f})")

    # 4. Add with a parallel counter: binary counts per cycle (Figure 5c).
    counts = adders.apc_count(streams, length)
    est = (2.0 * counts.sum() - len(values) * length) / length
    print(f"APC sum       -> decoded {est:+.3f} "
          f"(exact {values.sum():+.3f})")

    # 5. Activate: the K-state Stanh FSM computes tanh(K/2 · x).
    k = 8
    y = fab.streams(0.3, 8192)
    out = activation.stanh(y, k)
    print(f"Stanh(8, 0.3) -> decoded {float(out.value()):+.3f} "
          f"(tanh(1.2) = {np.tanh(1.2):+.3f})")

    # 6. A whole non-LeNet network: train a conv-free MLP from the model
    # zoo for a few seconds, lower it onto the layer-graph engine, and
    # run the exact bit-level simulation next to the float baseline.
    from repro.core.config import NetworkConfig, PoolKind
    from repro.data.synthetic_mnist import generate_dataset, to_bipolar
    from repro.engine import Engine
    from repro.nn.trainer import Trainer
    from repro.nn.zoo import build_zoo_model, default_kinds, get_spec

    print("\ntraining the zoo 'mlp' model (784-128-32-10, ~seconds)...")
    x_train, y_train, x_test, y_test = generate_dataset(
        n_train=600, n_test=64, seed=7)
    mlp = build_zoo_model("mlp", seed=0)
    Trainer(mlp, lr=get_spec("mlp").lr, batch_size=64, seed=0).fit(
        to_bipolar(x_train), y_train, epochs=10)
    config = NetworkConfig.from_kinds(PoolKind.MAX, 512,
                                      default_kinds("mlp"), name="mlp-demo")
    images, labels = to_bipolar(x_test), y_test
    for backend in ("exact", "float"):
        engine = Engine(mlp, config, backend=backend, seed=0)
        err = engine.error_rate(images, labels)
        print(f"mlp / {backend:5s} backend  L={config.length}  "
              f"error rate {err:.1f}%")
    print("(a conv-free stack degrades more under SC noise than LeNet: "
          "its 785-input\n first layer has no pooling to average the "
          "stream noise away — one reason the\n paper builds on "
          "conv+pool feature extraction blocks)")


if __name__ == "__main__":
    main()
