"""Quickstart: stochastic-computing arithmetic in five minutes.

Walks through the SC substrate bottom-up, exactly as Section 3.2 of the
paper introduces it: encoding numbers as bit-streams, multiplying with
XNOR gates, adding with MUXes and parallel counters, and squashing with
the Stanh FSM.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.sc import activation, adders, ops
from repro.sc.encoding import Encoding
from repro.sc.rng import StreamFactory


def main():
    length = 2048
    fab = StreamFactory(seed=42, encoding=Encoding.BIPOLAR)

    # 1. Encode: a bipolar stream carries x via P(bit=1) = (x+1)/2.
    x = fab.streams(0.4, length)
    print(f"encoded 0.4   -> decoded {float(x.value()):+.3f} "
          f"({x.popcount()} ones in {length} bits)")

    # 2. Multiply: one XNOR gate per product (Figure 4b).
    a = fab.streams(0.6, length)
    b = fab.streams(-0.5, length)
    prod = a.xnor(b)
    print(f"0.6 * -0.5    -> decoded {float(prod.value()):+.3f} "
          f"(exact -0.300)")

    # 3. Add with a MUX: output is the sum scaled by 1/n (Figure 5b).
    values = np.array([0.8, -0.4, 0.2, -0.2])
    streams = fab.packed(values, length)
    select = fab.select_signal(len(values), length)
    summed = adders.mux_add(streams, select, length)
    decoded = 2.0 * ops.popcount(summed, length) / length - 1.0
    print(f"MUX sum/4     -> decoded {decoded:+.3f} "
          f"(exact {values.mean():+.3f})")

    # 4. Add with a parallel counter: binary counts per cycle (Figure 5c).
    counts = adders.apc_count(streams, length)
    est = (2.0 * counts.sum() - len(values) * length) / length
    print(f"APC sum       -> decoded {est:+.3f} "
          f"(exact {values.sum():+.3f})")

    # 5. Activate: the K-state Stanh FSM computes tanh(K/2 · x).
    k = 8
    y = fab.streams(0.3, 8192)
    out = activation.stanh(y, k)
    print(f"Stanh(8, 0.3) -> decoded {float(out.value()):+.3f} "
          f"(tanh(1.2) = {np.tanh(1.2):+.3f})")


if __name__ == "__main__":
    main()
