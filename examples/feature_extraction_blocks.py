"""Compare the four feature extraction block designs (Section 4.4).

Builds MUX-Avg-Stanh, MUX-Max-Stanh, APC-Avg-Btanh and APC-Max-Btanh for
a 5×5 receptive field, measures each block's accuracy against the
software reference tanh(pool(Σxw)), and prints its hardware cost — the
accuracy/cost trade-off that drives the paper's layer-wise configuration
strategy.

Run:  python examples/feature_extraction_blocks.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.feature_extraction import FEB_CLASSES, make_feb
from repro.hw.blocks_cost import feb_metrics


def main():
    n, length, trials = 25, 1024, 64
    rng = np.random.default_rng(7)
    x = rng.uniform(-1, 1, (trials, 4, n))
    w = rng.uniform(-1, 1, (trials, 4, n)) * (3.6 / np.sqrt(n))

    rows = []
    for kind in FEB_CLASSES:
        feb = make_feb(kind, n, length, seed=1)
        hw = feb.forward(x, w)
        ref = feb.reference(x, w)
        cost = feb_metrics(kind, n, length)
        rows.append([
            feb.name,
            f"K={feb.n_states}",
            f"{np.abs(hw - ref).mean():.3f}",
            f"{cost['area_um2']:.0f}",
            f"{cost['delay_ns']:.2f}",
            f"{cost['energy_pj']:.0f}",
        ])
    print(format_table(
        ["Design", "States", "Inaccuracy (MAE)", "Area µm²",
         "Path delay ns", "Energy pJ"],
        rows,
        title=f"Feature extraction blocks at n={n}, L={length} "
              f"(trained-layer-like inputs)",
    ))
    print("\nReading: APC designs buy accuracy with area/delay; "
          "MUX designs are cheap but down-scale their outputs — "
          "Section 6.1's trade-off in one table.")


if __name__ == "__main__":
    main()
