"""Stream correlation: the silent killer of SC accuracy.

SC multipliers assume independent bit-streams.  Real hardware shares
RNGs to save area (the paper's Section 5.1 shares aggressively), which
correlates streams and corrupts products.  This example measures the
hazard with the SCC metric and shows an isolator repairing it.

Run:  python examples/correlation_hazards.py
"""

from repro.sc import ops
from repro.sc.correlation import decorrelate, multiply_error_vs_scc, scc
from repro.sc.rng import StreamFactory


def main():
    length = 8192
    fab = StreamFactory(seed=0)

    print("== XNOR multiplication vs correlation ==")
    result = multiply_error_vs_scc(0.5, 0.5, length=length)
    for label, (corr, err) in result.items():
        print(f"{label:12s} SCC={corr:+.2f}  |error|={err:.3f}  "
              f"(true product 0.25)")

    print("\n== squaring a value with one stream ==")
    x = 0.6
    a = fab.packed(x, length)
    naive = 2.0 * ops.popcount(ops.xnor_(a, a, length), length) / length - 1
    iso = decorrelate(a, length, seed=7)
    fixed = 2.0 * ops.popcount(ops.xnor_(a, iso, length), length) / length - 1
    print(f"x XNOR x (same stream):      {naive:+.3f}  (SCC "
          f"{float(scc(a, a, length)):+.2f})")
    print(f"x XNOR isolate(x):           {fixed:+.3f}  (SCC "
          f"{float(scc(a, iso, length)):+.2f})")
    print(f"true x*x:                    {x * x:+.3f}")
    print("\nAn isolator preserves the ones count exactly while breaking "
          "temporal alignment — correlation gone, value intact.")


if __name__ == "__main__":
    main()
