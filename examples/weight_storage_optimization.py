"""Weight storage optimization (Section 5).

Quantizes the trained LeNet-5's weights layer by layer, reproduces the
Figure 13 precision sweep, runs the greedy layer-wise precision search,
and prices the resulting SRAM against the 64-bit baseline with the
filter-aware sharing plan of Section 5.1.

Run:  python examples/weight_storage_optimization.py
"""

from repro.analysis.tables import format_table
from repro.data.cache import get_trained_lenet
from repro.data.synthetic_mnist import to_bipolar
from repro.storage.layerwise import (
    layerwise_precision_search,
    precision_sweep,
    storage_savings,
)
from repro.storage.sharing import lenet_sharing_plan


def main():
    trained = get_trained_lenet(pooling="max")
    x = to_bipolar(trained.x_test)[:400]
    y = trained.y_test[:400]

    precisions = [3, 4, 5, 6, 7, 8]
    sweep = precision_sweep(trained.model, x, y, precisions=precisions)
    rows = [[key] + [f"{e:.2f}%" for e in sweep[key]]
            for key in ("Layer0", "Layer1", "Layer2", "All layers")]
    print(format_table(
        ["Truncated"] + [f"w={w}" for w in precisions], rows,
        title=f"Error rate vs weight precision "
              f"(float baseline {trained.software_error_pct:.2f}%)",
    ))

    bits, err = layerwise_precision_search(
        trained.model, x, y, budget_pct=1.5, min_bits=4, max_bits=8
    )
    print(f"\ngreedy layer-wise scheme: {bits[0]}-{bits[1]}-{bits[2]} "
          f"at {err:.2f}% error (paper's example: 7-7-6 at 1.65%)")

    savings = storage_savings(bits)
    print(f"SRAM savings vs 64-bit baseline: "
          f"{savings['area_saving']:.1f}x area, "
          f"{savings['power_saving']:.1f}x power "
          f"(paper: 12x / 11.9x for 7-7-6)")

    print("\nFilter-aware SRAM sharing plan (Section 5.1):")
    rows = []
    for plan in lenet_sharing_plan(word_bits=max(bits)):
        rows.append([
            plan.layer.name,
            str(plan.blocks),
            str(plan.layer.words_per_block),
            str(plan.readers_per_block),
            f"{plan.routing_saving():.0f}x",
        ])
    print(format_table(
        ["Stage", "SRAM blocks", "Words/block", "Readers/block",
         "Routing saving"],
        rows,
    ))


if __name__ == "__main__":
    main()
