"""Table 3: relative error of the APC vs the conventional parallel counter.

Expected shape: below ~1%, decreasing with input size — the APC's LSB
approximation is negligible, which is why APC inner products are the
paper's accuracy workhorse.
"""

from repro.analysis.block_error import apc_relative_error
from repro.analysis.tables import PAPER, format_table

from bench_utils import scaled

SIZES = (16, 32, 64)
LENGTHS = (128, 256, 384, 512)


def _measure():
    return {
        (n, L): apc_relative_error(n, L, trials=scaled(64), seed=2)
        for n in SIZES for L in LENGTHS
    }


def test_table3_apc_relative_error(benchmark, record_table):
    grid = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = []
    for n in SIZES:
        rows.append([f"n={n}"] + [
            f"{100 * grid[(n, L)]:.2f}% (paper {PAPER['table3'][(n, L)]}%)"
            for L in LENGTHS
        ])
    record_table("table3", format_table(
        ["Input size"] + [f"L={L}" for L in LENGTHS], rows,
        title="Table 3 — APC vs conventional counter, relative error",
    ))
    assert all(v < 0.02 for v in grid.values())     # ~1% headline
    assert grid[(64, 512)] < grid[(16, 128)]        # decreasing shape
