"""Micro-benchmarks of the simulation kernels themselves.

Not a paper table — these time the packed-bit kernels that make the
bit-level LeNet-5 simulation tractable, and guard against performance
regressions: XNOR multiply, APC column counting, the vectorized Stanh
FSM, a full feature-extraction-block forward and one exact conv-layer
pass.
"""

import numpy as np
import pytest

from repro.core.feature_extraction import make_feb
from repro.sc import activation, adders, ops
from repro.sc.rng import StreamFactory

L = 1024


@pytest.fixture(scope="module")
def factory():
    return StreamFactory(seed=0)


def test_kernel_xnor_multiply(benchmark, factory, rng):
    """Bipolar multiply across 4096 streams of 1024 bits."""
    a = factory.packed(rng.uniform(-1, 1, 4096), L)
    b = factory.packed(rng.uniform(-1, 1, 4096), L)
    out = benchmark(lambda: ops.xnor_(a, b, L))
    assert out.shape == a.shape


def test_kernel_popcount(benchmark, factory, rng):
    """Stream decode: ones counts across 4096 streams of 1024 bits."""
    a = factory.packed(rng.uniform(-1, 1, 4096), L)
    out = benchmark(lambda: ops.popcount(a, L))
    assert out.shape == (4096,)


def test_kernel_segment_popcount(benchmark, factory, rng):
    """Max-pool counters: 16-bit segment counts across 2880 streams."""
    a = factory.packed(rng.uniform(-1, 1, 2880), L)
    out = benchmark(lambda: ops.segment_popcount(a, L, 16))
    assert out.shape == (2880, L // 16)


def test_kernel_mux_select(benchmark, factory, rng):
    """16-to-1 MUX across a batch of 64 stream groups."""
    streams = factory.packed(rng.uniform(-1, 1, (64, 16)), L)
    select = rng.integers(0, 16, L)
    out = benchmark(lambda: ops.mux_select(streams, select, L))
    assert out.shape == (64, streams.shape[-1])


def test_kernel_lfsr_sequence(benchmark):
    """SNG random source: one full-period 16-bit LFSR sequence."""
    from repro.sc.lfsr import LFSR
    lfsr = LFSR(16, seed=7)
    out = benchmark(lambda: lfsr.sequence(65535))
    assert out.shape == (65535,)


def test_kernel_apc_counts(benchmark, factory, rng):
    """APC column counts for 128 windows of 25 inputs."""
    streams = factory.packed(rng.uniform(-1, 1, (128, 25)), L)
    counts = benchmark(lambda: adders.apc_count(streams, L))
    assert counts.shape == (128, L)


def test_kernel_stanh_fsm(benchmark, factory, rng):
    """Vectorized Stanh over 2880 streams (one LeNet-5 layer)."""
    streams = factory.packed(rng.uniform(-1, 1, 2880), L)
    out = benchmark(lambda: activation.stanh_packed(streams, L, 10))
    assert out.shape == streams.shape


def test_kernel_btanh(benchmark, rng):
    """Vectorized Btanh over 800 count streams."""
    counts = rng.integers(0, 26, (800, L)).astype(np.int16)
    out = benchmark(lambda: activation.btanh_counts(counts, 25, 50))
    assert out.shape == counts.shape


def test_kernel_feb_forward(benchmark, rng):
    """One APC-Max-Btanh feature extraction (batch of 32)."""
    feb = make_feb("apc-max", 25, L, seed=0)
    x = rng.uniform(-1, 1, (32, 4, 25))
    w = rng.uniform(-1, 1, (32, 4, 25))
    out = benchmark.pedantic(lambda: feb.forward(x, w), rounds=3,
                             iterations=1)
    assert out.shape == (32,)


def test_kernel_exact_conv_layer(benchmark, trained_max):
    """One bit-exact image through conv1+pool+Btanh (Layer 0)."""
    from repro.core.config import NetworkConfig, PoolKind
    from repro.core.network import SCNetwork
    cfg = NetworkConfig.from_kinds(PoolKind.MAX, 256, ("APC", "APC", "APC"))
    sc = SCNetwork(trained_max.model, cfg, seed=0)
    img = trained_max.bipolar_test_images()[0].reshape(1, -1)
    x = sc.factory.packed(img, 256)
    backend = sc.engine.backend

    out = benchmark.pedantic(
        lambda: backend._conv_layer(0, sc._plans[0], x, selects=[{}]),
        rounds=3, iterations=1,
    )
    assert out.shape[1] == 2880
