"""Micro-benchmarks of the simulation kernels themselves.

Not a paper table — these time the packed-bit kernels that make the
bit-level LeNet-5 simulation tractable, and guard against performance
regressions: XNOR multiply, APC column counting, the vectorized Stanh
FSM, a full feature-extraction-block forward and one exact conv-layer
pass.

The ``*_numpy`` / ``*_native`` twins time the same computation with the
dispatch pinned to each tier (``repro.native.override``); ``run_all.py``
folds them into the numpy-vs-native speedup column of
``BENCH_kernels.json``.  The unsuffixed names keep timing whatever the
repo dispatches to by default, so their trajectory tracks what users
actually get.
"""

import numpy as np
import pytest

import repro.native as native
from repro.core.feature_extraction import make_feb
from repro.sc import activation, adders, ops
from repro.sc.rng import StreamFactory

L = 1024

_needs_native = pytest.mark.skipif(not native.available(),
                                   reason="native kernel tier not built")


@pytest.fixture(scope="module")
def factory():
    return StreamFactory(seed=0)


def test_kernel_xnor_multiply(benchmark, factory, rng):
    """Bipolar multiply across 4096 streams of 1024 bits."""
    a = factory.packed(rng.uniform(-1, 1, 4096), L)
    b = factory.packed(rng.uniform(-1, 1, 4096), L)
    out = benchmark(lambda: ops.xnor_(a, b, L))
    assert out.shape == a.shape


def test_kernel_popcount(benchmark, factory, rng):
    """Stream decode: ones counts across 4096 streams of 1024 bits."""
    a = factory.packed(rng.uniform(-1, 1, 4096), L)
    out = benchmark(lambda: ops.popcount(a, L))
    assert out.shape == (4096,)


def test_kernel_segment_popcount(benchmark, factory, rng):
    """Max-pool counters: 16-bit segment counts across 2880 streams."""
    a = factory.packed(rng.uniform(-1, 1, 2880), L)
    out = benchmark(lambda: ops.segment_popcount(a, L, 16))
    assert out.shape == (2880, L // 16)


def test_kernel_mux_select(benchmark, factory, rng):
    """16-to-1 MUX across a batch of 64 stream groups."""
    streams = factory.packed(rng.uniform(-1, 1, (64, 16)), L)
    select = rng.integers(0, 16, L)
    out = benchmark(lambda: ops.mux_select(streams, select, L))
    assert out.shape == (64, streams.shape[-1])


def test_kernel_lfsr_sequence(benchmark):
    """SNG random source: one full-period 16-bit LFSR sequence."""
    from repro.sc.lfsr import LFSR
    lfsr = LFSR(16, seed=7)
    out = benchmark(lambda: lfsr.sequence(65535))
    assert out.shape == (65535,)


def test_kernel_apc_counts(benchmark, factory, rng):
    """APC column counts for 128 windows of 25 inputs."""
    streams = factory.packed(rng.uniform(-1, 1, (128, 25)), L)
    counts = benchmark(lambda: adders.apc_count(streams, L))
    assert counts.shape == (128, L)


def test_kernel_stanh_fsm(benchmark, factory, rng):
    """Vectorized Stanh over 2880 streams (one LeNet-5 layer)."""
    streams = factory.packed(rng.uniform(-1, 1, 2880), L)
    out = benchmark(lambda: activation.stanh_packed(streams, L, 10))
    assert out.shape == streams.shape


# ----------------------------------------------------------------------
# numpy-vs-native tier pairs (same inputs, dispatch pinned per side)
# ----------------------------------------------------------------------

def _tier_pair_streams(factory, rng, shape=(128, 25)):
    return factory.packed(rng.uniform(-1, 1, shape), L)


def test_kernel_fused_count_numpy(benchmark, factory, rng):
    """transpose_pack + popcount_sum (the unfused NumPy composition)."""
    streams = _tier_pair_streams(factory, rng)

    def run():
        with native.override(False):
            return ops.popcount_sum(ops.transpose_pack(streams, L),
                                    dtype=np.int16)

    out = benchmark(run)
    assert out.shape == (128, L)


@_needs_native
def test_kernel_fused_count_native(benchmark, factory, rng):
    """The same column counts through the fused native kernel."""
    streams = _tier_pair_streams(factory, rng)

    def run():
        with native.override(True):
            return adders.parallel_counter(streams, L)

    out = benchmark(run)
    with native.override(False):
        ref = ops.popcount_sum(ops.transpose_pack(streams, L),
                               dtype=np.int16)
    assert np.array_equal(out, ref)


def test_kernel_apc_counts_numpy(benchmark, factory, rng):
    """APC column counts pinned to the pure-NumPy unpack/reduce path."""
    streams = _tier_pair_streams(factory, rng)

    def run():
        with native.override(False):
            return adders.apc_count(streams, L)

    out = benchmark(run)
    assert out.shape == (128, L)


@_needs_native
def test_kernel_apc_counts_native(benchmark, factory, rng):
    """APC column counts pinned to the native fused counter."""
    streams = _tier_pair_streams(factory, rng)

    def run():
        with native.override(True):
            return adders.apc_count(streams, L)

    out = benchmark(run)
    with native.override(False):
        ref = adders.apc_count(streams, L)
    assert np.array_equal(out, ref)


def _apc_inner_banks(factory, rng):
    """An exact-backend-shaped inner product: 64 windows x 32 channels
    of 150 inputs."""
    x = factory.packed(rng.uniform(-1, 1, (64, 150)), L)
    w = factory.packed(rng.uniform(-1, 1, (32, 150)), L)
    with native.override(False):
        wT = ops.transpose_pack(w, L)
        w_last = ops.unpack_bits(w[:, -1, :], L)
    return x, wT, w_last


def _apc_inner_numpy(x, wT, w_last, n):
    """The ExactBackend._apc_counts NumPy arithmetic, unfused."""
    xT = ops.transpose_pack(x, L)
    x_last = ops.unpack_bits(x[:, -1, :], L)
    ham = ops.popcount_sum(xT[None, :] ^ wT[:, None], dtype=np.int16)
    exact = np.int16(n) - ham
    prod_last = np.uint8(1) ^ x_last[None, :] ^ w_last[:, None]
    one = np.int16(1)
    return (exact & ~one) | ((exact ^ prod_last) & one)


def test_kernel_apc_inner_numpy(benchmark, factory, rng):
    """Exact-backend inner product, pure-NumPy transposed counting."""
    x, wT, w_last = _apc_inner_banks(factory, rng)

    def run():
        with native.override(False):
            return _apc_inner_numpy(x, wT, w_last, 150)

    out = benchmark(run)
    assert out.shape == (32, 64, L)


@_needs_native
def test_kernel_apc_inner_native(benchmark, factory, rng):
    """Exact-backend inner product through the fused native kernel."""
    x, wT, w_last = _apc_inner_banks(factory, rng)
    out = benchmark(lambda: native.apc_inner_counts(x, wT, 150, L))
    with native.override(False):
        ref = _apc_inner_numpy(x, wT, w_last, 150)
    assert np.array_equal(out, ref)


def test_kernel_stanh_numpy(benchmark, factory, rng):
    """Stanh byte-LUT walk pinned to the NumPy per-column gather."""
    streams = factory.packed(rng.uniform(-1, 1, 2880), L)

    def run():
        with native.override(False):
            return activation.stanh_packed(streams, L, 10)

    out = benchmark(run)
    assert out.shape == streams.shape


@_needs_native
def test_kernel_stanh_native(benchmark, factory, rng):
    """Stanh byte-LUT walk pinned to the native tier."""
    streams = factory.packed(rng.uniform(-1, 1, 2880), L)

    def run():
        with native.override(True):
            return activation.stanh_packed(streams, L, 10)

    out = benchmark(run)
    with native.override(False):
        ref = activation.stanh_packed(streams, L, 10)
    assert np.array_equal(out, ref)


def test_kernel_btanh_numpy(benchmark, rng):
    """Saturating-counter scan pinned to the blocked NumPy composition."""
    counts = rng.integers(0, 26, (800, L)).astype(np.int16)

    def run():
        with native.override(False):
            return activation.btanh_counts(counts, 25, 50)

    out = benchmark(run)
    assert out.shape == counts.shape


@_needs_native
def test_kernel_btanh_native(benchmark, rng):
    """Saturating-counter scan pinned to the native sequential scan."""
    counts = rng.integers(0, 26, (800, L)).astype(np.int16)

    def run():
        with native.override(True):
            return activation.btanh_counts(counts, 25, 50)

    out = benchmark(run)
    with native.override(False):
        ref = activation.btanh_counts(counts, 25, 50)
    assert np.array_equal(out, ref)


def test_kernel_btanh(benchmark, rng):
    """Vectorized Btanh over 800 count streams."""
    counts = rng.integers(0, 26, (800, L)).astype(np.int16)
    out = benchmark(lambda: activation.btanh_counts(counts, 25, 50))
    assert out.shape == counts.shape


def test_kernel_feb_forward(benchmark, rng):
    """One APC-Max-Btanh feature extraction (batch of 32)."""
    feb = make_feb("apc-max", 25, L, seed=0)
    x = rng.uniform(-1, 1, (32, 4, 25))
    w = rng.uniform(-1, 1, (32, 4, 25))
    out = benchmark.pedantic(lambda: feb.forward(x, w), rounds=3,
                             iterations=1)
    assert out.shape == (32,)


def test_kernel_exact_conv_layer(benchmark, trained_max):
    """One bit-exact image through conv1+pool+Btanh (Layer 0)."""
    from repro.core.config import NetworkConfig, PoolKind
    from repro.core.network import SCNetwork
    cfg = NetworkConfig.from_kinds(PoolKind.MAX, 256, ("APC", "APC", "APC"))
    sc = SCNetwork(trained_max.model, cfg, seed=0)
    img = trained_max.bipolar_test_images()[0].reshape(1, -1)
    x = sc.factory.packed(img, 256)
    backend = sc.engine.backend

    out = benchmark.pedantic(
        lambda: backend._conv_layer(0, sc._plans[0], x, selects=[{}]),
        rounds=3, iterations=1,
    )
    assert out.shape[1] == 2880
