"""Engine throughput benchmark: batched vs sequential legacy inference.

Measures the refactor's acceptance criterion — batched exact inference of
a 16-image batch through ``Engine.predict`` against 16 sequential
single-image calls of the *pre-engine* ``SCNetwork`` (the frozen copy in
:mod:`repro.engine.reference`) — plus per-backend latency for the
pluggable backends.  Setup (training, plan compilation, weight-stream
generation) is excluded from both sides: the comparison isolates the
per-request execution loop, which is what batching restructures.

Run directly (``PYTHONPATH=src python benchmarks/bench_engine.py``) or
via ``benchmarks/run_all.py``, which records the result in
``benchmarks/BENCH_engine.json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import NetworkConfig, PoolKind
from repro.data.synthetic_mnist import generate_dataset, to_bipolar
from repro.engine import Engine
from repro.engine.reference import ReferenceSCNetwork
from repro.nn.lenet import build_lenet5
from repro.nn.trainer import Trainer

BATCH = 16
KINDS = ("APC", "APC", "APC")
LENGTHS = (64, 128, 256)
PRIMARY_LENGTH = 64
FLOAT_BACKENDS = ("surrogate", "noise", "float")


def _trained_model():
    """The deterministic quick-trained LeNet-5 the benchmark simulates."""
    x_train, y_train, x_test, y_test = generate_dataset(
        n_train=600, n_test=200, seed=123)
    model = build_lenet5("max", seed=0)
    Trainer(model, lr=0.06, batch_size=64, seed=0).fit(
        to_bipolar(x_train), y_train, epochs=2)
    return model, to_bipolar(x_test)[:BATCH], y_test[:BATCH]


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def measure_engine() -> dict:
    """Run all engine benchmarks; returns the BENCH_engine payload."""
    model, images, labels = _trained_model()
    results = {"batch": BATCH, "kinds": "-".join(KINDS), "pooling": "max",
               "primary_length": PRIMARY_LENGTH, "exact": {},
               "float_backends_ms": {}}

    for length in LENGTHS:
        config = NetworkConfig.from_kinds(PoolKind.MAX, length, KINDS)
        legacy = ReferenceSCNetwork(model, config, seed=0)
        legacy_preds, legacy_s = _time(lambda: legacy.predict(images))
        engine = Engine(model, config, backend="exact", seed=0)
        engine_preds, engine_s = _time(lambda: engine.predict(images))
        if not np.array_equal(legacy_preds, engine_preds):
            raise AssertionError(
                f"L={length}: batched engine predictions diverged from the "
                "legacy sequential simulator — bit-identity broken")
        results["exact"][str(length)] = {
            "legacy_sequential_s": round(legacy_s, 4),
            "engine_batched_s": round(engine_s, 4),
            "legacy_images_per_s": round(BATCH / legacy_s, 2),
            "engine_images_per_s": round(BATCH / engine_s, 2),
            "speedup": round(legacy_s / engine_s, 2),
            "bit_identical": True,
        }

    config = NetworkConfig.from_kinds(PoolKind.MAX, PRIMARY_LENGTH, KINDS)
    for name in FLOAT_BACKENDS:
        engine = Engine(model, config, backend=name, seed=0)
        engine.predict(images)  # warm calibration caches / JIT-ish costs
        _, seconds = _time(lambda: engine.predict(images))
        results["float_backends_ms"][name] = round(seconds * 1e3, 2)

    results["speedup_at_primary"] = \
        results["exact"][str(PRIMARY_LENGTH)]["speedup"]
    return results


def main() -> None:
    results = measure_engine()
    print(f"batched-vs-legacy exact speedup "
          f"(L={results['primary_length']}): "
          f"{results['speedup_at_primary']}x")
    for length, row in results["exact"].items():
        print(f"  L={length}: legacy {row['legacy_images_per_s']} img/s, "
              f"batched {row['engine_images_per_s']} img/s "
              f"({row['speedup']}x, bit-identical)")
    for name, ms in results["float_backends_ms"].items():
        print(f"  {name}: {ms} ms / {results['batch']} images")


if __name__ == "__main__":
    main()
