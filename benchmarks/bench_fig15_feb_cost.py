"""Figure 15: FEB area / path delay / power / energy vs input size.

Paper setup: input sizes 16..256, L = 1024.  Expected shape: MUX-Avg
cheapest with the shortest path; APC designs dominate area and path
delay; APC-Max the most expensive; energy ordering follows area×delay.
"""

from repro.analysis.tables import format_table
from repro.hw.blocks_cost import feb_metrics

KINDS = ("mux-avg", "mux-max", "apc-avg", "apc-max")
SIZES = (16, 32, 64, 128, 256)
LENGTH = 1024
METRICS = (("area_um2", "Area (µm²)", "{:.0f}"),
           ("delay_ns", "Path delay (ns)", "{:.2f}"),
           ("power_uw", "Power (µW)", "{:.1f}"),
           ("energy_pj", "Energy (pJ)", "{:.0f}"))


def _measure():
    return {(kind, n): feb_metrics(kind, n, LENGTH)
            for kind in KINDS for n in SIZES}


def test_fig15_feb_costs(benchmark, record_table):
    grid = benchmark.pedantic(_measure, rounds=1, iterations=1)
    sections = []
    for key, label, fmt in METRICS:
        rows = [[kind] + [fmt.format(grid[(kind, n)][key]) for n in SIZES]
                for kind in KINDS]
        sections.append(format_table(
            ["FEB design"] + [f"n={n}" for n in SIZES], rows,
            title=f"Figure 15 — {label}, L={LENGTH}",
        ))
    record_table("fig15", "\n\n".join(sections))

    # Section 6.1's qualitative conclusions.
    for n in SIZES:
        assert (grid[("mux-avg", n)]["area_um2"]
                <= min(grid[(k, n)]["area_um2"] for k in KINDS))
        assert (grid[("apc-max", n)]["area_um2"]
                >= max(grid[(k, n)]["area_um2"] for k in KINDS))
        assert (grid[("apc-avg", n)]["delay_ns"]
                > grid[("mux-avg", n)]["delay_ns"])
