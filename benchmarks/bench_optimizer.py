"""Section 6.3: the holistic optimization procedure.

Runs the paper's iterative design-space exploration (evaluate every
layer-kind combination, keep configurations within the accuracy
threshold, halve the stream length, repeat) and reports the surviving
design points with their hardware costs.  Expected shape: APC-heavy
configurations survive to shorter stream lengths; MUX-heavy ones drop
out first; the energy-optimal survivors use the shortest passing L.
"""

from repro.analysis.tables import format_table
from repro.core.optimizer import HolisticOptimizer

from bench_utils import scaled


def test_holistic_optimization(benchmark, trained_max, record_table):
    opt = HolisticOptimizer(trained_max, threshold_pct=8.0,
                            eval_images=scaled(300), seed=13)

    points = benchmark.pedantic(
        lambda: opt.run(max_length=1024, min_length=128),
        rounds=1, iterations=1,
    )
    assert points, "at least one configuration must meet the threshold"

    rows = [[p.config.describe(), f"{p.error_pct:.2f}%",
             f"{p.degradation_pct:+.2f}%", f"{p.cost.area_mm2:.1f}",
             f"{p.cost.energy_uj:.2f}"] for p in points]
    front = opt.pareto_front(points)
    record_table("sec63_optimizer", format_table(
        ["Design point", "Error", "Degradation", "Area mm²", "Energy µJ"],
        rows,
        title=(f"Section 6.3 — surviving design points "
               f"(threshold 8.0%, {len(front)} Pareto-optimal)"),
    ))

    # All-APC must survive at the longest length.
    assert any(p.config.length == 1024
               and all(l.ip_kind.value == "APC" for l in p.config.layers)
               for p in points)
    # Survivors meet the threshold by construction.
    assert all(p.degradation_pct <= 8.0 for p in points)
