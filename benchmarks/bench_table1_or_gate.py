"""Table 1: absolute errors of the OR-gate inner product block.

Paper setup: L = 1024, best pre-scaling, input sizes 16/32/64, unipolar
and bipolar formats.  Expected shape: errors grow with input size and the
bipolar format is far worse — the reason Section 4.1 rejects this block.
"""

from repro.analysis.block_error import or_inner_product_error
from repro.analysis.tables import PAPER, format_table
from repro.sc.encoding import Encoding

from bench_utils import scaled

SIZES = (16, 32, 64)
LENGTH = 1024


def _measure():
    rows = []
    for label, encoding in (("Unipolar", Encoding.UNIPOLAR),
                            ("Bipolar", Encoding.BIPOLAR)):
        measured = [or_inner_product_error(n, LENGTH, encoding,
                                           trials=scaled(48), seed=1)
                    for n in SIZES]
        paper = [PAPER["table1"][(label.lower(), n)] for n in SIZES]
        rows.append([label]
                    + [f"{m:.2f} (paper {p})" for m, p in zip(measured,
                                                              paper)])
    return rows


def test_table1_or_gate_inner_product(benchmark, record_table):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    record_table("table1", format_table(
        ["Format"] + [f"n={n}" for n in SIZES], rows,
        title="Table 1 — OR-gate inner product absolute error (L=1024)",
    ))
    # Shape assertions: bipolar worse, errors grow with n.
    uni = [float(c.split()[0]) for c in rows[0][1:]]
    bip = [float(c.split()[0]) for c in rows[1][1:]]
    assert bip[0] > uni[0]
    assert bip[-1] > bip[0] * 0.8
