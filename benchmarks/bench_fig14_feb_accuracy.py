"""Figure 14: feature extraction block inaccuracy vs input size.

Paper setup: input sizes 16..256 (log scale), three bit-stream lengths,
all four FEB designs.  Expected shape: MUX-Avg worst and degrading with
input size; MUX-Max better; APC blocks far better, with APC-Max the best
at moderate sizes and APC blocks *improving* (riding tanh saturation) as
n grows.
"""

from repro.analysis.block_error import feb_inaccuracy
from repro.analysis.tables import format_table

from bench_utils import scaled

KINDS = ("mux-avg", "mux-max", "apc-avg", "apc-max")
SIZES = (16, 32, 64, 128, 256)
LENGTHS = (256, 512, 1024)


def _measure():
    return {
        (kind, n, L): feb_inaccuracy(kind, n, L, trials=scaled(32), seed=6)
        for kind in KINDS for n in SIZES for L in LENGTHS
    }


def test_fig14_feb_inaccuracy(benchmark, record_table):
    grid = benchmark.pedantic(_measure, rounds=1, iterations=1)
    sections = []
    for L in LENGTHS:
        rows = [[kind] + [f"{grid[(kind, n, L)]:.3f}" for n in SIZES]
                for kind in KINDS]
        sections.append(format_table(
            ["FEB design"] + [f"n={n}" for n in SIZES], rows,
            title=f"Figure 14 — FEB absolute inaccuracy, L={L}",
        ))
    record_table("fig14", "\n\n".join(sections))

    # Headline orderings at L=1024 (Section 6.1).
    L = 1024
    assert grid[("mux-avg", 256, L)] > grid[("mux-avg", 16, L)]
    assert grid[("apc-max", 16, L)] < grid[("mux-avg", 16, L)]
    assert grid[("apc-avg", 64, L)] < grid[("mux-avg", 64, L)]
    # MUX-Max benefits from longer streams (Section 6.1).
    assert (grid[("mux-max", 64, 1024)] < grid[("mux-max", 64, 256)])
