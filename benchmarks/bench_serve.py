"""Serving throughput benchmark: micro-batching vs per-request baseline.

A closed-loop multi-threaded load generator (each client thread issues
its requests back-to-back, so offered load scales with the client
count) drives three serving modes per scenario:

* **per_request_sequential** — the pre-serve status quo the ISSUE
  motivates against: every request pays per-call compilation (a fresh
  ``Engine`` per request: plan compilation + weight-stream drawing) and
  runs at batch size 1, serialized;
* **pooled_sequential** — ablation isolating the engine pool: the
  service machinery with ``max_batch=1``, so engines/plans are cached
  but nothing is coalesced;
* **micro_batched** — the full service: pooled engines plus dynamic
  coalescing under the ``max_batch``/``max_wait_ms`` policy.

Acceptance: at ≥ 8 concurrent clients on the exact backend at L=64 the
micro-batching service sustains ≥ 2x the per-request sequential
baseline, and every exact response — in all three modes — is
*bit-identical* to a dedicated single-request ``Engine.predict`` with
the same per-request seed (checked against fresh reference engines).

The pooled-vs-batched ratio is reported honestly: the exact backend's
word-level kernels are compute-bound, so on a single-core runner
coalescing mostly amortizes per-request setup and Python dispatch
(the kernel work itself is proportional to the image count), while the
float-domain scenarios show the pure matrix-amortization win.  On
multi-core machines the batched counting kernels additionally win on
memory locality.

A fourth mode, **multi_process**, drives the :class:`ProcServeFacade`
tier.  Routing there is spec-affine (same spec → same worker, so
coalescing survives the process split), which means a single-spec load
lands on one worker by design — the multi-process cell therefore gives
each client its own per-request seed and compares against the *same*
multi-spec load on the single-process service.  The ≥ 2x scaling gate
is active only on machines with ≥ 4 cores; single-core CI records the
honest (≈ 1x, IPC-taxed) number alongside ``cpu_count`` so the report
can never dress up a serial box as a scaling result.

Run directly (``PYTHONPATH=src python benchmarks/bench_serve.py``) or
via ``benchmarks/run_all.py --serve``, which records the result in
``benchmarks/BENCH_serve.json``.
"""

from __future__ import annotations

import os
import threading
import time

from repro.core.config import NetworkConfig, PoolKind
from repro.data.synthetic_mnist import generate_dataset, to_bipolar
from repro.engine import Engine
from repro.nn.lenet import build_lenet5
from repro.nn.trainer import Trainer
from repro.serve import InferenceService, ProcServeFacade

MAX_BATCH = 16
MAX_WAIT_MS = 25.0
SEED = 0
ACCEPT_CLIENTS = 8
ACCEPT_SPEEDUP = 2.0
N_IMAGES = 8
KINDS = ("APC", "APC", "APC")
SCENARIOS = (
    # (label, backend, length, client counts, requests per client)
    ("exact_L64", "exact", 64, (1, 8), 3),       # acceptance scenario
    ("exact_L128", "exact", 128, (8,), 3),
    ("surrogate_L64", "surrogate", 64, (8,), 16),
)

#: Multi-process cell: worker count, and the core floor below which the
#: scaling gate stays informational (a 1-core box cannot scale).
PROCS = max(2, min(4, os.cpu_count() or 1))
PROC_GATE_MIN_CORES = 4
PROC_ACCEPT_SPEEDUP = 2.0


def _trained_model():
    """The deterministic quick-trained LeNet-5 the service serves."""
    x_train, y_train, x_test, _ = generate_dataset(
        n_train=600, n_test=200, seed=123)
    model = build_lenet5("max", seed=0)
    Trainer(model, lr=0.06, batch_size=64, seed=0).fit(
        to_bipolar(x_train), y_train, epochs=2)
    return model, to_bipolar(x_test)[:N_IMAGES].reshape(N_IMAGES, -1)


def _reference_predictions(model, images, backend: str, length: int):
    """Per-request oracle: a *fresh* engine per image, same seed.

    This is exactly what the service's bit-exactness contract promises
    each coalesced request: the answer a dedicated single-request
    ``Engine.predict`` with that request's seed would have produced.
    """
    config = NetworkConfig.from_kinds(PoolKind.MAX, length, KINDS)
    return [int(Engine(model, config, backend=backend, seed=SEED)
                .predict(img[None])[0]) for img in images]


def _per_request_server(model, backend: str, length: int):
    """The sequential baseline: fresh engine + batch-1 call per request."""
    config = NetworkConfig.from_kinds(PoolKind.MAX, length, KINDS)
    lock = threading.Lock()

    def predict_one(image, timeout=None):
        with lock:
            engine = Engine(model, config, backend=backend, seed=SEED)
            return int(engine.predict(image[None])[0])

    return predict_one


def _closed_loop(predict_one, images, clients: int, requests_each: int):
    """Drive ``predict_one`` with closed-loop clients.

    Returns ``(elapsed_s, responses)`` where ``responses`` is a flat list
    of ``(image_index, prediction)`` pairs; requests round-robin over the
    image set so the bit-identity oracle stays small.
    """
    responses = []
    errors = []
    log_lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client(c):
        barrier.wait()
        for r in range(requests_each):
            idx = (c * requests_each + r) % len(images)
            try:
                pred = predict_one(images[idx], timeout=300.0)
            except Exception as exc:  # pragma: no cover - diagnostics
                with log_lock:
                    errors.append(exc)
                return
            with log_lock:
                responses.append((idx, pred))

    threads = [threading.Thread(target=client, args=(c,))
               for c in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed, responses


def _service_mode(model, images, backend, length, clients, requests_each,
                  max_batch):
    """One pooled service cell (batched or not): throughput + batch stats."""
    service = InferenceService(
        model, backend=backend, length=length, kinds=KINDS, pooling="max",
        seed=SEED, max_batch=max_batch, max_wait_ms=MAX_WAIT_MS, workers=1,
        warm=True)
    try:
        service.predict_one(images[0])  # warm allocation paths, untimed
        before = service.batcher.stats()
        elapsed, responses = _closed_loop(service.predict_one, images,
                                          clients, requests_each)
        after = service.batcher.stats()
    finally:
        service.close()
    cell = {"elapsed_s": round(elapsed, 4),
            "rps": round(clients * requests_each / elapsed, 2)}
    if max_batch > 1:
        # report only the timed interval (the warm-up batch is excluded)
        histogram = {
            size: after["batch_size_histogram"].get(size, 0)
            - before["batch_size_histogram"].get(size, 0)
            for size in after["batch_size_histogram"]
        }
        histogram = {k: v for k, v in histogram.items() if v}
        batches = after["batches"] - before["batches"]
        requests = after["batched_requests"] - before["batched_requests"]
        cell["mean_batch_size"] = (round(requests / batches, 3)
                                   if batches else None)
        cell["batch_size_histogram"] = histogram
    return cell, responses


def _multi_spec_loop(predict_one, images, clients, requests_each):
    """Closed loop where client ``c`` pins per-request ``seed=c``.

    Distinct seeds are distinct specs, so on the multi-process tier the
    load hash-routes across workers; responses come back as
    ``(seed, image_index, prediction)`` for the per-seed oracle.
    """
    responses = []
    errors = []
    log_lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client(c):
        barrier.wait()
        for r in range(requests_each):
            idx = (c * requests_each + r) % len(images)
            try:
                pred = predict_one(images[idx], timeout=300.0, seed=c)
            except Exception as exc:  # pragma: no cover - diagnostics
                with log_lock:
                    errors.append(exc)
                return
            with log_lock:
                responses.append((c, idx, pred))

    threads = [threading.Thread(target=client, args=(c,))
               for c in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed, responses


def _multi_process_cell(model, images, backend, length, clients,
                        requests_each):
    """Single-process vs multi-process service under a multi-spec load.

    Returns the cell dict and the two response lists (single, multi)
    for the per-seed bit-identity oracle.
    """
    common = dict(backend=backend, length=length, kinds=KINDS,
                  pooling="max", seed=SEED, max_batch=MAX_BATCH,
                  max_wait_ms=MAX_WAIT_MS, workers=1, warm=True)
    total = clients * requests_each
    service = InferenceService(model, **common)
    try:
        service.predict_one(images[0])  # warm allocation paths, untimed
        single_s, single_out = _multi_spec_loop(
            service.predict_one, images, clients, requests_each)
    finally:
        service.close()
    facade = ProcServeFacade(model, procs=PROCS, **common)
    try:
        facade.predict_one(images[0])
        multi_s, multi_out = _multi_spec_loop(
            facade.predict_one, images, clients, requests_each)
        routed = {facade._route(facade.resolver.resolve({"seed": c})[0])
                  for c in range(clients)}
    finally:
        facade.close()
    cell = {
        "procs": PROCS,
        "cpu_count": os.cpu_count(),
        "workers_hit": len(routed),
        "single_process": {"elapsed_s": round(single_s, 4),
                           "rps": round(total / single_s, 2)},
        "multi_process": {"elapsed_s": round(multi_s, 4),
                          "rps": round(total / multi_s, 2)},
        "speedup_vs_single_process": round(single_s / multi_s, 2),
        "gate_active": (os.cpu_count() or 1) >= PROC_GATE_MIN_CORES,
    }
    return cell, single_out, multi_out


def _check_seeded_oracle(label, mode, responses, model, images, backend,
                         length):
    """Every ``(seed, idx, pred)`` must match a dedicated fresh engine."""
    config = NetworkConfig.from_kinds(PoolKind.MAX, length, KINDS)
    cache = {}
    for seed, idx, pred in responses:
        if (seed, idx) not in cache:
            cache[(seed, idx)] = int(
                Engine(model, config, backend=backend, seed=seed)
                .predict(images[idx][None])[0])
        if pred != cache[(seed, idx)]:
            raise AssertionError(
                f"{label}/{mode}: response for image {idx} seed {seed} "
                f"diverged from the single-request engine oracle "
                f"({pred} != {cache[(seed, idx)]}) — bit-exactness "
                f"broken")


def _check_oracle(label, mode, responses, oracle):
    for idx, pred in responses:
        if pred != oracle[idx]:
            raise AssertionError(
                f"{label}/{mode}: response for image {idx} diverged from "
                f"the single-request engine oracle ({pred} != "
                f"{oracle[idx]}) — bit-exactness broken")


def measure_serve() -> dict:
    """Run all serving benchmarks; returns the BENCH_serve payload."""
    model, images = _trained_model()
    results = {
        "policy": {"max_batch": MAX_BATCH, "max_wait_ms": MAX_WAIT_MS,
                   "workers": 1, "kinds": "-".join(KINDS),
                   "pooling": "max", "seed": SEED},
        "scenarios": {},
    }
    for label, backend, length, client_counts, requests_each in SCENARIOS:
        oracle = (_reference_predictions(model, images, backend, length)
                  if backend == "exact" else None)
        scenario = {"backend": backend, "length": length,
                    "requests_per_client": requests_each, "clients": {}}
        for clients in client_counts:
            baseline = _per_request_server(model, backend, length)
            baseline(images[0])  # warm allocation paths, untimed
            base_s, base_out = _closed_loop(baseline, images, clients,
                                            requests_each)
            pooled, pooled_out = _service_mode(
                model, images, backend, length, clients, requests_each,
                max_batch=1)
            batched, batched_out = _service_mode(
                model, images, backend, length, clients, requests_each,
                max_batch=MAX_BATCH)
            if oracle is not None:
                _check_oracle(label, "per_request", base_out, oracle)
                _check_oracle(label, "pooled", pooled_out, oracle)
                _check_oracle(label, "batched", batched_out, oracle)
            total = clients * requests_each
            base = {"elapsed_s": round(base_s, 4),
                    "rps": round(total / base_s, 2)}
            scenario["clients"][str(clients)] = {
                "per_request_sequential": base,
                "pooled_sequential": pooled,
                "micro_batched": batched,
                "speedup_vs_per_request": round(batched["rps"]
                                                / base["rps"], 2),
                "speedup_vs_pooled": round(batched["rps"]
                                           / pooled["rps"], 2),
            }
        if label == "exact_L64":
            cell, single_out, multi_out = _multi_process_cell(
                model, images, backend, length, ACCEPT_CLIENTS,
                requests_each)
            _check_seeded_oracle(label, "single_process", single_out,
                                 model, images, backend, length)
            _check_seeded_oracle(label, "multi_process", multi_out,
                                 model, images, backend, length)
            scenario["multi_process"] = cell
        if oracle is not None:
            scenario["bit_identical"] = True
        results["scenarios"][label] = scenario

    accept = results["scenarios"]["exact_L64"]["clients"][
        str(ACCEPT_CLIENTS)]["speedup_vs_per_request"]
    results["speedup_exact_L64_8_clients"] = accept
    if accept < ACCEPT_SPEEDUP:
        raise AssertionError(
            f"micro-batched throughput is only {accept}x the per-request "
            f"sequential baseline at {ACCEPT_CLIENTS} clients (exact, "
            f"L=64); acceptance requires >= {ACCEPT_SPEEDUP}x")
    procs_cell = results["scenarios"]["exact_L64"]["multi_process"]
    results["multi_process_speedup_exact_L64"] = \
        procs_cell["speedup_vs_single_process"]
    if (procs_cell["gate_active"]
            and procs_cell["speedup_vs_single_process"]
            < PROC_ACCEPT_SPEEDUP):
        raise AssertionError(
            f"multi-process throughput is only "
            f"{procs_cell['speedup_vs_single_process']}x the "
            f"single-process service at {PROCS} workers on "
            f"{os.cpu_count()} cores; acceptance requires "
            f">= {PROC_ACCEPT_SPEEDUP}x at "
            f">= {PROC_GATE_MIN_CORES} cores")
    return results


def main() -> None:
    results = measure_serve()
    print(f"micro-batched vs per-request sequential "
          f"(exact, L=64, {ACCEPT_CLIENTS} clients): "
          f"{results['speedup_exact_L64_8_clients']}x")
    for label, scenario in results["scenarios"].items():
        for clients, cell in scenario["clients"].items():
            print(f"  {label} @ {clients} clients: "
                  f"per-request {cell['per_request_sequential']['rps']} "
                  f"req/s, pooled {cell['pooled_sequential']['rps']} "
                  f"req/s, batched {cell['micro_batched']['rps']} req/s "
                  f"({cell['speedup_vs_per_request']}x vs per-request, "
                  f"{cell['speedup_vs_pooled']}x vs pooled)")
        if "multi_process" in scenario:
            cell = scenario["multi_process"]
            gate = ("gated" if cell["gate_active"]
                    else "informational: < 4 cores")
            print(f"  {label} multi-spec @ {ACCEPT_CLIENTS} clients: "
                  f"1 proc {cell['single_process']['rps']} req/s, "
                  f"{cell['procs']} procs "
                  f"{cell['multi_process']['rps']} req/s "
                  f"({cell['speedup_vs_single_process']}x, "
                  f"{cell['workers_hit']} workers hit, "
                  f"cpu_count={cell['cpu_count']}, {gate})")


if __name__ == "__main__":
    main()
