"""CI smoke test for ``python -m repro serve``: start, POST, assert.

Launches the real CLI server as a subprocess (quick-trained model, short
streams), waits for ``/healthz``, POSTs one image on the exact and
surrogate backends, asserts 200 + a valid prediction, checks ``/stats``
exposes the batcher/pool telemetry, and shuts the server down.  Uses
only the standard library so it runs on every CI job unchanged::

    PYTHONPATH=src python benchmarks/smoke_serve.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
STARTUP_TIMEOUT_S = 180.0


def _request(url: str, payload: dict = None):
    """GET (payload None) or POST JSON; returns (status, decoded body)."""
    data = None if payload is None else json.dumps(payload).encode("utf8")
    req = urllib.request.Request(
        url, data=data, method="GET" if data is None else "POST",
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=120) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _wait_for_port(proc) -> int:
    """Read the server's stdout until it announces its bound port.

    A watchdog kills the subprocess at ``STARTUP_TIMEOUT_S`` so a server
    that hangs *without printing anything* still fails this script
    promptly (reading stdout alone would block in readline forever).
    """
    watchdog = threading.Timer(STARTUP_TIMEOUT_S, proc.kill)
    watchdog.daemon = True
    watchdog.start()
    try:
        for line in proc.stdout:
            sys.stdout.write(line)
            if "listening on http://" in line:
                return int(line.rsplit(":", 1)[1])
    finally:
        watchdog.cancel()
    raise RuntimeError("server did not announce its port within "
                       f"{STARTUP_TIMEOUT_S:.0f}s "
                       f"(exit code {proc.poll()})")


def main() -> int:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
         "--length", "64", "--train", "300", "--epochs", "1",
         "--max-wait-ms", "5"],
        env=env, cwd=str(REPO_ROOT), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    try:
        port = _wait_for_port(proc)
        base = f"http://127.0.0.1:{port}"

        status, health = _request(f"{base}/healthz")
        assert status == 200 and health["status"] == "ok", health

        image = [0.0] * 784
        for backend in ("exact", "surrogate"):
            status, reply = _request(f"{base}/predict",
                                     {"image": image, "backend": backend})
            assert status == 200, (backend, reply)
            assert reply["prediction"] in range(10), (backend, reply)
            assert reply["backend"] == backend, reply
            print(f"POST /predict [{backend}]: prediction="
                  f"{reply['prediction']} ({reply['latency_ms']} ms)")

        status, reply = _request(f"{base}/predict",
                                 {"image": image, "backend": "bogus"})
        assert status == 400 and "unknown backend" in reply["error"], reply

        status, stats = _request(f"{base}/stats")
        assert status == 200, stats
        assert stats["service"]["requests"] >= 2, stats
        assert stats["batcher"]["batches"] >= 2, stats
        assert stats["pool"]["engines"] >= 2, stats
        assert stats["service"]["latency_ms"]["p95"] > 0, stats
        print("GET /stats:", json.dumps(stats["service"]))
        print("serve smoke test passed")
        return 0
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:  # pragma: no cover - CI guard
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
