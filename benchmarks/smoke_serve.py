"""CI smoke test for ``python -m repro serve``: start, POST, drain.

Launches the real CLI server as a subprocess (quick-trained model, short
streams), waits for ``/healthz``, POSTs one image on the exact and
surrogate backends, asserts 200 + a valid prediction, checks ``/stats``
exposes the batcher/pool telemetry, scrapes ``/metrics`` *while a burst
of requests is in flight* (every required series must be present and no
sample may be NaN) — then exercises the graceful-drain path: with a
fault-injected slow batch in flight, SIGTERM must flip ``/healthz`` to
draining, complete the in-flight reply (a dropped reply fails the
smoke), and exit 0.  The server runs with ``REPRO_TRACE`` armed
(honoring a caller-set path so CI can upload the JSONL as an artifact);
after shutdown the trace must reconstruct at least one request's
queue → coalesce → compute → engine critical path.  Uses only the
standard library so it runs on every CI job unchanged::

    PYTHONPATH=src python benchmarks/smoke_serve.py

``--procs N`` runs the same smoke against the multi-process tier
(``python -m repro serve --procs N``): the ``/stats`` assertions switch
to the aggregated multi-process schema, and after the SIGTERM drain the
script additionally asserts every ``/dev/shm/repro-plan-*`` segment the
server created has been unlinked.  The trace critical-path check is
skipped in that mode — worker spans live in other processes and are not
stitched to the frontend's ``serve.predict`` span.
"""

from __future__ import annotations

import glob
import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
STARTUP_TIMEOUT_S = 180.0

#: Injected slow-down for the drain phase: only the drain request uses
#: the float backend, so only its compute batches sleep — guaranteeing
#: the request is still in flight when SIGTERM lands.
DRAIN_FAULTS = ("site=serve.compute,action=sleep,sleep_s=1.5,rate=1.0,"
                "match=:float:,max_trips=2")

#: Series that must appear in a ``/metrics`` scrape of a server that
#: has handled at least one request and one batch.
REQUIRED_METRICS = (
    "repro_serve_requests_total",
    "repro_serve_latency_seconds_bucket",
    "repro_serve_latency_seconds_count",
    "repro_serve_batches_total",
    "repro_serve_batch_size_bucket",
    "repro_serve_queue_depth",
    "repro_serve_inflight_batches",
    "repro_serve_draining",
    "repro_pool_lookups_total",
    "repro_pool_engines",
    "repro_pool_plans",
)


def _request(url: str, payload: dict = None):
    """GET (payload None) or POST JSON; returns (status, decoded body)."""
    data = None if payload is None else json.dumps(payload).encode("utf8")
    req = urllib.request.Request(
        url, data=data, method="GET" if data is None else "POST",
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=120) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _request_text(url: str):
    """GET a text endpoint; returns (status, body string)."""
    with urllib.request.urlopen(url, timeout=120) as reply:
        return reply.status, reply.read().decode("utf8")


def _check_metrics_body(text: str) -> None:
    """No sample line may be NaN (a NaN series means broken math)."""
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        value = line.rsplit(" ", 1)[-1]
        assert value != "NaN", f"NaN sample in /metrics: {line}"


def _metrics_phase(base: str) -> None:
    """Scrape ``/metrics`` repeatedly while a request burst is in flight."""
    errors = []

    def burst():
        try:
            for _ in range(4):
                status, reply = _request(f"{base}/predict",
                                         {"image": [0.0] * 784})
                assert status == 200, reply
        except Exception as exc:  # surfaced after join
            errors.append(repr(exc))

    load = threading.Thread(target=burst)
    load.start()
    scrapes = 0
    while load.is_alive() and scrapes < 200:
        status, text = _request_text(f"{base}/metrics")
        assert status == 200
        _check_metrics_body(text)
        scrapes += 1
    load.join()
    assert not errors, errors

    status, text = _request_text(f"{base}/metrics")
    assert status == 200
    _check_metrics_body(text)
    present = {line.split("{")[0].split(" ")[0]
               for line in text.splitlines() if not line.startswith("#")}
    missing = [name for name in REQUIRED_METRICS if name not in present]
    assert not missing, f"/metrics is missing series: {missing}\n{text}"
    ok_line = next(line for line in text.splitlines()
                   if line.startswith("repro_serve_requests_total")
                   and 'outcome="ok"' in line)
    assert float(ok_line.rsplit(" ", 1)[1]) >= 4, ok_line
    print(f"GET /metrics: {len(present)} series, no NaN, "
          f"{scrapes} scrapes during load")


def _check_trace(trace_path: str) -> None:
    """The JSONL trace reconstructs a request's critical path."""
    with open(trace_path, encoding="utf8") as handle:
        records = [json.loads(line) for line in handle]
    by_id = {r["span"]: r for r in records}
    assert len(by_id) == len(records), "duplicate span ids"
    predicts = {r["span"] for r in records if r["name"] == "serve.predict"}
    assert predicts, "no serve.predict spans traced"

    def children(name, parents):
        return [r for r in records
                if r["name"] == name and r["parent"] in parents]

    queue = children("serve.queue", predicts)
    coalesce = children("serve.coalesce", predicts)
    compute = children("serve.compute", predicts)
    assert queue and coalesce and compute, (
        "queue/coalesce/compute spans missing or unstitched")
    computes = {r["span"] for r in compute}
    forward = children("engine.forward", computes)
    assert forward, "engine.forward not parented under serve.compute"
    layers = children("engine.layer", {r["span"] for r in forward})
    assert layers, "no per-layer spans under engine.forward"
    print(f"trace: {len(records)} spans, critical path "
          f"queue -> coalesce -> compute -> forward -> "
          f"{len(layers)} layer spans reconstructed")


def _wait_for_port(proc) -> int:
    """Read the server's stdout until it announces its bound port.

    A watchdog kills the subprocess at ``STARTUP_TIMEOUT_S`` so a server
    that hangs *without printing anything* still fails this script
    promptly (reading stdout alone would block in readline forever).
    """
    watchdog = threading.Timer(STARTUP_TIMEOUT_S, proc.kill)
    watchdog.daemon = True
    watchdog.start()
    try:
        for line in proc.stdout:
            sys.stdout.write(line)
            if "listening on http://" in line:
                return int(line.rsplit(":", 1)[1])
    finally:
        watchdog.cancel()
    raise RuntimeError("server did not announce its port within "
                       f"{STARTUP_TIMEOUT_S:.0f}s "
                       f"(exit code {proc.poll()})")


def _drain_phase(proc, base: str) -> None:
    """SIGTERM mid-load: the in-flight reply completes, exit code is 0.

    A batch on the float backend (slowed by the injected sleep) is in
    flight when SIGTERM lands; the drain contract says that reply must
    still arrive — a ``RemoteDisconnected``/reset mid-request means the
    server dropped an accepted request, which fails the smoke.  A
    refused connection *after* shutdown is the expected endpoint.
    """
    result = {}

    def slow_client():
        try:
            result["outcome"] = _request(
                f"{base}/predict",
                {"images": [[0.0] * 784] * 32, "backend": "float"})
        except Exception as exc:  # dropped mid-request
            result["outcome"] = ("dropped", repr(exc))

    client = threading.Thread(target=slow_client)
    client.start()
    time.sleep(0.5)  # inside the first injected 1.5 s compute sleep
    proc.send_signal(signal.SIGTERM)

    draining_seen = False
    for _ in range(100):
        try:
            status, health = _request(f"{base}/healthz")
        except (ConnectionError, urllib.error.URLError,
                http.client.HTTPException):
            break  # already fully shut down
        if status == 503 and health.get("status") == "draining":
            draining_seen = True
            break
        time.sleep(0.05)

    client.join(timeout=120)
    assert not client.is_alive(), "in-flight request never resolved"
    status, reply = result["outcome"]
    assert status == 200, f"in-flight reply dropped: {result['outcome']}"
    assert len(reply["predictions"]) == 32, reply
    print("drain: in-flight batch completed"
          + (" (draining health observed)" if draining_seen else ""))

    code = proc.wait(timeout=120)
    assert code == 0, f"server exited {code} after drain, want 0"
    try:
        _request(f"{base}/healthz")
        raise AssertionError("server still serving after drain exit")
    except (ConnectionError, urllib.error.URLError,
            http.client.HTTPException):
        pass
    print("drain smoke: SIGTERM -> in-flight served, clean exit 0")


def main() -> int:
    procs = 1
    argv = sys.argv[1:]
    if argv[:1] == ["--procs"]:
        procs = int(argv[1])
    elif argv:
        raise SystemExit(f"usage: smoke_serve.py [--procs N] (got {argv})")
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    env["REPRO_FAULTS"] = DRAIN_FAULTS
    # Arm tracing in the server; CI sets REPRO_TRACE to a path it later
    # uploads as an artifact, otherwise a temp file is used.
    trace_path = env.get("REPRO_TRACE") or os.path.join(
        tempfile.gettempdir(), f"smoke_serve_trace_{os.getpid()}.jsonl")
    env["REPRO_TRACE"] = trace_path
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
         "--length", "64", "--train", "300", "--epochs", "1",
         "--max-wait-ms", "5", "--drain-grace", "60",
         "--procs", str(procs)],
        env=env, cwd=str(REPO_ROOT), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    shm_glob = f"/dev/shm/repro-plan-{proc.pid}-*"
    try:
        port = _wait_for_port(proc)
        base = f"http://127.0.0.1:{port}"

        status, health = _request(f"{base}/healthz")
        assert status == 200 and health["status"] == "ok", health

        image = [0.0] * 784
        for backend in ("exact", "surrogate"):
            status, reply = _request(f"{base}/predict",
                                     {"image": image, "backend": backend})
            assert status == 200, (backend, reply)
            assert reply["prediction"] in range(10), (backend, reply)
            assert reply["backend"] == backend, reply
            print(f"POST /predict [{backend}]: prediction="
                  f"{reply['prediction']} ({reply['latency_ms']} ms)")

        status, reply = _request(f"{base}/predict",
                                 {"image": image, "backend": "bogus"})
        assert status == 400 and "unknown backend" in reply["error"], reply

        status, stats = _request(f"{base}/stats")
        assert status == 200, stats
        assert stats["service"]["requests"] >= 2, stats
        if procs > 1:
            assert stats["procs"]["workers"] == procs, stats
            assert stats["procs"]["alive"] == procs, stats
            assert stats["procs"]["shared_plan_segments"] >= 1, stats
            assert glob.glob(shm_glob), \
                f"no shared plan segments matching {shm_glob}"
        else:
            assert stats["batcher"]["batches"] >= 2, stats
        assert stats["pool"]["engines"] >= 2, stats
        assert stats["service"]["latency_ms"]["p95"] > 0, stats
        print("GET /stats:", json.dumps(stats["service"]))

        _metrics_phase(base)
        _drain_phase(proc, base)
        if procs > 1:
            leftovers = glob.glob(shm_glob)
            assert not leftovers, (
                f"shared-memory segments survived SIGTERM drain: "
                f"{leftovers}")
            print(f"shm cleanup: no {shm_glob} segments after drain")
        else:
            # Worker spans live in other processes when --procs > 1 and
            # are not stitched to the frontend span, so the critical-path
            # reconstruction only applies to the in-process tier.
            _check_trace(trace_path)
        print("serve smoke test passed"
              + (f" (procs={procs})" if procs > 1 else ""))
        return 0
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:  # pragma: no cover - CI guard
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
