"""Table 4: hardware-oriented max pooling vs software max pooling.

Paper setup: segment length c = 16, candidate counts 4/9/16, stream
lengths 128..512.  Expected shape: deviation shrinks with L, grows mildly
with the number of candidates.
"""

from repro.analysis.block_error import maxpool_deviation
from repro.analysis.tables import PAPER, format_table

from bench_utils import scaled

CANDIDATES = (4, 9, 16)
LENGTHS = (128, 256, 384, 512)


def _measure():
    return {
        (k, L): maxpool_deviation(k, L, segment=16, trials=scaled(300),
                                  seed=3)
        for k in CANDIDATES for L in LENGTHS
    }


def test_table4_hardware_max_pooling(benchmark, record_table):
    grid = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = []
    for k in CANDIDATES:
        rows.append([f"n={k}"] + [
            f"{grid[(k, L)]:.3f} (paper {PAPER['table4'][(k, L)]})"
            for L in LENGTHS
        ])
    record_table("table4", format_table(
        ["Input size"] + [f"L={L}" for L in LENGTHS], rows,
        title="Table 4 — hardware-oriented max pooling result deviation",
    ))
    assert grid[(4, 512)] < grid[(4, 128)]     # improves with L
    assert grid[(16, 128)] > grid[(4, 128)]    # degrades with candidates
