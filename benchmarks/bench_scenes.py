"""Composite-scene serving benchmark: scene fan-out vs naive per-window.

One composite scene is many model-sized windows.  The pre-scene status
quo is a client that slices the scene itself and issues one serve-tier
request per window, blocking on each — every window pays its own
dispatch, queue wait and batching latency.  The scene mode sends the
whole canvas in one request; the service fans it into a coalesced
window batch on the micro-batcher (all windows share one group key),
so the per-request overhead is paid once per *scene*.

Two modes per run, same service, same engine pool:

* **per_window_requests** — the naive baseline: ``extract_windows`` on
  the client, one ``predict_one`` call per window, sequential;
* **scene_requests** — one ``predict_scene`` call per scene.

Acceptance (both are hard failures, not report footnotes):

* every scene reply's window logits are *bit-identical* to a dedicated
  single-engine :class:`~repro.engine.tiled.TiledInference` run, and
  the naive per-window predictions equal the scene reply's
  ``window_preds`` — batching mode cannot change answers;
* the whole run compiles exactly one plan through the engine pool
  (``plans_compiled == 1``), no matter how many scenes pass through.

Run directly (``PYTHONPATH=src python benchmarks/bench_scenes.py``) or
via ``benchmarks/run_all.py --scenes``, which records the result in
``benchmarks/BENCH_scenes.json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import NetworkConfig, PoolKind
from repro.data.scenes import SceneGenerator
from repro.data.synthetic_mnist import generate_dataset, to_bipolar
from repro.engine import Engine, TiledInference, extract_windows
from repro.nn.lenet import build_lenet5
from repro.nn.trainer import Trainer
from repro.serve import InferenceService

SEED = 0
KINDS = ("APC", "APC", "APC")
MAX_BATCH = 16
MAX_WAIT_MS = 5.0
SCENE_SEED = 7


def _trained_model(quick: bool):
    n_train, epochs = (200, 1) if quick else (600, 2)
    x_train, y_train, _, _ = generate_dataset(
        n_train=n_train, n_test=8, seed=123)
    model = build_lenet5("max", seed=0)
    Trainer(model, lr=0.06, batch_size=64, seed=0).fit(
        to_bipolar(x_train), y_train, epochs=epochs)
    return model


def _naive_per_window(service, scene, window_hw):
    """The baseline client: slice the scene yourself, one request per
    window, block on each."""
    windows, boxes = extract_windows(scene.canvas, window_hw, window_hw[0])
    preds = [service.predict_one(
        to_bipolar(window.reshape(-1)), timeout=300.0)
        for window in windows]
    return boxes, preds


def measure_scenes(quick: bool = False) -> dict:
    """Run the scene-serving benchmark; returns the BENCH payload."""
    length = 32 if quick else 64
    n_scenes = 3 if quick else 10
    model = _trained_model(quick)
    config = NetworkConfig.from_kinds(PoolKind.MAX, length, KINDS)
    scenes = SceneGenerator(seed=SCENE_SEED).scenes(
        "grid", n_scenes, rows=2, cols=2)

    # the dedicated single-engine oracle every served answer must match
    tiler = TiledInference(
        Engine(model, config, backend="exact", seed=SEED))
    oracles = [tiler.infer(scene) for scene in scenes]
    window_hw = tiler.window_hw

    service = InferenceService(
        model, backend="exact", length=length, kinds=KINDS, pooling="max",
        seed=SEED, max_batch=MAX_BATCH, max_wait_ms=MAX_WAIT_MS,
        workers=1, warm=True)
    try:
        # warm allocation paths, untimed (same spec → same pooled engine)
        service.predict_scene(scenes[0])

        start = time.perf_counter()
        naive = [_naive_per_window(service, scene, window_hw)
                 for scene in scenes]
        naive_s = time.perf_counter() - start

        start = time.perf_counter()
        served = [service.predict_scene(scene, timeout=300.0)
                  for scene in scenes]
        scene_s = time.perf_counter() - start

        pool_stats = service.pool.stats()
    finally:
        service.close()

    for i, (result, oracle) in enumerate(zip(served, oracles)):
        if result.boxes != oracle.boxes or not np.array_equal(
                result.window_logits, oracle.window_logits):
            raise AssertionError(
                f"scene {i}: served logits diverged from the dedicated "
                f"single-engine tiled run — bit-exactness broken")
        boxes, preds = naive[i]
        if boxes != oracle.boxes or preds != [int(p) for p
                                              in oracle.window_preds]:
            raise AssertionError(
                f"scene {i}: naive per-window predictions diverged from "
                f"the scene reply — the two modes must agree")
    if pool_stats["plans_compiled"] != 1:
        raise AssertionError(
            f"{pool_stats['plans_compiled']} plans compiled for one "
            f"(model, config, bits) spec; the pool must compile once")

    windows = sum(len(oracle.boxes) for oracle in oracles)
    return {
        "backend": "exact",
        "length": length,
        "kinds": "-".join(KINDS),
        "scene_kind": "grid",
        "scenes": n_scenes,
        "windows_per_scene": windows // n_scenes,
        "policy": {"max_batch": MAX_BATCH, "max_wait_ms": MAX_WAIT_MS},
        "per_window_requests": {
            "elapsed_s": round(naive_s, 4),
            "scenes_per_s": round(n_scenes / naive_s, 3),
        },
        "scene_requests": {
            "elapsed_s": round(scene_s, 4),
            "scenes_per_s": round(n_scenes / scene_s, 3),
        },
        "speedup_scene_vs_per_window": round(naive_s / scene_s, 2),
        "bit_identical": True,
        "pool": {"plans_compiled": pool_stats["plans_compiled"],
                 "hit_rate": pool_stats["hit_rate"]},
    }


def main(quick: bool = False) -> None:
    results = measure_scenes(quick=quick)
    print(f"scene serving ({results['scenes']} grid scenes, "
          f"{results['windows_per_scene']} windows each, exact "
          f"L={results['length']}):")
    print(f"  per-window requests: "
          f"{results['per_window_requests']['scenes_per_s']} scenes/s")
    print(f"  scene requests:      "
          f"{results['scene_requests']['scenes_per_s']} scenes/s "
          f"({results['speedup_scene_vs_per_window']}x)")
    print(f"  bit-identical to dedicated tiled run: "
          f"{results['bit_identical']}; plans compiled: "
          f"{results['pool']['plans_compiled']}")


if __name__ == "__main__":
    import sys
    main(quick="--quick" in sys.argv)
