"""Run the benchmark suites and record the perf trajectory.

Two suites, each versioned as a JSON file so regressions show up in
review diffs (machine-to-machine variance means only same-machine ratios
are meaningful):

* ``--kernels`` — ``bench_kernels.py`` under pytest-benchmark →
  ``benchmarks/BENCH_kernels.json`` (median ns per kernel call);
* ``--engine`` — ``bench_engine.py`` →
  ``benchmarks/BENCH_engine.json`` (batched vs sequential-legacy exact
  throughput and per-backend latency of the layer-graph engine);
* ``--serve`` — ``bench_serve.py`` →
  ``benchmarks/BENCH_serve.json`` (closed-loop multi-client serving
  throughput: micro-batched service vs per-request sequential baseline,
  with a pooled-unbatched ablation and bit-identity checks);
* ``--dse`` — ``bench_dse.py`` → ``benchmarks/BENCH_dse.json``
  (parallel design-space exploration vs the legacy sequential loop,
  plus exact-evaluator screening savings; records ``cpu_count`` so the
  parallel ratio reads in context);
* ``--scenes`` — ``bench_scenes.py`` →
  ``benchmarks/BENCH_scenes.json`` (composite-scene serving: one
  scene request fanned into a coalesced window batch vs naive
  per-window requests, with bit-identity and one-compile-per-run
  asserted).

With no flags all suites run.  Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--kernels] [--engine]
                                                [--serve] [--dse]
                                                [--scenes]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
DEFAULT_OUTPUT = BENCH_DIR / "BENCH_kernels.json"
ENGINE_OUTPUT = BENCH_DIR / "BENCH_engine.json"
SERVE_OUTPUT = BENCH_DIR / "BENCH_serve.json"
DSE_OUTPUT = BENCH_DIR / "BENCH_dse.json"
SCENES_OUTPUT = BENCH_DIR / "BENCH_scenes.json"

#: numpy-vs-native benchmark twins (see bench_kernels.py) folded into
#: the ``native`` speedup column of BENCH_kernels.json.
_NATIVE_PAIRS = {
    "fused_transpose_popcount_sum": ("test_kernel_fused_count_numpy",
                                     "test_kernel_fused_count_native"),
    "apc_column_counts": ("test_kernel_apc_counts_numpy",
                          "test_kernel_apc_counts_native"),
    "apc_inner_product": ("test_kernel_apc_inner_numpy",
                          "test_kernel_apc_inner_native"),
    "stanh_fsm": ("test_kernel_stanh_numpy", "test_kernel_stanh_native"),
    "saturating_counter": ("test_kernel_btanh_numpy",
                           "test_kernel_btanh_native"),
}


def _native_column(medians: dict) -> dict:
    """The numpy-vs-native speedup column (empty when native is absent —
    the ``*_native`` twins skip, so their medians never appear)."""
    column = {}
    for label, (np_name, nat_name) in _NATIVE_PAIRS.items():
        if medians.get(np_name) and medians.get(nat_name):
            column[label] = {
                "numpy_ns": medians[np_name],
                "native_ns": medians[nat_name],
                "speedup": round(medians[np_name] / medians[nat_name], 2),
            }
    return column


def run_kernel_benchmarks(output: Path = DEFAULT_OUTPUT) -> dict:
    """Run bench_kernels.py; write and return {kernel: median_ns}."""
    repo_root = BENCH_DIR.parent
    env = dict(os.environ)
    src = str(repo_root / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    with tempfile.TemporaryDirectory() as tmp:
        raw = Path(tmp) / "bench.json"
        proc = subprocess.run(
            [sys.executable, "-m", "pytest",
             str(BENCH_DIR / "bench_kernels.py"), "-q",
             "--benchmark-json", str(raw)],
            env=env, cwd=str(repo_root),
        )
        if proc.returncode:
            raise SystemExit(proc.returncode)
        data = json.loads(raw.read_text())
    medians = {
        bench["name"]: round(bench["stats"]["median"] * 1e9)
        for bench in data["benchmarks"]
    }
    native = _native_column(medians)
    payload = {
        "unit": "median ns per call",
        "machine": data.get("machine_info", {}).get("cpu", {}).get(
            "brand_raw", "unknown"),
        "native_tier": bool(native),
        "kernels": dict(sorted(medians.items())),
        "native": native,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    for name, ns in sorted(medians.items()):
        print(f"  {name:32s} {ns / 1e3:12.1f} us")
    for label, row in native.items():
        print(f"  native {label:30s} {row['speedup']:6.2f}x")
    return medians


def run_engine_benchmarks(output: Path = ENGINE_OUTPUT) -> dict:
    """Run bench_engine.py in-process; write and return the payload."""
    sys.path.insert(0, str(BENCH_DIR.parent / "src"))
    sys.path.insert(0, str(BENCH_DIR))
    try:
        from bench_engine import measure_engine
        results = measure_engine()
    finally:
        sys.path.pop(0)
        sys.path.pop(0)
    payload = {
        "unit": "seconds / images-per-second per entry",
        "note": "batched Engine.predict vs sequential pre-engine "
                "SCNetwork calls (setup excluded on both sides); "
                "bit_identical asserts batched predictions equal the "
                "legacy simulator's",
        **results,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    print(f"  exact batched-vs-legacy speedup at "
          f"L={results['primary_length']}: "
          f"{results['speedup_at_primary']}x")
    return payload


def run_serve_benchmarks(output: Path = SERVE_OUTPUT) -> dict:
    """Run bench_serve.py in-process; write and return the payload."""
    sys.path.insert(0, str(BENCH_DIR.parent / "src"))
    sys.path.insert(0, str(BENCH_DIR))
    try:
        from bench_serve import measure_serve
        results = measure_serve()
    finally:
        sys.path.pop(0)
        sys.path.pop(0)
    payload = {
        "unit": "closed-loop requests per second per mode",
        "note": "multi-threaded closed-loop clients against the "
                "micro-batching InferenceService; per_request_sequential "
                "is the pre-serve status quo (fresh Engine per request, "
                "batch size 1), pooled_sequential isolates the engine "
                "pool (max_batch=1), micro_batched is the full service; "
                "bit_identical asserts every exact response equals a "
                "dedicated single-request Engine.predict with the same "
                "per-request seed",
        **results,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    print(f"  micro-batched vs per-request sequential (exact, L=64, "
          f"8 clients): {results['speedup_exact_L64_8_clients']}x")
    return payload


def run_dse_benchmarks(output: Path = DSE_OUTPUT,
                       quick: bool = False) -> dict:
    """Run bench_dse.py in-process; write and return the payload."""
    sys.path.insert(0, str(BENCH_DIR.parent / "src"))
    sys.path.insert(0, str(BENCH_DIR))
    try:
        from bench_dse import measure_dse
        results = measure_dse(quick=quick)
    finally:
        sys.path.pop(0)
        sys.path.pop(0)
    payload = {
        "unit": "seconds per search / evaluation counts",
        "note": "parallel DSE runner vs the legacy sequential "
                "HolisticOptimizer loop over the LeNet-5 combo space "
                "(identical workload, asserted bit-identical), plus "
                "exact-evaluator screening savings; the >= 2.5x "
                "acceptance gate applies on machines with >= 4 cores "
                "(the evaluations are CPU-bound NumPy — read "
                "speedup_workers4_vs_sequential against cpu_count)",
        **results,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    print(f"  parallel DSE vs sequential at 4 workers "
          f"({results['cpu_count']} core(s)): "
          f"{results['speedup_workers4_vs_sequential']}x; screening "
          f"saved {results['screening']['wall_savings_pct']}% wall")
    return payload


def run_scenes_benchmarks(output: Path = SCENES_OUTPUT,
                          quick: bool = False) -> dict:
    """Run bench_scenes.py in-process; write and return the payload."""
    sys.path.insert(0, str(BENCH_DIR.parent / "src"))
    sys.path.insert(0, str(BENCH_DIR))
    try:
        from bench_scenes import measure_scenes
        results = measure_scenes(quick=quick)
    finally:
        sys.path.pop(0)
        sys.path.pop(0)
    payload = {
        "unit": "scenes per second per mode",
        "note": "composite grid scenes through the serving tier: "
                "per_window_requests is the naive client (extract the "
                "windows yourself, one blocking predict per window), "
                "scene_requests sends the whole canvas in one request "
                "which the service fans into a coalesced window batch; "
                "bit_identical asserts every scene reply equals a "
                "dedicated single-engine TiledInference run and that "
                "the whole run compiled exactly one plan",
        **results,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    print(f"  scene requests vs naive per-window "
          f"({results['scenes']} scenes, exact L={results['length']}): "
          f"{results['speedup_scene_vs_per_window']}x")
    return payload


def mirror_artifacts(root: Path | None = None) -> list:
    """Copy every ``benchmarks/BENCH_*.json`` to the repo root.

    The perf-trajectory tracker discovers artifacts at the repo root, so
    each run mirrors whatever suite outputs exist (not just the ones
    this invocation refreshed).  Returns the mirrored paths.
    """
    root = BENCH_DIR.parent if root is None else Path(root)
    mirrored = []
    for src_path in sorted(BENCH_DIR.glob("BENCH_*.json")):
        dst = root / src_path.name
        shutil.copyfile(src_path, dst)
        mirrored.append(dst)
        print(f"mirrored {dst}")
    return mirrored


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", action="store_true",
                        help="run only the kernel microbenchmarks")
    parser.add_argument("--engine", action="store_true",
                        help="run only the engine throughput benchmark")
    parser.add_argument("--serve", action="store_true",
                        help="run only the serving throughput benchmark")
    parser.add_argument("--dse", action="store_true",
                        help="run only the DSE throughput benchmark")
    parser.add_argument("--dse-quick", action="store_true",
                        help="CI-smoke sizing for the DSE benchmark")
    parser.add_argument("--scenes", action="store_true",
                        help="run only the composite-scene serving "
                             "benchmark")
    parser.add_argument("--scenes-quick", action="store_true",
                        help="CI-smoke sizing for the scenes benchmark")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the kernel medians JSON")
    parser.add_argument("--engine-output", type=Path, default=ENGINE_OUTPUT,
                        help="where to write the engine benchmark JSON")
    parser.add_argument("--serve-output", type=Path, default=SERVE_OUTPUT,
                        help="where to write the serving benchmark JSON")
    parser.add_argument("--dse-output", type=Path, default=DSE_OUTPUT,
                        help="where to write the DSE benchmark JSON")
    parser.add_argument("--scenes-output", type=Path,
                        default=SCENES_OUTPUT,
                        help="where to write the scenes benchmark JSON")
    args = parser.parse_args(argv)
    dse = args.dse or args.dse_quick
    scenes = args.scenes or args.scenes_quick
    run_all = not (args.kernels or args.engine or args.serve or dse
                   or scenes)
    if args.kernels or run_all:
        run_kernel_benchmarks(args.output)
    if args.engine or run_all:
        run_engine_benchmarks(args.engine_output)
    if args.serve or run_all:
        run_serve_benchmarks(args.serve_output)
    if dse or run_all:
        run_dse_benchmarks(args.dse_output, quick=args.dse_quick)
    if scenes or run_all:
        run_scenes_benchmarks(args.scenes_output,
                              quick=args.scenes_quick)
    mirror_artifacts()


if __name__ == "__main__":
    main()
