"""Run the benchmark suites and record the perf trajectory.

Two suites, each versioned as a JSON file so regressions show up in
review diffs (machine-to-machine variance means only same-machine ratios
are meaningful):

* ``--kernels`` — ``bench_kernels.py`` under pytest-benchmark →
  ``benchmarks/BENCH_kernels.json`` (median ns per kernel call);
* ``--engine`` — ``bench_engine.py`` →
  ``benchmarks/BENCH_engine.json`` (batched vs sequential-legacy exact
  throughput and per-backend latency of the layer-graph engine).

With no flags both suites run.  Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--kernels] [--engine]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
DEFAULT_OUTPUT = BENCH_DIR / "BENCH_kernels.json"
ENGINE_OUTPUT = BENCH_DIR / "BENCH_engine.json"


def run_kernel_benchmarks(output: Path = DEFAULT_OUTPUT) -> dict:
    """Run bench_kernels.py; write and return {kernel: median_ns}."""
    repo_root = BENCH_DIR.parent
    env = dict(os.environ)
    src = str(repo_root / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    with tempfile.TemporaryDirectory() as tmp:
        raw = Path(tmp) / "bench.json"
        proc = subprocess.run(
            [sys.executable, "-m", "pytest",
             str(BENCH_DIR / "bench_kernels.py"), "-q",
             "--benchmark-json", str(raw)],
            env=env, cwd=str(repo_root),
        )
        if proc.returncode:
            raise SystemExit(proc.returncode)
        data = json.loads(raw.read_text())
    medians = {
        bench["name"]: round(bench["stats"]["median"] * 1e9)
        for bench in data["benchmarks"]
    }
    payload = {
        "unit": "median ns per call",
        "machine": data.get("machine_info", {}).get("cpu", {}).get(
            "brand_raw", "unknown"),
        "kernels": dict(sorted(medians.items())),
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    for name, ns in sorted(medians.items()):
        print(f"  {name:32s} {ns / 1e3:12.1f} us")
    return medians


def run_engine_benchmarks(output: Path = ENGINE_OUTPUT) -> dict:
    """Run bench_engine.py in-process; write and return the payload."""
    sys.path.insert(0, str(BENCH_DIR.parent / "src"))
    sys.path.insert(0, str(BENCH_DIR))
    try:
        from bench_engine import measure_engine
        results = measure_engine()
    finally:
        sys.path.pop(0)
        sys.path.pop(0)
    payload = {
        "unit": "seconds / images-per-second per entry",
        "note": "batched Engine.predict vs sequential pre-engine "
                "SCNetwork calls (setup excluded on both sides); "
                "bit_identical asserts batched predictions equal the "
                "legacy simulator's",
        **results,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    print(f"  exact batched-vs-legacy speedup at "
          f"L={results['primary_length']}: "
          f"{results['speedup_at_primary']}x")
    return payload


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", action="store_true",
                        help="run only the kernel microbenchmarks")
    parser.add_argument("--engine", action="store_true",
                        help="run only the engine throughput benchmark")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the kernel medians JSON")
    parser.add_argument("--engine-output", type=Path, default=ENGINE_OUTPUT,
                        help="where to write the engine benchmark JSON")
    args = parser.parse_args(argv)
    run_both = not (args.kernels or args.engine)
    if args.kernels or run_both:
        run_kernel_benchmarks(args.output)
    if args.engine or run_both:
        run_engine_benchmarks(args.engine_output)


if __name__ == "__main__":
    main()
