"""Run the kernel microbenchmarks and record the perf trajectory.

Executes ``bench_kernels.py`` under pytest-benchmark and writes
``benchmarks/BENCH_kernels.json`` mapping each kernel to its median
nanoseconds — the baseline that performance claims in later PRs are
judged against.  Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--output PATH]

The file is versioned alongside the benchmarks so regressions show up in
review diffs; machine-to-machine variance means only same-machine ratios
are meaningful.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
DEFAULT_OUTPUT = BENCH_DIR / "BENCH_kernels.json"


def run_kernel_benchmarks(output: Path = DEFAULT_OUTPUT) -> dict:
    """Run bench_kernels.py; write and return {kernel: median_ns}."""
    repo_root = BENCH_DIR.parent
    env = dict(os.environ)
    src = str(repo_root / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    with tempfile.TemporaryDirectory() as tmp:
        raw = Path(tmp) / "bench.json"
        proc = subprocess.run(
            [sys.executable, "-m", "pytest",
             str(BENCH_DIR / "bench_kernels.py"), "-q",
             "--benchmark-json", str(raw)],
            env=env, cwd=str(repo_root),
        )
        if proc.returncode:
            raise SystemExit(proc.returncode)
        data = json.loads(raw.read_text())
    medians = {
        bench["name"]: round(bench["stats"]["median"] * 1e9)
        for bench in data["benchmarks"]
    }
    payload = {
        "unit": "median ns per call",
        "machine": data.get("machine_info", {}).get("cpu", {}).get(
            "brand_raw", "unknown"),
        "kernels": dict(sorted(medians.items())),
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    for name, ns in sorted(medians.items()):
        print(f"  {name:32s} {ns / 1e3:12.1f} us")
    return medians


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the medians JSON")
    args = parser.parse_args(argv)
    run_kernel_benchmarks(args.output)


if __name__ == "__main__":
    main()
