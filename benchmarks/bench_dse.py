"""DSE throughput benchmark: parallel runner + screening vs sequential.

Two scenarios, each honest about what it measures:

* **parallel** — the legacy in-process ``HolisticOptimizer.
  run_sequential`` loop vs ``ParallelRunner`` at ``workers=1`` and
  ``workers=4`` over the LeNet-5 kind-combo space (noise evaluator, the
  paper's methodology).  The accuracy budget is disabled so every mode
  performs the *identical* evaluation workload (4 combos × every
  halving round), and all modes are asserted bit-identical.  A warm-up
  lap runs first so the disk-cached calibration artifacts (measured
  sigmas) are equally warm on every side — the timed comparison
  isolates evaluation throughput.

  Acceptance: ≥ 2.5x at 4 workers — asserted only on machines with at
  least 4 CPU cores and only in full mode.  The evaluations are
  CPU-bound NumPy; on a 1- or 2-core box the ratio is honestly ~1x and
  the JSON records ``cpu_count`` alongside it so the number can be read
  in context.

* **screening** — unscreened vs screened search with the **exact**
  bit-level evaluator (where a full evaluation costs seconds and the
  deterministic surrogate screen costs milliseconds).  Reports
  full-evaluation counts, wall clocks, the screened-out tally and the
  never-drop check (both passing sets must be identical — screening may
  only skip points the full evaluation would have failed).

Run directly (``PYTHONPATH=src python benchmarks/bench_dse.py
[--quick]``) or via ``benchmarks/run_all.py --dse``, which records the
result in ``benchmarks/BENCH_dse.json``.  ``--quick`` shrinks both
scenarios to a CI-smoke size (and skips the acceptance gate).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.core.optimizer import HolisticOptimizer
from repro.data.cache import TrainedModel
from repro.data.synthetic_mnist import generate_dataset, to_bipolar
from repro.dse import ParallelRunner, ScreenPolicy, SearchSpace
from repro.nn.lenet import build_lenet5
from repro.nn.trainer import Trainer, evaluate_error_rate

WORKERS = 4
ACCEPT_SPEEDUP = 2.5
MIN_CORES_FOR_ACCEPTANCE = 4


def _trained_model() -> TrainedModel:
    """The deterministic quick-trained LeNet-5 every scenario searches."""
    x_train, y_train, x_test, y_test = generate_dataset(
        n_train=600, n_test=400, seed=123)
    model = build_lenet5("max", seed=0)
    Trainer(model, lr=0.06, batch_size=64, seed=0).fit(
        to_bipolar(x_train), y_train, epochs=2)
    err = evaluate_error_rate(model, to_bipolar(x_test), y_test)
    return TrainedModel(model=model, pooling="max", x_test=x_test,
                        y_test=y_test, software_error_pct=err)


def _space(trained, max_length, min_length):
    return SearchSpace.from_trained(trained, max_length=max_length,
                                    min_length=min_length)


def _points_fingerprint(points):
    return [(p.config.name, p.error_pct, p.cost.energy_uj)
            for p in points]


def _measure_parallel(trained, quick: bool) -> dict:
    max_length, min_length = (128, 64) if quick else (1024, 64)
    eval_images = 60 if quick else 400
    threshold = 1e9  # budget off: identical workload on every side
    opt = HolisticOptimizer(trained, threshold_pct=threshold,
                            eval_images=eval_images, seed=0)

    def sequential():
        return opt.run_sequential(max_length=max_length,
                                  min_length=min_length)

    def runner(workers):
        return ParallelRunner(
            trained, _space(trained, max_length, min_length),
            threshold_pct=threshold, eval_images=eval_images, seed=0,
            workers=workers).run().passing

    # Warm-up: one untimed sequential lap populates the calibration
    # disk cache (measured sigmas per (kind, n, L)) for every side.
    sequential()

    t0 = time.perf_counter()
    legacy = sequential()
    t_legacy = time.perf_counter() - t0
    t0 = time.perf_counter()
    serial = runner(1)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = runner(WORKERS)
    t_parallel = time.perf_counter() - t0

    if not (_points_fingerprint(serial) == _points_fingerprint(legacy)
            == _points_fingerprint(parallel)):
        raise AssertionError(
            "DSE modes diverged: sequential, workers=1 and "
            f"workers={WORKERS} must be bit-identical")
    return {
        "max_length": max_length, "min_length": min_length,
        "eval_images": eval_images, "evaluator": "noise",
        "points_evaluated": len(legacy),
        "legacy_sequential_s": round(t_legacy, 4),
        "runner_workers1_s": round(t_serial, 4),
        f"runner_workers{WORKERS}_s": round(t_parallel, 4),
        "speedup_vs_legacy": round(t_legacy / t_parallel, 2),
        "speedup_vs_workers1": round(t_serial / t_parallel, 2),
        "bit_identical": True,
    }


def _measure_screening(trained, quick: bool) -> dict:
    max_length, min_length = (64, 64) if quick else (256, 64)
    eval_images = 16 if quick else 48
    if quick:
        # CI smoke: an unreachable budget with no margin screens out
        # every candidate — a platform-independent exercise of the
        # screen → skip-full-eval → prune path.
        margin, threshold = 0.0, -1000.0
    else:
        # A budget midway through the screen-degradation spread at the
        # top length, so the screen genuinely separates candidates
        # (derived from the data rather than pinned — the quick-trained
        # model's absolute errors vary across platforms).
        margin = 10.0
        # threshold -1e9 + margin 0: every candidate is screened out, so
        # the probe records each combo's screen degradation without ever
        # paying a (expensive, discarded) full exact evaluation.
        probe = ParallelRunner(
            trained, _space(trained, max_length, max_length),
            threshold_pct=-1e9, eval_images=eval_images, seed=0,
            screen=ScreenPolicy(margin_pct=0.0)).run()
        screen_degs = sorted(r.degradation_pct for r in probe.records
                             if r.stage == "screen")
        threshold = (screen_degs[0] + screen_degs[-1]) / 2.0 - margin / 2.0

    def search(screen):
        t0 = time.perf_counter()
        result = ParallelRunner(
            trained, _space(trained, max_length, min_length),
            threshold_pct=threshold, eval_images=eval_images, seed=0,
            evaluator="exact", workers=1, screen=screen).run()
        return result, time.perf_counter() - t0

    plain, t_plain = search(None)
    screened, t_screened = search(ScreenPolicy(margin_pct=margin))
    if _points_fingerprint(screened.passing) != \
            _points_fingerprint(plain.passing):
        raise AssertionError(
            "screening dropped (or invented) a passing point — the "
            "screened and unscreened passing sets must be identical")
    return {
        "max_length": max_length, "min_length": min_length,
        "eval_images": eval_images, "evaluator": "exact",
        "screen_margin_pct": margin,
        "threshold_pct": round(threshold, 4),
        "full_evals_unscreened": plain.stats["full_evals"],
        "full_evals_screened": screened.stats["full_evals"],
        "screen_evals": screened.stats["screen_evals"],
        "screened_out": screened.stats["screened_out"],
        "unscreened_s": round(t_plain, 4),
        "screened_s": round(t_screened, 4),
        "wall_savings_pct": round(100.0 * (1.0 - t_screened
                                           / max(t_plain, 1e-9)), 1),
        "never_dropped_passing_point": True,
    }


def measure_dse(quick: bool = False) -> dict:
    trained = _trained_model()
    results = {
        "cpu_count": os.cpu_count(),
        "workers": WORKERS,
        "quick_mode": quick,
        "parallel": _measure_parallel(trained, quick),
        "screening": _measure_screening(trained, quick),
    }
    speedup = results["parallel"]["speedup_vs_legacy"]
    results["speedup_workers4_vs_sequential"] = speedup
    cores = os.cpu_count() or 1
    results["acceptance_gate_active"] = (not quick
                                         and cores
                                         >= MIN_CORES_FOR_ACCEPTANCE)
    if results["acceptance_gate_active"] and speedup < ACCEPT_SPEEDUP:
        raise AssertionError(
            f"parallel DSE is only {speedup}x the sequential baseline "
            f"at {WORKERS} workers on a {cores}-core machine; "
            f"acceptance requires >= {ACCEPT_SPEEDUP}x")
    return results


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-smoke sizing (skips the acceptance gate)")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the results JSON here")
    args = parser.parse_args(argv)
    results = measure_dse(quick=args.quick)
    par, scr = results["parallel"], results["screening"]
    print(f"parallel: sequential {par['legacy_sequential_s']}s, "
          f"workers=1 {par['runner_workers1_s']}s, "
          f"workers={WORKERS} {par[f'runner_workers{WORKERS}_s']}s "
          f"({par['speedup_vs_legacy']}x vs sequential on "
          f"{results['cpu_count']} core(s))")
    print(f"screening: {scr['full_evals_unscreened']} -> "
          f"{scr['full_evals_screened']} exact evaluations "
          f"({scr['screened_out']} screened out), wall "
          f"{scr['unscreened_s']}s -> {scr['screened_s']}s "
          f"({scr['wall_savings_pct']}% saved)")
    if args.output is not None:
        args.output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
