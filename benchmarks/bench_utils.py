"""Shared helpers for the benchmark modules (trial-count scaling)."""

import os

__all__ = ["trial_scale", "scaled"]


def trial_scale() -> float:
    """Multiplier for Monte-Carlo trial counts (env REPRO_BENCH_TRIALS)."""
    return float(os.environ.get("REPRO_BENCH_TRIALS", "1.0"))


def scaled(n: int) -> int:
    """Scale a default trial count, with a sane floor."""
    return max(int(n * trial_scale()), 4)
