"""Table 5 + Figure 9: Stanh state count vs relative inaccuracy.

Paper setup: L = 8192, the FSM input variable K/2·x distributed in
[-1, 1].  Expected shape: inaccuracy is notable (high single digits of a
percent) and is *not* suppressed by raising K — the motivation for the
joint re-design of Section 4.4.  (Known deviation: the paper's sweep has
a shallow minimum at K=14; ours rises monotonically past K=8 — see
EXPERIMENTS.md.)
"""

import numpy as np

from repro.analysis.block_error import stanh_curve, stanh_inaccuracy
from repro.analysis.tables import PAPER, format_table

from bench_utils import scaled

STATE_COUNTS = (8, 10, 12, 14, 16, 18, 20)


def _measure():
    return {k: stanh_inaccuracy(k, length=8192, trials=scaled(250), seed=4)
            for k in STATE_COUNTS}


def test_table5_stanh_inaccuracy(benchmark, record_table):
    grid = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [[f"K={k}", f"{100 * grid[k]:.2f}%",
             f"{PAPER['table5'][k]:.2f}%"] for k in STATE_COUNTS]
    record_table("table5", format_table(
        ["State number", "Measured", "Paper"], rows,
        title="Table 5 — Stanh relative inaccuracy (L=8192)",
    ))
    # The paper's central claim: notable inaccuracy across all K.
    assert all(v > 0.03 for v in grid.values())


def test_fig9_stanh_curve(benchmark, record_table):
    """Figure 9: measured Stanh output vs tanh(K/2·x) over an x sweep."""
    lines = ["Figure 9 — Stanh(K=8) vs tanh(4x) (L=8192)"]
    x, measured, expected = benchmark.pedantic(
        lambda: stanh_curve(8, length=8192, points=11, seed=5),
        rounds=1, iterations=1,
    )
    rows = [[f"{xi:+.2f}", f"{m:+.3f}", f"{e:+.3f}"]
            for xi, m, e in zip(x, measured, expected)]
    lines.append(format_table(["x", "Stanh (measured)", "tanh(K/2·x)"],
                              rows))
    record_table("fig9", "\n".join(lines))
    assert np.abs(measured - expected).mean() < 0.1
