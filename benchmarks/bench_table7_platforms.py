"""Table 7: platform comparison.

The SC-DCNN rows (No.6 and No.11) are computed by the hardware model;
the CPU/GPU/FPGA/ASIC rows are the published figures the paper also
cites.  Expected shape: the SC-DCNN rows dominate every platform on
throughput, area efficiency and energy efficiency.
"""

from repro.analysis.tables import PAPER, format_table
from repro.core.config import TABLE6_CONFIGS
from repro.hw.network_cost import lenet_network_cost
from repro.hw.platforms import PLATFORMS


def _fmt(value, pattern="{:.1f}"):
    if value is None:
        return "N/A"
    return pattern.format(value)


def _measure():
    no6 = lenet_network_cost(TABLE6_CONFIGS[5][0])
    no11 = lenet_network_cost(TABLE6_CONFIGS[10][0])
    return no6, no11


def test_table7_platform_comparison(benchmark, record_table):
    no6, no11 = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = []
    for name, cost in (("SC-DCNN (No.6)", no6), ("SC-DCNN (No.11)", no11)):
        paper = PAPER["table7"]["No.6" if "No.6" in name else "No.11"]
        rows.append([
            name,
            f"{cost.area_mm2:.1f} ({paper['area_mm2']})",
            f"{cost.power_w:.2f} ({paper['power_w']})",
            f"{cost.throughput_ips:.0f} ({paper['throughput_ips']})",
            f"{cost.area_efficiency:.0f} ({paper['area_eff']})",
            f"{cost.energy_efficiency:.0f} ({paper['energy_eff']})",
        ])
    for p in PLATFORMS:
        rows.append([
            p.name,
            _fmt(p.area_mm2),
            _fmt(p.power_w, "{:.2f}"),
            _fmt(p.throughput_ips, "{:.0f}"),
            _fmt(p.area_efficiency, "{:.1f}"),
            _fmt(p.energy_efficiency, "{:.1f}"),
        ])
    record_table("table7", format_table(
        ["Platform", "Area mm² (paper)", "Power W (paper)",
         "Throughput img/s (paper)", "Area eff (paper)",
         "Energy eff (paper)"],
        rows, title="Table 7 — platform comparison",
    ))

    gpu = next(p for p in PLATFORMS if "Tesla" in p.name)
    # Paper's headline ratios against the GPU (No.11).
    assert no11.throughput_ips / gpu.throughput_ips > 100
    assert gpu.area_mm2 / no11.area_mm2 > 20        # paper: 30.6×
    assert no11.energy_efficiency / gpu.energy_efficiency > 1000
    # And the strongest ASIC baseline on throughput.
    dadiannao = next(p for p in PLATFORMS if p.name == "DaDianNao")
    assert no11.throughput_ips > dadiannao.throughput_ips
