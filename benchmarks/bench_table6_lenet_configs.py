"""Table 6: the twelve LeNet-5 SC-DCNN configurations.

For every configuration this bench reports:

* **inaccuracy** under the paper's evaluation methodology (measured block
  inaccuracy injected as zero-mean noise — ``PaperNoiseModel``) and under
  the calibrated transfer-curve surrogate that also carries systematic
  block distortion (``FastSCModel``);
* **area / power / delay / energy** from the hardware cost model
  (calibration anchored at configuration No.11, see DESIGN.md).

Expected shapes: APC-heavier configurations are more accurate and more
expensive; energy scales with the stream length; max pooling beats
average pooling on accuracy at matched configurations.

Set ``REPRO_TABLE6_EXACT=1`` to additionally run the bit-exact simulator
on a small sample for two anchor configurations.
"""

import os

from repro.analysis.tables import format_table
from repro.core.config import TABLE6_CONFIGS, PoolKind
from repro.core.fast_model import FastSCModel, PaperNoiseModel
from repro.core.network import SCNetwork
from repro.hw.network_cost import lenet_network_cost

from bench_utils import scaled


def _evaluate_all(trained_max, trained_avg, n_images):
    rows = []
    for config, paper in TABLE6_CONFIGS:
        trained = (trained_max if config.pooling is PoolKind.MAX
                   else trained_avg)
        x = trained.bipolar_test_images()[:n_images]
        y = trained.y_test[:n_images]
        noise_err = PaperNoiseModel(trained.model, config,
                                    seed=11).error_rate(x, y)
        surr_err = FastSCModel(trained.model, config,
                               seed=11).error_rate(x, y)
        cost = lenet_network_cost(config)
        rows.append((config, paper, noise_err, surr_err, cost))
    return rows


def test_table6_configurations(benchmark, trained_max, trained_avg,
                               record_table):
    n_images = scaled(400)
    rows = benchmark.pedantic(
        lambda: _evaluate_all(trained_max, trained_avg, n_images),
        rounds=1, iterations=1,
    )
    table = []
    for config, paper, noise_err, surr_err, cost in rows:
        table.append([
            config.name,
            config.describe().split(" ", 1)[1],
            f"{noise_err:.2f} / {surr_err:.2f} ({paper.inaccuracy_pct})",
            f"{cost.area_mm2:.1f} ({paper.area_mm2})",
            f"{cost.power_w:.2f} ({paper.power_w})",
            f"{cost.delay_ns:.0f} ({paper.delay_ns:.0f})",
            f"{cost.energy_uj:.2f} ({paper.energy_uj})",
        ])
    header = ["No.", "Config",
              "Inaccuracy % noise/surrogate (paper)",
              "Area mm² (paper)", "Power W (paper)",
              "Delay ns (paper)", "Energy µJ (paper)"]
    sw = (f"software baselines: max {trained_max.software_error_pct:.2f}%, "
          f"avg {trained_avg.software_error_pct:.2f}% "
          f"(paper: 1.53% / 2.24%)")
    record_table("table6", format_table(
        header, table, title=f"Table 6 — LeNet-5 configurations ({sw})"
    ))

    by_name = {c.name: (c, p, ne, se, cost)
               for c, p, ne, se, cost in rows}
    # APC-heavy configs are more accurate under the paper methodology.
    assert by_name["No.2"][2] <= by_name["No.1"][2] + 1.0
    # ...and cost more area.
    assert by_name["No.2"][4].area_mm2 > by_name["No.1"][4].area_mm2
    # Energy scales with stream length at fixed config.
    assert (by_name["No.8"][4].energy_uj
            > 1.8 * by_name["No.10"][4].energy_uj)
    # Delay column is exactly L × 5 ns.
    for config, paper, *_rest in rows:
        assert _rest[-1].delay_ns == paper.delay_ns


def test_table6_exact_simulation_anchor(benchmark, trained_max,
                                         record_table):
    """Bit-exact spot check of one APC configuration (No.4, L=512)."""
    config, paper = TABLE6_CONFIGS[3]
    n_images = 60 if os.environ.get("REPRO_TABLE6_EXACT") else 12
    sc = SCNetwork(trained_max.model, config, seed=11)
    x = trained_max.bipolar_test_images()
    err = benchmark.pedantic(
        lambda: sc.error_rate(x, trained_max.y_test, max_images=n_images),
        rounds=1, iterations=1,
    )
    record_table("table6_exact", format_table(
        ["Config", "Exact bit-level inaccuracy", "Paper", "Images"],
        [[config.describe(), f"{err:.1f}%",
          f"{paper.inaccuracy_pct}%", str(n_images)]],
        title="Table 6 — exact simulation anchor",
    ))
    assert err < 50.0
