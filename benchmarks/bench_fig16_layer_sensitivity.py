"""Figure 16: layer-wise inaccuracy injection vs network accuracy.

Expected shape: error rates rise with injected noise in every layer, and
layers differ in sensitivity — the observation behind the paper's
layer-wise feature extraction block configuration strategy.
"""

from repro.analysis.sensitivity import layer_noise_sensitivity
from repro.analysis.tables import format_table
from repro.data.synthetic_mnist import to_bipolar

from bench_utils import scaled

SIGMAS = (0.0, 0.1, 0.2, 0.4, 0.7, 1.0)


def test_fig16_layer_sensitivity(benchmark, trained_max, record_table):
    x = to_bipolar(trained_max.x_test)[: scaled(400)]
    y = trained_max.y_test[: scaled(400)]

    def _measure():
        return layer_noise_sensitivity(trained_max.model, x, y,
                                       sigmas=SIGMAS, seed=7)

    result = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [[layer] + [f"{e:.2f}%" for e in result[layer]]
            for layer in ("Layer0", "Layer1", "Layer2")]
    record_table("fig16", format_table(
        ["Noisy layer"] + [f"sigma={s}" for s in SIGMAS], rows,
        title="Figure 16 — error rate vs injected layer inaccuracy",
    ))
    for layer in ("Layer0", "Layer1", "Layer2"):
        assert result[layer][-1] >= result[layer][0] - 0.5
    # Layers must differ in sensitivity (the paper's key observation) —
    # measurable once the injected noise actually moves the error rate.
    finals = [result[layer][-1] for layer in ("Layer0", "Layer1", "Layer2")]
    if max(finals) > 3.0:
        assert max(finals) - min(finals) > 0.25
