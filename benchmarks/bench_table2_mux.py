"""Table 2: absolute errors of the MUX-based inner product block.

Paper setup: input sizes 16/32/64 × stream lengths 512..4096.  Expected
shape: error grows ~linearly with n, shrinks ~1/sqrt(L).
"""

from repro.analysis.block_error import mux_inner_product_error
from repro.analysis.tables import PAPER, format_table

from bench_utils import scaled

SIZES = (16, 32, 64)
LENGTHS = (512, 1024, 2048, 4096)


def _measure():
    grid = {}
    for n in SIZES:
        for length in LENGTHS:
            grid[(n, length)] = mux_inner_product_error(
                n, length, trials=scaled(48), seed=1
            )
    return grid


def test_table2_mux_inner_product(benchmark, record_table):
    grid = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = []
    for n in SIZES:
        rows.append([f"n={n}"] + [
            f"{grid[(n, L)]:.2f} (paper {PAPER['table2'][(n, L)]})"
            for L in LENGTHS
        ])
    record_table("table2", format_table(
        ["Input size"] + [f"L={L}" for L in LENGTHS], rows,
        title="Table 2 — MUX inner product absolute error",
    ))
    assert grid[(64, 512)] > grid[(16, 512)]       # grows with n
    assert grid[(16, 4096)] < grid[(16, 512)]      # shrinks with L
