"""Figure 13 + Section 5.2/5.3: weight precision vs network error,
and the SRAM savings of the storage schemes.

Expected shape: error rates fall steeply until w ≈ 6-7 and flatten;
truncating only Layer0 is the most benign; the 7-bit scheme saves ~10×
SRAM area and the layer-wise 7-7-6 scheme slightly more.
"""

from repro.analysis.tables import PAPER, format_table
from repro.data.synthetic_mnist import to_bipolar
from repro.storage.layerwise import precision_sweep, storage_savings

from bench_utils import scaled

PRECISIONS = (2, 3, 4, 5, 6, 7, 8, 9, 10)


def test_fig13_precision_sweep(benchmark, trained_max, record_table):
    x = to_bipolar(trained_max.x_test)[: scaled(400)]
    y = trained_max.y_test[: scaled(400)]

    def _measure():
        return precision_sweep(trained_max.model, x, y,
                               precisions=PRECISIONS)

    sweep = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = []
    for key in ("Layer0", "Layer1", "Layer2", "All layers"):
        rows.append([key] + [f"{e:.2f}%" for e in sweep[key]])
    record_table("fig13", format_table(
        ["Truncated"] + [f"w={w}" for w in PRECISIONS], rows,
        title=(f"Figure 13 — network error vs weight precision "
               f"(software baseline {trained_max.software_error_pct:.2f}%)"),
    ))
    # High precision is indistinguishable from full precision.  The
    # paper's knee sits at w = 7 for its MNIST-trained model; our
    # synthetic-data model's smaller conv2 weights move it to w = 8
    # (see EXPERIMENTS.md), so the flatness check starts there.
    for key in ("Layer0", "Layer1", "Layer2", "All layers"):
        w8 = sweep[key][PRECISIONS.index(8)]
        w10 = sweep[key][PRECISIONS.index(10)]
        assert abs(w8 - w10) < 4.0
    # 2-bit truncation of everything is catastrophic vs 7-bit.
    assert sweep["All layers"][0] >= sweep["All layers"][5]


def test_sec5_storage_savings(benchmark, record_table):
    uniform, layered = benchmark.pedantic(
        lambda: (storage_savings((7, 7, 7)), storage_savings((7, 7, 6))),
        rounds=1, iterations=1,
    )
    rows = [
        ["Uniform 7-bit", f"{uniform['area_saving']:.1f}x",
         f"{uniform['power_saving']:.1f}x",
         f"paper {PAPER['weight_storage']['uniform7_area_saving']}x area"],
        ["Layer-wise 7-7-6", f"{layered['area_saving']:.1f}x",
         f"{layered['power_saving']:.1f}x",
         f"paper {PAPER['weight_storage']['layerwise_area_saving']}x area, "
         f"{PAPER['weight_storage']['layerwise_power_saving']}x power"],
    ]
    record_table("sec5_storage", format_table(
        ["Scheme", "Area saving", "Power saving", "Paper"], rows,
        title="Section 5 — SRAM savings vs 64-bit baseline",
    ))
    assert layered["area_saving"] > uniform["area_saving"]
    assert uniform["area_saving"] > 6.0
