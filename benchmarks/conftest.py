"""Shared benchmark fixtures and result recording.

Every benchmark regenerates one table or figure of the paper and writes a
paper-vs-measured text table to ``benchmarks/results/``, in addition to
timing a representative kernel through pytest-benchmark.  Trial counts
are sized for ~minutes of total runtime; raise ``REPRO_BENCH_TRIALS``
for tighter Monte-Carlo estimates.
"""

import os
from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture()
def rng():
    return np.random.default_rng(42)


def trial_scale() -> float:
    """Multiplier for Monte-Carlo trial counts (env REPRO_BENCH_TRIALS)."""
    return float(os.environ.get("REPRO_BENCH_TRIALS", "1.0"))


def scaled(n: int) -> int:
    return max(int(n * trial_scale()), 4)


@pytest.fixture(scope="session")
def record_table():
    """Write a result table to benchmarks/results/<name>.txt and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str):
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record


@pytest.fixture(scope="session")
def trained_max():
    from repro.data.cache import get_trained_lenet
    return get_trained_lenet(pooling="max")


@pytest.fixture(scope="session")
def trained_avg():
    from repro.data.cache import get_trained_lenet
    return get_trained_lenet(pooling="avg")
