"""Ablation: are the paper's state-number equations actually optimal?

DESIGN.md's experiment index calls for ablations of the design choices.
This bench sweeps the activation state count K around each equation's
prescription and measures FEB inaccuracy — the paper's equations should
sit at or near the sweep minimum, validating the "approximately optimal"
claim of Section 4.4.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.feature_extraction import make_feb
from repro.core.state_numbers import (
    btanh_states_apc_max,
    stanh_states_mux_max,
)
from repro.utils.seeding import spawn_rng

from bench_utils import scaled

N, LENGTH = 25, 1024


def _inaccuracy(kind: str, n_states: int, trials: int) -> float:
    rng = spawn_rng(17, "ablation", kind, n_states)
    feb = make_feb(kind, N, LENGTH, seed=3, n_states=n_states)
    x = rng.uniform(-1, 1, (trials, 4, N))
    w = rng.uniform(-1, 1, (trials, 4, N)) * (3.6 / np.sqrt(N))
    return float(np.abs(feb.forward(x, w) - feb.reference(x, w)).mean())


def _sweep(kind: str, k_star: int, trials: int):
    factors = (0.25, 0.5, 1.0, 2.0, 4.0)
    ks = sorted({max(int(round(k_star * f / 2)) * 2, 2) for f in factors})
    return ks, [_inaccuracy(kind, k, trials) for k in ks]


def test_ablation_state_numbers(benchmark, record_table):
    trials = scaled(40)

    def _measure():
        out = {}
        for kind, k_star in (
            ("mux-max", stanh_states_mux_max(LENGTH, N)),
            ("apc-max", btanh_states_apc_max(N)),
        ):
            out[kind] = (k_star,) + _sweep(kind, k_star, trials)
        return out

    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    sections = []
    for kind, (k_star, ks, errs) in results.items():
        rows = [[f"K={k}" + (" *" if k == k_star else ""), f"{e:.3f}"]
                for k, e in zip(ks, errs)]
        sections.append(format_table(
            ["State count (* = paper equation)", "Inaccuracy (MAE)"],
            rows,
            title=f"Ablation — {kind} at n={N}, L={LENGTH}",
        ))
    record_table("ablation_state_numbers", "\n\n".join(sections))

    # The equation's K must be within 1.5x of the sweep's best error.
    for kind, (k_star, ks, errs) in results.items():
        star_err = errs[ks.index(k_star)]
        assert star_err <= min(errs) * 1.5 + 0.05, (
            f"{kind}: equation K={k_star} err={star_err:.3f} vs "
            f"best {min(errs):.3f}"
        )
