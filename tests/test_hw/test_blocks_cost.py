"""Tests for the FEB cost roll-up (Figure 15 shapes)."""

import pytest

from repro.hw.blocks_cost import (
    activation_cost,
    feb_cost,
    feb_metrics,
    inner_product_cost,
    pooling_cost,
)


class TestInnerProductCost:
    def test_apc_area_exceeds_mux_at_large_n(self):
        """Figure 15(a): APC-based blocks dominate area at larger n."""
        assert (inner_product_cost("apc", 256).area_um2
                > inner_product_cost("mux", 256).area_um2)

    def test_apc_delay_longer(self):
        """Section 6.1: APC designs have much longer path delays."""
        assert (inner_product_cost("apc", 64).delay_ns
                > inner_product_cost("mux", 64).delay_ns)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            inner_product_cost("carry-save", 16)


class TestPoolingCost:
    def test_max_pool_costs_more_than_avg(self):
        for ip in ("mux", "apc"):
            assert (pooling_cost("max", ip, 25).area_um2
                    > pooling_cost("avg", ip, 25).area_um2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="pooling"):
            pooling_cost("median", "mux", 25)


class TestFebCost:
    def test_mux_avg_cheapest(self):
        """Section 6.1: MUX-Avg-Stanh is the most area-efficient."""
        areas = {k: feb_cost(k, 64, 1024).area_um2
                 for k in ("mux-avg", "mux-max", "apc-avg", "apc-max")}
        assert min(areas, key=areas.get) == "mux-avg"

    def test_apc_max_most_expensive(self):
        """Section 6.1: APC-Max-Btanh has the highest area."""
        areas = {k: feb_cost(k, 64, 1024).area_um2
                 for k in ("mux-avg", "mux-max", "apc-avg", "apc-max")}
        assert max(areas, key=areas.get) == "apc-max"

    def test_area_grows_with_input_size(self):
        for kind in ("mux-avg", "apc-max"):
            assert (feb_cost(kind, 256, 1024).area_um2
                    > feb_cost(kind, 16, 1024).area_um2)

    def test_paper_name_aliases(self):
        assert (feb_cost("APC-Max-Btanh", 16, 1024).area_um2
                == feb_cost("apc-max", 16, 1024).area_um2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            feb_cost("apc-median", 16, 1024)
        with pytest.raises(ValueError, match="kind"):
            feb_cost("nonsense", 16, 1024)


class TestFebMetrics:
    def test_energy_scales_with_length(self):
        """Figure 15(d) / Table 6: halving L halves the energy."""
        e1024 = feb_metrics("apc-avg", 64, 1024)["energy_pj"]
        e512 = feb_metrics("apc-avg", 64, 512)["energy_pj"]
        assert e1024 / e512 == pytest.approx(2.0, rel=0.05)

    def test_metric_keys(self):
        m = feb_metrics("mux-max", 16, 1024)
        assert set(m) == {"area_um2", "delay_ns", "power_uw", "energy_pj"}


class TestActivationCost:
    def test_btanh_grows_with_n(self):
        assert (activation_cost("apc", 256, 1024, "max").area_um2
                >= activation_cost("apc", 16, 1024, "max").area_um2)
