"""Tests for the SRAM model, network roll-up and platform table."""

import math

import pytest

from repro.core.config import TABLE6_CONFIGS, NetworkConfig, PoolKind
from repro.hw.network_cost import (
    LENET_GEOMETRY,
    lenet_network_cost,
)
from repro.hw.platforms import PLATFORMS
from repro.hw.sram import SramBlockSpec, sram_cost


class TestSram:
    def test_area_grows_with_bits(self):
        small = sram_cost(SramBlockSpec(100, 7))
        large = sram_cost(SramBlockSpec(100, 64))
        assert large.area_um2 > small.area_um2

    def test_precision_reduction_saving(self):
        """Section 5.2: 64-bit → 7-bit storage saves ~10× SRAM area."""
        base = sram_cost(SramBlockSpec(800, 64)).area_um2
        low = sram_cost(SramBlockSpec(800, 7)).area_um2
        assert 6.0 < base / low < 12.0

    def test_periphery_amortizes(self):
        """Per-bit cost must fall as blocks grow (CACTI behaviour)."""
        small = sram_cost(SramBlockSpec(10, 8))
        large = sram_cost(SramBlockSpec(10000, 8))
        assert (small.area_um2 / (10 * 8)
                > large.area_um2 / (10000 * 8))


class TestLenetGeometry:
    def test_feb_counts_match_paper(self):
        """11520/4 = 2880 and 3200/4 = 800 feature extraction blocks."""
        by_name = {g.name: g for g in LENET_GEOMETRY}
        assert by_name["Layer0"].units == 2880
        assert by_name["Layer1"].units == 800
        assert by_name["Layer2"].units == 500
        assert by_name["Output"].units == 10

    def test_weight_counts(self):
        by_name = {g.name: g for g in LENET_GEOMETRY}
        assert by_name["Layer2"].weight_count == 400000  # 800×500


class TestNetworkCost:
    def test_no11_matches_paper(self):
        """The calibration anchor: No.11 ≈ 17.0 mm², 1.53 W, 2.0 µJ."""
        config, paper = TABLE6_CONFIGS[10]
        cost = lenet_network_cost(config)
        assert cost.area_mm2 == pytest.approx(paper.area_mm2, rel=0.05)
        assert cost.power_w == pytest.approx(paper.power_w, rel=0.05)
        assert cost.energy_uj == pytest.approx(paper.energy_uj, rel=0.1)
        assert cost.delay_ns == paper.delay_ns

    def test_rejects_non_lenet_depth(self):
        """NetworkConfig accepts any depth since the model zoo; the
        LeNet-specific roll-up must refuse instead of zip-truncating."""
        import pytest as _pytest

        from repro.core.config import NetworkConfig, PoolKind
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 256, ("APC", "APC"))
        with _pytest.raises(ValueError, match="graph_network_cost"):
            lenet_network_cost(cfg)

    def test_throughput_matches_paper(self):
        """781250 images/s at L=256 (Table 7)."""
        config, _ = TABLE6_CONFIGS[10]
        cost = lenet_network_cost(config)
        assert cost.throughput_ips == pytest.approx(781250, rel=0.01)

    def test_apc_configs_cost_more(self):
        """Table 6: more APC layers → larger area and power."""
        mux_cfg, _ = TABLE6_CONFIGS[6]   # No.7 MUX-APC-APC avg
        apc_cfg, _ = TABLE6_CONFIGS[7]   # No.8 APC-APC-APC avg
        assert (lenet_network_cost(apc_cfg).area_mm2
                > lenet_network_cost(mux_cfg).area_mm2)

    def test_energy_proportional_to_length(self):
        """Table 6: same config at L/2 → half the energy."""
        long_cfg, _ = TABLE6_CONFIGS[7]   # No.8, L=1024
        short_cfg, _ = TABLE6_CONFIGS[9]  # No.10, L=512
        ratio = (lenet_network_cost(long_cfg).energy_uj
                 / lenet_network_cost(short_cfg).energy_uj)
        assert ratio == pytest.approx(2.0, rel=0.02)

    def test_max_pool_costs_more_than_avg(self):
        max_cfg = NetworkConfig.from_kinds(PoolKind.MAX, 512,
                                           ("APC", "APC", "APC"))
        avg_cfg = NetworkConfig.from_kinds(PoolKind.AVG, 512,
                                           ("APC", "APC", "APC"))
        assert (lenet_network_cost(max_cfg).area_mm2
                > lenet_network_cost(avg_cfg).area_mm2)

    def test_layerwise_weight_bits(self):
        config, _ = TABLE6_CONFIGS[10]
        uniform = lenet_network_cost(config, weight_bits=7)
        layered = lenet_network_cost(config, weight_bits=(7, 7, 6))
        assert layered.area_mm2 <= uniform.area_mm2

    def test_breakdown_keys(self):
        config, _ = TABLE6_CONFIGS[0]
        cost = lenet_network_cost(config)
        assert set(cost.breakdown) == {
            "Layer0", "Layer1", "Layer2", "Output", "SRAM", "SNG"
        }

    def test_bad_weight_bits_rejected(self):
        config, _ = TABLE6_CONFIGS[0]
        with pytest.raises(ValueError, match="entries"):
            lenet_network_cost(config, weight_bits=(7, 7))


class TestPlatforms:
    def test_row_count(self):
        assert len(PLATFORMS) == 7

    def test_gpu_efficiency_matches_paper(self):
        gpu = next(p for p in PLATFORMS if "Tesla" in p.name)
        assert gpu.area_efficiency == pytest.approx(4.5, abs=0.1)
        assert gpu.energy_efficiency == pytest.approx(11.5, abs=1.0)

    def test_na_entries(self):
        minitaur = next(p for p in PLATFORMS if p.name == "Minitaur")
        assert minitaur.area_efficiency is None
        dadiannao = next(p for p in PLATFORMS if p.name == "DaDianNao")
        assert math.isnan(dadiannao.accuracy_pct)
