"""Tests for the gate library, cost algebra and component inventories."""

import pytest

from repro.hw import components as comp
from repro.hw.gates import CLOCK_NS, LIBRARY, CostBreakdown


class TestCostBreakdown:
    def test_add_sums_area_max_delay(self):
        a = CostBreakdown(10, 1, 1, 0.5)
        b = CostBreakdown(20, 2, 2, 0.3)
        c = a + b
        assert c.area_um2 == 30
        assert c.delay_ns == 0.5  # parallel: max

    def test_chain_adds_delay(self):
        a = CostBreakdown(10, 1, 1, 0.5)
        b = CostBreakdown(20, 2, 2, 0.3)
        assert a.chain(b).delay_ns == pytest.approx(0.8)

    def test_scale_preserves_delay(self):
        a = CostBreakdown(10, 1, 1, 0.5).scale(4)
        assert a.area_um2 == 40
        assert a.delay_ns == 0.5

    def test_sum_builtin(self):
        parts = [CostBreakdown(1, 1, 1, 0.1)] * 3
        total = sum(parts, CostBreakdown())
        assert total.area_um2 == 3

    def test_power_includes_leakage(self):
        a = CostBreakdown(0, 0, 1000, 0)  # 1000 nW leakage
        assert a.power_uw() == pytest.approx(1.0)

    def test_from_gates(self):
        c = CostBreakdown.from_gates({"XNOR2": 2}, depth={"XNOR2": 1})
        assert c.area_um2 == pytest.approx(2 * LIBRARY["XNOR2"].area_um2)
        assert c.delay_ns == pytest.approx(LIBRARY["XNOR2"].delay_ns)


class TestClock:
    def test_table6_delay_consistency(self):
        """Table 6: L=1024 → 5120 ns, fixing the clock at 5 ns."""
        assert 1024 * CLOCK_NS == 5120
        assert 256 * CLOCK_NS == 1280


class TestComponents:
    def test_xnor_array_scales_linearly(self):
        assert (comp.xnor_array(32).area_um2
                == pytest.approx(2 * comp.xnor_array(16).area_um2))

    def test_mux_tree_bigger_than_xnor(self):
        assert comp.mux_tree(16).area_um2 > comp.xnor_array(16).area_um2 / 2

    def test_apc_saves_forty_percent(self):
        approx = comp.apc(64, approximate=True).area_um2
        exact = comp.apc(64, approximate=False).area_um2
        assert approx / exact == pytest.approx(0.6, abs=0.05)

    def test_apc_depth_grows_logarithmically(self):
        assert comp.apc(256).delay_ns > comp.apc(16).delay_ns

    def test_accumulator_heavier_than_counter(self):
        assert comp.accumulator(8).area_um2 > comp.counter(8).area_um2

    def test_stanh_fsm_grows_with_states(self):
        assert comp.stanh_fsm(64).area_um2 > comp.stanh_fsm(8).area_um2

    def test_btanh_counter_positive(self):
        c = comp.btanh_counter(32, 16)
        assert c.area_um2 > 0 and c.delay_ns > 0

    def test_sng_combines_lfsr_and_comparator(self):
        sng = comp.sng(8)
        assert sng.area_um2 > comp.lfsr_cost(8).area_um2

    @pytest.mark.parametrize("fn", [comp.xnor_array, comp.or_tree,
                                    comp.mux_tree, comp.counter])
    def test_rejects_nonpositive(self, fn):
        with pytest.raises(ValueError):
            fn(0)
