"""Tests for layer-wise precision optimization and SRAM sharing."""

import numpy as np
import pytest

from repro.data.synthetic_mnist import to_bipolar
from repro.storage.layerwise import (
    BASELINE_BITS,
    layerwise_precision_search,
    precision_sweep,
    storage_savings,
)
from repro.storage.sharing import lenet_sharing_plan


class TestStorageSavings:
    def test_uniform_seven_bit_saving(self):
        """Section 5.2: ~10.3× SRAM area saving for 7-bit storage."""
        result = storage_savings((7, 7, 7))
        assert 6.0 < result["area_saving"] < 13.0

    def test_paper_776_scheme(self):
        """Section 5.3: 7-7-6 → ~12× area, ~11.9× power savings."""
        result = storage_savings((7, 7, 6))
        assert result["area_saving"] > storage_savings((7, 7, 7))["area_saving"]
        assert 6.0 < result["power_saving"] < 14.0

    def test_baseline_is_identity(self):
        result = storage_savings((BASELINE_BITS,) * 3)
        assert result["area_saving"] == pytest.approx(1.0)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            storage_savings((7, 7))


class TestPrecisionSweep:
    def test_figure13_shape(self, tiny_trained_lenet, small_dataset):
        """Figure 13: error falls as precision rises; Layer2 truncation
        hurts most (it has the most weights)."""
        _, _, x_test, y_test = small_dataset
        x = to_bipolar(x_test)[:120]
        y = y_test[:120]
        sweep = precision_sweep(tiny_trained_lenet, x, y,
                                precisions=[2, 7])
        for key in ("Layer0", "Layer1", "Layer2", "All layers"):
            # 7-bit must be no worse than 2-bit (allow small noise).
            assert sweep[key][1] <= sweep[key][0] + 2.0
        # At w=2, truncating everything is at least as bad as only Layer0.
        assert sweep["All layers"][0] >= sweep["Layer0"][0] - 2.0

    def test_high_precision_matches_float(self, tiny_trained_lenet,
                                          small_dataset):
        _, _, x_test, y_test = small_dataset
        x = to_bipolar(x_test)[:120]
        y = y_test[:120]
        from repro.nn.trainer import evaluate_error_rate
        base = evaluate_error_rate(tiny_trained_lenet, x, y)
        sweep = precision_sweep(tiny_trained_lenet, x, y, precisions=[10])
        assert sweep["All layers"][0] == pytest.approx(base, abs=1.0)


class TestLayerwiseSearch:
    def test_generous_budget_reduces_to_minimum(self, tiny_trained_lenet,
                                                small_dataset):
        _, _, x_test, y_test = small_dataset
        x = to_bipolar(x_test)[:60]
        y = y_test[:60]
        bits, err = layerwise_precision_search(
            tiny_trained_lenet, x, y, budget_pct=100.0,
            min_bits=6, max_bits=8,
        )
        assert bits == (6, 6, 6)
        assert 0.0 <= err <= 100.0

    def test_zero_budget_keeps_maximum(self, tiny_trained_lenet,
                                       small_dataset):
        _, _, x_test, y_test = small_dataset
        x = to_bipolar(x_test)[:60]
        y = y_test[:60]
        bits, _ = layerwise_precision_search(
            tiny_trained_lenet, x, y, budget_pct=-100.0,
            min_bits=6, max_bits=8,
        )
        assert bits == (8, 8, 8)


class TestSharingPlan:
    def test_one_block_per_filter(self):
        plans = lenet_sharing_plan(7)
        assert plans[0].blocks == 20   # conv1 filters
        assert plans[1].blocks == 50   # conv2 filters

    def test_routing_saving_positive(self):
        """Figure 12's claim: local filter blocks beat a central SRAM."""
        for plan in lenet_sharing_plan(7):
            assert plan.routing_saving() > 1.0

    def test_area_scales_with_precision(self):
        a7 = sum(p.total_area_um2() for p in lenet_sharing_plan(7))
        a64 = sum(p.total_area_um2() for p in lenet_sharing_plan(64))
        assert a64 > 5 * a7
