"""Tests for the weight storage mapping (Section 5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.dense import Dense
from repro.nn.module import Sequential
from repro.storage.quantization import (
    dequantize_codes,
    quantization_error,
    quantize_model,
    quantize_weights,
)


class TestQuantizeWeights:
    def test_paper_mapping(self):
        """y = Int((x+1)/2 · 2^w): x=0.5, w=3 → Int(0.75·8) = 6."""
        assert quantize_weights(0.5, 3) == 6

    def test_codes_in_range(self):
        codes = quantize_weights(np.linspace(-1, 1, 101), 7)
        assert codes.min() >= 0 and codes.max() <= 128

    @given(st.floats(min_value=-1.0, max_value=1.0),
           st.integers(min_value=2, max_value=12))
    @settings(max_examples=60)
    def test_round_trip_error_bounded(self, x, bits):
        """Truncation step is 2/2^w, so |x - x̂| < 2/2^w."""
        restored = dequantize_codes(quantize_weights(x, bits), bits)
        assert abs(float(restored) - x) < 2.0 / (1 << bits) + 1e-12

    def test_out_of_range_clipped(self):
        restored = dequantize_codes(quantize_weights(1.7, 8), 8)
        assert float(restored) <= 1.0

    def test_monotone(self):
        xs = np.linspace(-1, 1, 33)
        codes = quantize_weights(xs, 6)
        assert (np.diff(codes) >= 0).all()


class TestQuantizationError:
    def test_decreases_with_bits(self, rng):
        w = rng.uniform(-1, 1, 500)
        e4 = quantization_error(w, 4)["rmse"]
        e8 = quantization_error(w, 8)["rmse"]
        assert e8 < e4

    def test_high_precision_negligible(self, rng):
        w = rng.uniform(-1, 1, 100)
        assert quantization_error(w, 16)["max_abs"] < 1e-4


class TestQuantizeModel:
    def _model(self):
        return Sequential([Dense(4, 3, seed=0), Dense(3, 2, seed=1)])

    def test_uniform_precision(self):
        model = self._model()
        before = model.params[0].value.copy()
        quantize_model(model, 4)
        after = model.params[0].value
        assert not np.array_equal(before, after)
        assert np.abs(before - after).max() < 2.0 / 16 + 1e-12

    def test_biases_untouched(self):
        model = self._model()
        model.params[1].value += 0.123456789
        before = model.params[1].value.copy()
        quantize_model(model, 3)
        np.testing.assert_array_equal(model.params[1].value, before)

    def test_per_layer_precisions(self):
        model = self._model()
        quantize_model(model, [8, 4])
        # layer 2 is coarser than layer 1
        w2 = model.params[2].value
        codes = quantize_weights(w2, 4)
        np.testing.assert_allclose(dequantize_codes(codes, 4), w2)

    def test_wrong_count_rejected(self):
        with pytest.raises(ValueError, match="precisions"):
            quantize_model(self._model(), [8, 8, 8])
