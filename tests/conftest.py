"""Shared fixtures for the test suite.

Heavy artifacts (a briefly-trained LeNet-5, a small dataset) are
session-scoped; individual tests stay fast by using short bit-streams.
"""

import numpy as np
import pytest

from repro.data.synthetic_mnist import generate_dataset, to_bipolar
from repro.nn.lenet import build_lenet5
from repro.nn.trainer import Trainer


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-stream exact-backend runs (deselect with -m 'not slow' "
        "for the fast CI tier)")


@pytest.fixture(scope="session")
def small_dataset():
    """A small synthetic digit dataset: (x_train, y_train, x_test, y_test)."""
    return generate_dataset(n_train=600, n_test=200, seed=123)


@pytest.fixture(scope="session")
def tiny_trained_lenet(small_dataset):
    """A LeNet-5 trained for a couple of epochs — enough to beat chance
    decisively, cheap enough for CI."""
    x_train, y_train, x_test, y_test = small_dataset
    model = build_lenet5("max", seed=0)
    trainer = Trainer(model, lr=0.06, batch_size=64, seed=0)
    trainer.fit(to_bipolar(x_train), y_train, epochs=3)
    return model


@pytest.fixture(scope="session")
def zoo_trained(small_dataset):
    """Briefly-trained small zoo models: {name: Sequential}.

    Covers the non-LeNet architectures (lenet_s / mlp / conv3) — the
    paper's LeNet-5 is the separate ``tiny_trained_lenet`` fixture.
    Each model trains on the shared 600-image split in a few seconds
    and beats chance decisively; conformance tests compare *backends
    against each other*, so absolute accuracy only needs to clear that
    bar.
    """
    from repro.nn.zoo import build_zoo_model, get_spec
    x_train, y_train, _, _ = small_dataset
    epochs = {"lenet_s": 3, "mlp": 10, "conv3": 3}
    models = {}
    for name, n_epochs in epochs.items():
        model = build_zoo_model(name, "max", seed=0)
        Trainer(model, lr=get_spec(name).lr, batch_size=64, seed=0).fit(
            to_bipolar(x_train), y_train, epochs=n_epochs)
        models[name] = model
    return models


@pytest.fixture()
def rng():
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def cached_lenet():
    """The fully-trained LeNet-5 (disk-cached; trains once per machine).

    Used only by tests that assert on end-to-end SC classification
    quality, where the briefly-trained fixture's small logit margins make
    bit-level results too noisy to bound reliably."""
    from repro.data.cache import get_trained_lenet
    return get_trained_lenet(pooling="max")
