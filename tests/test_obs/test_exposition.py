"""Prometheus text exposition: render format and render→parse round-trip."""

import math

import pytest

from repro import obs
from repro.obs.exposition import merge, parse, render


@pytest.fixture()
def registry():
    with obs.scoped_registry() as reg:
        yield reg


class TestRender:
    def test_counter_with_help_and_type(self, registry):
        registry.counter("reqs_total", "Requests served.").inc(3)
        text = render(registry)
        assert "# HELP reqs_total Requests served." in text
        assert "# TYPE reqs_total counter" in text
        assert "reqs_total 3" in text.splitlines()

    def test_labeled_samples_sorted_and_quoted(self, registry):
        fam = registry.counter("k_total", labelnames=("kernel", "tier"))
        fam.labels(kernel="popcount", tier="native").inc()
        fam.labels(kernel="apc", tier="numpy-lut").inc(2)
        lines = render(registry).splitlines()
        samples = [l for l in lines if l.startswith("k_total{")]
        assert samples == [
            'k_total{kernel="apc",tier="numpy-lut"} 2',
            'k_total{kernel="popcount",tier="native"} 1',
        ]

    def test_histogram_series_expansion(self, registry):
        registry.histogram("lat_seconds", buckets=(0.5, 1.0)).observe(0.7)
        lines = render(registry).splitlines()
        assert 'lat_seconds_bucket{le="0.5"} 0' in lines
        assert 'lat_seconds_bucket{le="1"} 1' in lines
        assert 'lat_seconds_bucket{le="+Inf"} 1' in lines
        assert "lat_seconds_sum 0.7" in lines
        assert "lat_seconds_count 1" in lines

    def test_render_accepts_snapshot_dict(self, registry):
        registry.gauge("depth").set(4)
        assert render(registry.snapshot()) == render(registry)

    def test_empty_registry_renders_empty(self, registry):
        assert render(registry) == ""

    def test_escaping_in_help_and_label_values(self, registry):
        fam = registry.counter("esc_total", 'line\nbreak "q" \\slash',
                               labelnames=("path",))
        fam.labels(path='a "b"\n\\c with space').inc()
        text = render(registry)
        assert '# HELP esc_total line\\nbreak \\"q\\" \\\\slash' in text
        assert "\n\\c" not in text  # newline stayed escaped


class TestRoundTrip:
    def test_full_round_trip(self, registry):
        registry.counter("reqs_total", "Total requests.",
                         labelnames=("outcome",)).labels(outcome="ok").inc(7)
        registry.gauge("depth", "Queue depth.").set(2.5)
        hist = registry.histogram("lat_seconds", "Latency.",
                                  buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            hist.observe(v)

        back = parse(render(registry))

        assert back["reqs_total"]["kind"] == "counter"
        assert back["reqs_total"]["help"] == "Total requests."
        assert back["reqs_total"]["samples"][
            frozenset({("outcome", "ok")})] == 7
        assert back["depth"]["samples"][frozenset()] == 2.5

        hist_back = back["lat_seconds"]["samples"][frozenset()]
        assert hist_back["buckets"] == [(0.1, 1), (1.0, 2), (math.inf, 3)]
        assert hist_back["sum"] == pytest.approx(5.55)
        assert hist_back["count"] == 3

    def test_label_values_round_trip_with_specials(self, registry):
        value = 'sp ace "quote" back\\slash new\nline'
        registry.counter("s_total", labelnames=("v",)).labels(v=value).inc()
        back = parse(render(registry))
        assert back["s_total"]["samples"][frozenset({("v", value)})] == 1

    def test_parse_tolerates_untyped_lines(self):
        back = parse("plain_metric 42\n")
        assert back["plain_metric"]["kind"] == "untyped"
        assert back["plain_metric"]["samples"][frozenset()] == 42.0


class TestMerge:
    """merge(): the multi-process /metrics aggregation primitive."""

    def _render_worker(self, requests, latencies):
        with obs.scoped_registry() as reg:
            reg.counter("reqs_total", "Total requests.",
                        labelnames=("outcome",)).labels(
                            outcome="ok").inc(requests)
            reg.gauge("depth", "Queue depth.").set(requests)
            hist = reg.histogram("lat_seconds", "Latency.",
                                 buckets=(0.1, 1.0))
            for v in latencies:
                hist.observe(v)
            return render(reg)

    def test_counters_gauges_and_histograms_sum(self):
        merged = parse(merge([
            self._render_worker(3, [0.05, 0.5]),
            self._render_worker(4, [5.0]),
        ]))
        assert merged["reqs_total"]["samples"][
            frozenset({("outcome", "ok")})] == 7
        assert merged["depth"]["samples"][frozenset()] == 7
        hist = merged["lat_seconds"]["samples"][frozenset()]
        assert hist["buckets"] == [(0.1, 1), (1.0, 2), (math.inf, 3)]
        assert hist["sum"] == pytest.approx(5.55)
        assert hist["count"] == 3

    def test_disjoint_series_pass_through(self):
        a = "# TYPE only_a_total counter\nonly_a_total 1\n"
        b = "# TYPE only_b_total counter\nonly_b_total 2\n"
        merged = parse(merge([a, b]))
        assert merged["only_a_total"]["samples"][frozenset()] == 1
        assert merged["only_b_total"]["samples"][frozenset()] == 2

    def test_metadata_comes_from_first_definer(self):
        untyped = "m_total 1\n"
        typed = "# HELP m_total Real help.\n# TYPE m_total counter\nm_total 2\n"
        text = merge([untyped, typed])
        assert "# TYPE m_total counter" in text
        assert "# HELP m_total Real help." in text
        assert parse(text)["m_total"]["samples"][frozenset()] == 3

    def test_label_sets_merge_by_value(self):
        a = ('# TYPE r_total counter\n'
             'r_total{model="a"} 1\nr_total{model="b"} 2\n')
        b = '# TYPE r_total counter\nr_total{model="a"} 5\n'
        merged = parse(merge([a, b]))
        samples = merged["r_total"]["samples"]
        assert samples[frozenset({("model", "a")})] == 6
        assert samples[frozenset({("model", "b")})] == 2

    def test_merged_text_round_trips_through_parse(self):
        text = merge([self._render_worker(1, [0.5]),
                      self._render_worker(2, [0.05])])
        again = merge([text])
        assert parse(again) == parse(text)
