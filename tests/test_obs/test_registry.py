"""Metrics registry: semantics, arming, and scrape consistency.

The load-bearing property is the last class: snapshots taken *while*
worker threads write must be internally coherent (a histogram's +Inf
cumulative count equals its count, bucket counts are monotone), and
once writers join, totals are exact — no lost updates.
"""

import math
import threading

import pytest

from repro import obs
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    log_buckets,
    set_armed,
)


@pytest.fixture()
def registry():
    with obs.scoped_registry() as reg:
        yield reg


class TestLogBuckets:
    def test_increasing_and_covering(self):
        bounds = log_buckets(1e-4, 60.0, per_decade=3)
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))
        assert bounds[0] == pytest.approx(1e-4)
        assert bounds[-1] >= 60.0

    def test_default_time_buckets_are_log_buckets(self):
        assert DEFAULT_TIME_BUCKETS == log_buckets(1e-4, 60.0, per_decade=3)

    def test_three_sig_figs(self):
        for b in log_buckets(1e-3, 10.0, per_decade=4):
            assert float(f"{b:.3g}") == b

    @pytest.mark.parametrize("lo,hi", [(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)])
    def test_bad_range_rejected(self, lo, hi):
        with pytest.raises(ValueError):
            log_buckets(lo, hi)


class TestCounterGauge:
    def test_counter_accumulates(self, registry):
        c = registry.counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_gauge_set_inc_dec(self, registry):
        g = registry.gauge("g")
        g.set(7)
        g.inc(3)
        g.dec()
        assert g.value == pytest.approx(9.0)

    def test_labeled_children_are_independent(self, registry):
        fam = registry.counter("hits_total", labelnames=("tier",))
        fam.labels(tier="native").inc(5)
        fam.labels(tier="numpy-lut").inc(1)
        assert fam.labels(tier="native").value == 5
        assert fam.labels(tier="numpy-lut").value == 1

    def test_label_name_mismatch_raises(self, registry):
        fam = registry.counter("hits_total", labelnames=("tier",))
        with pytest.raises(ValueError):
            fam.labels(kernel="popcount")
        with pytest.raises(ValueError):
            fam.inc()  # labeled family has no solo child

    def test_kind_collision_raises(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_labelnames_collision_raises(self, registry):
        registry.counter("y_total", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("y_total", labelnames=("b",))

    def test_reregistration_returns_same_family(self, registry):
        assert registry.counter("z_total") is registry.counter("z_total")

    def test_bad_metric_name_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("bad name")


class TestHistogram:
    def test_snapshot_coherent(self, registry):
        h = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = h._solo().snapshot()
        bounds = [b for b, _ in snap["buckets"]]
        cums = [c for _, c in snap["buckets"]]
        assert bounds == [0.1, 1.0, 10.0, math.inf]
        assert cums == [1, 3, 4, 5]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)

    def test_boundary_value_lands_in_le_bucket(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(1.0)  # le="1" is inclusive (Prometheus semantics)
        assert h.snapshot()["buckets"][0] == (1.0, 1)

    def test_bad_buckets_rejected(self):
        for bad in ((), (1.0, 1.0), (2.0, 1.0)):
            with pytest.raises(ValueError):
                Histogram(buckets=bad)


class TestArming:
    def test_disarmed_mutations_are_noops(self, registry):
        c = registry.counter("c_total")
        g = registry.gauge("g")
        h = registry.histogram("h")
        set_armed(False)
        try:
            c.inc()
            g.set(9)
            h.observe(1.0)
        finally:
            set_armed(True)
        assert c.value == 0
        assert g.value == 0
        assert h._solo().count == 0

    def test_scoped_registry_isolates_and_restores(self):
        outer = obs.get_registry()
        with obs.scoped_registry() as inner:
            assert obs.get_registry() is inner
            obs.counter("scoped_total").inc()
            assert inner.counter("scoped_total").value == 1
        assert obs.get_registry() is outer
        assert "scoped_total" not in outer.snapshot()


class TestConcurrentScrapes:
    """Snapshots under live writers: coherent during, exact after."""

    WRITERS = 4
    EVENTS = 2000

    def test_histogram_scrape_coherence_and_no_lost_updates(self, registry):
        hist = registry.histogram("work_seconds", buckets=(0.25, 0.5, 0.75))
        counter = registry.counter("work_total", labelnames=("who",))
        stop = threading.Event()

        def write(who):
            child = counter.labels(who=str(who))
            for i in range(self.EVENTS):
                hist.observe((i % 100) / 100.0)
                child.inc()

        threads = [threading.Thread(target=write, args=(w,))
                   for w in range(self.WRITERS)]
        for t in threads:
            t.start()

        # Scrape continuously while writers run; every snapshot must be
        # internally coherent even though the totals are still moving.
        try:
            while any(t.is_alive() for t in threads):
                snap = registry.snapshot()
                sample = snap["work_seconds"]["samples"][()]
                cums = [c for _, c in sample["buckets"]]
                assert all(c2 >= c1 for c1, c2 in zip(cums, cums[1:]))
                assert cums[-1] == sample["count"]
        finally:
            stop.set()
            for t in threads:
                t.join()

        final = registry.snapshot()
        sample = final["work_seconds"]["samples"][()]
        assert sample["count"] == self.WRITERS * self.EVENTS
        assert sample["buckets"][-1][1] == self.WRITERS * self.EVENTS
        for w in range(self.WRITERS):
            assert final["work_total"]["samples"][(str(w),)] == self.EVENTS
