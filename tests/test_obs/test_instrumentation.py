"""Instrumentation sites: fault trips, DSE runner counters, kernel hooks."""

import numpy as np
import pytest

from repro import faults, obs
from repro.dse.runner import _bump
from repro.obs import kernels


@pytest.fixture()
def registry():
    with obs.scoped_registry() as reg:
        yield reg


class TestFaultTripCounter:
    def test_trip_mirrors_into_registry(self, registry):
        spec = faults.FaultSpec(site="unit.site", action="raise", hits=(2,))
        with faults.armed(spec):
            faults.fire("unit.site")  # occurrence 1: no trip
            with pytest.raises(faults.ComputeFault):
                faults.fire("unit.site")
        fam = registry.counter("repro_fault_trips_total",
                               labelnames=("action", "site"))
        assert fam.labels(site="unit.site", action="raise").value == 1

    def test_no_trip_no_series(self, registry):
        with faults.armed(faults.FaultSpec(site="quiet", hits=(99,))):
            faults.fire("quiet")
        assert "repro_fault_trips_total" not in registry.snapshot()


class TestDseCounters:
    def test_bump_mirrors_stats_key(self, registry):
        stats = {"retries": 0, "points": 0}
        _bump(stats, "retries", 3)
        _bump(stats, "points")
        assert stats == {"retries": 3, "points": 1}
        assert registry.counter("repro_dse_retries_total").value == 3
        assert registry.counter("repro_dse_points_total").value == 1

    def test_zero_bump_creates_no_series(self, registry):
        stats = {"timeouts": 0}
        _bump(stats, "timeouts", 0)
        assert stats["timeouts"] == 0
        assert "repro_dse_timeouts_total" not in registry.snapshot()


class TestKernelProfiling:
    @pytest.fixture()
    def profiled(self, registry):
        kernels.arm(True)
        try:
            yield registry
        finally:
            kernels.arm(False)

    def test_disarmed_tick_is_none_and_tock_noops(self, registry):
        assert not kernels.armed()
        assert kernels.tick() is None
        kernels.tock(None, "popcount", "native")
        assert "repro_kernel_calls_total" not in registry.snapshot()

    def test_ops_attribute_time_by_kernel_and_tier(self, profiled):
        from repro.sc import ops
        bank = np.random.default_rng(0).integers(
            0, 256, size=(8, 16), dtype=np.uint8)
        ops.popcount(bank, 128)
        ops.transpose_pack(bank, 128)
        rows = {r["kernel"]: r for r in kernels.summary()}
        assert rows["popcount"]["calls"] >= 1
        assert rows["popcount"]["seconds"] >= 0
        assert rows["transpose_pack"]["calls"] >= 1
        tiers = {r["tier"] for r in rows.values()}
        assert tiers <= {"native", "numpy-simd", "numpy-lut", "numpy"}

    def test_summary_sorted_by_descending_seconds(self, profiled):
        kernels.tock(0.0, "slow", "native")   # elapsed = now - 0 (huge)
        t0 = kernels.tick()
        kernels.tock(t0, "fast", "native")
        rows = kernels.summary()
        assert [r["kernel"] for r in rows[:2]] == ["slow", "fast"]

    def test_maybe_enable_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        try:
            assert kernels.maybe_enable_from_env()
        finally:
            kernels.arm(False)
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert not kernels.maybe_enable_from_env()
        assert not kernels.armed()
