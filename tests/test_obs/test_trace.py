"""Span tracing: JSONL records, parent/child stitching, arming."""

import json
import threading
import time

import pytest

from repro import obs
from repro.obs import trace


@pytest.fixture()
def trace_file(tmp_path):
    """Arm tracing to a temp JSONL; yields a loader for its records."""
    path = tmp_path / "trace.jsonl"
    trace.configure(str(path))
    try:
        yield lambda: [json.loads(line)
                       for line in path.read_text().splitlines()]
    finally:
        trace.configure(None)


class TestDisarmed:
    def test_span_yields_none_and_writes_nothing(self, tmp_path):
        assert not trace.armed()
        with obs.span("noop") as sid:
            assert sid is None
        assert trace.current() is None

    def test_record_span_returns_none(self):
        assert obs.record_span("noop", 0.0, 1.0) is None


class TestSpans:
    def test_record_fields(self, trace_file):
        with obs.span("unit", batch=4, skipped=None):
            pass
        (rec,) = trace_file()
        assert rec["name"] == "unit"
        assert rec["parent"] is None
        assert rec["dur_ms"] >= 0
        assert rec["tags"] == {"batch": 4}  # None-valued tags dropped
        assert abs(rec["ts"] - time.time()) < 5.0

    def test_nesting_builds_parent_chain(self, trace_file):
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert obs.current() == inner
            assert obs.current() == outer
        recs = {r["name"]: r for r in trace_file()}
        assert recs["inner"]["parent"] == recs["outer"]["span"]
        assert recs["outer"]["parent"] is None

    def test_ids_unique_across_spans(self, trace_file):
        for _ in range(5):
            with obs.span("s"):
                obs.record_span("r", 0.0, 0.0)
        ids = [r["span"] for r in trace_file()]
        assert len(ids) == len(set(ids)) == 10

    def test_cross_thread_parent_token(self, trace_file):
        token = {}

        def worker():
            with obs.span("child", parent=token["parent"]):
                pass

        with obs.span("root") as root:
            token["parent"] = obs.current()
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        recs = {r["name"]: r for r in trace_file()}
        assert recs["child"]["parent"] == root
        assert recs["child"]["thread"] != recs["root"]["thread"]

    def test_retrospective_record_span(self, trace_file):
        t0 = time.monotonic()
        t1 = t0 + 0.25
        sid = obs.record_span("queue", t0, t1, parent="abc.1", reason="wait")
        (rec,) = trace_file()
        assert rec["span"] == sid
        assert rec["parent"] == "abc.1"
        assert rec["dur_ms"] == pytest.approx(250.0, abs=1e-6)
        assert rec["tags"] == {"reason": "wait"}

    def test_exception_tags_error_and_propagates(self, trace_file):
        with pytest.raises(KeyError):
            with obs.span("boom"):
                raise KeyError("x")
        (rec,) = trace_file()
        assert rec["tags"]["error"] == "KeyError"
        assert obs.current() is None  # stack unwound


class TestConfiguration:
    def test_maybe_enable_from_env(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        try:
            assert trace.maybe_enable_from_env()
            with obs.span("from-env"):
                pass
            assert path.exists()
        finally:
            trace.configure(None)

    def test_unset_env_leaves_disarmed(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not trace.maybe_enable_from_env()

    def test_configure_none_disarms(self, tmp_path):
        trace.configure(str(tmp_path / "t.jsonl"))
        trace.configure(None)
        assert not trace.armed()
        with obs.span("after") as sid:
            assert sid is None

    def test_append_across_reconfigure(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for _ in range(2):
            trace.configure(str(path))
            with obs.span("round"):
                pass
            trace.configure(None)
        assert len(path.read_text().splitlines()) == 2

    def test_concurrent_emits_stay_line_atomic(self, trace_file):
        def worker(n):
            for _ in range(50):
                with obs.span(f"w{n}"):
                    pass

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        recs = trace_file()  # json.loads fails on any torn line
        assert len(recs) == 200
        ids = {r["span"] for r in recs}
        assert len(ids) == 200
