"""Tests for validation and seeding utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.seeding import derive_seed, spawn_rng
from repro.utils.validation import (
    as_float_array,
    check_bipolar,
    check_positive_int,
    check_probability,
    check_stream_length,
)


class TestValidation:
    def test_probability_bounds(self):
        check_probability([0.0, 1.0])
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            check_probability([1.1])

    def test_bipolar_bounds(self):
        check_bipolar([-1.0, 1.0])
        with pytest.raises(ValueError, match=r"\[-1, 1\]"):
            check_bipolar([-1.2])

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            as_float_array([np.nan])

    def test_positive_int(self):
        assert check_positive_int(5) == 5
        with pytest.raises(ValueError):
            check_positive_int(0)
        with pytest.raises(ValueError):
            check_positive_int(2.5)
        with pytest.raises(ValueError):
            check_positive_int(True)

    def test_stream_length_upper_bound(self):
        with pytest.raises(ValueError, match="large"):
            check_stream_length(1 << 23)


class TestSeeding:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_keys_matter(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    @given(st.integers(min_value=0, max_value=2**31))
    def test_spawn_rng_reproducible(self, seed):
        a = spawn_rng(seed, "x").random(4)
        b = spawn_rng(seed, "x").random(4)
        np.testing.assert_array_equal(a, b)
