"""Tests for composite-scene generation."""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.data.scenes import SCENE_KINDS, Scene, SceneCell, SceneGenerator


class TestDeterminism:
    @pytest.mark.parametrize("kind", SCENE_KINDS)
    def test_same_seed_same_scene(self, kind):
        a = SceneGenerator(seed=11).generate(kind, index=2)
        b = SceneGenerator(seed=11).generate(kind, index=2)
        np.testing.assert_array_equal(a.canvas, b.canvas)
        assert a.cells == b.cells

    @pytest.mark.parametrize("kind", SCENE_KINDS)
    def test_different_seed_differs(self, kind):
        a = SceneGenerator(seed=0).generate(kind, index=0)
        b = SceneGenerator(seed=1).generate(kind, index=0)
        assert not np.array_equal(a.canvas, b.canvas)

    def test_indices_differ(self):
        gen = SceneGenerator(seed=0)
        a, b = gen.grid(index=0), gen.grid(index=1)
        assert not np.array_equal(a.canvas, b.canvas)

    def test_order_independent(self):
        """Scene i must not depend on which scenes were generated first."""
        gen_a = SceneGenerator(seed=4)
        direct = gen_a.translated(index=5)
        gen_b = SceneGenerator(seed=4)
        for i in range(5):
            gen_b.translated(index=i)  # unrelated work first
            gen_b.grid(index=i)
        later = gen_b.translated(index=5)
        np.testing.assert_array_equal(direct.canvas, later.canvas)
        assert direct.cells == later.cells

    def test_process_independent(self):
        """The scene stream must be stable across Python processes."""
        code = (
            "import json, sys; sys.path.insert(0, 'src')\n"
            "from repro.data.scenes import SceneGenerator\n"
            "s = SceneGenerator(seed=9).grid(index=1, rows=2, cols=2)\n"
            "print(json.dumps(s.to_payload()))\n"
        )
        out = subprocess.run([sys.executable, "-c", code],
                             capture_output=True, text=True, check=True)
        remote = Scene.from_payload(json.loads(out.stdout))
        local = SceneGenerator(seed=9).grid(index=1, rows=2, cols=2)
        np.testing.assert_array_equal(remote.canvas, local.canvas)
        assert remote.cells == local.cells


class TestGridScenes:
    def test_geometry_and_cells(self):
        s = SceneGenerator(seed=0).grid(index=0, rows=2, cols=3)
        assert s.canvas.shape == (56, 84)
        assert len(s.cells) == 6
        # row-major cell boxes tile the canvas exactly
        boxes = [c.box for c in s.cells]
        assert boxes[0] == (0, 0, 28, 28)
        assert boxes[-1] == (28, 56, 28, 28)
        assert len(set(boxes)) == 6

    def test_cells_hold_their_digit(self):
        s = SceneGenerator(seed=3).grid(index=0, rows=2, cols=2)
        for cell in s.cells:
            top, left, h, w = cell.box
            patch = s.canvas[top:top + h, left:left + w]
            assert patch.sum() > 5, f"cell {cell} has no ink"

    def test_labels_property(self):
        s = SceneGenerator(seed=0).grid(index=0, rows=1, cols=4)
        assert s.labels.shape == (4,)
        assert s.labels.dtype == np.int64


class TestSingleDigitScenes:
    @pytest.mark.parametrize("kind", ["translated", "cluttered"])
    def test_digit_inside_box(self, kind):
        s = SceneGenerator(seed=2).generate(kind, index=0,
                                            canvas_hw=(60, 72))
        assert s.canvas.shape == (60, 72)
        assert len(s.cells) == 1
        top, left, h, w = s.cells[0].box
        assert (h, w) == (28, 28)
        assert 0 <= top <= 60 - 28 and 0 <= left <= 72 - 28
        assert s.canvas[top:top + h, left:left + w].sum() > 5

    def test_cluttered_has_ink_outside_box(self):
        found = False
        for index in range(6):
            s = SceneGenerator(seed=1).cluttered(index=index,
                                                 n_distractors=6)
            mask = np.ones(s.canvas.shape, dtype=bool)
            top, left, h, w = s.cells[0].box
            mask[top:top + h, left:left + w] = False
            if s.canvas[mask].sum() > 1.0:
                found = True
                break
        assert found, "no distractor ink landed in 6 scenes"

    def test_cluttered_box_pixels_match_translated_digit(self):
        """Distractors never invade the labelled box."""
        s = SceneGenerator(seed=5).cluttered(index=3)
        top, left, h, w = s.cells[0].box
        patch = s.canvas[top:top + h, left:left + w]
        assert patch.max() <= 1.0 and patch.min() >= 0.0

    def test_canvas_too_small_rejected(self):
        with pytest.raises(ValueError, match="28"):
            SceneGenerator(seed=0).translated(canvas_hw=(20, 56))


class TestPayloadRoundTrip:
    @pytest.mark.parametrize("kind", SCENE_KINDS)
    def test_round_trip_bit_exact(self, kind):
        s = SceneGenerator(seed=7).generate(kind, index=1)
        back = Scene.from_payload(json.loads(json.dumps(s.to_payload())))
        np.testing.assert_array_equal(back.canvas, s.canvas)
        assert back.cells == s.cells
        assert back.kind == s.kind

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {"kind": "grid", "canvas": [[0.0]]},                    # no cells
        {"kind": "nope", "canvas": [[0.0]],
         "cells": [{"label": 1, "box": [0, 0, 1, 1]}]},
        {"kind": "grid", "canvas": [0.0, 1.0],                  # 1-D canvas
         "cells": [{"label": 1, "box": [0, 0, 1, 1]}]},
        {"kind": "grid", "canvas": [[2.0]],                     # range
         "cells": [{"label": 1, "box": [0, 0, 1, 1]}]},
        {"kind": "grid", "canvas": [[0.0]], "cells": []},
        {"kind": "grid", "canvas": [[0.0]],
         "cells": [{"label": 11, "box": [0, 0, 1, 1]}]},
        {"kind": "grid", "canvas": [[0.0]],
         "cells": [{"label": 1, "box": [0, 0, 2, 1]}]},         # box outside
        {"kind": "grid", "canvas": [["x"]],
         "cells": [{"label": 1, "box": [0, 0, 1, 1]}]},
    ])
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(ValueError):
            Scene.from_payload(payload)


class TestSceneBatch:
    def test_scenes_helper(self):
        gen = SceneGenerator(seed=0)
        many = gen.scenes("translated", 3, start=2)
        assert len(many) == 3
        np.testing.assert_array_equal(many[1].canvas,
                                      gen.translated(index=3).canvas)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SceneGenerator(seed=0).generate("mosaic")
