"""Tests for the dataset/model cache."""

import numpy as np
import pytest

from repro.data import cache as cache_mod
from repro.data.cache import TrainedModel, cache_dir, get_dataset


@pytest.fixture()
def temp_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


class TestCacheDir:
    def test_env_override(self, temp_cache):
        assert cache_dir() == temp_cache


class TestGetDataset:
    def test_generates_and_caches(self, temp_cache):
        a = get_dataset(12, 6, seed=3)
        files = list(temp_cache.glob("dataset_*.npz"))
        assert len(files) == 1
        b = get_dataset(12, 6, seed=3)
        np.testing.assert_array_equal(a[0], b[0])

    def test_different_seed_different_file(self, temp_cache):
        get_dataset(12, 6, seed=1)
        get_dataset(12, 6, seed=2)
        assert len(list(temp_cache.glob("dataset_*.npz"))) == 2


class TestGetTrainedLenet:
    def test_trains_and_reloads(self, temp_cache):
        tm = cache_mod.get_trained_lenet(
            pooling="max", seed=0, n_train=120, n_test=60, epochs=1
        )
        assert isinstance(tm, TrainedModel)
        assert 0.0 <= tm.software_error_pct <= 100.0
        # Second call loads from cache and yields identical weights.
        tm2 = cache_mod.get_trained_lenet(
            pooling="max", seed=0, n_train=120, n_test=60, epochs=1
        )
        np.testing.assert_array_equal(tm.model.params[0].value,
                                      tm2.model.params[0].value)

    def test_bipolar_images_range(self, temp_cache):
        tm = cache_mod.get_trained_lenet(
            pooling="max", seed=0, n_train=120, n_test=60, epochs=1
        )
        imgs = tm.bipolar_test_images()
        assert imgs.min() >= -1.0 and imgs.max() <= 1.0

    def test_bad_pooling_rejected(self, temp_cache):
        with pytest.raises(ValueError, match="pooling"):
            cache_mod.get_trained_lenet(pooling="median")
