"""Tests for the synthetic digit dataset."""

import numpy as np
import pytest

from repro.data.glyphs import DIGIT_GLYPHS, render_glyph
from repro.data.synthetic_mnist import (
    SyntheticMNIST,
    generate_dataset,
    to_bipolar,
)


class TestGlyphs:
    def test_all_digits_present(self):
        assert sorted(DIGIT_GLYPHS) == list(range(10))

    def test_two_variants_each(self):
        for digit, variants in DIGIT_GLYPHS.items():
            assert len(variants) >= 2, f"digit {digit}"

    def test_glyphs_have_ink(self):
        for digit, variants in DIGIT_GLYPHS.items():
            for glyph in variants:
                assert glyph.sum() > 20, f"digit {digit} too sparse"

    def test_render_centered(self):
        img = render_glyph(3, 0, size=28)
        assert img.shape == (28, 28)
        # ink must not touch the border
        assert img[0].sum() == 0 and img[-1].sum() == 0
        assert img[:, 0].sum() == 0 and img[:, -1].sum() == 0

    def test_unknown_digit_rejected(self):
        with pytest.raises(ValueError, match="0-9"):
            render_glyph(10)


class TestSyntheticMNIST:
    def test_sample_properties(self):
        gen = SyntheticMNIST(seed=0)
        img = gen.sample(7)
        assert img.shape == (28, 28)
        assert img.min() >= 0.0 and img.max() <= 1.0
        assert img.sum() > 5  # there is actually a digit there

    def test_deterministic(self):
        a = SyntheticMNIST(seed=5).sample(2)
        b = SyntheticMNIST(seed=5).sample(2)
        np.testing.assert_array_equal(a, b)

    def test_samples_vary(self):
        gen = SyntheticMNIST(seed=0)
        a, b = gen.sample(4), gen.sample(4)
        assert not np.array_equal(a, b)

    def test_batch_shapes(self):
        images, labels = SyntheticMNIST(seed=1).batch(16)
        assert images.shape == (16, 1, 28, 28)
        assert labels.shape == (16,)
        assert labels.min() >= 0 and labels.max() <= 9


class TestExplicitRngThreading:
    """``batch(n, rng=...)`` must be a pure function of the passed rng.

    Pre-fix, only the *labels* came from the explicit rng — the image
    perturbations still consumed the generator's shared sampler state,
    so interleaved callers (scene generator + trainer on one sampler)
    perturbed each other's image sequences.
    """

    def test_batch_reproducible_despite_interleaving(self):
        a_imgs, a_labels = SyntheticMNIST(seed=7).batch(
            4, rng=np.random.default_rng(99))
        gen = SyntheticMNIST(seed=7)
        gen.sample(0)  # an interleaved draw from another consumer
        b_imgs, b_labels = gen.batch(4, rng=np.random.default_rng(99))
        np.testing.assert_array_equal(a_labels, b_labels)
        np.testing.assert_array_equal(a_imgs, b_imgs)

    def test_explicit_rng_does_not_touch_shared_state(self):
        gen_a = SyntheticMNIST(seed=3)
        gen_b = SyntheticMNIST(seed=3)
        gen_a.batch(2, rng=np.random.default_rng(1))  # must not advance
        np.testing.assert_array_equal(gen_a.sample(5), gen_b.sample(5))

    def test_sample_accepts_explicit_rng(self):
        a = SyntheticMNIST(seed=0).sample(4, rng=np.random.default_rng(8))
        b = SyntheticMNIST(seed=1).sample(4, rng=np.random.default_rng(8))
        np.testing.assert_array_equal(a, b)

    def test_default_rng_behaviour_unchanged(self):
        a, la = SyntheticMNIST(seed=2).batch(3)
        b, lb = SyntheticMNIST(seed=2).batch(3)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(la, lb)


class TestGenerateDataset:
    def test_split_shapes(self):
        xtr, ytr, xte, yte = generate_dataset(20, 10, seed=0)
        assert xtr.shape == (20, 1, 28, 28)
        assert xte.shape == (10, 1, 28, 28)

    def test_train_test_disjoint_streams(self):
        xtr, _, xte, _ = generate_dataset(10, 10, seed=0)
        assert not np.array_equal(xtr, xte)

    def test_labels_cover_classes(self):
        _, ytr, _, _ = generate_dataset(200, 10, seed=0)
        assert len(np.unique(ytr)) == 10


class TestToBipolar:
    def test_range_mapping(self):
        imgs = np.array([0.0, 0.5, 1.0])
        np.testing.assert_allclose(to_bipolar(imgs), [-1.0, 0.0, 1.0])
