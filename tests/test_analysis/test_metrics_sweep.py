"""Tests for the metrics, sweep utilities and table formatting."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    error_rate_pct,
    mean_absolute_error,
    mean_relative_error,
)
from repro.analysis.sweep import Sweep
from repro.analysis.tables import PAPER, format_table


class TestMetrics:
    def test_mae(self):
        assert mean_absolute_error([1.0, 2.0], [0.0, 0.0]) == 1.5

    def test_relative_error_floor(self):
        # near-zero references excluded
        est = [1.0, 0.001]
        ref = [2.0, 0.0001]
        assert mean_relative_error(est, ref) == pytest.approx(0.5)

    def test_relative_error_all_below_floor(self):
        with pytest.raises(ValueError, match="floor"):
            mean_relative_error([0.1], [0.0001])

    def test_error_rate(self):
        assert error_rate_pct([1, 2, 3, 4], [1, 2, 0, 0]) == 50.0

    def test_error_rate_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            error_rate_pct([1], [1, 2])


class TestSweep:
    def test_full_grid(self):
        result = Sweep(a=[1, 2], b=[10, 20]).run(lambda a, b: a * b)
        assert result.values[(2, 20)] == 40
        assert len(result.values) == 4

    def test_row_extraction(self):
        result = Sweep(n=[16, 32], length=[128, 256]).run(
            lambda n, length: n + length
        )
        assert result.row(n=16) == [144, 272]

    def test_row_requires_single_free_axis(self):
        result = Sweep(a=[1], b=[2], c=[3]).run(lambda a, b, c: a)
        with pytest.raises(ValueError, match="free"):
            result.row(a=1)

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="axis"):
            Sweep()

    def test_grid_iteration(self):
        result = Sweep(x=[1, 2]).run(lambda x: x * x)
        combos = dict((tuple(c.items()), v) for c, v in result.grid())
        assert combos[(("x", 2),)] == 4


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        text = format_table(["x"], [["1"]], title="Table 1")
        assert text.startswith("Table 1")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["1"]])


class TestPaperConstants:
    def test_all_experiments_present(self):
        for key in ("table1", "table2", "table3", "table4", "table5",
                    "weight_storage", "baselines", "table7"):
            assert key in PAPER

    def test_table2_shape(self):
        """Paper's Table 2 errors grow with n, shrink with L."""
        t2 = PAPER["table2"]
        assert t2[(64, 512)] > t2[(16, 512)]
        assert t2[(16, 4096)] < t2[(16, 512)]

    def test_table7_no11(self):
        assert PAPER["table7"]["No.11"]["area_mm2"] == 17.0


class TestEngineErrorSweep:
    def test_grid_over_combos_lengths_backends(self, tiny_trained_lenet,
                                               small_dataset):
        from repro.analysis.sweep import engine_error_sweep
        from repro.core.config import PoolKind
        from repro.data.synthetic_mnist import to_bipolar
        _, _, x_test, y_test = small_dataset
        result = engine_error_sweep(
            tiny_trained_lenet, to_bipolar(x_test), y_test,
            kind_combos=[("APC", "APC", "APC")],
            lengths=[256, 128],
            pooling=PoolKind.MAX,
            backends=("float", "noise"),
            max_images=32,
        )
        assert result.axes == ("combo", "length", "backend")
        assert len(result.values) == 4
        for err in result.values.values():
            assert 0.0 <= err <= 100.0
        # float backend is length-independent: identical columns
        combo = ("APC", "APC", "APC")
        assert (result.values[(combo, 256, "float")]
                == result.values[(combo, 128, "float")])
