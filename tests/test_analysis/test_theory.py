"""Cross-validation of the analytic error models against simulation."""

import numpy as np
import pytest

from repro.analysis import theory
from repro.sc import adders, ops
from repro.sc.rng import StreamFactory


@pytest.fixture()
def factory():
    return StreamFactory(seed=0)


class TestSngDecodeStd:
    def test_matches_simulation(self, factory):
        value, L, runs = 0.3, 512, 200
        decoded = np.empty(runs)
        for i in range(runs):
            s = factory.packed(value, L)
            decoded[i] = 2.0 * ops.popcount(s, L) / L - 1.0
        predicted = float(theory.sng_decode_std(value, L))
        assert decoded.std() == pytest.approx(predicted, rel=0.25)

    def test_worst_case_at_zero(self):
        assert (theory.sng_decode_std(0.0, 1024)
                > theory.sng_decode_std(0.9, 1024))


class TestMuxStd:
    def test_matches_simulation(self, factory, rng):
        n, L, runs = 16, 512, 150
        x = rng.uniform(-1, 1, n)
        w = rng.uniform(-1, 1, n)
        errs = np.empty(runs)
        for i in range(runs):
            xs = factory.packed(x, L)
            ws = factory.packed(w, L)
            prod = ops.xnor_(xs, ws, L)
            sel = factory.select_signal(n, L)
            out = adders.mux_add(prod, sel, L)
            est = (2.0 * ops.popcount(out, L) / L - 1.0) * n
            errs[i] = est - (x * w).sum()
        predicted = theory.mux_inner_product_std(n, L)
        assert errs.std() == pytest.approx(predicted, rel=0.3)

    def test_scaling_laws(self):
        assert (theory.mux_inner_product_std(64, 512)
                > 3 * theory.mux_inner_product_std(16, 512))
        assert (theory.mux_inner_product_std(16, 2048)
                < theory.mux_inner_product_std(16, 512))


class TestApcStd:
    def test_matches_simulation(self, factory, rng):
        n, L, runs = 32, 256, 150
        x = rng.uniform(-1, 1, n)
        w = rng.uniform(-1, 1, n)
        errs = np.empty(runs)
        for i in range(runs):
            xs = factory.packed(x, L)
            ws = factory.packed(w, L)
            counts = adders.parallel_counter(ops.xnor_(xs, ws, L), L)
            est = (2.0 * counts.sum() - n * L) / L
            errs[i] = est - (x * w).sum()
        predicted = theory.apc_inner_product_std(n, L)
        assert errs.std() == pytest.approx(predicted, rel=0.3)

    def test_sqrt_n_growth(self):
        assert (theory.apc_inner_product_std(64, 256)
                == pytest.approx(2 * theory.apc_inner_product_std(16, 256),
                                 rel=0.05))


class TestOrExpectation:
    def test_matches_simulation(self, factory):
        from repro.sc.encoding import Encoding
        probs = np.array([0.2, 0.3, 0.1])
        fab = StreamFactory(seed=3, encoding=Encoding.UNIPOLAR)
        streams = fab.packed(probs, 16384)
        out = adders.or_add(streams)
        measured = ops.popcount(out, 16384) / 16384
        assert measured == pytest.approx(theory.or_add_expectation(probs),
                                         abs=0.02)

    def test_below_true_sum(self):
        assert theory.or_add_expectation([0.4, 0.4]) < 0.8


class TestStanhStationary:
    @pytest.mark.parametrize("x", [-0.6, -0.2, 0.2, 0.6])
    def test_close_to_tanh(self, x):
        out = theory.stanh_stationary(8, x)
        assert out == pytest.approx(np.tanh(4 * x), abs=0.05)

    def test_saturates_at_extremes(self):
        assert theory.stanh_stationary(8, 1.0) == 1.0
        assert theory.stanh_stationary(8, -1.0) == -1.0

    def test_matches_long_simulation(self, factory):
        from repro.sc import activation
        x, K, L = 0.25, 10, 1 << 16
        s = factory.packed(x, L)
        out = activation.stanh_packed(s, L, K)
        measured = 2.0 * ops.popcount(out, L) / L - 1.0
        assert measured == pytest.approx(theory.stanh_stationary(K, x),
                                         abs=0.05)


class TestBtanhGain:
    def test_paper_sizings_give_unit_gain(self):
        """K=2N direct and K=N/2 pooled both give gain 1 — the design
        insight behind equation (3)."""
        assert theory.btanh_gain(100, 200, pooled=False) == pytest.approx(1.0)
        assert theory.btanh_gain(100, 50, pooled=True) == pytest.approx(1.0)
