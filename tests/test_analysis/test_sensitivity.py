"""Tests for the Figure 16 layer-sensitivity harness."""

import numpy as np
import pytest

from repro.analysis.sensitivity import NoisyForward, layer_noise_sensitivity
from repro.data.synthetic_mnist import to_bipolar


class TestNoisyForward:
    def test_zero_sigma_matches_model(self, tiny_trained_lenet,
                                      small_dataset):
        _, _, x_test, _ = small_dataset
        x = to_bipolar(x_test)[:32]
        noisy = NoisyForward(tiny_trained_lenet, stage=0, sigma=0.0)
        np.testing.assert_allclose(
            noisy.forward(x),
            tiny_trained_lenet.forward(x, training=False),
        )

    def test_noise_changes_outputs(self, tiny_trained_lenet,
                                   small_dataset):
        _, _, x_test, _ = small_dataset
        x = to_bipolar(x_test)[:8]
        noisy = NoisyForward(tiny_trained_lenet, stage=1, sigma=0.5)
        clean = tiny_trained_lenet.forward(x, training=False)
        assert not np.allclose(noisy.forward(x), clean)

    def test_invalid_stage_rejected(self, tiny_trained_lenet):
        with pytest.raises(ValueError, match="stage"):
            NoisyForward(tiny_trained_lenet, stage=5, sigma=0.1)


class TestLayerSensitivity:
    def test_error_grows_with_noise(self, tiny_trained_lenet,
                                    small_dataset):
        _, _, x_test, y_test = small_dataset
        x = to_bipolar(x_test)[:120]
        y = y_test[:120]
        result = layer_noise_sensitivity(
            tiny_trained_lenet, x, y, sigmas=(0.0, 0.6)
        )
        for layer in ("Layer0", "Layer1", "Layer2"):
            assert result[layer][1] >= result[layer][0] - 1.0

    def test_result_structure(self, tiny_trained_lenet, small_dataset):
        _, _, x_test, y_test = small_dataset
        x = to_bipolar(x_test)[:40]
        result = layer_noise_sensitivity(
            tiny_trained_lenet, x, y_test[:40], sigmas=(0.0, 0.2)
        )
        assert set(result) == {"Layer0", "Layer1", "Layer2", "sigmas"}
        assert len(result["Layer1"]) == 2
