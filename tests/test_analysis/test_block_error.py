"""Tests for the Table 1-5 / Figure 14 measurement harnesses.

These assert the *shapes* the paper reports (orderings and trends), with
reduced trial counts to stay fast; the benchmarks print the full grids.
"""

import pytest

from repro.analysis.block_error import (
    apc_relative_error,
    feb_inaccuracy,
    maxpool_deviation,
    mux_inner_product_error,
    or_inner_product_error,
    stanh_curve,
    stanh_inaccuracy,
)
from repro.sc.encoding import Encoding


class TestTable1Harness:
    def test_bipolar_worse_than_unipolar(self):
        uni = or_inner_product_error(16, 512, Encoding.UNIPOLAR, trials=16)
        bip = or_inner_product_error(16, 512, Encoding.BIPOLAR, trials=16)
        assert bip > uni

    def test_bipolar_error_grows_with_n(self):
        small = or_inner_product_error(16, 512, Encoding.BIPOLAR, trials=16)
        large = or_inner_product_error(64, 512, Encoding.BIPOLAR, trials=16)
        assert large > small


class TestTable2Harness:
    def test_error_shrinks_with_length(self):
        short = mux_inner_product_error(16, 256, trials=32)
        long_ = mux_inner_product_error(16, 4096, trials=32)
        assert long_ < short

    def test_error_grows_with_inputs(self):
        small = mux_inner_product_error(16, 1024, trials=32)
        large = mux_inner_product_error(64, 1024, trials=32)
        assert large > small


class TestTable3Harness:
    def test_below_two_percent(self):
        """Paper: APC stays within ~1% of the exact counter."""
        assert apc_relative_error(16, 256, trials=24) < 0.02

    def test_shrinks_with_inputs(self):
        small = apc_relative_error(16, 256, trials=24)
        large = apc_relative_error(64, 256, trials=24)
        assert large < small


class TestTable4Harness:
    def test_deviation_shrinks_with_length(self):
        short = maxpool_deviation(4, 128, trials=100)
        long_ = maxpool_deviation(4, 512, trials=100)
        assert long_ < short

    def test_deviation_grows_with_candidates(self):
        few = maxpool_deviation(4, 256, trials=100)
        many = maxpool_deviation(16, 256, trials=100)
        assert many > few

    def test_magnitude_matches_paper(self):
        """Paper Table 4: deviations in the 0.05-0.17 band."""
        dev = maxpool_deviation(4, 128, trials=150)
        assert 0.01 < dev < 0.25


class TestTable5Harness:
    def test_notable_inaccuracy(self):
        """Paper: ~7-10% inaccuracy, not suppressed by K."""
        err = stanh_inaccuracy(8, length=4096, trials=100)
        assert 0.03 < err < 0.30

    def test_curve_tracks_tanh(self):
        x, measured, expected = stanh_curve(8, length=8192, points=9)
        assert abs(measured - expected).mean() < 0.1


class TestFigure14Harness:
    def test_apc_beats_mux(self):
        mux = feb_inaccuracy("mux-avg", 16, 512, trials=16)
        apc = feb_inaccuracy("apc-max", 16, 512, trials=16)
        assert apc < mux

    def test_mux_degrades_with_inputs(self):
        small = feb_inaccuracy("mux-avg", 16, 512, trials=16)
        large = feb_inaccuracy("mux-avg", 128, 512, trials=16)
        assert large > small
