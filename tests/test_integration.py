"""Cross-module integration tests.

Each test exercises a realistic slice of the full pipeline — the paths a
downstream user strings together — rather than a single module.
"""

import numpy as np
import pytest

from repro.core.config import NetworkConfig, PoolKind
from repro.core.feature_extraction import make_feb
from repro.core.network import SCNetwork
from repro.data.synthetic_mnist import to_bipolar
from repro.hw.blocks_cost import feb_metrics
from repro.hw.network_cost import lenet_network_cost
from repro.storage.quantization import quantize_model


class TestFebAccuracyCostFrontier:
    def test_accuracy_and_cost_are_a_tradeoff(self, rng):
        """No design dominates: the cheapest (MUX-Avg) must not be the
        most accurate, the most accurate (APC family) must not be the
        cheapest — Section 6.1's central tension."""
        n, L = 25, 512
        x = rng.uniform(-1, 1, (24, 4, n))
        w = rng.uniform(-1, 1, (24, 4, n)) * (3.6 / np.sqrt(n))
        stats = {}
        for kind in ("mux-avg", "mux-max", "apc-avg", "apc-max"):
            feb = make_feb(kind, n, L, seed=2)
            err = np.abs(feb.forward(x, w) - feb.reference(x, w)).mean()
            stats[kind] = (err, feb_metrics(kind, n, L)["area_um2"])
        cheapest = min(stats, key=lambda k: stats[k][1])
        most_accurate = min(stats, key=lambda k: stats[k][0])
        assert cheapest == "mux-avg"
        assert most_accurate in ("apc-max", "apc-avg")


class TestQuantizedSCInference:
    def test_weight_storage_composes_with_sc_mapping(
            self, tiny_trained_lenet):
        """Quantizing the float model and passing weight_bits to the SC
        mapper must produce identical stored weights."""
        import copy
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 64,
                                       ("APC", "APC", "APC"))
        direct = SCNetwork(tiny_trained_lenet, cfg, seed=0, weight_bits=6)
        clone = copy.deepcopy(tiny_trained_lenet)
        quantize_model(clone, 6)
        # The SC mapper quantizes after bias folding, so spot-check the
        # quantization grid rather than exact equality.
        w = direct._plans[1].weights
        codes = (w + 1.0) / 2.0 * 64
        np.testing.assert_allclose(codes, np.round(codes), atol=1e-9)


class TestConfigToCostPipeline:
    def test_all_table6_configs_costable(self):
        from repro.core.config import TABLE6_CONFIGS
        for config, paper in TABLE6_CONFIGS:
            cost = lenet_network_cost(config, weight_bits=(7, 7, 6))
            assert cost.area_mm2 > 5.0
            assert cost.delay_ns == paper.delay_ns
            assert cost.throughput_ips == pytest.approx(1e9 / cost.delay_ns)


class TestStreamReuseAcrossLayers:
    def test_activations_stay_streams(self, tiny_trained_lenet,
                                      small_dataset):
        """Layer outputs feed the next layer as packed streams without a
        decode/re-encode round trip (the hardware reality)."""
        _, _, x_test, _ = small_dataset
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 64,
                                       ("APC", "APC", "APC"))
        sc = SCNetwork(tiny_trained_lenet, cfg, seed=0)
        backend = sc.engine.backend
        x = sc.factory.packed(to_bipolar(x_test)[:1].reshape(1, -1), 64)
        out0 = backend._conv_layer(0, sc._plans[0], x, selects=[{}])
        assert out0.dtype == np.uint8
        assert out0.shape == (1, 2880, 8)  # 20×12×12 streams, 64 bits each
        out1 = backend._conv_layer(1, sc._plans[1], out0, selects=[{}])
        assert out1.shape == (1, 800, 8)   # 50×4×4


class TestDeterministicEndToEnd:
    def test_same_seed_same_everything(self, tiny_trained_lenet,
                                       small_dataset):
        _, _, x_test, y_test = small_dataset
        cfg = NetworkConfig.from_kinds(PoolKind.AVG, 64,
                                       ("MUX", "APC", "APC"))
        img = to_bipolar(x_test)[:2]
        a = SCNetwork(tiny_trained_lenet, cfg, seed=5).predict(img)
        b = SCNetwork(tiny_trained_lenet, cfg, seed=5).predict(img)
        np.testing.assert_array_equal(a, b)
